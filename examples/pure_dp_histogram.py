"""Pure epsilon-DP histograms (Section 6) and the effect of sensitivity reduction.

Some deployments cannot tolerate a delta.  This example shows how the
Algorithm 3 post-processing (subtract the decrement offset, drop non-positive
counters) cuts the sketch's l1-sensitivity from k to below 2, and what that
means for the noise needed under pure epsilon-DP compared with the Chan et al.
approach that scales noise with k.

Run with ``python examples/pure_dp_histogram.py`` (``--quick`` for CI).
"""

import argparse

from repro import MisraGriesSketch, PureDPMisraGries, reduce_sensitivity
from repro.analysis import format_table, summarize_errors
from repro.baselines import ChanPrivateMisraGries
from repro.dp.sensitivity import l1_distance, neighbouring_streams_by_deletion
from repro.sketches import ExactCounter
from repro.streams import zipf_stream


def empirical_reduced_sensitivity(stream, k, samples=40):
    """Largest observed l1 change of the post-processed sketch over deletions."""
    base = reduce_sensitivity(MisraGriesSketch.from_stream(k, stream))
    worst = 0.0
    for pair in neighbouring_streams_by_deletion(stream, max_pairs=samples, rng=0):
        other = reduce_sensitivity(MisraGriesSketch.from_stream(k, list(pair.neighbour)))
        worst = max(worst, l1_distance(base, other))
    return worst


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true")
    parser.add_argument("--epsilon", type=float, default=1.0)
    parser.add_argument("--k", type=int, default=64)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    n = 20_000 if args.quick else 200_000
    universe = 1_000 if args.quick else 5_000
    stream = zipf_stream(n, universe, exponent=1.3, rng=args.seed)
    truth = ExactCounter.from_stream(stream).counters()

    sensitivity_sample_stream = stream[:2_000]
    observed = empirical_reduced_sensitivity(sensitivity_sample_stream, args.k)
    print(f"Observed l1-sensitivity of the post-processed sketch over "
          f"{min(len(sensitivity_sample_stream), 40)} deletion neighbours: {observed:.3f} "
          "(Lemma 16 bound: < 2; raw MG sketch: up to k)")
    print()

    ours = PureDPMisraGries(epsilon=args.epsilon, universe_size=universe)
    ours_histogram = ours.run(stream, k=args.k, rng=args.seed + 1)

    chan = ChanPrivateMisraGries(epsilon=args.epsilon, k=args.k, universe_size=universe)
    chan_histogram = chan.run(stream, rng=args.seed + 2)

    rows = []
    for name, histogram, scale in [
        ("Sensitivity-reduced MG (Section 6)", ours_histogram, ours.noise_scale),
        ("Chan et al. (noise k/eps)", chan_histogram, chan.noise_scale),
    ]:
        summary = summarize_errors(histogram, truth, universe=range(universe))
        rows.append({
            "mechanism": name,
            "noise scale": scale,
            "max error": summary.max_error,
            "mean abs error": summary.mean_absolute_error,
            "released": len(histogram),
        })

    print(format_table(rows, title=f"Pure {args.epsilon}-DP release, n={n}, "
                                   f"k={args.k}, universe={universe}"))
    print()
    print("Both releases add Laplace noise to every universe element and keep the")
    print("top-k, but the post-processed sketch only needs scale 2/eps instead of k/eps.")


if __name__ == "__main__":
    main()
