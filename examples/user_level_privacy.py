"""User-level privacy scenario: each user contributes a set of items (Section 8).

A shopping service wants the most popular items while protecting each user's
*entire* basket (up to m distinct items).  Two routes are compared:

* flatten the baskets and run Algorithm 2 with group-privacy scaled parameters
  (noise grows linearly with m);
* the paper's Privacy-Aware Misra-Gries sketch released through the Gaussian
  Sparse Histogram Mechanism (noise independent of m, Theorem 30).

Run with ``python examples/user_level_privacy.py`` (``--quick`` for CI).
"""

import argparse

from repro import UserLevelRelease
from repro.analysis import format_table
from repro.sketches import ExactCounter
from repro.streams import distinct_user_stream


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true")
    parser.add_argument("--epsilon", type=float, default=1.0)
    parser.add_argument("--delta", type=float, default=1e-6)
    parser.add_argument("--k", type=int, default=128)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    num_users = 5_000 if args.quick else 100_000
    universe = 5_000
    contribution_bounds = [2, 8] if args.quick else [2, 8, 32]

    rows = []
    for m in contribution_bounds:
        stream = distinct_user_stream(num_users, universe, max_contribution=m,
                                      exponent=1.3, rng=args.seed + m)
        truth = ExactCounter().update_sets(stream).counters()
        top_elements = sorted(truth, key=truth.get, reverse=True)[:20]
        config = UserLevelRelease(epsilon=args.epsilon, delta=args.delta,
                                  k=args.k, max_contribution=m)
        noise = config.noise_summary()

        pamg_histogram = config.release_pamg(stream, rng=args.seed + 100 + m)
        flattened_histogram = config.release_flattened(stream, rng=args.seed + 200 + m)

        def top_error(histogram):
            return sum(abs(histogram.estimate(x) - truth[x]) for x in top_elements) / len(top_elements)

        rows.append({
            "m": m,
            "route": "PAMG + GSHM (Thm 30)",
            "noise scale": noise["pamg_sigma"],
            "threshold": noise["pamg_threshold"],
            "mean error (top-20)": top_error(pamg_histogram),
            "released": len(pamg_histogram),
        })
        rows.append({
            "m": m,
            "route": "flattened PMG (Lemma 20)",
            "noise scale": noise["flattened_laplace_scale"],
            "threshold": noise["flattened_threshold"],
            "mean error (top-20)": top_error(flattened_histogram),
            "released": len(flattened_histogram),
        })

    print(format_table(rows, title=f"User-level release, {num_users} users, "
                                   f"k={args.k}, eps={args.epsilon}, delta={args.delta}"))
    print()
    print("The flattened route's noise and threshold grow linearly with the per-user")
    print("contribution m; the PAMG route's Gaussian noise depends only on k, so it")
    print("wins once m is large relative to sqrt(k).")


if __name__ == "__main__":
    main()
