"""Operator walkthrough: drive load at a server and watch it like an operator.

The observability loop of the aggregation service, end to end in one
process:

1. start an :class:`~repro.net.server.AggregatorServer` with metrics on;
2. fire a ``repro loadgen``-style client wave at it (bounded concurrency,
   a slice of churned clients dying mid-push) via
   :func:`~repro.obs.loadgen.run_loadgen_async`;
3. render exactly what ``repro status --once`` would show — the session
   and budget tables, the interval throughput rates, and the latency
   percentile table from the server's embedded ``metrics`` stanza;
4. print the harness's own report: sustained clients/s and the
   client-side connect/push/release percentiles.

Against a real deployment you would run the same thing as two commands:
``repro serve --listen :7000`` and ``repro status 127.0.0.1:7000 --watch``
(plus ``repro loadgen --to 127.0.0.1:7000`` to generate the load).

Run with ``python examples/operator_console.py`` (``--quick`` for CI).
"""

import argparse
import asyncio
import time

from repro.analysis import format_table
from repro.net import AggregatorServer
from repro.obs.console import render_status
from repro.obs.loadgen import LoadgenConfig, run_loadgen_async


async def demo(args) -> int:
    clients = 200 if args.quick else 2_000
    config = LoadgenConfig(clients=clients, concurrency=32,
                           stream_length=30 if args.quick else 100,
                           universe=500 if args.quick else 5_000,
                           k=args.k, seed=args.seed, churn=0.05,
                           releases=1, payload_pool=16)
    server = AggregatorServer(epsilon=1.0, delta=1e-6, k=args.k,
                              metrics=True)
    async with await server.start("127.0.0.1:0"):
        address = server.address
        print(f"aggregator listening on {address} (metrics on)\n")

        before = server.stats()
        start = time.monotonic()
        config.to = address
        report = await run_loadgen_async(config)
        elapsed = time.monotonic() - start

        print(f"wave done: {report.clients_ok} committed, "
              f"{report.clients_churned} churned mid-push, "
              f"{report.clients_failed} failed "
              f"({report.sustained_clients_per_sec:.0f} clients/s)\n")

        # The operator's view — one `repro status` frame, with rates
        # computed against the pre-wave poll.
        print(render_status(server.stats(), address,
                            prev=before, elapsed=elapsed))

    # The harness's view — client-side latency percentiles.
    rows = [{"op": name, **{key: (f"{value * 1e3:.2f} ms"
                                  if key != "count" else value)
                            for key, value in summary.items()}}
            for name, summary in sorted(report.latencies.items())
            if summary.get("count")]
    print()
    print(format_table(rows, title="client-side latency (whole wave)"))
    return 0 if report.clients_failed == 0 else 1


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true")
    parser.add_argument("--k", type=int, default=64)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()
    return asyncio.run(demo(args))


if __name__ == "__main__":
    raise SystemExit(main())
