"""Quickstart: private approximate histogram of a stream in a few lines.

Uses the unified :class:`repro.api.Pipeline` facade: pick a sketch and a
release mechanism by registry name, fit the stream (integer streams ride the
vectorized batch engine automatically) and release under differential
privacy.  Swap ``mechanism="pmg"`` for any element-stream mechanism in
``repro.api.list_mechanisms()`` — e.g. ``"chan"``, ``"bohler_kerschbaum"``
or ``"exact"`` — to compare baselines without touching the rest of the
script.  (The user-level mechanisms ``pamg``/``user_level`` need a
user-level stream; see ``examples/user_level_privacy.py``.)

The same pipeline spelled with the raw class API (the level the other
examples in this directory document) is::

    sketch = MisraGriesSketch.from_stream(k, stream)
    histogram = PrivateMisraGries(epsilon=eps, delta=delta).release(sketch, rng=seed)

Run with ``python examples/quickstart.py`` (add ``--quick`` for a smaller
stream, as used by the test suite).
"""

import argparse

from repro.analysis import format_table, summarize_errors
from repro.api import Pipeline, mechanism_entry
from repro.sketches import ExactCounter
from repro.streams import zipf_stream


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="use a small stream")
    parser.add_argument("--mechanism", default="pmg",
                        help="registered mechanism name (see `repro list`)")
    parser.add_argument("--epsilon", type=float, default=1.0)
    parser.add_argument("--delta", type=float, default=1e-6)
    parser.add_argument("--k", type=int, default=64, help="sketch size")
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    if mechanism_entry(args.mechanism).consumes == "user_stream":
        parser.error(f"{args.mechanism!r} releases user-level streams; "
                     "see examples/user_level_privacy.py")

    n = 20_000 if args.quick else 500_000
    universe = 10_000
    stream = zipf_stream(n, universe, exponent=1.2, rng=args.seed, as_array=True)

    # 1.+2. One pipeline: Misra-Gries sketch (2k words of memory), then the
    # configured (epsilon, delta)-DP release.
    pipeline = Pipeline(sketch="misra_gries", mechanism=args.mechanism,
                        k=args.k, epsilon=args.epsilon, delta=args.delta,
                        universe_size=universe)
    histogram = pipeline.fit(stream).release(rng=args.seed + 1)

    # 3. Inspect the result.
    truth = ExactCounter.from_stream(stream.tolist()).counters()
    summary = summarize_errors(histogram, truth)

    print("Private Misra-Gries quickstart")
    print(f"  stream length          : {n}")
    print(f"  universe size           : {universe}")
    print(f"  sketch size k           : {args.k}")
    print(f"  mechanism               : {pipeline.mechanism_name} "
          f"({histogram.metadata.mechanism})")
    print(f"  privacy                 : ({args.epsilon}, {args.delta})-DP")
    print(f"  released elements       : {len(histogram)}")
    print(f"  max error (measured)    : {summary.max_error:.1f}")
    if pipeline.mechanism_name == "pmg":
        bound = pipeline.mechanism.impl.error_bound_vs_truth(args.k, n, beta=0.05)
        print(f"  max error (paper bound) : {bound:.1f}")
    print()
    rows = [{"element": key, "noisy count": value, "true count": truth.get(key, 0.0)}
            for key, value in histogram.top(10)]
    print(format_table(rows, title="Top released elements"))


if __name__ == "__main__":
    main()
