"""Quickstart: private approximate histogram of a stream in a few lines.

Builds a Misra-Gries sketch over a synthetic Zipf stream, releases it with the
paper's (epsilon, delta)-DP mechanism (Algorithm 2) and compares the result
with the exact histogram.

Run with ``python examples/quickstart.py`` (add ``--quick`` for a smaller
stream, as used by the test suite).
"""

import argparse

from repro import MisraGriesSketch, PrivateMisraGries
from repro.analysis import format_table, summarize_errors
from repro.sketches import ExactCounter
from repro.streams import zipf_stream


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="use a small stream")
    parser.add_argument("--epsilon", type=float, default=1.0)
    parser.add_argument("--delta", type=float, default=1e-6)
    parser.add_argument("--k", type=int, default=64, help="sketch size")
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    n = 20_000 if args.quick else 500_000
    universe = 10_000
    stream = zipf_stream(n, universe, exponent=1.2, rng=args.seed)

    # 1. Stream the data through a Misra-Gries sketch (2k words of memory).
    sketch = MisraGriesSketch.from_stream(args.k, stream)

    # 2. Release it under (epsilon, delta)-differential privacy.
    mechanism = PrivateMisraGries(epsilon=args.epsilon, delta=args.delta)
    histogram = mechanism.release(sketch, rng=args.seed + 1)

    # 3. Inspect the result.
    truth = ExactCounter.from_stream(stream).counters()
    summary = summarize_errors(histogram, truth)
    bound = mechanism.error_bound_vs_truth(args.k, n, beta=0.05)

    print("Private Misra-Gries quickstart")
    print(f"  stream length          : {n}")
    print(f"  universe size           : {universe}")
    print(f"  sketch size k           : {args.k}")
    print(f"  privacy                 : ({args.epsilon}, {args.delta})-DP")
    print(f"  released elements       : {len(histogram)}")
    print(f"  max error (measured)    : {summary.max_error:.1f}")
    print(f"  max error (paper bound) : {bound:.1f}")
    print()
    rows = [{"element": key, "noisy count": value, "true count": truth.get(key, 0.0)}
            for key, value in histogram.top(10)]
    print(format_table(rows, title="Top released elements"))


if __name__ == "__main__":
    main()
