"""Network aggregation: a live server, four concurrent clients, one release.

The end-to-end deployment loop of Section 7 over real sockets
(:mod:`repro.net`):

1. an :class:`~repro.net.AggregatorServer` listens on a loopback endpoint;
2. four clients sketch their own Zipf traffic (the vectorized batch engine),
   connect **concurrently**, and push their exports as framed wire-v2
   envelopes — the server folds each session through its own
   :class:`~repro.api.framing.StreamingMerger` as the frames arrive;
3. a fifth client sends RELEASE and receives the differentially private
   histogram back as a wire-v2 envelope.

Each client declares a distinct ``ordinal``, so the committed sessions are
combined in a canonical order and the released histogram is **bit-identical**
to ``repro merge --framed`` over one packed file per client with the same
seed — the example verifies that equality against the offline fold.

Run with ``python examples/network_aggregation.py`` (``--quick`` for the
test-suite-sized workload).
"""

import argparse
import asyncio
import io

from repro.analysis import format_table
from repro.api.framing import (
    FrameReader,
    FrameWriter,
    StreamingMerger,
    combine_mergers,
)
from repro.api.wire import encode_counters
from repro.core.merging import PrivateMergedRelease
from repro.net import AggregatorClient, AggregatorServer
from repro.sketches import MisraGriesSketch
from repro.streams import zipf_stream


def sketch_exports(clients, per_client, universe, k, seed):
    """Every client sketches its own stream; returns one export per client."""
    exports = []
    for client in range(clients):
        stream = zipf_stream(per_client, universe, exponent=1.2,
                             rng=seed + client, as_array=True)
        sketch = MisraGriesSketch.from_stream(k, stream)
        exports.append(encode_counters(sketch.counters(), k=k,
                                       stream_length=sketch.stream_length))
    return exports


async def aggregate_over_sockets(exports, k, epsilon, delta, seed):
    """Serve, push concurrently (one session per client), release."""
    server = AggregatorServer(epsilon=epsilon, delta=delta, k=k)
    async with await server.start("127.0.0.1:0"):

        async def push(ordinal, export):
            async with AggregatorClient(server.address, k=k,
                                        ordinal=ordinal) as client:
                await client.push([export])

        await asyncio.gather(*[push(ordinal, export)
                               for ordinal, export in enumerate(exports)])
        async with AggregatorClient(server.address) as client:
            stats = await client.stats()
            histogram = await client.request_release(seed=seed)
    return histogram, stats, server.address


def offline_release(exports, k, epsilon, delta, seed):
    """The `repro merge --framed` fold: one packed file per client."""
    parts = []
    for export in exports:
        buffer = io.BytesIO()
        with FrameWriter(buffer, k=k, frames=1) as writer:
            writer.write_payload(export)
        parts.append(StreamingMerger(k).consume(
            FrameReader(io.BytesIO(buffer.getvalue()))))
    mechanism = PrivateMergedRelease(epsilon=epsilon, delta=delta, k=k)
    return combine_mergers(parts, k).release(mechanism, rng=seed)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="smaller workload")
    parser.add_argument("--clients", type=int, default=4)
    parser.add_argument("--epsilon", type=float, default=1.0)
    parser.add_argument("--delta", type=float, default=1e-6)
    parser.add_argument("--k", type=int, default=256)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    per_client = 5_000 if args.quick else 50_000
    universe = 10_000

    exports = sketch_exports(args.clients, per_client, universe,
                             args.k, args.seed)
    histogram, stats, address = asyncio.run(aggregate_over_sockets(
        exports, args.k, args.epsilon, args.delta, args.seed + 1))
    offline = offline_release(exports, args.k, args.epsilon, args.delta,
                              args.seed + 1)
    identical = list(histogram.as_dict().items()) == list(offline.as_dict().items())
    assert identical, "networked release must match the offline framed fold"

    print("Network aggregation (repro.net over a loopback socket)")
    print(f"  server: {address}; clients={args.clients} pushed concurrently, "
          f"{per_client:,} elements each (k={args.k})")
    print(f"  server saw {stats['frames']} frame(s), "
          f"{stats['stream_length']:,} stream elements, "
          f"{stats['sessions_committed']} committed session(s)")
    print(f"  networked release == offline `merge --framed` fold: {identical} "
          f"({len(histogram)} released keys)")
    print()
    top = sorted(histogram.as_dict().items(), key=lambda kv: -kv[1])[:10]
    rows = [{"element": key, "noisy count": round(value, 1)}
            for key, value in top]
    print(format_table(rows, title=f"top released elements "
                                   f"({histogram.metadata.mechanism})"))


if __name__ == "__main__":
    main()
