"""Distributed aggregation scenario: merging sketches from many servers.

Section 7 of the paper: a dataset is spread over many servers, each computes a
Misra-Gries sketch of its own stream, and an aggregator combines them.  This
example compares the three aggregation regimes implemented in the library —
trusted aggregator with unbounded memory, trusted aggregator with the
Agarwal et al. bounded-memory merge, and an untrusted aggregator that only
ever sees noisy sketches — as the number of servers grows.

Run with ``python examples/distributed_merge.py`` (``--quick`` for CI).
"""

import argparse

from repro.analysis import format_table
from repro.core import MergeStrategy, PrivateMergedRelease
from repro.sketches import ExactCounter, MisraGriesSketch
from repro.streams import split_contiguous, zipf_stream


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true")
    parser.add_argument("--epsilon", type=float, default=1.0)
    parser.add_argument("--delta", type=float, default=1e-6)
    parser.add_argument("--k", type=int, default=64)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    n = 60_000 if args.quick else 600_000
    universe = 2_000
    stream = zipf_stream(n, universe, exponent=1.3, rng=args.seed)
    counter = ExactCounter.from_stream(stream)
    truth = counter.counters()
    top_elements = [element for element, _ in counter.top(20)]
    server_counts = [2, 8, 32] if args.quick else [2, 8, 32, 128]

    rows = []
    for servers in server_counts:
        parts = split_contiguous(stream, servers)
        sketches = [MisraGriesSketch.from_stream(args.k, part) for part in parts]
        for strategy in MergeStrategy:
            release = PrivateMergedRelease(epsilon=args.epsilon, delta=args.delta,
                                           k=args.k, strategy=strategy)
            histogram = release.release(sketches, rng=args.seed + servers)
            top_error = sum(abs(histogram.estimate(x) - truth[x]) for x in top_elements) / len(top_elements)
            rows.append({
                "servers": servers,
                "strategy": strategy.value,
                "released": len(histogram),
                "mean error (top-20)": top_error,
            })

    print(format_table(rows, title=f"Merging {n} elements across servers "
                                   f"(k={args.k}, eps={args.epsilon})"))
    print()
    print("Trusted aggregation keeps the error flat as the number of servers grows;")
    print("with an untrusted aggregator every server pays its own noise and threshold,")
    print("so the error of moderately heavy elements grows with the number of servers.")


if __name__ == "__main__":
    main()
