"""Distributed aggregation scenario: merging sketches from many servers.

Section 7 of the paper: a dataset is spread over many servers, each computes
a Misra-Gries sketch of its own stream, and an aggregator combines them.
This example drives the whole scenario through the unified API:

* each "server" is a :class:`repro.api.Pipeline` that sketches its shard
  (the per-server sketches are built via the parallel fan-out,
  :func:`repro.core.sketch_streams` with ``workers=``) and exports its state
  as a **v2 columnar wire envelope** (:meth:`Pipeline.to_wire`) — exactly
  what it would ship over the network;
* the aggregator adds the decoded envelopes to a
  ``Pipeline(mechanism={"name": "merged", "strategy": ...})`` and releases
  under each of the three aggregation regimes; for the default
  ``trusted_merged`` strategy the integer envelopes stay columnar all the
  way into :func:`~repro.sketches.merge.merge_many_arrays` (no per-key
  Python), while the other strategies reconstruct per-sketch state for
  their Algorithm 3 / Algorithm 2 post-processing.

Run with ``python examples/distributed_merge.py`` (``--quick`` for CI,
``--workers N`` to fan sketching out over N processes).
"""

import argparse

from repro.analysis import format_table
from repro.api import Pipeline, decode
from repro.core import MergeStrategy, sketch_streams
from repro.sketches import ExactCounter
from repro.streams import split_contiguous, zipf_stream


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true")
    parser.add_argument("--epsilon", type=float, default=1.0)
    parser.add_argument("--delta", type=float, default=1e-6)
    parser.add_argument("--k", type=int, default=64)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--workers", type=int, default=2,
                        help="processes for the sketching fan-out (1 = sequential)")
    args = parser.parse_args()

    n = 60_000 if args.quick else 600_000
    universe = 2_000
    stream = zipf_stream(n, universe, exponent=1.3, rng=args.seed, as_array=True)
    counter = ExactCounter.from_stream(stream.tolist())
    truth = counter.counters()
    top_elements = [element for element, _ in counter.top(20)]
    server_counts = [2, 8, 32] if args.quick else [2, 8, 32, 128]

    rows = []
    for servers in server_counts:
        parts = split_contiguous(stream, servers)
        sketches = sketch_streams(parts, args.k, workers=args.workers)
        # Each server ships its sketch as a columnar v2 envelope.
        envelopes = [decode(Pipeline.from_sketch(sketch).to_wire()) for sketch in sketches]
        for strategy in MergeStrategy:
            aggregator = Pipeline(
                mechanism={"name": "merged", "strategy": strategy.value},
                k=args.k, epsilon=args.epsilon, delta=args.delta)
            for envelope in envelopes:
                aggregator.add_sketch(envelope)
            histogram = aggregator.release(rng=args.seed + servers)
            top_error = sum(abs(histogram.estimate(x) - truth[x])
                            for x in top_elements) / len(top_elements)
            rows.append({
                "servers": servers,
                "strategy": strategy.value,
                "released": len(histogram),
                "mean error (top-20)": top_error,
            })

    print(format_table(rows, title=f"Merging {n} elements across servers "
                                   f"(k={args.k}, eps={args.epsilon})"))
    print()
    print("Trusted aggregation keeps the error flat as the number of servers grows;")
    print("with an untrusted aggregator every server pays its own noise and threshold,")
    print("so the error of moderately heavy elements grows with the number of streams.")


if __name__ == "__main__":
    main()
