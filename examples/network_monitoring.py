"""Network monitoring scenario: private heavy hitters over a flow stream.

The paper's motivating application is monitoring high-volume streams (network
traffic, financial transactions, ...) where computing the exact histogram is
infeasible but the operator still wants the heavy hitters — without exposing
any single connection.  This example:

1. generates the synthetic ``network_flows`` dataset (Zipf-distributed
   destination identifiers over a 50k-address universe);
2. extracts phi-heavy hitters with the private Misra-Gries pipeline;
3. compares precision/recall against the ground truth and against the
   Chan et al. and (corrected) Böhler-Kerschbaum baselines.

Run with ``python examples/network_monitoring.py`` (``--quick`` for CI).
"""

import argparse

from repro import PrivateMisraGries, true_heavy_hitters
from repro.analysis import format_table, heavy_hitter_scores
from repro.baselines import BohlerKerschbaumMG, ChanPrivateMisraGries
from repro.core.heavy_hitters import heavy_hitters_from_histogram
from repro.streams import load_dataset


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true")
    parser.add_argument("--epsilon", type=float, default=1.0)
    parser.add_argument("--delta", type=float, default=1e-6)
    parser.add_argument("--k", type=int, default=256)
    parser.add_argument("--phi", type=float, default=0.005,
                        help="heavy-hitter threshold as a fraction of the stream")
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    n = 50_000 if args.quick else 1_000_000
    dataset = load_dataset("network_flows", n=n, rng=args.seed)
    stream = dataset.stream
    truth = true_heavy_hitters(stream, args.phi)
    print(f"Dataset '{dataset.name}': {dataset.length} flows, "
          f"{len(truth)} true {args.phi:.3%}-heavy hitters")

    rows = []

    def evaluate(name, histogram, slack):
        predicted = heavy_hitters_from_histogram(histogram, args.phi,
                                                 stream_length=len(stream), slack=slack)
        scores = heavy_hitter_scores(predicted, truth)
        rows.append({
            "mechanism": name,
            "released": len(histogram),
            "reported HH": len(predicted),
            "precision": scores["precision"],
            "recall": scores["recall"],
            "f1": scores["f1"],
        })

    pmg = PrivateMisraGries(epsilon=args.epsilon, delta=args.delta)
    pmg_histogram = pmg.run(stream, k=args.k, rng=args.seed + 1)
    evaluate("PMG (this paper)", pmg_histogram,
             slack=pmg.error_bound_vs_truth(args.k, len(stream)))

    chan = ChanPrivateMisraGries(epsilon=args.epsilon, k=args.k, delta=args.delta)
    chan_histogram = chan.run(stream, rng=args.seed + 2)
    evaluate("Chan et al. (noise k/eps)", chan_histogram,
             slack=len(stream) / (args.k + 1) + 2 * chan.noise_scale + chan.threshold)

    bk = BohlerKerschbaumMG(epsilon=args.epsilon, delta=args.delta, k=args.k)
    bk_histogram = bk.run(stream, rng=args.seed + 3)
    evaluate("Boehler-Kerschbaum (corrected)", bk_histogram,
             slack=len(stream) / (args.k + 1) + 2 * bk.noise_scale + bk.threshold)

    print()
    print(format_table(rows, title=f"phi = {args.phi}, k = {args.k}, "
                                   f"epsilon = {args.epsilon}, delta = {args.delta}"))
    print()
    print("PMG reports heavy hitters with noise independent of the sketch size;")
    print("the baselines' k/eps noise floods the threshold and costs recall/precision.")


if __name__ == "__main__":
    main()
