"""Continual monitoring scenario: publish updated heavy hitters over time.

A monitoring dashboard wants fresh heavy-hitter counts after every block of
traffic while a single (epsilon, delta) budget covers the whole timeline.
This example runs the two composition strategies from the library — one
release per block (linear noise growth in time) and the binary-tree schedule
(logarithmic) — over the same stream and prints how the running estimate of a
few tracked elements evolves.

Run with ``python examples/continual_monitoring.py`` (``--quick`` for CI).
"""

import argparse

from repro import ContinualHeavyHitters
from repro.analysis import format_table
from repro.sketches import ExactCounter
from repro.streams import zipf_stream


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true")
    parser.add_argument("--epsilon", type=float, default=1.0)
    parser.add_argument("--delta", type=float, default=1e-6)
    parser.add_argument("--k", type=int, default=64)
    parser.add_argument("--blocks", type=int, default=32)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    n = 16_000 if args.quick else 320_000
    universe = 1_000
    stream = zipf_stream(n, universe, exponent=1.3, rng=args.seed)
    block_size = n // args.blocks
    truth = ExactCounter.from_stream(stream)
    tracked = [element for element, _ in truth.top(3)] + [truth.top(15)[-1][0]]

    monitors = {
        "blocks": ContinualHeavyHitters(k=args.k, epsilon=args.epsilon, delta=args.delta,
                                        block_size=block_size, strategy="blocks",
                                        max_blocks=args.blocks, rng=args.seed + 1),
        "binary_tree": ContinualHeavyHitters(k=args.k, epsilon=args.epsilon, delta=args.delta,
                                             block_size=block_size, strategy="binary_tree",
                                             max_blocks=args.blocks, rng=args.seed + 2),
    }
    checkpoints = {args.blocks // 4, args.blocks // 2, args.blocks}
    rows = []
    for name, monitor in monitors.items():
        seen = ExactCounter()
        for index, element in enumerate(stream):
            monitor.process(element)
            seen.update(element)
            block = (index + 1) // block_size
            if (index + 1) % block_size == 0 and block in checkpoints:
                for element_id in tracked:
                    rows.append({
                        "strategy": name,
                        "after block": block,
                        "element": element_id,
                        "true count so far": seen.estimate(element_id),
                        "continual estimate": monitor.estimate(element_id),
                        "releases summed": monitor.releases_per_query(),
                    })

    print(format_table(rows, title=(f"Continual monitoring of {n} elements in {args.blocks} "
                                    f"blocks (k={args.k}, eps={args.epsilon})")))
    print()
    print("Both strategies spend the same total budget.  The per-block strategy sums one")
    print("noisy release per block, so small elements drift as time passes; the binary")
    print("tree sums only O(log T) releases, keeping the running estimates tighter.")


if __name__ == "__main__":
    main()
