"""Streaming aggregation: framed sketch exports, merged one frame at a time.

The deployment story of Section 7: ``m`` untrusted clients each sketch their
own traffic and export the sketch to an aggregator, which merges everything
and publishes one differentially private histogram.  This example runs the
full transport loop:

1. every client sketches its stream (the vectorized batch engine) and ships
   ``counters()`` as one frame of a length-prefix framed stream
   (:class:`repro.api.framing.FrameWriter`, binary columnar frames);
2. the aggregator folds the stream **frame by frame** with
   :class:`repro.api.framing.StreamingMerger` — live memory is one frame
   plus the ``<= k``-counter accumulator, never the whole file;
3. the folded aggregate feeds
   :meth:`repro.core.merging.PrivateMergedRelease.release_arrays` (the
   trusted-merged GSHM release).

The same merged summary is also computed with the buffered
``merge_many_arrays`` fold to show the streamed result is bit-identical, and
a sharded ``Pipeline.fit(stream, workers=2)`` demonstrates the process-level
fan-out on a single machine.

Run with ``python examples/streaming_aggregation.py`` (add ``--quick`` for a
smaller workload, as used by the test suite).
"""

import argparse
import io

import numpy as np

from repro.analysis import format_table
from repro.api import Pipeline
from repro.api.framing import FrameReader, FrameWriter, StreamingMerger
from repro.core.merging import PrivateMergedRelease
from repro.sketches import MisraGriesSketch
from repro.sketches.merge import merge_many_arrays
from repro.streams import zipf_stream


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="smaller workload")
    parser.add_argument("--clients", type=int, default=None)
    parser.add_argument("--epsilon", type=float, default=1.0)
    parser.add_argument("--delta", type=float, default=1e-6)
    parser.add_argument("--k", type=int, default=256)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    clients = args.clients or (16 if args.quick else 128)
    per_client = 5_000 if args.quick else 50_000
    universe = 10_000

    # 1. Every client sketches its own stream and appends one frame.
    transport = io.BytesIO()  # in production: a file, socket or pipe
    exports = []
    with FrameWriter(transport, k=args.k, frames=clients) as writer:
        for client in range(clients):
            stream = zipf_stream(per_client, universe, exponent=1.2,
                                 rng=args.seed + client, as_array=True)
            sketch = MisraGriesSketch.from_stream(args.k, stream)
            writer.write_counters(sketch.counters(), k=args.k,
                                  stream_length=sketch.stream_length)
            exports.append(sketch.counters())
    framed = transport.getvalue()

    # 2. The aggregator folds the framed stream one sketch at a time.
    merger = StreamingMerger(args.k).consume(FrameReader(io.BytesIO(framed)))

    # 3. ... and releases the aggregate privately.
    mechanism = PrivateMergedRelease(epsilon=args.epsilon, delta=args.delta,
                                     k=args.k)
    histogram = merger.release(mechanism, rng=args.seed + 1)

    # Cross-check: the buffered fold produces the identical summary.
    keys_list = [np.fromiter(c.keys(), dtype=np.int64, count=len(c))
                 for c in exports]
    values_list = [np.fromiter(c.values(), dtype=np.float64, count=len(c))
                   for c in exports]
    buffered = merge_many_arrays(keys_list, values_list, args.k)
    assert merger.merged() == buffered, "streamed fold must match buffered fold"

    # Bonus: shard one big stream over two worker processes (merge_tree fan-in).
    big = zipf_stream(4 * per_client, universe, exponent=1.2,
                      rng=args.seed + 999, as_array=True)
    sharded = Pipeline(sketch="misra_gries", mechanism="pmg", k=args.k,
                       epsilon=args.epsilon, delta=args.delta)
    sharded.fit(big, workers=2)

    print("Streaming aggregation (framed wire transport)")
    print(f"  clients={clients}, per-client stream={per_client}, k={args.k}")
    print(f"  framed transport: {len(framed):,} bytes, "
          f"{merger.frames} frames, {merger.total_stream_length:,} elements")
    print(f"  streamed fold == buffered fold: True "
          f"({len(merger.merged())} merged counters)")
    print(f"  sharded Pipeline.fit(workers=2): {sharded.stream_length:,} "
          f"elements -> {len(sharded.counters())} counters")
    print()
    top = sorted(histogram.as_dict().items(), key=lambda kv: -kv[1])[:10]
    rows = [{"element": key, "noisy count": round(value, 1)} for key, value in top]
    print(format_table(rows, title=f"top released elements "
                                   f"({histogram.metadata.mechanism})"))


if __name__ == "__main__":
    main()
