"""Coercion helpers for the vectorized sketch update path.

The batch update engine (:meth:`repro.sketches.MisraGriesSketch.update_batch`)
only accepts one-dimensional integer NumPy arrays — for those inputs it is
*bit-identical* to replaying the stream element by element.  This module
centralizes the "is this stream safely batchable?" decision so every consumer
(``FrequencySketch.update_all``, the continual monitor, the user-level and
merged-release pipelines) applies the same rule.

Python ``bool`` values hash equal to ``0``/``1`` as dict keys but carry a
different eviction-order rank, so streams are only coerced when NumPy infers
a genuine integer dtype (bools produce a ``'b'``-kind array and fall back to
the per-element path).
"""

from __future__ import annotations

from typing import Iterable, Optional

import numpy as np


def as_int_array(stream: Iterable) -> Optional[np.ndarray]:
    """Return ``stream`` as a 1-D integer ndarray, or ``None`` if unsafe.

    Accepts integer ndarrays as-is and converts lists/tuples of ints (the
    dtype check rejects mixed int/str/float payloads, which NumPy would
    otherwise silently coerce to strings or objects; the explicit bool scan
    rejects payloads like ``[2, True]``, which NumPy coerces to an int array
    even though ``True`` carries a different eviction-order rank than ``1``).
    Any stream rejected here must be processed element by element.
    """
    if isinstance(stream, np.ndarray):
        if stream.ndim == 1 and stream.dtype.kind in "iu":
            return stream
        return None
    if isinstance(stream, (list, tuple)) and stream:
        first = stream[0]
        if isinstance(first, (int, np.integer)) and not isinstance(first, bool):
            try:
                array = np.asarray(stream)
            except (TypeError, ValueError, OverflowError):
                return None
            if (array.ndim == 1 and array.dtype.kind in "iu"
                    and not any(type(element) in (bool, np.bool_) for element in stream)):
                return array
    return None
