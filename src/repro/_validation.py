"""Shared argument-validation helpers.

These helpers keep validation logic consistent across the library and raise
exceptions from :mod:`repro.exceptions` with informative messages.  They are
internal (underscore module) and not part of the public API.
"""

from __future__ import annotations

import math
from typing import Any

from .exceptions import ParameterError, PrivacyParameterError


def check_positive_int(value: Any, name: str) -> int:
    """Return ``value`` as an int, raising ``ParameterError`` unless it is a
    positive integer."""
    if isinstance(value, bool) or not isinstance(value, (int,)):
        raise ParameterError(f"{name} must be a positive integer, got {value!r}")
    if value <= 0:
        raise ParameterError(f"{name} must be positive, got {value}")
    return int(value)


def check_non_negative_int(value: Any, name: str) -> int:
    """Return ``value`` as an int, raising ``ParameterError`` unless it is a
    non-negative integer."""
    if isinstance(value, bool) or not isinstance(value, (int,)):
        raise ParameterError(f"{name} must be a non-negative integer, got {value!r}")
    if value < 0:
        raise ParameterError(f"{name} must be non-negative, got {value}")
    return int(value)


def check_positive_float(value: Any, name: str) -> float:
    """Return ``value`` as a float, raising ``ParameterError`` unless it is a
    finite positive number."""
    try:
        result = float(value)
    except (TypeError, ValueError) as exc:
        raise ParameterError(f"{name} must be a number, got {value!r}") from exc
    if not math.isfinite(result) or result <= 0:
        raise ParameterError(f"{name} must be a finite positive number, got {value!r}")
    return result


def check_epsilon(epsilon: Any) -> float:
    """Validate a differential-privacy epsilon (finite, strictly positive)."""
    try:
        eps = float(epsilon)
    except (TypeError, ValueError) as exc:
        raise PrivacyParameterError(f"epsilon must be a number, got {epsilon!r}") from exc
    if not math.isfinite(eps) or eps <= 0:
        raise PrivacyParameterError(f"epsilon must be finite and positive, got {epsilon!r}")
    return eps


def check_delta(delta: Any, allow_zero: bool = False) -> float:
    """Validate a differential-privacy delta (in (0, 1), or [0, 1) if allowed)."""
    try:
        d = float(delta)
    except (TypeError, ValueError) as exc:
        raise PrivacyParameterError(f"delta must be a number, got {delta!r}") from exc
    if not math.isfinite(d):
        raise PrivacyParameterError(f"delta must be finite, got {delta!r}")
    lower_ok = d >= 0 if allow_zero else d > 0
    if not lower_ok or d >= 1:
        bound = "[0, 1)" if allow_zero else "(0, 1)"
        raise PrivacyParameterError(f"delta must be in {bound}, got {delta!r}")
    return d


def check_probability(value: Any, name: str) -> float:
    """Validate a probability in the open interval (0, 1)."""
    try:
        p = float(value)
    except (TypeError, ValueError) as exc:
        raise ParameterError(f"{name} must be a number, got {value!r}") from exc
    if not (0 < p < 1):
        raise ParameterError(f"{name} must be in (0, 1), got {value!r}")
    return p
