"""The aggregation control protocol: framed control verbs over a socket.

The transport is the PR-4 framed container (:mod:`repro.api.framing`) spoken
symmetrically in both directions of a TCP or Unix-domain connection.  Each
direction opens with the 5-byte stream prefix (magic + container version)
and a ``frame_header`` JSON frame, exactly like a packed file; after that,
frames are either wire-v2 payload envelopes (JSON ``{`` or binary columnar
``0x01`` bodies) or *control frames* — tag ``0x02`` followed by a UTF-8 JSON
object carrying a string ``verb``:

========  =========  =====================================================
verb      direction  meaning
========  =========  =====================================================
hello     c -> s     open a session; fields: ``k`` (sketch size, optional
                     if the server already knows its k), ``ordinal``
                     (optional int: this client's position in the canonical
                     release order — and, when the server runs a write-ahead
                     log, the session's durable identity: re-HELLOing with
                     the same ordinal resumes the spooled session), ``client``
                     (optional display name), ``role`` (optional;
                     ``"relay"`` marks each pushed frame as one downstream
                     origin session's summary, folded into its own release
                     part — only accepted by servers started with
                     ``accept_relays``, else rejected with
                     ``relay_not_accepted``; a WAL resume that disagrees
                     with the spooled role is rejected with
                     ``role_mismatch``), and ``token`` (shared session
                     secret; mandatory for every role — client and relay
                     alike — when the server runs ``--auth-token``, checked
                     in constant time before any server state is touched;
                     missing/wrong tokens are rejected with ``auth_failed``)
push      c -> s     announce ``frames`` payload frames, which follow
                     immediately; the server folds each into the session's
                     :class:`~repro.api.framing.StreamingMerger` on arrival
release   c -> s     trigger the private release; fields: ``seed``
                     (optional int rng seed).  Answered with one payload
                     frame: the released histogram as a wire-v2
                     ``private_histogram`` envelope
stats     c -> s     ask for aggregate counters; answered with a ``stats``
                     control frame
bye       c -> s     commit the session and close (a clean EOF after HELLO
                     commits too; ``bye`` additionally gets an ``ok`` ack
                     so the client *knows* its frames were committed)
ok        s -> c     positive acknowledgement; ``re`` names the acked verb.
                     With a write-ahead log the ``re: hello`` ack also
                     carries ``committed`` (frames already durable for this
                     ordinal — the client skips that many on resume instead
                     of double-pushing) and ``complete`` (true when the
                     session already ended cleanly; further pushes are
                     rejected), and a ``re: push`` ack is sent only after
                     the burst is fsync-durable
error     s -> c     the session is rejected; ``code`` is machine-readable
                     (``k_mismatch``, ``bad_verb``, ``nothing_to_release``,
                     ``timeout``, ``ordinal_active``, ``session_complete``,
                     ``relay_not_accepted``, ``role_mismatch``,
                     ``auth_failed``, ``quota_exceeded``,
                     ``budget_exhausted`` — the privacy accountant refuses a
                     RELEASE whose composed spend would exceed the
                     configured budget —
                     ``pure_dp_release_unsupported``, ...),
                     ``message`` human-readable.  The server closes
                     the connection but keeps serving other sessions
stats     s -> c     the ``stats`` reply
========  =========  =====================================================

The session state machine lives in :mod:`repro.net.session`; this module
provides address parsing and :class:`FrameChannel`, the asyncio send/receive
half shared by server and client.  All reads are bounded (at most
``chunk_size`` bytes per ``read()`` call, frame lengths capped by
``MAX_FRAME_BYTES``), so a malicious peer cannot make either side allocate
unbounded memory, and slow consumers exert normal TCP backpressure.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Tuple, Union

from ..api import framing
from ..api.framing import FrameHeader, MAGIC
from ..api.wire import WirePayload
from ..exceptions import FramingError, ParameterError

#: Control verbs (client -> server).
HELLO = "hello"
PUSH = "push"
RELEASE = "release"
STATS = "stats"
BYE = "bye"

#: Control verbs (server -> client).
OK = "ok"
ERROR = "error"

#: Default per-read ceiling of :class:`FrameChannel` (bytes).
DEFAULT_CHUNK_SIZE = 1 << 16


@dataclass(frozen=True)
class Address:
    """A parsed aggregator endpoint: TCP host/port or a Unix socket path."""

    kind: str  # "tcp" | "unix"
    host: Optional[str] = None
    port: Optional[int] = None
    path: Optional[str] = None

    def __str__(self) -> str:
        if self.kind == "unix":
            return f"unix:{self.path}"
        return f"{self.host}:{self.port}"


def parse_address(address: Union[str, Address]) -> Address:
    """Parse ``"host:port"``, ``":port"`` or ``"unix:/path"`` endpoints."""
    if isinstance(address, Address):
        return address
    if not isinstance(address, str) or not address:
        raise ParameterError(f"expected 'host:port' or 'unix:/path', got {address!r}")
    if address.startswith("unix:"):
        path = address[len("unix:"):]
        if not path:
            raise ParameterError("unix socket address needs a path: unix:/some/path")
        return Address(kind="unix", path=path)
    host, separator, port = address.rpartition(":")
    if not separator or not port.isdigit():
        raise ParameterError(
            f"expected 'host:port' or 'unix:/path', got {address!r}")
    return Address(kind="tcp", host=host or "127.0.0.1", port=int(port))


async def open_channel(address: Union[str, Address],
                       chunk_size: int = DEFAULT_CHUNK_SIZE) -> "FrameChannel":
    """Connect to an aggregator endpoint and wrap the streams in a channel."""
    target = parse_address(address)
    if target.kind == "unix":
        reader, writer = await asyncio.open_unix_connection(target.path)
    else:
        reader, writer = await asyncio.open_connection(target.host, target.port)
    return FrameChannel(reader, writer, chunk_size=chunk_size)


class FrameChannel:
    """One direction-pair of the framed protocol over asyncio streams.

    Sending never buffers more than one frame before ``drain()`` (payload
    frames are encoded once, written, and awaited), and receiving issues
    only bounded ``read()`` calls — at most ``chunk_size`` bytes each — so
    both sides stay within one frame plus ``O(chunk)`` of live memory per
    connection regardless of what the peer sends.
    """

    def __init__(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter,
                 chunk_size: int = DEFAULT_CHUNK_SIZE) -> None:
        self._reader = reader
        self._writer = writer
        self._chunk_size = chunk_size

    # ------------------------------------------------------------------
    # Sending
    # ------------------------------------------------------------------

    async def send_prefix(self, header: FrameHeader) -> None:
        """Open this direction: stream prefix plus the header frame."""
        self._writer.write(framing.stream_prefix()
                           + framing.encode_json_frame(header.as_dict()))
        await self._writer.drain()

    async def send_control(self, verb: str, **fields: object) -> None:
        """Send one control frame (tag 0x02)."""
        message: Dict[str, object] = {"verb": verb}
        message.update(fields)
        self._writer.write(framing.encode_control_frame(message))
        await self._writer.drain()

    async def send_payload(self, payload: Union[Mapping, WirePayload]) -> None:
        """Send one wire-v2 envelope as a payload frame (binary when integer)."""
        self._writer.write(framing.encode_payload_frame(payload))
        await self._writer.drain()

    async def send_raw_frame(self, body: bytes) -> None:
        """Forward an already-encoded frame body verbatim (pass-through push)."""
        self._writer.write(framing.encode_frame(body))
        await self._writer.drain()

    async def send_bytes(self, data: bytes) -> None:
        """Write pre-framed bytes (length prefix included) and drain."""
        self._writer.write(data)
        await self._writer.drain()

    # ------------------------------------------------------------------
    # Receiving
    # ------------------------------------------------------------------

    async def _read_exact(self, count: int, what: str) -> bytes:
        chunks = []
        remaining = count
        while remaining:
            chunk = await self._reader.read(min(remaining, self._chunk_size))
            if not chunk:
                raise FramingError(
                    f"truncated {what}: expected {count} bytes, "
                    f"got {count - remaining} (peer closed mid-frame?)")
            chunks.append(chunk)
            remaining -= len(chunk)
        return chunks[0] if len(chunks) == 1 else b"".join(chunks)

    async def read_prefix(self) -> FrameHeader:
        """Read the peer's stream prefix and header frame."""
        framing.check_stream_prefix(
            await self._read_exact(len(MAGIC) + 1, "magic header"))
        body = await self._read_frame_bytes("header frame")
        return framing.parse_header_body(body)

    async def _read_frame_bytes(self, what: str) -> Optional[bytes]:
        """The next frame body, or ``None`` at a clean end of stream."""
        prefix = await self._reader.read(framing._LENGTH.size)
        if not prefix:
            return None
        while len(prefix) < framing._LENGTH.size:
            more = await self._reader.read(framing._LENGTH.size - len(prefix))
            if not more:
                raise FramingError(
                    f"truncated length prefix before {what}: got {len(prefix)} "
                    "bytes (peer closed mid-frame?)")
            prefix += more
        (length,) = framing._LENGTH.unpack(prefix)
        if length > framing.MAX_FRAME_BYTES:
            raise FramingError(
                f"frame length {length} exceeds "
                f"MAX_FRAME_BYTES={framing.MAX_FRAME_BYTES}")
        return await self._read_exact(length, what)

    async def next_event(self, include_body: bool = False) -> Tuple:
        """The next frame as ``(kind, value)``.

        ``("control", message_dict)`` for control frames, ``("payload",
        WirePayload)`` for envelope frames, ``("eof", None)`` at a clean end
        of stream.  Malformed frames raise :class:`FramingError`.

        ``include_body=True`` appends the verbatim frame body (``None`` at
        EOF) as a third element — the write-ahead log spools those exact
        bytes, tag preserved, before the payload is folded.
        """
        body = await self._read_frame_bytes("frame")
        if body is None:
            event: Tuple = ("eof", None)
        elif body[:1] == bytes([framing.CONTROL_FRAME_TAG]):
            event = ("control", framing.decode_control_body(body))
        else:
            event = ("payload", framing.decode_payload_body(body))
        return event + (body,) if include_body else event

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    async def drain_incoming(self, limit_bytes: int = 1 << 20) -> None:
        """Discard inbound bytes until EOF (or a byte cap).

        Closing a socket with unread inbound data sends a TCP RST, which can
        destroy an in-flight reply (e.g. the server's ERROR frame) before
        the peer reads it.  The rejecting side calls this after its last
        frame so the close is graceful.
        """
        consumed = 0
        while consumed < limit_bytes:
            chunk = await self._reader.read(self._chunk_size)
            if not chunk:
                return
            consumed += len(chunk)

    @property
    def peername(self) -> str:
        info = self._writer.get_extra_info("peername")
        if info is None:
            info = self._writer.get_extra_info("sockname", "?")
        return str(info)

    def write_eof(self) -> None:
        """Half-close: signal the peer this direction is done."""
        if self._writer.can_write_eof():
            self._writer.write_eof()

    async def close(self) -> None:
        """Close the underlying transport (both directions)."""
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except (ConnectionError, OSError):
            pass
