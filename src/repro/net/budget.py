"""Server-side privacy budget accounting for the aggregation service.

The paper's deployment story (m untrusted clients, one aggregator) only
holds if the aggregator enforces a finite privacy budget *across* releases:
each RELEASE spends the configured per-release ``(epsilon, delta)``, and the
total guarantee degrades under composition (Dwork & Roth).  Without an
accountant a client issuing N releases silently consumes ``N * epsilon``
while STATS still shows the per-release parameters — the free-release bug.

:class:`BudgetAccountant` closes it.  It is deliberately a *gate, not a
mechanism*: charging happens before the release is computed and never
touches the release RNG, so an under-budget release is bit-identical to the
one an unaccounted server would produce (property-tested).

Charge protocol (inside :meth:`repro.net.server.AggregatorServer.
perform_release`)::

    spend = accountant.charge()     # compose, check budget, PERSIST count
    histogram = combined.release()  # compute only after the charge is durable
    reply OK                        # a crash here leaves the charge spent

The charge is persisted *first*, through the same fsync-backed checkpoint
store the WAL commits through, under the reserved ledger row
:data:`repro.net.store.BUDGET_SESSION_ID`.  A ``kill -9`` anywhere in that
window therefore costs at most one unconsumed charge — conservative — and
never a reset or double-charged budget: restart recovery reads the persisted
release count back and WAL replay never re-runs releases.

Composition follows :mod:`repro.dp.accounting` exactly: ``basic`` charges
``compose_basic([per_release] * n)``, ``advanced`` charges
``compose_adaptive(eps, delta, n, delta_slack)``.  A composition that turns
vacuous (``delta >= 1``, :class:`~repro.exceptions.VacuousGuaranteeError`)
is treated as exhausted — a vacuous guarantee is no guarantee, so the
release that would cross the line is refused like an over-budget one.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from .._validation import check_delta
from ..dp.accounting import PrivacyParams, compose_adaptive, compose_basic
from ..exceptions import (ParameterError, RemoteError, VacuousGuaranteeError)
from ..obs.metrics import NULL_METRICS
from .store import BUDGET_SESSION_ID, CheckpointStore, SessionRecord

__all__ = ["BudgetAccountant", "BudgetSpend", "COMPOSITION_MODES"]

#: The composition rules the accountant can charge under.
COMPOSITION_MODES = ("basic", "advanced")

#: Relative + absolute tolerance for the budget comparison, so a budget of
#: exactly ``N * epsilon`` admits N releases despite float summation error
#: (0.1 + 0.1 + 0.1 > 0.3 in binary floating point).
_REL_TOL = 1e-9
_ABS_TOL = 1e-12


def _fits(spent: float, budget: float) -> bool:
    return spent <= budget * (1.0 + _REL_TOL) + _ABS_TOL


@dataclass(frozen=True)
class BudgetSpend:
    """The composed privacy cost of ``releases`` charged releases.

    ``vacuous`` marks a spend whose composed guarantee crossed ``delta >= 1``
    (or overflowed the float range): no valid ``(epsilon, delta)`` pair
    describes it, and the accountant refuses to reach it.
    """

    releases: int
    epsilon: float
    delta: float
    vacuous: bool = False


class BudgetAccountant:
    """Tracks cumulative privacy spend across RELEASE frames.

    ``budget=None`` runs the accountant in *metering* mode: every release is
    still counted (and persisted when a ``store`` is given) so STATS reports
    the honest cumulative spend, but nothing is refused.  With a budget, the
    first release whose composed spend would exceed it — or turn vacuous —
    raises :class:`~repro.exceptions.RemoteError` with code
    ``budget_exhausted``, which the session layer reports to the client as a
    machine-readable ERROR frame.

    ``store`` is the WAL's checkpoint store; the charged release count lives
    in the reserved :data:`~repro.net.store.BUDGET_SESSION_ID` row
    (``committed_frames`` = releases charged, ``client`` = composition mode)
    and is read back eagerly at construction, so a restarted server resumes
    from the persisted spend.
    """

    def __init__(self, per_release: PrivacyParams, *,
                 budget: Optional[PrivacyParams] = None,
                 composition: str = "basic",
                 delta_slack: Optional[float] = None,
                 store: Optional[CheckpointStore] = None,
                 metrics=None) -> None:
        if not isinstance(per_release, PrivacyParams):
            raise ParameterError(
                f"per_release must be PrivacyParams, got {per_release!r}")
        if budget is not None and not isinstance(budget, PrivacyParams):
            raise ParameterError(
                f"budget must be PrivacyParams or None, got {budget!r}")
        if composition not in COMPOSITION_MODES:
            raise ParameterError(
                f"composition must be one of {COMPOSITION_MODES}, "
                f"got {composition!r}")
        if composition == "advanced":
            if delta_slack is None:
                if budget is None or budget.delta <= 0.0:
                    raise ParameterError(
                        "advanced composition needs a delta' slack: pass "
                        "delta_slack explicitly or a budget with delta > 0 "
                        "(the default slack is half the budget delta)")
                delta_slack = budget.delta / 2.0
            check_delta(delta_slack)
        self.per_release = per_release
        self.budget = budget
        self.composition = composition
        self.delta_slack = delta_slack
        self._store = store
        self.metrics = metrics if metrics is not None else NULL_METRICS
        self._releases = self._load_persisted()

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------

    def _load_persisted(self) -> int:
        if self._store is None:
            return 0
        record = self._store.get(BUDGET_SESSION_ID)
        if record is None:
            return 0
        return max(0, record.committed_frames)

    def _persist(self) -> None:
        if self._store is None:
            return
        self._store.put(SessionRecord(
            session_id=BUDGET_SESSION_ID, ordinal=None,
            client=self.composition, k=None, spool="",
            committed_frames=self._releases))

    # ------------------------------------------------------------------
    # Composition
    # ------------------------------------------------------------------

    def spend_after(self, releases: int) -> BudgetSpend:
        """The composed spend after ``releases`` charged releases."""
        if releases <= 0:
            return BudgetSpend(releases=0, epsilon=0.0, delta=0.0)
        try:
            if self.composition == "basic":
                composed = compose_basic([self.per_release] * releases)
            else:
                composed = compose_adaptive(
                    self.per_release.epsilon, self.per_release.delta,
                    releases, self.delta_slack)
        except VacuousGuaranteeError as error:
            return BudgetSpend(releases=releases, epsilon=error.epsilon,
                               delta=min(error.delta, 1.0), vacuous=True)
        return BudgetSpend(releases=releases, epsilon=composed.epsilon,
                           delta=composed.delta)

    @property
    def releases_charged(self) -> int:
        return self._releases

    @property
    def spent(self) -> BudgetSpend:
        """The composed spend of everything charged so far."""
        return self.spend_after(self._releases)

    @property
    def remaining(self) -> Optional[PrivacyParams]:
        """Budget minus spend (``None`` when no budget is configured)."""
        if self.budget is None:
            return None
        spend = self.spent
        if spend.vacuous:
            return None
        eps_left = max(0.0, self.budget.epsilon - spend.epsilon)
        delta_left = max(0.0, self.budget.delta - spend.delta)
        if eps_left <= 0.0:
            return None
        return PrivacyParams(epsilon=eps_left, delta=delta_left)

    @property
    def exhausted(self) -> bool:
        """True when the *next* release would be refused.

        Without a budget this can still turn True: a composition that goes
        vacuous (delta >= 1) is refused even in metering mode, because no
        guarantee at all is worse than a refused release.
        """
        return not self._admits(self.spend_after(self._releases + 1))

    def _admits(self, spend: BudgetSpend) -> bool:
        if spend.vacuous:
            return False
        if self.budget is None:
            return True
        return (_fits(spend.epsilon, self.budget.epsilon)
                and _fits(spend.delta, self.budget.delta))

    # ------------------------------------------------------------------
    # Charging
    # ------------------------------------------------------------------

    def charge(self) -> BudgetSpend:
        """Charge one release; persist the new count before returning.

        Raises :class:`~repro.exceptions.RemoteError` with code
        ``budget_exhausted`` (leaving the persisted count untouched) when
        the charged spend would exceed the budget or turn vacuous.
        """
        spend = self.spend_after(self._releases + 1)
        if not self._admits(spend):
            if spend.vacuous:
                detail = (f"release {spend.releases} makes the composed "
                          f"guarantee vacuous (delta >= 1)")
            else:
                detail = (f"release {spend.releases} would spend "
                          f"epsilon={spend.epsilon:.6g}, "
                          f"delta={spend.delta:.6g} against budget "
                          f"epsilon={self.budget.epsilon:.6g}, "
                          f"delta={self.budget.delta:.6g}")
            raise RemoteError(
                f"privacy budget exhausted after "
                f"{self._releases} release(s): {detail}",
                code="budget_exhausted")
        self._releases += 1
        persist_start = self.metrics.clock()
        self._persist()
        self.metrics.observe("budget.persist_seconds",
                             self.metrics.clock() - persist_start)
        self.metrics.inc("budget.releases_total")
        if math.isfinite(spend.epsilon):
            self.metrics.set_gauge("budget.epsilon_spent", spend.epsilon)
        if math.isfinite(spend.delta):
            self.metrics.set_gauge("budget.delta_spent", spend.delta)
        return spend

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------

    def as_stats(self) -> dict:
        """The STATS ``privacy`` stanza (JSON-safe: inf maps to None)."""
        def _finite(value: float) -> Optional[float]:
            return value if math.isfinite(value) else None

        spend = self.spent
        stanza = {
            "per_release": {"epsilon": self.per_release.epsilon,
                            "delta": self.per_release.delta},
            "composition": self.composition,
            "releases_charged": self._releases,
            "spent": {"epsilon": _finite(spend.epsilon),
                      "delta": _finite(spend.delta),
                      "vacuous": spend.vacuous},
            "budget": None,
            "remaining": None,
            "exhausted": self.exhausted,
        }
        if self.budget is not None:
            stanza["budget"] = {"epsilon": self.budget.epsilon,
                                "delta": self.budget.delta}
            remaining = self.remaining
            if remaining is not None:
                stanza["remaining"] = {"epsilon": remaining.epsilon,
                                       "delta": remaining.delta}
            else:
                stanza["remaining"] = {"epsilon": 0.0, "delta": 0.0}
        return stanza
