"""Pluggable checkpoint stores for the aggregation write-ahead log.

The WAL (:mod:`repro.net.wal`) spools accepted PUSH frames to disk; the
checkpoint store is the small durable ledger next to those spools that says
how much of each spool is *committed*.  A session record tracks the client's
ordinal, the agreed sketch size ``k``, the committed frame count and the
exact byte offset the spool is valid up to — so a half-written tail (the
server died mid-burst) is detected and truncated on replay, never folded.

The interface is deliberately redis-shaped — a flat key/value table keyed by
session id with ``get``/``put``/``scan``/``delete`` — so a second backend
(redis, etcd, dynamo) is one module implementing five methods.  The first
backend is sqlite (stdlib, zero new dependencies) with ``synchronous=FULL``
so every ``put`` is an fsync-backed transaction: once the server has ACKed a
PUSH burst, the commit record survives kill -9.  ``MemoryCheckpointStore``
is the second, trivially-pluggable backend, used by tests and as the
template for a networked store.
"""

from __future__ import annotations

import sqlite3
import threading
from abc import ABC, abstractmethod
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Union

from ..exceptions import ParameterError

__all__ = [
    "SessionRecord",
    "CheckpointStore",
    "SqliteCheckpointStore",
    "MemoryCheckpointStore",
    "open_store",
    "RESERVED_SESSION_PREFIX",
    "BUDGET_SESSION_ID",
    "is_reserved_record",
]

#: Session ids starting with this prefix are server-internal ledger rows,
#: not aggregation sessions: WAL recovery must skip them (they own no spool)
#: and display tooling should render them separately.
RESERVED_SESSION_PREFIX = "::"

#: The reserved record the privacy accountant persists its cumulative spend
#: under (:mod:`repro.net.budget`): ``committed_frames`` holds the number of
#: releases charged, ``client`` the composition mode, ``spool`` is empty.
BUDGET_SESSION_ID = RESERVED_SESSION_PREFIX + "privacy-budget"


def is_reserved_record(record: "SessionRecord") -> bool:
    """True when ``record`` is a server-internal ledger row, not a session."""
    return record.session_id.startswith(RESERVED_SESSION_PREFIX)


@dataclass(frozen=True)
class SessionRecord:
    """Durable state of one aggregation session.

    ``committed_frames``/``committed_bytes`` advance together on each PUSH
    burst commit; anything in the spool past ``committed_bytes`` is an
    uncommitted tail.  ``commit_seq`` is ``None`` while the session is open
    and set to the server's commit sequence number when the session ends
    cleanly (BYE / clean EOF) — replay folds only sessions with a seq, in
    seq order, reproducing the uninterrupted commit order bit-for-bit.
    """

    session_id: str
    ordinal: Optional[int]
    client: str
    k: Optional[int]
    spool: str
    committed_frames: int = 0
    committed_bytes: int = 0
    commit_seq: Optional[int] = None

    def advanced(self, *, frames: int, bytes_: int) -> "SessionRecord":
        """A copy with the committed watermark moved forward."""
        return replace(self, committed_frames=frames, committed_bytes=bytes_)

    def completed(self, commit_seq: int) -> "SessionRecord":
        """A copy marked cleanly committed at ``commit_seq``."""
        return replace(self, commit_seq=commit_seq)


class CheckpointStore(ABC):
    """Abstract session ledger: a durable ``session_id -> SessionRecord`` map.

    Implementations must make :meth:`put` durable before returning — the
    server sends the PUSH ACK only after ``put`` returns, and the client
    treats an ACKed frame as safe to skip on resume.
    """

    @abstractmethod
    def get(self, session_id: str) -> Optional[SessionRecord]:
        """The record for ``session_id``, or ``None``."""

    @abstractmethod
    def put(self, record: SessionRecord) -> None:
        """Durably upsert ``record`` (fsync-backed before returning)."""

    @abstractmethod
    def scan(self) -> Iterator[SessionRecord]:
        """All records, in unspecified order."""

    @abstractmethod
    def delete(self, session_id: str) -> None:
        """Remove ``session_id`` if present."""

    @abstractmethod
    def close(self) -> None:
        """Release the backing resources; the store is unusable after."""

    # Convenience -----------------------------------------------------------

    def records(self) -> List[SessionRecord]:
        """All records as a list sorted by session id (stable for display)."""
        return sorted(self.scan(), key=lambda record: record.session_id)

    def __enter__(self) -> "CheckpointStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


_SCHEMA = """
CREATE TABLE IF NOT EXISTS sessions (
    session_id       TEXT PRIMARY KEY,
    ordinal          INTEGER,
    client           TEXT NOT NULL,
    k                INTEGER,
    spool            TEXT NOT NULL,
    committed_frames INTEGER NOT NULL,
    committed_bytes  INTEGER NOT NULL,
    commit_seq       INTEGER
)
"""


class SqliteCheckpointStore(CheckpointStore):
    """Checkpoint store over a single sqlite database file.

    ``synchronous=FULL`` plus one implicit transaction per ``put`` means the
    record (and, through sqlite's journal, its previous state) hits stable
    storage before ``put`` returns — the property the commit protocol in
    :mod:`repro.net.wal` relies on.  A lock serializes access so the CLI
    inspect/replay tools can share an instance across threads.
    """

    def __init__(self, path: Union[str, Path]):
        self.path = Path(path)
        self._lock = threading.Lock()
        self._conn = sqlite3.connect(str(self.path), check_same_thread=False)
        self._conn.execute("PRAGMA synchronous=FULL")
        self._conn.execute(_SCHEMA)
        self._conn.commit()

    def get(self, session_id: str) -> Optional[SessionRecord]:
        with self._lock:
            row = self._conn.execute(
                "SELECT session_id, ordinal, client, k, spool,"
                " committed_frames, committed_bytes, commit_seq"
                " FROM sessions WHERE session_id = ?",
                (session_id,),
            ).fetchone()
        return None if row is None else SessionRecord(*row)

    def put(self, record: SessionRecord) -> None:
        with self._lock:
            self._conn.execute(
                "INSERT OR REPLACE INTO sessions VALUES (?, ?, ?, ?, ?, ?, ?, ?)",
                (record.session_id, record.ordinal, record.client, record.k,
                 record.spool, record.committed_frames, record.committed_bytes,
                 record.commit_seq),
            )
            self._conn.commit()

    def scan(self) -> Iterator[SessionRecord]:
        with self._lock:
            rows = self._conn.execute(
                "SELECT session_id, ordinal, client, k, spool,"
                " committed_frames, committed_bytes, commit_seq FROM sessions"
            ).fetchall()
        return iter([SessionRecord(*row) for row in rows])

    def delete(self, session_id: str) -> None:
        with self._lock:
            self._conn.execute("DELETE FROM sessions WHERE session_id = ?",
                               (session_id,))
            self._conn.commit()

    def close(self) -> None:
        with self._lock:
            self._conn.close()


class MemoryCheckpointStore(CheckpointStore):
    """In-process store: the redis-shaped interface over a dict.

    Not durable (by construction) — used by unit tests to exercise the WAL
    commit protocol without disk, and as the reference for what a networked
    backend must implement.
    """

    def __init__(self):
        self._records: Dict[str, SessionRecord] = {}
        self._lock = threading.Lock()

    def get(self, session_id: str) -> Optional[SessionRecord]:
        with self._lock:
            return self._records.get(session_id)

    def put(self, record: SessionRecord) -> None:
        with self._lock:
            self._records[record.session_id] = record

    def scan(self) -> Iterator[SessionRecord]:
        with self._lock:
            return iter(list(self._records.values()))

    def delete(self, session_id: str) -> None:
        with self._lock:
            self._records.pop(session_id, None)

    def close(self) -> None:
        with self._lock:
            self._records.clear()


def open_store(spec: Union[str, Path]) -> CheckpointStore:
    """Open a checkpoint store from a spec string.

    ``memory://`` opens an in-process store; ``sqlite:///path/to.db`` or a
    bare filesystem path opens (creating if needed) a sqlite store.
    """
    text = str(spec)
    if text == "memory://":
        return MemoryCheckpointStore()
    if text.startswith("sqlite:///"):
        return SqliteCheckpointStore(text[len("sqlite:///"):])
    if "://" in text:
        raise ParameterError(f"unsupported checkpoint store spec {text!r}; "
                             "expected 'memory://', 'sqlite:///<path>' or a file path")
    return SqliteCheckpointStore(text)
