"""Jittered exponential backoff with a max-elapsed retry budget.

Used by :class:`~repro.net.client.AggregatorClient` for connect retries and
by :func:`~repro.net.client.push_file_resilient` for whole-push retries.
Jitter decorrelates a fleet of clients hammering a restarting aggregator;
the max-elapsed cap turns "retry forever" into a bounded budget so a dead
server fails the push instead of wedging it.

The clock and the random source are injectable, so the policy is unit-
testable with a fake clock — no real sleeps in the tests.
"""

from __future__ import annotations

import asyncio
import random as _random
import time
from typing import Awaitable, Callable, Optional, Tuple, Type, Union

from ..exceptions import ParameterError

__all__ = ["Backoff", "retry_async"]


class Backoff:
    """Delay policy: ``base * factor**attempt`` capped, jittered, budgeted.

    :meth:`next_delay` returns the next sleep in seconds, or ``None`` once
    the ``max_elapsed`` budget (measured from construction on ``clock``) is
    spent — the caller should then give up.  The delay is never allowed to
    overshoot the remaining budget, so a capped retry loop wakes up for its
    last attempt while the budget is still live.

    Jitter multiplies the raw delay by ``1 + jitter * U`` with ``U`` drawn
    from ``rng()`` in ``[0, 1)`` — delays only ever stretch, so ``base`` is
    a floor and tests can bound both sides.
    """

    def __init__(self, base: float = 0.2, factor: float = 2.0,
                 max_delay: float = 5.0, jitter: float = 0.5,
                 max_elapsed: Optional[float] = None,
                 clock: Callable[[], float] = time.monotonic,
                 rng: Callable[[], float] = _random.random) -> None:
        if base <= 0:
            raise ParameterError(f"base delay must be positive, got {base!r}")
        if factor < 1.0:
            raise ParameterError(f"factor must be >= 1, got {factor!r}")
        if max_delay < base:
            raise ParameterError(
                f"max_delay {max_delay!r} must be >= base {base!r}")
        if jitter < 0:
            raise ParameterError(f"jitter must be >= 0, got {jitter!r}")
        if max_elapsed is not None and max_elapsed <= 0:
            raise ParameterError(
                f"max_elapsed must be positive seconds or None, got {max_elapsed!r}")
        self._base = base
        self._factor = factor
        self._max_delay = max_delay
        self._jitter = jitter
        self._max_elapsed = max_elapsed
        self._clock = clock
        self._rng = rng
        self._started = clock()
        self._attempt = 0
        self._last_delay: Optional[float] = None

    @property
    def attempts(self) -> int:
        """How many delays have been handed out."""
        return self._attempt

    @property
    def last_delay(self) -> Optional[float]:
        """The most recent delay handed out, or ``None`` before the first."""
        return self._last_delay

    @property
    def elapsed(self) -> float:
        """Seconds since this policy started, on the injected clock."""
        return self._clock() - self._started

    def next_delay(self) -> Optional[float]:
        """The next sleep in seconds, or ``None`` when the budget is spent."""
        if self._max_elapsed is not None:
            remaining = self._max_elapsed - self.elapsed
            if remaining <= 0:
                return None
        delay = min(self._max_delay, self._base * self._factor ** self._attempt)
        delay *= 1.0 + self._jitter * self._rng()
        self._attempt += 1
        if self._max_elapsed is not None:
            delay = min(delay, remaining)
        self._last_delay = delay
        return delay


Retryable = Union[Tuple[Type[BaseException], ...],
                  Callable[[BaseException], bool]]


async def retry_async(attempt: Callable[[], Awaitable],
                      *, backoff: Backoff,
                      retryable: Retryable,
                      max_attempts: Optional[int] = None,
                      give_up: Callable[[Optional[BaseException], int, Backoff],
                                        BaseException],
                      sleep: Callable[[float], Awaitable] = asyncio.sleep) -> object:
    """Run ``attempt`` until it succeeds, retrying transient failures.

    This is the one retry loop of the net tier: ``AggregatorClient.connect``,
    :func:`~repro.net.client.push_file_resilient` and the relay's upstream
    forwarder all drive it with their own ``backoff`` policy.  ``retryable``
    classifies an exception as transient — either a tuple of exception types
    or a predicate; anything else propagates immediately.  The loop gives up
    when ``max_attempts`` attempts have failed or when the backoff's
    ``max_elapsed`` budget is spent (no sleep is taken after the final
    attempt), raising whatever ``give_up(last_error, attempts, backoff)``
    builds.  ``sleep`` is injectable so the fake-clock suite runs with zero
    real sleeps.
    """
    attempts = 0
    last: Optional[BaseException] = None
    while True:
        attempts += 1
        try:
            return await attempt()
        except BaseException as error:
            transient = (isinstance(error, retryable)
                         if isinstance(retryable, tuple) else retryable(error))
            if not transient:
                raise
            last = error
        if max_attempts is not None and attempts >= max_attempts:
            break
        delay = backoff.next_delay()
        if delay is None:
            break  # max-elapsed retry budget exhausted
        await sleep(delay)
    raise give_up(last, attempts, backoff) from None
