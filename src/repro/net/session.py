"""Server-side session state machine for the aggregation service.

One :class:`Session` drives one client connection through the state machine
documented in DESIGN.md:

.. code-block:: text

    AWAIT_HELLO --hello--> READY --push(n)--> PUSHING --n frames--> READY
    READY --release/stats--> READY        (replies in-line)
    READY --bye / clean EOF--> COMMITTED  (summary enters the release set)
    any state --protocol violation / k mismatch / truncated frame-->
        REJECTED                          (summary discarded, server stays up)

A session's frames are folded into its own
:class:`~repro.api.framing.StreamingMerger` *as they arrive*; nothing beyond
the current frame and the ``<= k``-counter accumulator is buffered.  The
summary joins the server's committed set only on a clean end (``bye`` verb
or EOF from ``READY``), so a client that dies mid-push contributes nothing.

With a write-ahead log (``repro serve --wal-dir``) each accepted frame's
verbatim bytes are spooled *before* the fold, the whole burst is made
durable (spool fsync + checkpoint record) *before* the PUSH ack, and a
re-HELLO with the same ordinal resumes the spooled session: the ack reports
the committed frame count so the client skips already-durable frames.  Every
read is additionally bounded by the server's per-read timeout, so a peer
dribbling bytes (slow-loris) is rejected instead of pinning a session open.

Multi-tenant hardening: when the server carries an ``auth_token``, the HELLO
must present a matching ``token`` field (checked in constant time, *before*
any ordinal claim, WAL attach or k adoption) or the session is rejected with
an ``auth_failed`` ERROR.  Per-session quotas on frames, payload bytes and
origin sketch exports are charged per accepted frame — before the spool
append and the fold, so an over-quota frame leaves no trace — and a
violation rejects only the offending session (``quota_exceeded``).
"""

from __future__ import annotations

import asyncio
import enum
import time
from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..api.framing import FrameHeader, StreamingMerger
from ..exceptions import FramingError, ProtocolError, ReproError
from .protocol import BYE, ERROR, HELLO, OK, PUSH, RELEASE, STATS, FrameChannel

#: HELLO ``role`` values a server understands.  ``client`` (the default)
#: folds all pushed frames into one per-session merger; ``relay`` marks each
#: pushed frame as the summary of one downstream origin session, folded into
#: its *own* release part so the root's combine sees exactly the same part
#: sequence a flat server would.
SESSION_ROLES = ("client", "relay")


class SessionState(enum.Enum):
    AWAIT_HELLO = "await_hello"
    READY = "ready"
    PUSHING = "pushing"
    COMMITTED = "committed"
    REJECTED = "rejected"


@dataclass(frozen=True)
class CommittedSession:
    """A cleanly finished session's contribution to the release set.

    A plain client session contributes one ``merger``; a relay session
    contributes ``parts`` — one single-summary merger per downstream origin
    session, in push (= spool) order — and ``merger`` is ``None``.
    """

    seq: int                      # commit order (tie-breaker)
    ordinal: Optional[int]        # client-declared canonical position
    client: Optional[str]
    merger: Optional[StreamingMerger]
    parts: Tuple[StreamingMerger, ...] = ()

    @property
    def sort_key(self):
        # Explicit ordinals first (in ordinal order), then commit order.
        if self.ordinal is not None:
            return (0, self.ordinal, self.seq)
        return (1, 0, self.seq)

    @property
    def mergers(self) -> List[StreamingMerger]:
        """The release parts this session contributes, in canonical order."""
        if self.parts:
            return list(self.parts)
        return [self.merger] if self.merger is not None else []

    @property
    def frames(self) -> int:
        """Origin sketch exports covered (relay parts carry origin counts)."""
        return sum(merger.frames for merger in self.mergers)

    @property
    def stream_length(self) -> int:
        return sum(merger.total_stream_length for merger in self.mergers)


class Session:
    """One client connection: HELLO handshake, pushes, queries, clean end."""

    def __init__(self, server, channel: FrameChannel) -> None:
        self._server = server
        self._channel = channel
        self.state = SessionState.AWAIT_HELLO
        self.ordinal: Optional[int] = None
        self.client: Optional[str] = None
        self.role: str = "client"
        self.connected_at: float = time.time()
        self.last_frame_at: Optional[float] = None
        self.bytes_received: int = 0
        self.frames_accepted: int = 0
        self._merger: Optional[StreamingMerger] = None
        self._parts: List[StreamingMerger] = []   # relay sessions only
        self._journal = None          # SessionJournal when the server has a WAL
        self._claimed_ordinal = False
        self._pending_header_k: Optional[int] = None
        self._quota_frames = 0
        self._quota_bytes = 0
        self._quota_sketches = 0

    @property
    def frames(self) -> int:
        """Frames folded so far, in pushed-frame units (relay: summaries)."""
        if self.role == "relay":
            return len(self._parts)
        return self._merger.frames if self._merger is not None else 0

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------

    async def _timed(self, awaitable, what: str):
        """Bound one read by the server's per-read timeout (slow-loris guard)."""
        timeout = self._server.read_timeout
        if timeout is None:
            return await awaitable
        try:
            return await asyncio.wait_for(awaitable, timeout)
        except asyncio.TimeoutError:
            error = ProtocolError(
                f"no complete {what} within {timeout:g}s; peer is stalling "
                "(slow-loris?) and the session is rejected")
            error.code = "timeout"
            raise error from None

    async def run(self) -> None:
        """Drive the connection to completion; never raises into the server."""
        try:
            header = await self._timed(self._channel.read_prefix(),
                                       "stream header")
            # Greet before validating, so any rejection reaches the client as
            # a well-formed (prefix + error frame) stream it can parse.
            greeting = FrameHeader(framing=header.framing, frames=None,
                                   k=self._server.k,
                                   meta={"service": "repro-aggregator"})
            await self._channel.send_prefix(greeting)
            if self._server.requires_auth:
                # k adoption mutates server state; an unauthenticated peer
                # must not influence it, so the header's k is only validated
                # after the HELLO token passes.
                self._pending_header_k = header.k
            else:
                self._check_k(header.k, source="stream header")
            while self.state not in (SessionState.COMMITTED, SessionState.REJECTED):
                kind, value = await self._timed(self._channel.next_event(),
                                                "control frame")
                if kind == "eof":
                    self._finish_on_eof()
                    break
                if kind != "control":
                    raise ProtocolError(
                        "payload frame outside a push burst; announce frames "
                        "with a push control frame first")
                await self._dispatch(value)
        except ReproError as error:
            await self._reject(error)
        except (ConnectionError, OSError, EOFError) as error:
            self.state = SessionState.REJECTED
            self._server.note_rejected(self, f"connection lost: {error}")
        finally:
            if self._claimed_ordinal:
                self._server.release_ordinal(self.ordinal)
                self._claimed_ordinal = False
            if self._journal is not None:
                self._journal.close()
            await self._channel.close()

    async def _dispatch(self, message: dict) -> None:
        verb = message.get("verb")
        if self.state is SessionState.AWAIT_HELLO:
            if verb != HELLO:
                raise ProtocolError(f"first verb must be {HELLO!r}, got {verb!r}")
            await self._handle_hello(message)
            return
        if verb == PUSH:
            await self._handle_push(message)
        elif verb == RELEASE:
            await self._handle_release(message)
        elif verb == STATS:
            await self._channel.send_control(STATS, **self._server.stats())
        elif verb == BYE:
            committed_frames = self.frames  # _commit hands the merger off
            self._commit()
            await self._channel.send_control(OK, re=BYE, frames=committed_frames)
        elif verb == HELLO:
            raise ProtocolError("duplicate hello on an open session")
        else:
            raise ProtocolError(f"unknown verb {verb!r}")

    # ------------------------------------------------------------------
    # Verb handlers
    # ------------------------------------------------------------------

    async def _handle_hello(self, message: dict) -> None:
        token = message.get("token")
        if not self._server.check_auth(token):
            error = ProtocolError(
                "this aggregator requires a session token; pass the server's "
                "--auth-token in the hello" if token is None else
                "hello session token rejected")
            error.code = "auth_failed"
            raise error
        if self._pending_header_k is not None:
            self._check_k(self._pending_header_k, source="stream header")
            self._pending_header_k = None
        self._check_k(message.get("k"), source="hello")
        ordinal = message.get("ordinal")
        if ordinal is not None and not isinstance(ordinal, int):
            raise ProtocolError(f"hello ordinal must be an integer, got {ordinal!r}")
        self.ordinal = ordinal
        client = message.get("client")
        self.client = str(client) if client is not None else None
        role = message.get("role")
        if role is not None:
            if role not in SESSION_ROLES:
                raise ProtocolError(
                    f"hello declares an unknown role {role!r}; known roles "
                    f"are {SESSION_ROLES}")
            if role == "relay" and not self._server.accept_relays:
                error = ProtocolError(
                    "this aggregator does not accept relay sessions; start "
                    "it with --accept-relays to act as an upstream root")
                error.code = "relay_not_accepted"
                raise error
            self.role = role
        ack = {"k": self._server.k}
        if self._server.wal is not None:
            self._claimed_ordinal = self._server.claim_ordinal(self.ordinal)
            self._journal = self._server.wal.attach(self.ordinal, self.client,
                                                    self._server.k,
                                                    role=self.role)
            ack["committed"] = self._journal.committed_frames
            if self._journal.complete:
                ack["complete"] = True
            elif self._journal.parts:
                # Resumed relay session: adopt the replayed summary parts.
                self._parts = list(self._journal.parts)
                self._server.note_resumed(
                    self._journal.record.session_id,
                    frames=sum(part.frames for part in self._parts),
                    stream_length=sum(part.total_stream_length
                                      for part in self._parts))
                self._seed_quota_from_resume(
                    sketches=sum(part.frames for part in self._parts))
            elif self._journal.merger is not None:
                # Resumed session: adopt the replayed committed prefix.
                self._merger = self._journal.merger
                self._server.note_resumed(
                    self._journal.record.session_id,
                    frames=self._merger.frames,
                    stream_length=self._merger.total_stream_length)
                self._seed_quota_from_resume(sketches=self._merger.frames)
        self.state = SessionState.READY
        await self._channel.send_control(OK, re=HELLO, **ack)

    async def _handle_push(self, message: dict) -> None:
        declared = message.get("frames")
        if not isinstance(declared, int) or declared < 0:
            raise ProtocolError(f"push must declare a frame count, got {declared!r}")
        if self._server.k is None:
            raise ProtocolError(
                "no sketch size agreed yet: start the server with -k or "
                "declare k in this session's hello")
        if self._journal is not None:
            if self._journal.complete:
                error = ProtocolError(
                    "session already committed cleanly; pushing more frames "
                    "would fold them twice — use a fresh ordinal")
                error.code = "session_complete"
                raise error
            self._journal.ensure_k(self._server.k)
        limit = self._server.max_session_frames
        if limit is not None and self._quota_frames + declared > limit:
            # The declared burst alone busts the frame quota: refuse it up
            # front, before a single body is spooled or folded.
            raise self._quota_error("frames", limit,
                                    self._quota_frames + declared)
        if self._merger is None and self.role != "relay":
            self._merger = StreamingMerger(self._server.k)
        self.state = SessionState.PUSHING
        metrics = self._server.metrics
        clock = metrics.clock
        with self._server.tracer.span("push", frames=declared) as span:
            span["ordinal"] = self.ordinal
            for index in range(declared):
                read_start = clock()
                kind, value, body = await self._timed(
                    self._channel.next_event(include_body=True),
                    f"payload frame {index + 1}/{declared}")
                metrics.observe("server.frame_seconds", clock() - read_start)
                if kind == "eof":
                    raise FramingError(
                        f"stream ended {declared - index} frame(s) into a "
                        f"declared burst of {declared}")
                if kind != "payload":
                    raise ProtocolError(
                        f"expected payload frame {index + 1}/{declared} of the "
                        f"push burst, got a control frame")
                if value.k is not None and value.k != self._server.k:
                    error = ProtocolError(
                        f"frame {index + 1} exports a k={value.k} sketch; this "
                        f"aggregation runs at k={self._server.k} and merging "
                        "disagreeing sketch sizes would miscalibrate the release")
                    error.code = "k_mismatch"
                    raise error
                fold_start = clock()
                if self.role == "relay":
                    # Each relay frame is one origin session's summary: it folds
                    # into its own release part so the combine at release time
                    # sees the same part sequence a flat server would.
                    part = StreamingMerger(self._server.k).add_summary(value)
                else:
                    part = None
                # Quota charge precedes the spool append and the fold: an
                # over-quota frame is rejected without leaving any trace.
                self._charge_quota(len(body),
                                   part.frames if part is not None else 1)
                if self._journal is not None:
                    # Write-ahead: the verbatim bytes hit the spool before
                    # the fold.
                    self._journal.append(body)
                if part is not None:
                    self._parts.append(part)
                    self._server.note_frame(value, frames=part.frames)
                else:
                    self._merger.add(value)
                    self._server.note_frame(value)
                metrics.observe("server.fold_seconds", clock() - fold_start)
                self.frames_accepted += 1
                self.bytes_received += len(body)
                self.last_frame_at = time.time()
                metrics.inc("server.frames_total")
                metrics.inc("server.bytes_total", len(body))
            if self._journal is not None:
                # Durability barrier: fsync spool + checkpoint record, then ack.
                self._journal.commit()
        self.state = SessionState.READY
        await self._channel.send_control(OK, re=PUSH, folded=declared,
                                         frames=self.frames)

    async def _handle_release(self, message: dict) -> None:
        seed = message.get("seed")
        if seed is not None and not isinstance(seed, int):
            raise ProtocolError(f"release seed must be an integer, got {seed!r}")
        envelope = await self._server.handle_release(seed)
        await self._channel.send_payload(envelope)
        self._server.note_release_sent()

    # ------------------------------------------------------------------
    # Endings
    # ------------------------------------------------------------------

    def _finish_on_eof(self) -> None:
        if self.state is SessionState.AWAIT_HELLO:
            # Probe/empty connection: nothing to commit, nothing to reject.
            self.state = SessionState.REJECTED
            return
        self._commit()

    def _commit(self) -> None:
        self.state = SessionState.COMMITTED
        if (self._merger is not None and self._merger.frames) or self._parts:
            self._server.commit(self)
            self._merger = None
            self._parts = []

    async def _reject(self, error: ReproError) -> None:
        self.state = SessionState.REJECTED
        self._server.note_rejected(self, str(error))
        code = "protocol" if isinstance(error, ProtocolError) else \
            type(error).__name__.replace("Error", "").lower() or "error"
        if getattr(error, "code", None):
            code = error.code
        try:
            await self._channel.send_control(ERROR, code=code, message=str(error))
            # Read out whatever the client had in flight before closing, so
            # the close is graceful and the ERROR frame is not destroyed by
            # a TCP reset triggered by unread inbound data.
            self._channel.write_eof()
            await asyncio.wait_for(self._channel.drain_incoming(), timeout=1.0)
        except (ConnectionError, OSError, asyncio.TimeoutError):
            pass

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------

    def _seed_quota_from_resume(self, sketches: int) -> None:
        """Count a resumed session's committed state against its quotas.

        ``committed_bytes`` is the spool watermark (header + frame prefixes
        included), a slight over-count of the raw payload bytes — the
        conservative direction for a quota.
        """
        self._quota_frames = self._journal.committed_frames
        self._quota_bytes = self._journal.record.committed_bytes
        self._quota_sketches = sketches

    def _quota_error(self, which: str, limit: int, would_be: int) -> ProtocolError:
        error = ProtocolError(
            f"session {which} quota exceeded ({would_be} > {limit}); this "
            "session is rejected, other sessions are unaffected")
        error.code = "quota_exceeded"
        return error

    def _charge_quota(self, nbytes: int, sketches: int) -> None:
        self._quota_frames += 1
        self._quota_bytes += nbytes
        self._quota_sketches += sketches
        server = self._server
        if (server.max_session_frames is not None
                and self._quota_frames > server.max_session_frames):
            raise self._quota_error("frames", server.max_session_frames,
                                    self._quota_frames)
        if (server.max_session_bytes is not None
                and self._quota_bytes > server.max_session_bytes):
            raise self._quota_error("bytes", server.max_session_bytes,
                                    self._quota_bytes)
        if (server.max_session_sketches is not None
                and self._quota_sketches > server.max_session_sketches):
            raise self._quota_error("sketches", server.max_session_sketches,
                                    self._quota_sketches)

    def _check_k(self, declared, source: str) -> None:
        if declared is None:
            return
        if not isinstance(declared, int) or declared <= 0:
            raise ProtocolError(f"{source} declares a bad sketch size {declared!r}")
        agreed = self._server.adopt_k(declared)
        if agreed != declared:
            error = ProtocolError(
                f"{source} declares k={declared} but this aggregation runs "
                f"at k={agreed}; all sessions must agree on one sketch size")
            error.code = "k_mismatch"
            raise error

    def take_merger(self) -> Optional[StreamingMerger]:
        merger = self._merger
        self._merger = None
        return merger

    def take_parts(self) -> Tuple[StreamingMerger, ...]:
        parts = tuple(self._parts)
        self._parts = []
        return parts

    def take_journal(self):
        journal = self._journal
        self._journal = None
        return journal
