"""Write-ahead session spools for the aggregation service.

The framed container (:mod:`repro.api.framing`) *is already a log format*:
a stream prefix, a JSON header frame, then length-prefixed payload frames.
The WAL exploits that directly — each session gets one spool file in
``wal_dir`` holding the **verbatim bytes** (tag-preserving) of every PUSH
frame the server accepted, appended *before* the frame is folded into the
session's :class:`~repro.api.framing.StreamingMerger`.

Commit protocol (per PUSH burst)::

    append frame bytes to spool          (OS buffer)
    fold frame into the session merger   (in memory)
    ... repeat for the burst ...
    flush + fsync spool                  (frames durable)
    put session record in the store      (watermark durable, fsync-backed)
    send OK to the client                (ACK now implies durability)

A crash between the spool fsync and the store put leaves a spool tail past
the recorded ``committed_bytes`` watermark: the tail is truncated on the
next attach or recovery — never folded — and the client, which got no ACK,
re-pushes the burst.  A clean session end (BYE / clean EOF) writes the
server's commit sequence number into the record (:meth:`SessionJournal.
mark_committed`), which is the fsync-on-commit session record: recovery
folds exactly the sessions holding a seq, in seq order, so a restarted
server releases bit-identically to an uninterrupted one.

Resume: the ordinal a client declares in HELLO is its durable session
identity.  Re-attaching to an open record replays the committed prefix of
the spool into a fresh merger and reports ``committed_frames`` back through
the HELLO ACK, so the client skips already-durable frames instead of
double-pushing.
"""

from __future__ import annotations

import os
import uuid
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import List, Optional, Tuple, Union

from ..api.framing import (FrameReader, StreamingMerger, append_frame,
                           decode_payload_body, replay_raw_frames,
                           write_stream_header)
from ..exceptions import FramingError, ParameterError, ProtocolError
from ..obs.metrics import NULL_METRICS
from .session import CommittedSession
from .store import (CheckpointStore, SessionRecord, SqliteCheckpointStore,
                    is_reserved_record)

__all__ = ["SessionWal", "SessionJournal", "WalRecovery"]

#: File name of the default sqlite checkpoint ledger inside ``wal_dir``.
STORE_FILENAME = "sessions.db"
_SPOOL_SUFFIX = ".spool"


def _session_complete_error() -> ProtocolError:
    error = ProtocolError(
        "session already committed cleanly; pushing more frames would fold "
        "them twice — start a new session under a fresh ordinal")
    error.code = "session_complete"
    return error


@dataclass
class WalRecovery:
    """What :meth:`SessionWal.recover` found on disk."""

    #: Cleanly finished sessions, replayed, in commit-seq order.
    committed: List[CommittedSession] = field(default_factory=list)
    #: Records still open (no commit seq) — resumable by ordinal.
    open_records: List[SessionRecord] = field(default_factory=list)
    #: The sketch size all records agree on (``None`` when no records).
    k: Optional[int] = None
    #: Highest commit seq seen (the server restarts its counter above it).
    max_seq: int = 0


class SessionJournal:
    """One session's handle on its spool + ledger record.

    Created by :meth:`SessionWal.attach`; the server-side session appends
    each accepted frame body, commits per burst, and marks the record
    committed on a clean end.  ``merger`` carries the replayed committed
    prefix on resume (``None`` for a fresh session).
    """

    def __init__(self, wal: "SessionWal", record: SessionRecord, *,
                 fileobj=None, offset: int = 0, frames: int = 0,
                 merger: Optional[StreamingMerger] = None,
                 parts: Tuple[StreamingMerger, ...] = (),
                 complete: bool = False, durable: bool = False) -> None:
        self._wal = wal
        self.record = record
        self.merger = merger
        #: Replayed relay summary parts (one per spooled summary frame);
        #: empty for plain client sessions.
        self.parts = parts
        self.complete = complete
        self._file = fileobj
        self._offset = offset
        self._frames = frames
        self._durable = durable  # record already present in the store

    @property
    def committed_frames(self) -> int:
        """Frames durable at the last commit (what the HELLO ACK reports)."""
        return self.record.committed_frames

    def ensure_k(self, k: int) -> None:
        """Record the agreed sketch size once the session learns it."""
        if self.record.k is None:
            self.record = replace(self.record, k=k)
        elif self.record.k != k:
            error = ProtocolError(
                f"session {self.record.session_id} was spooled at "
                f"k={self.record.k} but now declares k={k}")
            error.code = "k_mismatch"
            raise error

    def append(self, body: bytes) -> None:
        """Spool one accepted frame body verbatim (before it is folded)."""
        if self.complete:
            raise _session_complete_error()
        self._offset += append_frame(self._file, body)
        self._frames += 1

    def commit(self) -> int:
        """Make every appended frame durable; returns the new watermark.

        fsyncs the spool, then durably advances the ledger record — the
        order that makes a half-written tail detectable (ledger behind
        spool) rather than dangerous (ledger ahead of spool).
        """
        if self.complete:
            raise _session_complete_error()
        if self._frames == self.record.committed_frames:
            return self.record.committed_frames
        metrics = self._wal.metrics
        clock = metrics.clock
        commit_start = clock()
        self._file.flush()
        if self._wal.fsync:
            fsync_start = clock()
            os.fsync(self._file.fileno())
            metrics.observe("wal.fsync_seconds", clock() - fsync_start)
        first_commit = not self._durable
        self.record = self.record.advanced(frames=self._frames,
                                           bytes_=self._offset)
        self._wal.store.put(self.record)
        self._durable = True
        if first_commit and self._wal.fsync:
            self._wal.fsync_dir()
        metrics.observe("wal.commit_seconds", clock() - commit_start)
        metrics.inc("wal.commits_total")
        return self.record.committed_frames

    def mark_committed(self, commit_seq: int) -> None:
        """Record the clean end of the session at ``commit_seq`` (durable)."""
        if self.complete:
            return
        self.commit()
        self.record = self.record.completed(commit_seq)
        self._wal.store.put(self.record)
        self._durable = True
        self.complete = True
        self._close_file()

    def close(self) -> None:
        """Release the spool file handle (the record stays open for resume)."""
        self._close_file()

    def _close_file(self) -> None:
        if self._file is not None:
            self._file.close()
            self._file = None


class SessionWal:
    """The durability layer: spool files plus a pluggable checkpoint store.

    ``store`` defaults to a :class:`SqliteCheckpointStore` at
    ``wal_dir/sessions.db``; any :class:`CheckpointStore` implementation
    can be swapped in.  ``fsync=False`` trades durability for speed (used
    by benchmarks to isolate the spooling cost from the disk's sync cost
    where explicitly noted; the server default is always ``True``).
    """

    def __init__(self, wal_dir: Union[str, Path],
                 store: Optional[CheckpointStore] = None,
                 fsync: bool = True, metrics=NULL_METRICS) -> None:
        self.wal_dir = Path(wal_dir)
        self.wal_dir.mkdir(parents=True, exist_ok=True)
        self.store = store if store is not None else SqliteCheckpointStore(
            self.wal_dir / STORE_FILENAME)
        self.fsync = fsync
        self.metrics = metrics if metrics is not None else NULL_METRICS

    def spool_usage(self) -> dict:
        """On-disk spool footprint: ``{"spools": count, "bytes": total}``.

        Stats every ``*.spool`` file in ``wal_dir`` (the sqlite ledger is
        excluded — it is bookkeeping, not session payload), so STATS and
        ``wal inspect`` report the number an operator would get from
        ``du``.  Files vanishing mid-scan (concurrent recovery cleanup)
        are skipped rather than raised.
        """
        spools = 0
        total = 0
        for path in self.wal_dir.glob(f"*{_SPOOL_SUFFIX}"):
            try:
                total += path.stat().st_size
            except OSError:
                continue
            spools += 1
        return {"spools": spools, "bytes": total}

    def spool_path(self, record: SessionRecord) -> Path:
        return self.wal_dir / record.spool

    def fsync_dir(self) -> None:
        """fsync the spool directory (new spool files survive a crash)."""
        fd = os.open(self.wal_dir, os.O_RDONLY)
        try:
            os.fsync(fd)
        finally:
            os.close(fd)

    # ------------------------------------------------------------------
    # Recovery
    # ------------------------------------------------------------------

    def recover(self) -> WalRecovery:
        """Scan the ledger, truncate half-written tails, replay commits.

        Called once at server start (and by ``repro wal replay``).  Spool
        files with no ledger record hold only uncommitted frames by
        construction and are deleted.
        """
        # Reserved ledger rows (e.g. the privacy-budget spend record) own no
        # spool and are not sessions: they must not be truncated, replayed or
        # counted towards the single-k check.
        records = [record for record in self.store.scan()
                   if not is_reserved_record(record)]
        known = {record.spool for record in records}
        for stray in self.wal_dir.glob(f"*{_SPOOL_SUFFIX}"):
            if stray.name not in known:
                stray.unlink()
        recovery = WalRecovery()
        ks = {record.k for record in records if record.k is not None}
        if len(ks) > 1:
            raise ParameterError(
                f"wal dir {self.wal_dir} mixes sketch sizes {sorted(ks)}; "
                "one aggregation, one k — use a fresh --wal-dir per run")
        recovery.k = ks.pop() if ks else None
        for record in records:
            self._truncate_tail(record)
        for record in sorted(records, key=lambda r: (r.commit_seq is None,
                                                     r.commit_seq or 0)):
            if record.commit_seq is None:
                recovery.open_records.append(record)
                continue
            if self.spool_role(record) == "relay":
                entry = CommittedSession(
                    seq=record.commit_seq, ordinal=record.ordinal,
                    client=record.client or None, merger=None,
                    parts=tuple(self.replay_parts(record)))
            else:
                entry = CommittedSession(
                    seq=record.commit_seq, ordinal=record.ordinal,
                    client=record.client or None,
                    merger=self.replay_merger(record))
            recovery.committed.append(entry)
            recovery.max_seq = max(recovery.max_seq, record.commit_seq)
        return recovery

    def _truncate_tail(self, record: SessionRecord) -> None:
        path = self.spool_path(record)
        if not path.exists():
            if record.committed_frames:
                raise FramingError(
                    f"checkpoint ledger commits {record.committed_frames} "
                    f"frame(s) of session {record.session_id} but its spool "
                    f"{path} is missing")
            return
        if path.stat().st_size > record.committed_bytes:
            os.truncate(path, record.committed_bytes)

    def spool_role(self, record: SessionRecord) -> Optional[str]:
        """The session role its spool header recorded (``None`` = client).

        The fixed 8-column ledger schema stays untouched: the role rides in
        the spool's framed stream header ``meta``, written once at attach
        time, so old spools (no role key) replay exactly as before.
        """
        path = self.spool_path(record)
        if not path.exists():
            return None
        with path.open("rb") as fileobj:
            meta = FrameReader(fileobj, raw=True).header.meta
        role = meta.get("role")
        return role if isinstance(role, str) else None

    def replay_parts(self, record: SessionRecord) -> List[StreamingMerger]:
        """Replay a relay spool's committed prefix into per-frame parts.

        Each spooled summary frame becomes its own single-summary merger
        (carrying the origin session's frame/stream-length accounting), in
        spool order — bit-identical to the parts the live relay session
        held.
        """
        if record.k is None:
            raise FramingError(
                f"session {record.session_id} committed frames but recorded "
                "no sketch size; ledger is corrupt")
        parts: List[StreamingMerger] = []
        if not record.committed_frames:
            return parts
        with open(self.spool_path(record), "rb") as spool:
            for index, body in enumerate(
                    replay_raw_frames(spool, record.committed_frames,
                                      what=f"spool {record.spool}")):
                payload = decode_payload_body(body, f"spool frame {index + 1}")
                parts.append(StreamingMerger(record.k).add_summary(payload))
        return parts

    def replay_merger(self, record: SessionRecord) -> StreamingMerger:
        """Fold the committed prefix of a spool into a fresh merger.

        Replays the exact bytes the live session folded, in the same order,
        through the same :meth:`StreamingMerger.add` path — the recovered
        summary is bit-identical to the one the crashed process held.
        """
        if record.k is None:
            raise FramingError(
                f"session {record.session_id} committed frames but recorded "
                "no sketch size; ledger is corrupt")
        merger = StreamingMerger(record.k)
        if not record.committed_frames:
            return merger
        with open(self.spool_path(record), "rb") as spool:
            for index, body in enumerate(
                    replay_raw_frames(spool, record.committed_frames,
                                      what=f"spool {record.spool}")):
                merger.add(decode_payload_body(body, f"spool frame {index + 1}"))
        return merger

    # ------------------------------------------------------------------
    # Session attach
    # ------------------------------------------------------------------

    def attach(self, ordinal: Optional[int], client: Optional[str],
               k: Optional[int], role: str = "client") -> SessionJournal:
        """Open (or resume) the journal for one session.

        Ordinal sessions are durable identities: an existing open record is
        resumed (tail truncated, committed prefix replayed); a completed
        record yields a ``complete=True`` journal whose committed count the
        HELLO ACK reports, and any further push is rejected.  Sessions with
        no ordinal get a throwaway identity — durable once committed, but
        not resumable.  ``role="relay"`` is stamped into the spool header so
        recovery replays the spooled summary frames into per-origin parts
        instead of one flat fold.
        """
        if ordinal is not None:
            session_id = f"ord:{ordinal}"
            spool = f"ord-{ordinal}{_SPOOL_SUFFIX}"
            record = self.store.get(session_id)
        else:
            token = uuid.uuid4().hex
            session_id = f"anon:{token}"
            spool = f"anon-{token}{_SPOOL_SUFFIX}"
            record = None
        if record is not None and record.commit_seq is not None:
            return SessionJournal(self, record, complete=True, durable=True)
        if record is not None:
            return self._resume(record, k, role)
        record = SessionRecord(session_id=session_id, ordinal=ordinal,
                               client=client or "", k=k, spool=spool)
        fileobj = open(self.spool_path(record), "wb")
        meta = {"wal_session": session_id}
        if role != "client":
            meta["role"] = role
        offset = write_stream_header(fileobj, k=k, meta=meta)
        fileobj.flush()
        return SessionJournal(self, record, fileobj=fileobj, offset=offset)

    def _resume(self, record: SessionRecord, k: Optional[int],
                role: str = "client") -> SessionJournal:
        if k is not None and record.k is not None and k != record.k:
            error = ProtocolError(
                f"session {record.session_id} resumed with k={k} but was "
                f"spooled at k={record.k}")
            error.code = "k_mismatch"
            raise error
        self._truncate_tail(record)
        path = self.spool_path(record)
        if not path.exists():
            # Open record whose spool vanished with nothing committed:
            # start the session over from scratch.
            self.store.delete(record.session_id)
            return self.attach(record.ordinal, record.client or None, k,
                               role=role)
        spooled_role = self.spool_role(record) or "client"
        if role != spooled_role:
            error = ProtocolError(
                f"session {record.session_id} was spooled with "
                f"role={spooled_role} but resumes with role={role}; one "
                "durable identity, one role")
            error.code = "role_mismatch"
            raise error
        if spooled_role == "relay":
            parts = (tuple(self.replay_parts(record))
                     if record.committed_frames else ())
            fileobj = open(path, "ab")
            return SessionJournal(self, record, fileobj=fileobj,
                                  offset=record.committed_bytes,
                                  frames=record.committed_frames,
                                  parts=parts, durable=True)
        merger = (self.replay_merger(record)
                  if record.committed_frames else None)
        fileobj = open(path, "ab")
        return SessionJournal(self, record, fileobj=fileobj,
                              offset=record.committed_bytes,
                              frames=record.committed_frames,
                              merger=merger, durable=True)

    def close(self) -> None:
        self.store.close()
