"""`RelayAggregatorServer`: aggregator-of-aggregators scale-out.

A relay is a *leaf* aggregator that accepts normal client sessions — same
protocol, same per-session folds, same WAL durability — and forwards every
committed session's summary upstream, acting as an
:class:`~repro.net.client.AggregatorClient` against a root (or mid-tier)
aggregator started with ``accept_relays``.  ``N leaves x M clients`` then
release through the root **bit-identically** to one flat server over the
same ``N*M`` sessions, and to the offline ``repro merge --framed`` fold.

Why one summary frame *per origin session*, not one pre-reduced blob per
leaf: the Agarwal et al. merge is **not associative** before compaction.
At ``k=1``, sessions ``{1:1} {2:2} {3:3} {4:4}`` fold flat to ``{4: 2.0}``
but pre-reduced pairs fold to ``{}`` — so a leaf that combined its clients
before forwarding would change the released values.  Instead the leaf
exploits the fold's *fixed point*: re-encoding a session merger's merged
state (:func:`~repro.api.framing.summary_payload`) and folding it as the
sole frame of a fresh merger reproduces the summary bit-identically.  The
leaf therefore forwards one summary frame per committed origin session and
the reduction happens exactly once, at the root, over the same part
sequence in the same order a flat server would see.

Ordering: the root sorts sessions by ``(ordinal, commit order)``, so each
forwarded session is assigned a *root ordinal* that embeds the leaf's
position: origin ordinal ``o`` of leaf ``L`` maps to ``L*STRIDE + o``;
sessions without a usable ordinal get ``L*STRIDE + ANON_OFFSET + counter``
in commit order.  With leaf-major ordinal assignment (leaf 0 owns clients
0..M-1, leaf 1 owns M..2M-1, ...) the root's canonical order is exactly
the flat server's.

Durability: with a WAL (``--wal-dir``), every forward batch is spooled to
``wal_dir/forward/fwd-<index>.frames`` (atomic tmp+fsync+rename) *before*
the upstream push, and renamed ``.acked`` only after the upstream BYE ack
— so a leaf crash mid-forward re-pushes the batch on restart, and the
root's own WAL resume (committed-frame skip by root ordinal) makes the
re-push idempotent.  Crash safety of the whole tree requires a WAL on
**both** tiers.
"""

from __future__ import annotations

import asyncio
import contextlib
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Set

from ..api import wire as wire_module
from ..api.framing import (
    FrameReader,
    append_frame,
    payload_frame_body,
    summary_payload,
    write_stream_header,
)
from ..exceptions import FramingError, NetworkError, ParameterError
from .backoff import Backoff, retry_async
from .client import AggregatorClient, transient_push_error
from .server import AggregatorServer
from .session import CommittedSession

#: Root-ordinal stride per leaf: leaf ``L`` owns ``[L*STRIDE, (L+1)*STRIDE)``.
STRIDE = 1 << 20
#: Offset inside a leaf's band where counter-assigned (anonymous / composed)
#: origin sessions start; origin ordinals must stay below it to map directly.
ANON_OFFSET = STRIDE // 2

FORWARD_POLICIES = ("commit", "release")


@dataclass
class ForwardBatch:
    """One committed origin session, staged for the upstream push.

    ``bodies`` are the raw (unprefixed) summary-frame bodies — one per
    release part the origin session contributed (plain sessions: one; a
    mid-tier relay session: one per *its* origin sessions).  ``path`` is
    the durable spool file when the leaf runs a WAL, else ``None``
    (memory-only staging, no crash safety).
    """

    index: int                 # monotonic batch number (spool file name)
    root_ordinal: int          # ordinal this batch HELLOs upstream with
    covered_seq: int           # local commit seq this batch covers
    bodies: List[bytes] = field(repr=False, default_factory=list)
    path: Optional[Path] = None
    acked: bool = False


class RelayAggregatorServer(AggregatorServer):
    """A leaf aggregator that forwards committed sessions upstream.

    Accepts everything :class:`AggregatorServer` accepts, plus:

    Parameters
    ----------
    upstream:
        Address of the root (or next-tier) aggregator; it must run with
        ``accept_relays``.
    relay_ordinal:
        This leaf's position among its siblings; it prefixes every
        forwarded session's root ordinal (``relay_ordinal * STRIDE + o``),
        so give each leaf under one root a distinct ordinal.
    forward_on:
        ``"release"`` (default) flushes the forward queue lazily, when a
        RELEASE arrives; ``"commit"`` forwards each session eagerly as it
        commits (lower release latency, same bits).
    forward_timeout / forward_retry_delay / forward_retry_jitter /
    forward_max_elapsed:
        Per-operation timeout and backoff policy of the upstream pushes
        (same semantics as :func:`~repro.net.client.push_file_resilient`).
    upstream_token:
        Session token this leaf presents to the upstream in every HELLO
        (forward pushes *and* proxied releases).  The leaf-to-root hop is a
        trust boundary: when the root runs ``--auth-token``, every leaf
        needs the matching ``--upstream-token`` or its forwards are
        rejected with ``auth_failed``.  Independent of the leaf's own
        ``auth_token`` (what *its* clients must present).

    Privacy accounting across the tier: a relay proxies RELEASE upstream
    (:meth:`handle_release` never calls :meth:`perform_release`), so a
    release requested through any leaf charges exactly one budget — the
    root's — exactly once.  The leaf's own accountant only meters releases
    the leaf itself would compute locally, which a relay never does.
    """

    def __init__(self, epsilon: float, delta: float, k: Optional[int] = None,
                 *, upstream: str, relay_ordinal: int = 0,
                 forward_on: str = "release",
                 forward_timeout: float = 30.0,
                 forward_retry_delay: float = 0.2,
                 forward_retry_jitter: float = 0.5,
                 forward_max_elapsed: float = 60.0,
                 upstream_token: Optional[str] = None,
                 **kwargs) -> None:
        if forward_on not in FORWARD_POLICIES:
            raise ParameterError(
                f"forward_on must be one of {FORWARD_POLICIES}, got {forward_on!r}")
        if not isinstance(relay_ordinal, int) or relay_ordinal < 0:
            raise ParameterError(
                f"relay_ordinal must be a non-negative integer, got {relay_ordinal!r}")
        wal_dir = kwargs.get("wal_dir")
        super().__init__(epsilon, delta, k, **kwargs)
        self._upstream = upstream
        self._relay_ordinal = relay_ordinal
        self._forward_on = forward_on
        self._forward_timeout = forward_timeout
        self._forward_retry_delay = forward_retry_delay
        self._forward_retry_jitter = forward_retry_jitter
        self._forward_max_elapsed = forward_max_elapsed
        self._upstream_token = upstream_token
        self._forward_dir: Optional[Path] = (
            Path(wal_dir) / "forward" if wal_dir is not None else None)
        self._forward_lock = asyncio.Lock()
        self._forward_tasks: Set[asyncio.Task] = set()
        self._batches: List[ForwardBatch] = []
        self._batched_seqs: Set[int] = set()
        self._next_batch = 0
        self._next_anon = 0
        self._last_backoff: Optional[float] = None
        self._forward_error: Optional[str] = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    async def start(self, address) -> "RelayAggregatorServer":
        self._recover_forward_queue()
        await super().start(address)
        return self

    async def aclose(self, drain: bool = True) -> None:
        for task in set(self._forward_tasks):
            if drain:
                with contextlib.suppress(Exception):
                    await asyncio.wait_for(asyncio.shield(task),
                                           timeout=self._drain_timeout)
            task.cancel()
        if self._forward_tasks:
            await asyncio.gather(*self._forward_tasks, return_exceptions=True)
        await super().aclose(drain=drain)

    def _recover_forward_queue(self) -> None:
        """Rebuild the staged-batch state from ``wal_dir/forward``.

        Unacked batches reload their bodies for re-push; acked batches are
        kept as tombstones so their covered commit seqs are never re-batched
        and their anonymous-band root ordinals are never reissued.
        """
        if self._forward_dir is None:
            return
        self._forward_dir.mkdir(parents=True, exist_ok=True)
        for stray in self._forward_dir.glob("*.tmp"):
            with contextlib.suppress(OSError):
                stray.unlink()
        batches: List[ForwardBatch] = []
        paths = sorted(self._forward_dir.glob("fwd-*.frames")) + \
            sorted(self._forward_dir.glob("fwd-*.frames.acked"))
        for path in paths:
            acked = path.name.endswith(".acked")
            with path.open("rb") as fileobj:
                reader = FrameReader(fileobj, raw=True)
                meta = reader.header.meta or {}
                index = meta.get("relay_batch")
                root_ordinal = meta.get("root_ordinal")
                covered_seq = meta.get("covered_seq")
                if not all(isinstance(value, int)
                           for value in (index, root_ordinal, covered_seq)):
                    raise FramingError(
                        f"forward spool {path} is missing its relay batch "
                        "metadata; the forward directory is corrupt")
                bodies = [] if acked else list(reader)
            batches.append(ForwardBatch(index=index, root_ordinal=root_ordinal,
                                        covered_seq=covered_seq, bodies=bodies,
                                        path=path, acked=acked))
        batches.sort(key=lambda batch: batch.index)
        self._batches = batches
        self._batched_seqs = {batch.covered_seq for batch in batches}
        if batches:
            self._next_batch = max(batch.index for batch in batches) + 1
        anon_base = self._relay_ordinal * STRIDE + ANON_OFFSET
        anon_end = (self._relay_ordinal + 1) * STRIDE
        counters = [batch.root_ordinal - anon_base for batch in batches
                    if anon_base <= batch.root_ordinal < anon_end]
        if counters:
            self._next_anon = max(counters) + 1

    # ------------------------------------------------------------------
    # Forwarding
    # ------------------------------------------------------------------

    def note_committed(self, entry: CommittedSession) -> None:
        if self._forward_on != "commit":
            return
        task = asyncio.ensure_future(self._forward_flush_quietly())
        self._forward_tasks.add(task)
        task.add_done_callback(self._forward_tasks.discard)

    async def _forward_flush_quietly(self) -> None:
        """Eager (commit-policy) flush: failures wait for the next flush.

        The batch stays staged (and, with a WAL, durable on disk), so a
        dead upstream only delays the forward; the error is surfaced in
        ``stats()["forward"]["error"]`` and the release-time flush retries.
        """
        try:
            await self.forward_flush()
        except (NetworkError, OSError) as error:
            self._forward_error = str(error)

    async def forward_flush(self) -> int:
        """Push every staged and pending committed session upstream.

        Strictly sequential (one upstream session at a time, under a lock):
        unacked batches re-push first in batch order, then each not-yet-
        batched committed session is staged and pushed in canonical
        ``(ordinal, commit order)`` order.  Returns the number of batches
        acked by this call.  Raises :class:`NetworkError` when the retry
        budget is spent; everything already acked stays acked.
        """
        async with self._forward_lock:
            acked = 0
            for batch in self._batches:
                if not batch.acked:
                    await self._push_batch(batch)
                    acked += 1
            pending = [entry for entry
                       in sorted(self._committed, key=lambda e: e.sort_key)
                       if entry.seq not in self._batched_seqs]
            for entry in pending:
                batch = self._stage_batch(entry)
                await self._push_batch(batch)
                acked += 1
            self._forward_error = None
            return acked

    def _root_ordinal(self, entry: CommittedSession) -> int:
        base = self._relay_ordinal * STRIDE
        if entry.ordinal is not None and 0 <= entry.ordinal < ANON_OFFSET:
            return base + entry.ordinal
        ordinal = base + ANON_OFFSET + self._next_anon
        self._next_anon += 1
        return ordinal

    def _stage_batch(self, entry: CommittedSession) -> ForwardBatch:
        """Stage one committed session as a forward batch (durable if WAL)."""
        bodies = [payload_frame_body(summary_payload(part))
                  for part in entry.mergers]
        index = self._next_batch
        self._next_batch += 1
        batch = ForwardBatch(index=index, root_ordinal=self._root_ordinal(entry),
                             covered_seq=entry.seq, bodies=bodies)
        if self._forward_dir is not None:
            path = self._forward_dir / f"fwd-{index:08d}.frames"
            tmp = self._forward_dir / f"fwd-{index:08d}.tmp"
            with tmp.open("wb") as fileobj:
                write_stream_header(fileobj, k=self._k, meta={
                    "relay_batch": index,
                    "root_ordinal": batch.root_ordinal,
                    "covered_seq": batch.covered_seq,
                    "leaf": self._relay_ordinal,
                    "frames": len(bodies),
                })
                for body in bodies:
                    append_frame(fileobj, body)
                fileobj.flush()
                os.fsync(fileobj.fileno())
            os.replace(tmp, path)
            self._fsync_forward_dir()
            batch.path = path
        self._batches.append(batch)
        self._batched_seqs.add(entry.seq)
        return batch

    async def _push_batch(self, batch: ForwardBatch) -> None:
        """Push one staged batch upstream until its BYE ack is durable.

        Resumes idempotently: each reconnect re-HELLOs with the batch's
        root ordinal and skips the frames the upstream WAL already holds,
        so across any number of crashes (ours or the root's) each summary
        frame folds upstream exactly once.
        """
        backoff = Backoff(base=self._forward_retry_delay,
                          jitter=self._forward_retry_jitter,
                          max_elapsed=self._forward_max_elapsed)

        async def _cycle() -> None:
            # connect_retries=1: the enclosing retry_async loop owns the
            # backoff policy, so the client must not stack its own.
            client = AggregatorClient(
                self._upstream, k=self._k, ordinal=batch.root_ordinal,
                client_name=f"relay-{self._relay_ordinal}", role="relay",
                auth_token=self._upstream_token,
                timeout=self._forward_timeout, connect_retries=1)
            try:
                await client.connect()
                if not client.session_complete:
                    remaining = batch.bodies[min(client.committed,
                                                 len(batch.bodies)):]
                    if remaining:
                        await client.push_raw(remaining)
                    await client.bye()
            finally:
                self._last_backoff = backoff.last_delay
                await client.close(bye=False)

        def _give_up(last, attempts, policy) -> NetworkError:
            return NetworkError(
                f"forward of batch {batch.index} (root ordinal "
                f"{batch.root_ordinal}) to {self._upstream} not durably "
                f"committed within the {self._forward_max_elapsed:.1f}s "
                f"retry budget: {last}")

        push_start = self.metrics.clock()
        await retry_async(_cycle, backoff=backoff,
                          retryable=transient_push_error, give_up=_give_up)
        self.metrics.observe("forward.push_seconds",
                             self.metrics.clock() - push_start)
        self.metrics.inc("forward.batches_total")
        self._mark_acked(batch)

    def _mark_acked(self, batch: ForwardBatch) -> None:
        batch.acked = True
        batch.bodies = []
        if batch.path is not None and not batch.path.name.endswith(".acked"):
            acked_path = batch.path.with_name(batch.path.name + ".acked")
            os.replace(batch.path, acked_path)
            batch.path = acked_path
            self._fsync_forward_dir()

    def _fsync_forward_dir(self) -> None:
        fd = os.open(self._forward_dir, os.O_RDONLY)
        try:
            os.fsync(fd)
        finally:
            os.close(fd)

    # ------------------------------------------------------------------
    # Release and stats
    # ------------------------------------------------------------------

    async def handle_release(self, seed: Optional[int]) -> Dict:
        """Flush the forward queue, then proxy the RELEASE to the upstream.

        The reply is the root's released envelope re-encoded bit-exactly
        (:func:`~repro.api.wire.encode_payload`), so a client releasing
        through any leaf of the tree decodes the same histogram — same
        keys, values, dict order and metadata — it would get from the root
        directly, or from one flat server over every origin session.
        """
        await self.forward_flush()
        client = AggregatorClient(self._upstream,
                                  auth_token=self._upstream_token,
                                  timeout=self._forward_timeout,
                                  retry_delay=self._forward_retry_delay,
                                  retry_jitter=self._forward_retry_jitter)
        try:
            await client.connect()
            payload = await client.request_release_payload(seed)
        finally:
            await client.close(bye=False)
        self._releases += 1
        return wire_module.encode_payload(payload)

    def stats(self) -> Dict[str, object]:
        staged_unacked = sum(1 for batch in self._batches if not batch.acked)
        unbatched = sum(1 for entry in self._committed
                        if entry.seq not in self._batched_seqs)
        spool_bytes = 0
        for batch in self._batches:
            if batch.acked or batch.path is None:
                continue
            with contextlib.suppress(OSError):
                spool_bytes += batch.path.stat().st_size
        # Refresh the gauge before the base snapshot so the embedded
        # ``metrics`` stanza carries the depth this very reply reports.
        self.metrics.set_gauge("forward.queue_depth",
                               staged_unacked + unbatched)
        data = super().stats()
        data["role"] = "relay"
        data["forward"] = {
            "upstream": str(self._upstream),
            "policy": self._forward_on,
            "relay_ordinal": self._relay_ordinal,
            "queued": staged_unacked + unbatched,
            "acked": sum(1 for batch in self._batches if batch.acked),
            "spool_bytes": spool_bytes,
            "last_backoff": self._last_backoff,
            "error": self._forward_error,
        }
        return data


async def serve_relay(address, upstream, epsilon: float, delta: float,
                      k: Optional[int] = None, **kwargs) -> RelayAggregatorServer:
    """Start a :class:`RelayAggregatorServer` bound to ``address``."""
    server = RelayAggregatorServer(epsilon=epsilon, delta=delta, k=k,
                                   upstream=upstream, **kwargs)
    await server.start(address)
    return server
