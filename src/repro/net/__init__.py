"""Async aggregation service: server/client tier over the framed wire protocol.

The network subsystem of the paper's deployment story — ``m`` untrusted
clients ship Misra-Gries sketch exports to one aggregator, which merges them
as they arrive and publishes a differentially private histogram on request:

* :mod:`repro.net.protocol` — the control protocol (HELLO/PUSH/RELEASE/STATS
  verbs as tag-``0x02`` control frames layered on the PR-4 framed container)
  and :class:`FrameChannel`, the bounded-read asyncio frame pump.
* :mod:`repro.net.session` — the server-side session state machine
  (AWAIT_HELLO → READY ⇄ PUSHING → COMMITTED | REJECTED).
* :mod:`repro.net.server` — :class:`AggregatorServer`: concurrent sessions,
  per-session :class:`~repro.api.framing.StreamingMerger` folds, k agreement,
  fault containment, graceful drain.
* :mod:`repro.net.client` — :class:`AggregatorClient` (async) plus the
  synchronous one-shot helpers the ``repro push`` / ``repro request-release``
  CLI subcommands use, including the crash-surviving
  :func:`push_file_resilient`.
* :mod:`repro.net.wal` — the durability layer: per-session write-ahead
  spools of verbatim PUSH frames, burst-fsync commits, replay-on-restart.
* :mod:`repro.net.store` — the pluggable checkpoint ledger behind the WAL
  (sqlite first; the interface is redis-shaped so another backend is one
  module).
* :mod:`repro.net.backoff` — jittered, budget-capped retry delays and
  :func:`retry_async`, the one retry loop every resilient code path drives.
* :mod:`repro.net.budget` — :class:`BudgetAccountant`: server-side privacy
  budget accounting.  Every RELEASE charges the per-release (epsilon, delta)
  under basic or advanced composition; once a configured budget would be
  exceeded the release is refused with ``budget_exhausted``, and the charged
  count persists through the WAL checkpoint store so kill -9 cannot reset
  the budget.  Token auth at HELLO (``auth_token``) and per-session
  frame/byte/sketch quotas harden the same session plumbing.
* :mod:`repro.net.relay` — :class:`RelayAggregatorServer`: the
  aggregator-of-aggregators tier.  A leaf accepts normal client sessions
  and forwards each committed session's summary upstream (one fixed-point
  summary frame per origin session, durable forward queue, idempotent
  resume), so an ``N leaves x M clients`` tree releases bit-identically to
  one flat server over the same ``N*M`` sessions.

Observability: every layer above records into the server's
:class:`~repro.obs.metrics.MetricsRegistry` (``metrics=`` constructor
argument; on by default) — frame/fold/WAL-fsync latency histograms,
session gauges, budget spend — and the accept→fold→commit→release path is
wrapped in :class:`~repro.obs.trace.Tracer` spans (``--log-json``).  The
whole obs layer is read-side only: releases are bit-identical with it on,
off, or absent (property-tested in ``tests/property/test_obs_equivalence``).

A release triggered over the network is bit-identical (keys, values, dict
order) to ``repro merge --framed`` over the same exports with the same seed:
both fold each source through its own merger and combine the summaries with
:func:`~repro.api.framing.combine_mergers` in canonical (ordinal) order —
and, with ``repro serve --wal-dir``, that identity survives kill -9 at any
byte of the conversation: committed sessions replay from their spools in
recorded commit order.
"""

from .backoff import Backoff, retry_async
from .budget import BudgetAccountant, BudgetSpend
from .client import (AggregatorClient, fetch_stats, push_file,
                     push_file_resilient, request_release,
                     transient_push_error)
from .protocol import Address, FrameChannel, parse_address
from .relay import RelayAggregatorServer, serve_relay
from .server import AggregatorServer, serve
from .session import CommittedSession, Session, SessionState
from .store import (BUDGET_SESSION_ID, CheckpointStore, MemoryCheckpointStore,
                    SessionRecord, SqliteCheckpointStore, is_reserved_record,
                    open_store)
from .wal import SessionJournal, SessionWal, WalRecovery

__all__ = [
    "Address",
    "AggregatorClient",
    "AggregatorServer",
    "BUDGET_SESSION_ID",
    "Backoff",
    "BudgetAccountant",
    "BudgetSpend",
    "CheckpointStore",
    "CommittedSession",
    "FrameChannel",
    "MemoryCheckpointStore",
    "RelayAggregatorServer",
    "Session",
    "SessionJournal",
    "SessionRecord",
    "SessionState",
    "SessionWal",
    "SqliteCheckpointStore",
    "WalRecovery",
    "fetch_stats",
    "is_reserved_record",
    "open_store",
    "parse_address",
    "push_file",
    "push_file_resilient",
    "request_release",
    "retry_async",
    "serve",
    "serve_relay",
    "transient_push_error",
]
