"""Async aggregation service: server/client tier over the framed wire protocol.

The network subsystem of the paper's deployment story — ``m`` untrusted
clients ship Misra-Gries sketch exports to one aggregator, which merges them
as they arrive and publishes a differentially private histogram on request:

* :mod:`repro.net.protocol` — the control protocol (HELLO/PUSH/RELEASE/STATS
  verbs as tag-``0x02`` control frames layered on the PR-4 framed container)
  and :class:`FrameChannel`, the bounded-read asyncio frame pump.
* :mod:`repro.net.session` — the server-side session state machine
  (AWAIT_HELLO → READY ⇄ PUSHING → COMMITTED | REJECTED).
* :mod:`repro.net.server` — :class:`AggregatorServer`: concurrent sessions,
  per-session :class:`~repro.api.framing.StreamingMerger` folds, k agreement,
  fault containment, graceful drain.
* :mod:`repro.net.client` — :class:`AggregatorClient` (async) plus the
  synchronous one-shot helpers the ``repro push`` / ``repro request-release``
  CLI subcommands use.

A release triggered over the network is bit-identical (keys, values, dict
order) to ``repro merge --framed`` over the same exports with the same seed:
both fold each source through its own merger and combine the summaries with
:func:`~repro.api.framing.combine_mergers` in canonical (ordinal) order.
"""

from .client import AggregatorClient, fetch_stats, push_file, request_release
from .protocol import Address, FrameChannel, parse_address
from .server import AggregatorServer, serve
from .session import CommittedSession, Session, SessionState

__all__ = [
    "Address",
    "AggregatorClient",
    "AggregatorServer",
    "CommittedSession",
    "FrameChannel",
    "Session",
    "SessionState",
    "fetch_stats",
    "parse_address",
    "push_file",
    "request_release",
    "serve",
]
