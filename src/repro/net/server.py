"""`AggregatorServer`: the asyncio aggregation service.

The deployment story of the paper — ``m`` untrusted clients ship Misra-Gries
sketches to one aggregator that merges them and publishes one differentially
private histogram — as a long-running network service.  Clients connect over
TCP or a Unix-domain socket, speak the framed control protocol
(:mod:`repro.net.protocol`), and each session's frames are folded into a
per-session :class:`~repro.api.framing.StreamingMerger` as they arrive.

Determinism: committed sessions are combined with
:func:`~repro.api.framing.combine_mergers` in ``(ordinal, commit order)``
order, exactly the fold ``repro merge --framed file-per-client`` performs —
so a release triggered over the network is **bit-identical** (keys, values,
dict order) to the offline CLI over the same exports with the same seed.

Fault containment: a session that violates the protocol (bad magic, k
mismatch, truncated frame, payload outside a push burst) is answered with an
ERROR control frame, its partial state is discarded, and the connection is
closed — the server keeps serving every other session.  ``aclose()`` stops
accepting, drains in-flight sessions for ``drain_timeout`` seconds, then
cancels stragglers.
"""

from __future__ import annotations

import asyncio
import contextlib
import os
import time
from typing import Dict, List, Optional, Union

from pathlib import Path

import hmac

from .._validation import check_delta, check_epsilon, check_positive_int
from ..api.framing import StreamingMerger, combine_mergers
from ..api.wire import encode_histogram
from ..core.merging import MergeStrategy, PrivateMergedRelease
from ..dp.accounting import PrivacyParams
from ..exceptions import ParameterError, ProtocolError, RemoteError
from ..obs.metrics import as_registry
from ..obs.trace import Tracer
from .budget import BudgetAccountant
from .protocol import Address, DEFAULT_CHUNK_SIZE, FrameChannel, parse_address
from .session import CommittedSession, Session
from .store import CheckpointStore
from .wal import SessionWal

#: Ceiling on the per-session detail lists a STATS reply embeds
#: (``sessions`` and ``active``).  A million-client loadgen run commits a
#: million sessions; listing them all would put a multi-megabyte JSON
#: control frame on the wire per poll, so the reply carries the first
#: ``STATS_SESSION_CAP`` rows in canonical order plus the full counts
#: (``sessions_committed`` / ``sessions_active``).
STATS_SESSION_CAP = 64


class AggregatorServer:
    """Accept concurrent client sessions and release their merged aggregate.

    Parameters
    ----------
    epsilon, delta:
        Privacy budget of every release (trusted-merged strategy: Agarwal
        merge + GSHM with ``l = k``, the streamable regime).
    k:
        Sketch size every session must agree on.  ``None`` adopts the first
        session's declared ``k``; later disagreeing sessions are rejected.
    drain_timeout:
        Seconds :meth:`aclose` waits for in-flight sessions before
        cancelling them.
    chunk_size:
        Per-``read()`` byte ceiling of every session channel (bounded reads;
        TCP backpressure does the rest).
    wal_dir:
        Directory for the write-ahead log (:mod:`repro.net.wal`).  When set,
        every accepted PUSH frame is spooled verbatim before it is folded,
        PUSH acks imply fsync-durability, committed sessions are replayed
        bit-identically on restart, and clients resume by ordinal.
    store:
        Checkpoint-store override for the WAL (defaults to sqlite inside
        ``wal_dir``); ignored without ``wal_dir``.
    read_timeout:
        Per-read wall-clock bound (seconds) on every session socket read —
        a peer that cannot produce a complete frame in time (slow-loris) is
        rejected with an ERROR frame.  ``None`` disables the bound.
    accept_relays:
        Accept sessions that HELLO with ``role=relay`` (leaf aggregators
        forwarding per-origin-session summary frames).  Each relay frame
        folds into its own release part, so the combine at release time is
        bit-identical to a flat server over the origin sessions.  Off by
        default: a relay summary folded as a plain frame would silently
        change release metadata, so relays must be opted into.
    budget, composition, delta_slack:
        Privacy budget accounting (:mod:`repro.net.budget`).  ``budget``
        (a :class:`~repro.dp.accounting.PrivacyParams`) caps the cumulative
        spend composed across releases under ``composition`` (``"basic"``
        or ``"advanced"``, Dwork & Roth Thm 3.20 with slack
        ``delta_slack``, default half the budget delta); once the next
        release would exceed it, RELEASE is refused with a
        ``budget_exhausted`` ERROR.  Without a budget the accountant still
        meters the honest cumulative spend for STATS.  With ``wal_dir`` the
        charged release count persists through the checkpoint store, so a
        kill -9 restart cannot reset the budget.
    auth_token:
        Shared-secret session token.  When set, every HELLO — client *and*
        relay role; the leaf-to-root hop is a trust boundary — must carry a
        matching ``token`` field or the session is rejected with an
        ``auth_failed`` ERROR before any state is touched.
    max_session_frames, max_session_bytes, max_session_sketches:
        Per-session quotas (frames pushed, payload bytes pushed, origin
        sketch exports — for plain clients sketches == frames, a relay
        summary counts its origin exports).  A push that would cross a
        quota is rejected with a ``quota_exceeded`` ERROR containing only
        the offending session; the over-quota frame is neither spooled nor
        folded.  Resumed sessions count their already-committed state.
    metrics:
        Observability (:mod:`repro.obs`).  ``True`` (the default) builds a
        process-local :class:`~repro.obs.metrics.MetricsRegistry` whose
        counters/gauges/histograms the session, WAL, budget and relay
        layers record into; ``False`` disables it (every instrument write
        becomes a no-op and STATS carries no ``metrics`` stanza).  Pass a
        registry instance to share one across servers (tests inject a
        fake-clock registry this way).  The registry is a pure read-side
        layer: releases are bit-identical either way.
    log_json:
        A writable text stream for structured span logs (``repro serve
        --log-json``): one JSON line per traced span (session, push,
        release) with monotonic-clock durations.
    """

    def __init__(self, epsilon: float, delta: float, k: Optional[int] = None,
                 *, drain_timeout: float = 5.0,
                 chunk_size: int = DEFAULT_CHUNK_SIZE,
                 max_releases: Optional[int] = None,
                 wal_dir: Optional[Union[str, Path]] = None,
                 store: Optional[CheckpointStore] = None,
                 read_timeout: Optional[float] = 30.0,
                 accept_relays: bool = False,
                 budget: Optional[PrivacyParams] = None,
                 composition: str = "basic",
                 delta_slack: Optional[float] = None,
                 auth_token: Optional[str] = None,
                 max_session_frames: Optional[int] = None,
                 max_session_bytes: Optional[int] = None,
                 max_session_sketches: Optional[int] = None,
                 metrics=True, log_json=None) -> None:
        check_epsilon(epsilon)
        # delta == 0 is a valid configuration: PrivacyParams and the pure_dp
        # mechanism support pure epsilon-DP (the trusted-merged *release*
        # path still needs delta > 0 and says so at release time).
        check_delta(delta, allow_zero=True)
        if k is not None:
            check_positive_int(k, "k")
        if max_releases is not None:
            check_positive_int(max_releases, "max_releases")
        if read_timeout is not None and read_timeout <= 0:
            raise ParameterError(
                f"read_timeout must be positive seconds or None, got {read_timeout!r}")
        if auth_token is not None and (not isinstance(auth_token, str)
                                       or not auth_token):
            raise ParameterError("auth_token must be a non-empty string or None")
        for name, value in (("max_session_frames", max_session_frames),
                            ("max_session_bytes", max_session_bytes),
                            ("max_session_sketches", max_session_sketches)):
            if value is not None:
                check_positive_int(value, name)
        self.epsilon = epsilon
        self.delta = delta
        self._k = k
        self._drain_timeout = drain_timeout
        self._chunk_size = chunk_size
        self._max_releases = max_releases
        self.metrics = as_registry(metrics)
        self.tracer = Tracer(self.metrics, stream=log_json)
        self._wal = (SessionWal(wal_dir, store=store, metrics=self.metrics)
                     if wal_dir is not None else None)
        self._read_timeout = read_timeout
        self.accept_relays = accept_relays
        self._auth_token = auth_token
        self.max_session_frames = max_session_frames
        self.max_session_bytes = max_session_bytes
        self.max_session_sketches = max_session_sketches
        self.accountant = BudgetAccountant(
            PrivacyParams(epsilon=epsilon, delta=delta),
            budget=budget, composition=composition, delta_slack=delta_slack,
            store=self._wal.store if self._wal is not None else None,
            metrics=self.metrics)
        self._started_at: Optional[float] = None
        self._started_wall: Optional[float] = None
        self._live_sessions: set = set()
        self._recovered = False
        self._active_ordinals: set = set()
        self._resumed_noted: set = set()
        self._release_limit = asyncio.Event()
        self._server: Optional[asyncio.AbstractServer] = None
        self._address: Optional[Address] = None
        self._bound: Optional[str] = None
        self._tasks: set = set()
        self._committed: List[CommittedSession] = []
        self._commit_seq = 0
        self._frames_seen = 0
        self._length_seen = 0
        self._releases = 0
        self._rejected = 0
        self._closing = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    async def start(self, address: Union[str, Address]) -> "AggregatorServer":
        """Bind and start accepting (``host:port``, ``:0`` for an ephemeral
        port, or ``unix:/path``)."""
        if self._server is not None:
            raise ParameterError("server already started")
        if self._wal is not None and not self._recovered:
            self._recover_from_wal()
        self._address = parse_address(address)
        # asyncio's default listen backlog (100) is smaller than one loadgen
        # connect burst; a full backlog fails unix connects outright instead
        # of queueing them, so listen deep enough for arrival spikes.
        backlog = 1024
        if self._address.kind == "unix":
            self._server = await asyncio.start_unix_server(
                self._on_connect, path=self._address.path, backlog=backlog)
            self._bound = f"unix:{self._address.path}"
        else:
            self._server = await asyncio.start_server(
                self._on_connect, host=self._address.host,
                port=self._address.port, backlog=backlog)
            sockname = self._server.sockets[0].getsockname()
            self._bound = f"{sockname[0]}:{sockname[1]}"
        self._started_at = time.monotonic()
        self._started_wall = time.time()
        return self

    @property
    def address(self) -> str:
        """The bound endpoint (actual port for ``:0`` requests)."""
        if self._bound is None:
            raise ParameterError("server not started yet")
        return self._bound

    @property
    def k(self) -> Optional[int]:
        return self._k

    @property
    def wal(self) -> Optional[SessionWal]:
        """The write-ahead log, or ``None`` when running memoryless."""
        return self._wal

    @property
    def read_timeout(self) -> Optional[float]:
        return self._read_timeout

    def _recover_from_wal(self) -> None:
        """Replay the WAL: committed sessions rejoin the release set.

        Runs once, before the socket binds, so the first release after a
        restart already covers everything durable.  Open (uncommitted)
        records stay on disk and are replayed lazily when their client
        resumes by ordinal.
        """
        self._recovered = True
        recovery = self._wal.recover()
        if recovery.k is not None:
            if self._k is None:
                self._k = recovery.k
            elif self._k != recovery.k:
                raise ParameterError(
                    f"wal dir holds sessions at k={recovery.k} but the "
                    f"server was started with -k {self._k}")
        for entry in recovery.committed:
            self._committed.append(entry)
            self._frames_seen += entry.frames
            self._length_seen += entry.stream_length
        self._commit_seq = max(self._commit_seq, recovery.max_seq)

    async def serve_forever(self) -> None:
        """Serve until cancelled (``repro serve`` runs this)."""
        await self._server.serve_forever()

    async def aclose(self, drain: bool = True) -> None:
        """Stop accepting; drain in-flight sessions, then cancel stragglers."""
        if self._server is None or self._closing:
            return
        self._closing = True
        self._server.close()
        with contextlib.suppress(Exception):
            await self._server.wait_closed()
        if drain and self._tasks:
            done, pending = await asyncio.wait(
                set(self._tasks), timeout=self._drain_timeout)
            for task in pending:
                task.cancel()
            if pending:
                await asyncio.gather(*pending, return_exceptions=True)
        elif self._tasks:
            for task in set(self._tasks):
                task.cancel()
            await asyncio.gather(*self._tasks, return_exceptions=True)
        if self._address is not None and self._address.kind == "unix":
            with contextlib.suppress(OSError):
                os.unlink(self._address.path)
        if self._wal is not None:
            with contextlib.suppress(Exception):
                self._wal.close()

    async def __aenter__(self) -> "AggregatorServer":
        return self

    async def __aexit__(self, exc_type, exc, tb) -> None:
        await self.aclose(drain=exc_type is None)

    def _on_connect(self, reader: asyncio.StreamReader,
                    writer: asyncio.StreamWriter) -> None:
        channel = FrameChannel(reader, writer, chunk_size=self._chunk_size)
        session = Session(self, channel)
        task = asyncio.ensure_future(session.run())
        self._tasks.add(task)
        self._live_sessions.add(session)
        task.add_done_callback(self._tasks.discard)
        task.add_done_callback(
            lambda _, s=session: self._session_gone(s))
        self.metrics.set_gauge("server.sessions_active", len(self._tasks))

    def _session_gone(self, session: Session) -> None:
        self._live_sessions.discard(session)
        self.metrics.set_gauge("server.sessions_active", len(self._tasks))

    # ------------------------------------------------------------------
    # Session callbacks
    # ------------------------------------------------------------------

    @property
    def requires_auth(self) -> bool:
        """True when HELLO must carry the shared session token."""
        return self._auth_token is not None

    def check_auth(self, token: object) -> bool:
        """Constant-time comparison of a HELLO ``token`` field."""
        if self._auth_token is None:
            return True
        if not isinstance(token, str):
            return False
        return hmac.compare_digest(token.encode("utf-8"),
                                   self._auth_token.encode("utf-8"))

    def adopt_k(self, declared: int) -> int:
        """Adopt the first declared sketch size; return the agreed one."""
        if self._k is None:
            self._k = declared
        return self._k

    def note_frame(self, payload, frames: int = 1) -> None:
        """Count one accepted frame (relay summaries count their origin
        exports, so root stats agree with the flat server's)."""
        self._frames_seen += frames
        self._length_seen += payload.stream_length

    def note_resumed(self, session_id: str, frames: int,
                     stream_length: int) -> None:
        """Count a resumed session's replayed frames once per identity."""
        if session_id in self._resumed_noted:
            return
        self._resumed_noted.add(session_id)
        self._frames_seen += frames
        self._length_seen += stream_length

    def note_rejected(self, session: Session, reason: str) -> None:
        self._rejected += 1
        self.metrics.inc("server.rejects_total")

    def claim_ordinal(self, ordinal: Optional[int]) -> bool:
        """Reserve an ordinal for one live session (WAL sessions only).

        The ordinal is the durable session identity, so two live sessions
        sharing one would interleave appends into one spool; the second
        HELLO is rejected with ``ordinal_active``.
        """
        if ordinal is None:
            return False
        if ordinal in self._active_ordinals:
            error = ProtocolError(
                f"ordinal {ordinal} already has a live session; resume is "
                "only possible after the previous connection is gone")
            error.code = "ordinal_active"
            raise error
        self._active_ordinals.add(ordinal)
        return True

    def release_ordinal(self, ordinal: Optional[int]) -> None:
        self._active_ordinals.discard(ordinal)

    def commit(self, session: Session) -> None:
        """A session ended cleanly: its summary joins the release set."""
        merger = session.take_merger()
        parts = session.take_parts()
        journal = session.take_journal()
        if (merger is None or not merger.frames) and not parts:
            if journal is not None:
                journal.close()
            return
        self._commit_seq += 1
        if journal is not None:
            # fsync-on-commit session record: the commit seq becomes durable
            # before the BYE ack, so a restart replays this session in the
            # exact commit order the live run used.
            journal.mark_committed(self._commit_seq)
        entry = CommittedSession(
            seq=self._commit_seq, ordinal=session.ordinal,
            client=session.client,
            merger=merger if not parts else None, parts=parts)
        self._committed.append(entry)
        self.metrics.inc("server.commits_total")
        self.note_committed(entry)

    def note_committed(self, entry: CommittedSession) -> None:
        """Hook: a session just joined the release set (relay forwards here)."""

    # ------------------------------------------------------------------
    # Release and stats
    # ------------------------------------------------------------------

    def committed_mergers(self) -> List[StreamingMerger]:
        """Committed release parts in canonical order.

        Sessions sort by ``(ordinal, commit order)``; a relay session then
        contributes its per-origin-session parts in push order, so the flat
        list is exactly the part sequence a flat server over the origin
        sessions would combine.
        """
        parts: List[StreamingMerger] = []
        for entry in sorted(self._committed, key=lambda e: e.sort_key):
            parts.extend(entry.mergers)
        return parts

    def perform_release(self, seed: Optional[int]) -> Dict:
        """Combine committed sessions and release; returns a v2 envelope.

        Raises :class:`RemoteError` (reported to the requesting client as an
        ERROR frame by the session loop) when nothing has been committed,
        when the privacy budget is exhausted (``budget_exhausted``), or when
        the server runs pure DP (``delta == 0``: the trusted-merged GSHM
        release needs ``delta > 0``).

        Charge ordering: the accountant charges — and durably persists the
        new release count — *before* the histogram is computed, so a crash
        between charge and reply costs at most one unconsumed charge and
        can never under-count spend.  The charge never touches the release
        RNG: an admitted release is bit-identical to an unaccounted
        server's.
        """
        with self.tracer.span("release") as span:
            parts = self.committed_mergers()
            span["parts"] = len(parts)
            if not parts or self._k is None:
                raise RemoteError("no committed sketch exports to release yet",
                                  code="nothing_to_release")
            if self.delta == 0.0:
                raise RemoteError(
                    "this server runs pure DP (delta=0) and the trusted-merged "
                    "release mechanism (GSHM) requires delta > 0; release "
                    "offline with a pure-DP mechanism instead",
                    code="pure_dp_release_unsupported")
            self.accountant.charge()
            combined = combine_mergers(parts, self._k)
            mechanism = PrivateMergedRelease(
                epsilon=self.epsilon, delta=self.delta, k=self._k,
                strategy=MergeStrategy.TRUSTED_MERGED)
            histogram = combined.release(mechanism, rng=seed)
            self._releases += 1
            self.metrics.inc("server.releases_total")
            return encode_histogram(histogram)

    async def handle_release(self, seed: Optional[int]) -> Dict:
        """Serve one RELEASE verb.  A relay overrides this to flush its
        forward queue upstream and proxy the release to the root."""
        return self.perform_release(seed)

    def note_release_sent(self) -> None:
        """The reply left the session; arm the ``--releases N`` exit event."""
        if self._max_releases is not None and self._releases >= self._max_releases:
            self._release_limit.set()

    async def wait_release_limit(self) -> None:
        """Block until ``max_releases`` releases have been served and sent."""
        await self._release_limit.wait()

    def stats(self) -> Dict[str, object]:
        """Aggregate counters (the STATS verb's reply fields).

        Besides the totals, ``sessions`` lists committed sessions (ordinal,
        client, origin frame count, commit seq) in canonical release order
        — capped at :data:`STATS_SESSION_CAP` rows so a million-session
        server still answers STATS with a small frame (``sessions_listed``
        says how many rows made the cut; ``sessions_committed`` is always
        the full count) — and ``uptime_s`` is the seconds since the socket
        bound (``uptime`` is the same value, kept for pre-obs consumers).
        ``active`` lists live connections with wall-clock ``connected_at``
        / ``last_frame_at`` timestamps, ``wal`` reports the spool
        directory's on-disk footprint (``None`` without a WAL; it stats the
        spool files, so cost scales with session count), and ``metrics``
        embeds the versioned :meth:`~repro.obs.metrics.MetricsRegistry.
        snapshot` stanza (``None`` when the server runs ``metrics=False``).
        Relays extend all this with a ``forward`` stanza (see
        ``RelayAggregatorServer``).

        The old top-level ``epsilon``/``delta`` keys are gone: they read as
        a *total* guarantee but were per-release parameters.  The
        ``privacy`` stanza replaces them with the honest breakdown —
        ``per_release``, the cumulative ``spent`` under the configured
        composition, and ``remaining``/``budget`` when a budget is set.
        """
        uptime = (time.monotonic() - self._started_at
                  if self._started_at is not None else None)
        committed = sorted(self._committed, key=lambda e: e.sort_key)
        listed = committed[:STATS_SESSION_CAP]
        active = sorted(self._live_sessions,
                        key=lambda s: s.connected_at)[:STATS_SESSION_CAP]
        wal_stanza = None
        if self._wal is not None:
            usage = self._wal.spool_usage()
            wal_stanza = {"dir": str(self._wal.wal_dir), **usage}
        return {
            "k": self._k,
            "role": "aggregator",
            "accept_relays": self.accept_relays,
            "auth_required": self.requires_auth,
            "quota": {
                "max_session_frames": self.max_session_frames,
                "max_session_bytes": self.max_session_bytes,
                "max_session_sketches": self.max_session_sketches,
            },
            "sessions_active": len(self._tasks),
            "sessions_committed": len(self._committed),
            "sessions_rejected": self._rejected,
            "sessions_listed": len(listed),
            "sessions": [
                {"ordinal": entry.ordinal, "client": entry.client,
                 "frames": entry.frames, "seq": entry.seq}
                for entry in listed],
            "active": [
                {"ordinal": session.ordinal, "client": session.client,
                 "role": session.role, "state": session.state.value,
                 "frames": session.frames_accepted,
                 "bytes": session.bytes_received,
                 "connected_at": session.connected_at,
                 "last_frame_at": session.last_frame_at}
                for session in active],
            "frames": self._frames_seen,
            "stream_length": self._length_seen,
            "releases": self._releases,
            "privacy": self.accountant.as_stats(),
            "uptime": uptime,
            "uptime_s": uptime,
            "started_at": self._started_wall,
            "wal": wal_stanza,
            "metrics": self.metrics.snapshot(),
        }


async def serve(address: Union[str, Address], epsilon: float, delta: float,
                k: Optional[int] = None, **kwargs) -> AggregatorServer:
    """Start an :class:`AggregatorServer` bound to ``address``."""
    server = AggregatorServer(epsilon=epsilon, delta=delta, k=k, **kwargs)
    return await server.start(address)
