"""`AggregatorClient`: connect/push/release against an aggregation server.

The client side of the framed control protocol.  Async first —

.. code-block:: python

    async with AggregatorClient("127.0.0.1:7777", k=256, ordinal=0) as client:
        await client.push(payloads)            # wire-v2 envelopes
        histogram = await client.request_release(seed=0)

— with synchronous one-shot helpers (:func:`push_file`,
:func:`request_release`, :func:`fetch_stats`, :func:`push_file_resilient`)
for the CLI and scripts.  ``connect`` retries with jittered exponential
backoff under an optional max-elapsed budget (:mod:`repro.net.backoff`);
every operation runs under a hard timeout and raises
:class:`~repro.exceptions.NetworkError` instead of hanging.  ERROR frames
from the server raise :class:`~repro.exceptions.RemoteError` with the
server's machine-readable ``code``.

Idempotent resume: against a server running a write-ahead log, the HELLO
ack reports how many of this ordinal's frames are already fsync-durable
(``self.committed``); :meth:`AggregatorClient.push_file` skips that many
frames, so a client that reconnects after a crash — its own or the
server's — pushes each frame exactly once.  :func:`push_file_resilient`
wraps the whole connect/resume/push/bye cycle in a backoff retry loop.
"""

from __future__ import annotations

import asyncio
from pathlib import Path
from typing import Dict, Iterable, List, Mapping, Optional, Union

from ..api import framing
from ..api.framing import FrameHeader, FrameReader
from ..api.wire import WirePayload, payload_to_histogram
from ..core.results import PrivateHistogram
from ..exceptions import NetworkError, ProtocolError, RemoteError
from ..obs.metrics import as_registry
from ..sketches.base import FrequencySketch
from .backoff import Backoff, retry_async
from .protocol import (
    BYE,
    HELLO,
    OK,
    PUSH,
    RELEASE,
    STATS,
    Address,
    FrameChannel,
    open_channel,
    parse_address,
)

Pushable = Union[Mapping, WirePayload, FrequencySketch]


class AggregatorClient:
    """One aggregation session against an :class:`AggregatorServer`.

    Parameters
    ----------
    address:
        ``"host:port"`` or ``"unix:/path"``.
    k:
        Sketch size this client's exports use (declared in HELLO; the server
        rejects the session on disagreement).
    ordinal:
        This client's position in the canonical release order.  Give each
        pushing client a distinct ordinal to make the released histogram
        bit-reproducible regardless of network interleaving.
    role:
        Declared in HELLO when set.  ``"relay"`` marks this session's frames
        as relay *summary* frames (one per origin session, folded into their
        own release parts by a server started with ``accept_relays``).
    auth_token:
        Shared session token sent as the HELLO ``token`` field.  Required
        (for every role — a relay leaf authenticates to its root like any
        client) when the server was started with ``--auth-token``; a
        missing or wrong token is rejected with an ``auth_failed`` ERROR.
    timeout:
        Hard per-operation timeout in seconds.
    connect_retries / retry_delay / retry_jitter / retry_max_elapsed:
        Connection attempts, the backoff base between them (delays grow
        exponentially from it, stretched by up to ``retry_jitter`` relative
        jitter), and an optional wall-clock budget across all attempts.
    metrics:
        An optional :class:`~repro.obs.metrics.MetricsRegistry` (shared:
        ``repro loadgen`` hands every simulated client one registry) that
        records ``client.connect_seconds`` / ``client.push_seconds`` /
        ``client.release_seconds`` histograms and frame/byte counters.
        ``None`` (the default) disables client-side metrics.
    """

    def __init__(self, address: Union[str, Address], *, k: Optional[int] = None,
                 ordinal: Optional[int] = None, client_name: Optional[str] = None,
                 role: Optional[str] = None, auth_token: Optional[str] = None,
                 timeout: float = 30.0, connect_retries: int = 5,
                 retry_delay: float = 0.2, retry_jitter: float = 0.1,
                 retry_max_elapsed: Optional[float] = None,
                 metrics=None) -> None:
        self._address = parse_address(address)
        self._k = k
        self._ordinal = ordinal
        self._client_name = client_name
        self._role = role
        self._auth_token = auth_token
        self._timeout = timeout
        self._connect_retries = max(1, int(connect_retries))
        self._retry_delay = retry_delay
        self._retry_jitter = retry_jitter
        self._retry_max_elapsed = retry_max_elapsed
        self.metrics = as_registry(metrics)
        self._channel: Optional[FrameChannel] = None
        self.server_k: Optional[int] = None
        self.frames_pushed = 0
        #: Frames the server already holds durably for this ordinal (WAL
        #: resume; reported by the HELLO ack, 0 otherwise).
        self.committed = 0
        #: True when the server says this ordinal's session already ended
        #: cleanly — there is nothing left to push.
        self.session_complete = False

    # ------------------------------------------------------------------
    # Connection lifecycle
    # ------------------------------------------------------------------

    async def __aenter__(self) -> "AggregatorClient":
        await self.connect()
        return self

    async def __aexit__(self, exc_type, exc, tb) -> None:
        await self.close(bye=exc_type is None)

    async def _guard(self, awaitable, what: str):
        try:
            return await asyncio.wait_for(awaitable, timeout=self._timeout)
        except asyncio.TimeoutError:
            await self._abort()
            raise NetworkError(
                f"{what} timed out after {self._timeout:.1f}s") from None
        except (ConnectionError, EOFError) as error:
            await self._abort()
            raise NetworkError(f"{what} failed: {error}") from None
        except RemoteError:
            # The server rejected the session and is closing it; drop our
            # side too so the error propagates without leaking a transport.
            await self._abort()
            raise

    async def connect(self) -> "AggregatorClient":
        """Connect (with retries), open the framed stream, shake hands."""
        backoff = Backoff(base=self._retry_delay, jitter=self._retry_jitter,
                          max_elapsed=self._retry_max_elapsed)

        async def _open() -> FrameChannel:
            return await asyncio.wait_for(
                open_channel(self._address), timeout=self._timeout)

        def _give_up(last, attempts, policy) -> NetworkError:
            return NetworkError(
                f"could not connect to {self._address} after "
                f"{attempts} attempt(s) ({policy.elapsed:.1f}s): {last}")

        connect_start = self.metrics.clock()
        self._channel = await retry_async(
            _open, backoff=backoff,
            retryable=(ConnectionError, OSError, asyncio.TimeoutError),
            max_attempts=self._connect_retries, give_up=_give_up)
        try:
            result = await self._guard(self._handshake(), "handshake")
        except BaseException:
            await self._abort()
            raise
        self.metrics.observe("client.connect_seconds",
                             self.metrics.clock() - connect_start)
        return result

    async def _handshake(self) -> "AggregatorClient":
        header = FrameHeader(framing=framing.FRAMING_VERSION, frames=None,
                             k=self._k, meta={})
        await self._channel.send_prefix(header)
        hello: Dict[str, object] = {}
        if self._k is not None:
            hello["k"] = int(self._k)
        if self._ordinal is not None:
            hello["ordinal"] = int(self._ordinal)
        if self._client_name is not None:
            hello["client"] = self._client_name
        if self._role is not None:
            hello["role"] = self._role
        if self._auth_token is not None:
            hello["token"] = self._auth_token
        await self._channel.send_control(HELLO, **hello)
        greeting = await self._channel.read_prefix()
        self.server_k = greeting.k
        ack = await self._expect_control(OK, re=HELLO)
        agreed = ack.get("k")
        if isinstance(agreed, int):
            self.server_k = agreed
        committed = ack.get("committed")
        self.committed = committed if isinstance(committed, int) else 0
        self.session_complete = bool(ack.get("complete", False))
        return self

    async def close(self, bye: bool = True) -> None:
        """End the session; ``bye=True`` waits for the commit ack."""
        if self._channel is None:
            return
        if bye:
            try:
                await self._guard(self._say_bye(), "bye")
            except NetworkError:
                pass
        await self._abort()

    async def bye(self) -> None:
        """End the session, *requiring* the commit ack (raises on failure).

        Unlike ``close(bye=True)``, which swallows a lost ack, this is the
        strict form resilient pushers need: until the ack arrives the
        session is not durably committed and the push must be retried.
        """
        await self._guard(self._say_bye(), "bye")
        await self._abort()

    async def _say_bye(self) -> None:
        await self._channel.send_control(BYE)
        await self._expect_control(OK, re=BYE)

    async def _abort(self) -> None:
        if self._channel is not None:
            channel, self._channel = self._channel, None
            await channel.close()

    # ------------------------------------------------------------------
    # Operations
    # ------------------------------------------------------------------

    def _require_channel(self) -> FrameChannel:
        if self._channel is None:
            raise NetworkError("client is not connected (use `async with` "
                               "or call connect() first)")
        return self._channel

    async def _expect_control(self, verb: str, **expected) -> Dict[str, object]:
        kind, value = await self._require_channel().next_event()
        if kind == "eof":
            raise NetworkError("server closed the connection mid-exchange")
        if kind != "control":
            raise ProtocolError(f"expected a control frame, got a {kind} frame")
        got = value.get("verb")
        if got == "error":
            raise RemoteError(str(value.get("message", "server error")),
                              code=str(value.get("code", "error")))
        if got != verb or any(value.get(field) != wanted
                              for field, wanted in expected.items()):
            raise ProtocolError(f"expected {verb!r} {expected or ''}, got {value!r}")
        return value

    async def push(self, payloads: Iterable[Pushable]) -> int:
        """Push sketch exports (envelope dicts, payloads or sketches)."""
        from ..api import wire as wire_module

        encoded: List[bytes] = []
        for payload in payloads:
            if isinstance(payload, FrequencySketch):
                payload = wire_module.encode_sketch(payload)
            encoded.append(framing.encode_payload_frame(payload))
        return await self._guard(self._push_bodies(encoded), "push")

    async def push_raw(self, frame_bodies: Iterable[bytes]) -> int:
        """Push already-encoded payload frame bodies verbatim."""
        encoded = [framing.encode_frame(body) for body in frame_bodies]
        return await self._guard(self._push_bodies(encoded), "push")

    async def push_encoded(self, frames: List[bytes]) -> int:
        """Push fully wire-encoded frames (``framing.encode_frame`` output).

        The zero-encode hot path for ``repro loadgen``: the harness encodes
        each payload once and shares the bytes across thousands of
        simulated clients instead of re-encoding per session.
        """
        return await self._guard(self._push_bodies(frames), "push")

    async def abort_mid_push(self, frame: bytes) -> None:
        """Declare a 2-frame burst, send one frame, drop the connection.

        Churn simulation for the load harness: a clean EOF from READY
        *commits* a session, so simulating a crashed client requires dying
        mid-declared-burst — the server discards the partial session
        (nothing was committed) and keeps serving everyone else.
        """
        channel = self._require_channel()
        await channel.send_control(PUSH, frames=2)
        await channel.send_bytes(frame)
        await self._abort()

    async def _push_bodies(self, encoded: List[bytes]) -> int:
        clock = self.metrics.clock
        push_start = clock()
        channel = self._require_channel()
        await channel.send_control(PUSH, frames=len(encoded))
        for frame in encoded:
            await channel.send_bytes(frame)
        ack = await self._expect_control(OK, re=PUSH, folded=len(encoded))
        self.frames_pushed += len(encoded)
        self.metrics.observe("client.push_seconds", clock() - push_start)
        self.metrics.inc("client.frames_total", len(encoded))
        self.metrics.inc("client.bytes_total",
                         sum(len(frame) for frame in encoded))
        return int(ack.get("folded", len(encoded)))

    async def push_file(self, source: Union[str, Path], burst: int = 64,
                        skip: Optional[int] = None,
                        throttle: float = 0.0) -> int:
        """Push every frame of a packed (``repro pack``) framed stream file.

        Frames are forwarded verbatim (no decode/re-encode on the client) in
        PUSH bursts of at most ``burst`` frames, so client memory stays at
        ``burst`` frames regardless of the file size.

        ``skip`` leading frames are read but not pushed; it defaults to
        ``self.committed`` — the durable frame count a WAL-backed server
        reported in the HELLO ack — which is exactly the idempotent-resume
        rule: frames the server already holds are never pushed twice.
        ``throttle`` sleeps that many seconds between bursts (rate limiting;
        the chaos harness uses it to widen crash windows).  Returns the
        number of frames actually pushed (skipped frames excluded).
        """
        if skip is None:
            skip = self.committed
        total = 0
        with Path(source).open("rb") as fileobj:
            reader = FrameReader(fileobj, raw=True)
            if (self._k is not None and reader.header.k is not None
                    and reader.header.k != self._k):
                raise ProtocolError(
                    f"{source} declares k={reader.header.k} but this session "
                    f"runs at k={self._k}")
            remaining_skip = max(0, int(skip))
            batch: List[bytes] = []
            for body in reader:
                if remaining_skip:
                    remaining_skip -= 1
                    continue
                batch.append(body)
                if len(batch) >= burst:
                    total += await self.push_raw(batch)
                    batch = []
                    if throttle:
                        await asyncio.sleep(throttle)
            if batch:
                total += await self.push_raw(batch)
        return total

    async def request_release(self, seed: Optional[int] = None) -> PrivateHistogram:
        """Trigger the private release; returns the decoded histogram."""
        return payload_to_histogram(await self.request_release_payload(seed))

    async def request_release_payload(self,
                                      seed: Optional[int] = None) -> WirePayload:
        """Trigger the private release; returns the raw released payload.

        Relays proxy a downstream RELEASE through this form so the envelope
        they hand back is the root's released payload re-encoded bit-exactly,
        not a decode/re-encode round trip through ``PrivateHistogram``.
        """
        release_start = self.metrics.clock()
        payload = await self._guard(self._request_release(seed), "release")
        self.metrics.observe("client.release_seconds",
                             self.metrics.clock() - release_start)
        return payload

    async def _request_release(self, seed: Optional[int]) -> WirePayload:
        channel = self._require_channel()
        await channel.send_control(RELEASE,
                                   seed=int(seed) if seed is not None else None)
        kind, value = await channel.next_event()
        if kind == "eof":
            raise NetworkError("server closed the connection mid-release")
        if kind == "control":
            if value.get("verb") == "error":
                raise RemoteError(str(value.get("message", "release failed")),
                                  code=str(value.get("code", "error")))
            raise ProtocolError(f"expected the released histogram, got {value!r}")
        return value

    async def stats(self) -> Dict[str, object]:
        """The server's aggregate counters (STATS verb)."""
        return await self._guard(self._stats(), "stats")

    async def _stats(self) -> Dict[str, object]:
        channel = self._require_channel()
        await channel.send_control(STATS)
        reply = await self._expect_control(STATS)
        return {field: value for field, value in reply.items() if field != "verb"}


# ---------------------------------------------------------------------------
# Synchronous one-shot helpers (the CLI entry points)
# ---------------------------------------------------------------------------

def _run(coroutine):
    return asyncio.run(coroutine)


def push_file(address: Union[str, Address], source: Union[str, Path], *,
              k: Optional[int] = None, ordinal: Optional[int] = None,
              auth_token: Optional[str] = None,
              timeout: float = 30.0, connect_retries: int = 5) -> int:
    """Connect, push one packed framed file, commit (bye), disconnect."""
    async def _push() -> int:
        async with AggregatorClient(address, k=k, ordinal=ordinal,
                                    auth_token=auth_token, timeout=timeout,
                                    connect_retries=connect_retries) as client:
            return await client.push_file(source)
    return _run(_push())


def transient_push_error(error: BaseException) -> bool:
    """Whether a resilient push cycle should retry after this failure.

    Transport failures heal on reconnect, and an ``ordinal_active``
    rejection means the previous connection's server-side session has not
    unwound yet — a race that heals on its own.  Any other server rejection
    (k mismatch, protocol violation) is permanent and must propagate.
    """
    if isinstance(error, RemoteError):
        return error.code == "ordinal_active"
    return isinstance(error, NetworkError)


def push_file_resilient(address: Union[str, Address],
                        source: Union[str, Path], *,
                        ordinal: int, k: Optional[int] = None,
                        client_name: Optional[str] = None,
                        auth_token: Optional[str] = None,
                        timeout: float = 30.0, connect_retries: int = 5,
                        retry_delay: float = 0.2, retry_jitter: float = 0.5,
                        max_elapsed: float = 60.0, burst: int = 64,
                        throttle: float = 0.0) -> int:
    """Push one packed file until it is durably committed, surviving crashes.

    The whole connect / resume / push / bye cycle runs in a jittered-backoff
    retry loop with a ``max_elapsed`` budget.  Each reconnect re-HELLOs with
    ``ordinal`` (hence the mandatory ordinal: it is the durable session
    identity a WAL-backed server resumes by); the server's committed count
    makes every retry skip exactly the frames that are already durable, so
    across any number of crashes each frame is pushed once.  Returns the
    total number of frames pushed by this call (0 when the session had
    already completed).  Transport failures and ``ordinal_active`` races
    retry; any other server rejection (k mismatch, protocol error) raises
    immediately.
    """
    async def _push() -> int:
        backoff = Backoff(base=retry_delay, jitter=retry_jitter,
                          max_elapsed=max_elapsed)
        total = 0

        async def _cycle() -> int:
            nonlocal total
            client = AggregatorClient(
                address, k=k, ordinal=ordinal, client_name=client_name,
                auth_token=auth_token,
                timeout=timeout, connect_retries=connect_retries,
                retry_delay=retry_delay, retry_jitter=retry_jitter)
            try:
                await client.connect()
                if not client.session_complete:
                    total += await client.push_file(source, burst=burst,
                                                    throttle=throttle)
                    await client.bye()
                return total
            finally:
                await client.close(bye=False)

        def _give_up(last, attempts, policy) -> NetworkError:
            return NetworkError(
                f"push of {source} not durably committed within the "
                f"{max_elapsed:.1f}s retry budget: {last}")

        return await retry_async(_cycle, backoff=backoff,
                                 retryable=transient_push_error,
                                 give_up=_give_up)
    return _run(_push())


def request_release(address: Union[str, Address], *, seed: Optional[int] = None,
                    auth_token: Optional[str] = None, timeout: float = 30.0,
                    connect_retries: int = 5) -> PrivateHistogram:
    """Connect, trigger a release, return the decoded private histogram."""
    async def _release() -> PrivateHistogram:
        async with AggregatorClient(address, auth_token=auth_token,
                                    timeout=timeout,
                                    connect_retries=connect_retries) as client:
            return await client.request_release(seed=seed)
    return _run(_release())


def fetch_stats(address: Union[str, Address], *, auth_token: Optional[str] = None,
                timeout: float = 30.0,
                connect_retries: int = 5) -> Dict[str, object]:
    """Connect and fetch the server's aggregate counters."""
    async def _stats() -> Dict[str, object]:
        async with AggregatorClient(address, auth_token=auth_token,
                                    timeout=timeout,
                                    connect_retries=connect_retries) as client:
            return await client.stats()
    return _run(_stats())
