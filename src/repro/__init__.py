"""Differentially private approximate histograms and heavy hitters via Misra-Gries.

This library reproduces "Better Differentially Private Approximate Histograms
and Heavy Hitters using the Misra-Gries Sketch" (Lebeda and Tětek, PODS 2023).

The most common entry points are re-exported here:

* :class:`~repro.sketches.misra_gries.MisraGriesSketch` — the non-private
  streaming sketch (Algorithm 1).
* :class:`~repro.core.private_misra_gries.PrivateMisraGries` — the paper's
  main (epsilon, delta)-DP release mechanism (Algorithm 2).
* :class:`~repro.core.pure_dp.PureDPMisraGries` — the Section 6 epsilon-DP
  release.
* :class:`~repro.core.pamg.PrivacyAwareMisraGries` and
  :class:`~repro.core.user_level.UserLevelRelease` — the Section 8 user-level
  setting.
* :func:`~repro.core.heavy_hitters.private_heavy_hitters` — the end-to-end
  heavy-hitter convenience function.
* :class:`~repro.api.Pipeline` — the unified facade over every registered
  sketch and release mechanism
  (``Pipeline(sketch="misra_gries", mechanism="pmg", k=256, epsilon=1.0,
  delta=1e-6).fit(stream).release(rng=0)``); see
  :func:`repro.api.list_mechanisms` for the registry.

See ``examples/`` for runnable walkthroughs and ``DESIGN.md`` for the full
system inventory.
"""

from .core.continual import ContinualConfig, ContinualHeavyHitters
from .core.gshm import GaussianSparseHistogram
from .core.heavy_hitters import private_heavy_hitters, true_heavy_hitters
from .core.merging import MergeStrategy, PrivateMergedRelease, merge_sketches
from .core.pamg import PrivacyAwareMisraGries
from .core.private_misra_gries import PrivateMisraGries
from .core.pure_dp import PureDPMisraGries
from .core.results import PrivateHistogram, ReleaseMetadata
from .core.sensitivity_reduction import SensitivityReducedMG, reduce_sensitivity
from .core.user_level import (
    UserLevelRelease,
    release_user_level_flattened,
    release_user_level_pamg,
)
from .exceptions import (
    CalibrationError,
    ParameterError,
    PrivacyParameterError,
    ReproError,
    SketchStateError,
    StreamFormatError,
)
from .sketches.exact import ExactCounter
from .sketches.misra_gries import MisraGriesSketch
from .sketches.misra_gries_standard import StandardMisraGriesSketch

# The unified API layer builds on everything above, so it imports last.
from . import api
from .api import Pipeline, list_mechanisms, list_sketches, make_mechanism, make_sketch

__version__ = "1.1.0"

__all__ = [
    "Pipeline",
    "api",
    "list_mechanisms",
    "list_sketches",
    "make_mechanism",
    "make_sketch",
    "CalibrationError",
    "ContinualConfig",
    "ContinualHeavyHitters",
    "ExactCounter",
    "GaussianSparseHistogram",
    "MergeStrategy",
    "MisraGriesSketch",
    "ParameterError",
    "PrivacyAwareMisraGries",
    "PrivacyParameterError",
    "PrivateHistogram",
    "PrivateMergedRelease",
    "PrivateMisraGries",
    "PureDPMisraGries",
    "ReleaseMetadata",
    "ReproError",
    "SensitivityReducedMG",
    "SketchStateError",
    "StandardMisraGriesSketch",
    "StreamFormatError",
    "UserLevelRelease",
    "__version__",
    "merge_sketches",
    "private_heavy_hitters",
    "reduce_sensitivity",
    "release_user_level_flattened",
    "release_user_level_pamg",
    "true_heavy_hitters",
]
