"""Heavy-hitter queries on top of the private histogram releases.

A phi-heavy hitter is an element whose true frequency is at least
``phi * n``.  Given any :class:`~repro.core.results.PrivateHistogram` the
heavy hitters are simply the released keys whose noisy count clears the
(adjusted) threshold; all the privacy has already been paid by the release,
so these queries are free post-processing.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, List, Mapping, Optional, Sequence, Tuple

from .._validation import check_positive_int, check_probability
from ..dp.rng import RandomState
from ..sketches.exact import ExactCounter
from ..sketches.misra_gries import MisraGriesSketch
from .private_misra_gries import PrivateMisraGries
from .results import PrivateHistogram


def true_heavy_hitters(stream: Iterable[Hashable], phi: float) -> Dict[Hashable, float]:
    """The exact phi-heavy hitters of a stream (ground truth for experiments)."""
    fraction = check_probability(phi, "phi")
    counter = ExactCounter.from_stream(stream)
    cutoff = fraction * counter.stream_length
    return {key: value for key, value in counter.counters().items() if value >= cutoff}


def heavy_hitters_from_histogram(histogram: PrivateHistogram, phi: float,
                                 stream_length: Optional[int] = None,
                                 slack: float = 0.0) -> Dict[Hashable, float]:
    """phi-heavy hitters according to a private histogram.

    Parameters
    ----------
    histogram:
        Any private release from this library.
    phi:
        Heavy-hitter fraction.
    stream_length:
        The stream length ``n``; defaults to the length recorded in the
        release metadata.
    slack:
        Optional amount subtracted from the cutoff ``phi * n``.  Because both
        the Misra-Gries sketch and the thresholding only ever *underestimate*,
        setting ``slack`` to the release's error bound trades false positives
        for recall.
    """
    fraction = check_probability(phi, "phi")
    length = stream_length if stream_length is not None else histogram.metadata.stream_length
    cutoff = max(fraction * length - slack, 0.0)
    return {key: value for key, value in histogram.items() if value >= cutoff}


def private_heavy_hitters(stream: Sequence[Hashable], k: int, epsilon: float, delta: float,
                          phi: float, rng: RandomState = None,
                          use_error_slack: bool = True) -> Dict[Hashable, float]:
    """End-to-end private phi-heavy hitters via Algorithm 2.

    Builds a paper-variant Misra-Gries sketch of size ``k``, releases it with
    :class:`PrivateMisraGries` and returns the released elements whose noisy
    count clears ``phi * n`` (minus the mechanism's high-probability error
    when ``use_error_slack`` is set, which improves recall at the cost of
    some precision).
    """
    size = check_positive_int(k, "k")
    mechanism = PrivateMisraGries(epsilon=epsilon, delta=delta)
    sketch = MisraGriesSketch.from_stream(size, stream)
    histogram = mechanism.release(sketch, rng=rng)
    slack = mechanism.error_bound_vs_truth(size, sketch.stream_length) if use_error_slack else 0.0
    return heavy_hitters_from_histogram(histogram, phi, stream_length=sketch.stream_length,
                                        slack=slack)


def rank_released(histogram: PrivateHistogram) -> List[Tuple[Hashable, float]]:
    """Released keys sorted by noisy count, largest first."""
    return sorted(histogram.items(), key=lambda kv: (-kv[1], repr(kv[0])))
