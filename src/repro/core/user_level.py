"""Section 8: user-level differential privacy pipelines.

Two routes are offered for streams where each item is a set of up to ``m``
distinct elements contributed by one user.

``release_user_level_pamg`` (Theorem 30)
    Build the Privacy-Aware Misra-Gries sketch (Algorithm 4) and release it
    with the Gaussian Sparse Histogram Mechanism using ``l = k``.  Because
    neighbouring PAMG sketches differ by at most 1 per counter, the noise
    magnitude is independent of ``m``; the error is
    ``N/(k+1) + O(sqrt(k) ln(k/delta)/epsilon)``.

``release_user_level_flattened`` (Lemma 20)
    Flatten the stream, run Algorithm 2 with the group-privacy adjusted
    parameters ``epsilon/m`` and ``delta/(m e^epsilon)``.  The error over the
    non-private sketch is ``O(m log(m/delta)/epsilon)`` — linear in ``m`` —
    so this route loses to PAMG once ``m`` is large relative to ``sqrt(k)``
    (experiment E8 maps the crossover).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, Iterable, List, Optional, Sequence

from .._validation import check_delta, check_epsilon, check_positive_int
from ..dp.accounting import PrivacyParams, user_level_parameters
from ..dp.rng import RandomState
from ..exceptions import ParameterError
from ..streams.user_streams import flatten_user_stream, validate_user_stream
from ..sketches.misra_gries import MisraGriesSketch
from .gshm import GaussianSparseHistogram
from .pamg import PrivacyAwareMisraGries
from .private_misra_gries import PrivateMisraGries
from .results import PrivateHistogram, ReleaseMetadata


@dataclass(frozen=True)
class UserLevelRelease:
    """Configuration for user-level releases.

    Parameters
    ----------
    epsilon, delta:
        Target *user-level* privacy parameters: the guarantee holds when a
        whole user (one set of up to ``max_contribution`` elements) is added
        to or removed from the stream.
    k:
        Sketch size.
    max_contribution:
        The bound ``m`` on the number of distinct elements per user.
    """

    epsilon: float
    delta: float
    k: int
    max_contribution: int

    def __post_init__(self) -> None:
        check_epsilon(self.epsilon)
        check_delta(self.delta)
        check_positive_int(self.k, "k")
        check_positive_int(self.max_contribution, "max_contribution")
        if self.max_contribution > self.k:
            raise ParameterError(
                "the error guarantees are vacuous when m > k; choose k >= max_contribution")

    def element_level_parameters(self) -> PrivacyParams:
        """The Lemma 20 element-level parameters for the flattened route."""
        return user_level_parameters(self.epsilon, self.delta, self.max_contribution)

    # ------------------------------------------------------------------
    # Releases
    # ------------------------------------------------------------------

    def release_pamg(self, stream: Sequence[Iterable[Hashable]],
                     rng: RandomState = None,
                     calibration: str = "exact") -> PrivateHistogram:
        """Theorem 30 route: PAMG sketch released through the GSHM."""
        validate_user_stream(stream, self.max_contribution, require_distinct=True)
        sketch = PrivacyAwareMisraGries.from_stream(self.k, stream,
                                                    max_contribution=self.max_contribution)
        mechanism = GaussianSparseHistogram(epsilon=self.epsilon, delta=self.delta,
                                            l=self.k, calibration=calibration)
        histogram = mechanism.release(sketch.counters(), rng=rng,
                                      stream_length=sketch.total_elements,
                                      sketch_size=self.k)
        metadata = ReleaseMetadata(
            mechanism="UserLevel-PAMG",
            epsilon=self.epsilon,
            delta=self.delta,
            noise_scale=histogram.metadata.noise_scale,
            threshold=histogram.metadata.threshold,
            sketch_size=self.k,
            stream_length=sketch.total_elements,
            notes=f"m={self.max_contribution}, users={sketch.stream_length}, GSHM l=k",
        )
        return PrivateHistogram(counts=histogram.counts, metadata=metadata)

    def release_flattened(self, stream: Sequence[Iterable[Hashable]],
                          rng: RandomState = None) -> PrivateHistogram:
        """Lemma 20 route: flatten and release with group-privacy scaled PMG."""
        validate_user_stream(stream, self.max_contribution, require_distinct=False)
        params = self.element_level_parameters()
        flattened = flatten_user_stream(stream)
        # from_stream routes integer streams (the common case for the paper's
        # workloads) through the vectorized update_batch path.
        sketch = MisraGriesSketch.from_stream(self.k, flattened)
        mechanism = PrivateMisraGries(epsilon=params.epsilon, delta=params.delta)
        histogram = mechanism.release(sketch, rng=rng)
        metadata = ReleaseMetadata(
            mechanism="UserLevel-FlattenedPMG",
            epsilon=self.epsilon,
            delta=self.delta,
            noise_scale=histogram.metadata.noise_scale,
            threshold=histogram.metadata.threshold,
            sketch_size=self.k,
            stream_length=len(flattened),
            notes=(f"m={self.max_contribution}; element-level parameters "
                   f"eps={params.epsilon:.6g}, delta={params.delta:.3g} via Lemma 20"),
        )
        return PrivateHistogram(counts=histogram.counts, metadata=metadata)

    # ------------------------------------------------------------------
    # Noise comparison (used by experiment E8)
    # ------------------------------------------------------------------

    def noise_summary(self) -> Dict[str, float]:
        """Compare the noise/threshold magnitudes of the two routes.

        Returns the GSHM sigma and threshold for the PAMG route and the
        Laplace scale and threshold for the flattened route, making the
        crossover in ``m`` easy to tabulate.
        """
        gshm = GaussianSparseHistogram(epsilon=self.epsilon, delta=self.delta, l=self.k)
        sigma, tau = gshm.parameters()
        params = self.element_level_parameters()
        flattened_mechanism = PrivateMisraGries(epsilon=params.epsilon, delta=params.delta)
        return {
            "pamg_sigma": sigma,
            "pamg_threshold": 1.0 + tau,
            "flattened_laplace_scale": flattened_mechanism.noise_scale,
            "flattened_threshold": flattened_mechanism.threshold(self.k),
        }


def release_user_level_pamg(stream: Sequence[Iterable[Hashable]], k: int, epsilon: float,
                            delta: float, max_contribution: int,
                            rng: RandomState = None) -> PrivateHistogram:
    """Functional wrapper around :meth:`UserLevelRelease.release_pamg`."""
    config = UserLevelRelease(epsilon=epsilon, delta=delta, k=k,
                              max_contribution=max_contribution)
    return config.release_pamg(stream, rng=rng)


def release_user_level_flattened(stream: Sequence[Iterable[Hashable]], k: int, epsilon: float,
                                 delta: float, max_contribution: int,
                                 rng: RandomState = None) -> PrivateHistogram:
    """Functional wrapper around :meth:`UserLevelRelease.release_flattened`."""
    config = UserLevelRelease(epsilon=epsilon, delta=delta, k=k,
                              max_contribution=max_contribution)
    return config.release_flattened(stream, rng=rng)
