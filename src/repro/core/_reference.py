"""Frozen reference implementations of the seed release loops.

The production release paths (:meth:`repro.core.private_misra_gries.
PrivateMisraGries.release`, the trusted-sum branch of :class:`repro.core.
merging.PrivateMergedRelease` and :meth:`repro.core.gshm.
GaussianSparseHistogram.release`) build their noisy histograms in one NumPy
pass: bulk noise sample, mask-based threshold filter, single dict
construction from the surviving indices.  This module preserves the seed
per-key Python loops verbatim as the executable specification; the
equivalence tests in ``tests/unit/core/test_release_reference.py`` and
``tests/property/test_release_equivalence.py`` drive both versions with
identically-seeded generators and assert exactly equal outputs (the noise
samplers consume the underlying bit stream identically whether drawn one
scalar at a time or as one array).

Do not optimize this module; it exists to stay slow and obviously correct.
It also serves as the "seed release" baseline for the release workload in
``benchmarks/bench_perf_suite.py``.
"""

from __future__ import annotations

from typing import Dict, Hashable, Mapping, Sequence

import numpy as np

from ..dp.distributions import sample_gaussian, sample_laplace
from ..sketches.misra_gries import DummyKey


def reference_pmg_filter(counters: Mapping[Hashable, float],
                         per_counter: np.ndarray, shared: float,
                         threshold: float) -> Dict[Hashable, float]:
    """Seed Algorithm 2 noise-add/threshold/dict-build loop.

    ``per_counter`` and ``shared`` are the two PMG noise layers, already
    sampled (the seed sampled them in bulk too; only the filter loop below
    was per-key Python).
    """
    keys = list(counters.keys())
    values = np.array([counters[key] for key in keys], dtype=float)
    noisy = values + per_counter + shared
    released: Dict[Hashable, float] = {}
    for key, value in zip(keys, noisy):
        if value >= threshold and not isinstance(key, DummyKey):
            released[key] = float(value)
    return released


def reference_trusted_sum_filter(aggregate: Mapping[Hashable, float],
                                 scale: float, threshold: float,
                                 generator: np.random.Generator) -> Dict[Hashable, float]:
    """Seed trusted-sum release loop: one scalar Laplace draw per key."""
    released: Dict[Hashable, float] = {}
    for key, value in aggregate.items():
        noisy = value + float(sample_laplace(scale, rng=generator))
        if noisy >= threshold:
            released[key] = noisy
    return released


def reference_gshm_filter(counters: Mapping[Hashable, float],
                          sigma: float, tau: float,
                          generator: np.random.Generator) -> Dict[Hashable, float]:
    """Seed GSHM release: per-key list comprehensions and filter loop."""
    keys = [key for key, value in counters.items() if value != 0]
    values = np.array([float(counters[key]) for key in keys], dtype=float)
    if len(keys):
        noise = np.asarray(sample_gaussian(sigma, size=len(keys), rng=generator), dtype=float)
        noisy = values + noise
    else:
        noisy = values
    cutoff = 1.0 + tau
    released: Dict[Hashable, float] = {
        key: float(value) for key, value in zip(keys, noisy) if value >= cutoff}
    return released
