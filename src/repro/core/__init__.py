"""The paper's contributions: private releases of Misra-Gries style sketches.

* :class:`PrivateMisraGries` — Algorithm 2, the main contribution: an
  (epsilon, delta)-DP release of a Misra-Gries sketch whose noise does not
  grow with the sketch size.
* :func:`reduce_sensitivity` / :class:`SensitivityReducedMG` — Algorithm 3,
  the post-processing that drops the l1-sensitivity from k to below 2.
* :class:`PureDPMisraGries` — the Section 6 epsilon-DP release built on top of
  the sensitivity reduction.
* :class:`PrivateMergedRelease` and helpers — Section 7, private merging with
  trusted or untrusted aggregators.
* :class:`PrivacyAwareMisraGries` — Algorithm 4, the user-level sketch whose
  l2-sensitivity is sqrt(k) independent of the contribution bound m.
* :class:`GaussianSparseHistogram` — the GSHM of Theorem 23 / Lemma 24 used to
  release PAMG and merged sketches.
* :mod:`repro.core.user_level` — the Theorem 30 pipeline and the Lemma 20
  group-privacy alternative.
* :mod:`repro.core.heavy_hitters` — heavy-hitter queries over any release.
"""

from .continual import ContinualConfig, ContinualHeavyHitters
from .gshm import GaussianSparseHistogram, calibrate_gshm, gshm_delta
from .heavy_hitters import (
    heavy_hitters_from_histogram,
    private_heavy_hitters,
    true_heavy_hitters,
)
from .merging import MergeStrategy, PrivateMergedRelease, merge_sketches, sketch_streams
from .pamg import PrivacyAwareMisraGries
from .private_misra_gries import PrivateMisraGries
from .pure_dp import ApproximateDPReducedRelease, PureDPMisraGries
from .results import PrivateHistogram, ReleaseMetadata
from .sensitivity_reduction import SensitivityReducedMG, reduce_sensitivity
from .user_level import (
    UserLevelRelease,
    release_user_level_flattened,
    release_user_level_pamg,
)

__all__ = [
    "ApproximateDPReducedRelease",
    "ContinualConfig",
    "ContinualHeavyHitters",
    "GaussianSparseHistogram",
    "MergeStrategy",
    "PrivacyAwareMisraGries",
    "PrivateHistogram",
    "PrivateMergedRelease",
    "PrivateMisraGries",
    "PureDPMisraGries",
    "ReleaseMetadata",
    "SensitivityReducedMG",
    "UserLevelRelease",
    "calibrate_gshm",
    "gshm_delta",
    "heavy_hitters_from_histogram",
    "merge_sketches",
    "sketch_streams",
    "private_heavy_hitters",
    "reduce_sensitivity",
    "release_user_level_flattened",
    "release_user_level_pamg",
    "true_heavy_hitters",
]
