"""The Gaussian Sparse Histogram Mechanism (Theorem 23 / Lemma 24).

Given a frequency sketch whose counters for neighbouring inputs differ by at
most 1 in at most ``l`` positions (all in the same direction), the GSHM adds
``N(0, sigma^2)`` noise to every non-zero counter and removes noisy counts
below ``1 + tau``.  Wilkins, Kifer, Zhang and Karrer give an exact
characterization of the (epsilon, delta) pairs a given (sigma, tau) satisfies;
Theorem 23 of the paper restates it for this setting and Lemma 24 gives a
simple (loose) closed form.

This module provides:

* :func:`gshm_delta` — the smallest delta for which ``(sigma, tau)`` is
  (epsilon, delta)-DP, i.e. the right-hand side of the Theorem 23 inequality;
* :func:`calibrate_gshm` — choose (sigma, tau) for a target (epsilon, delta),
  either with the loose Lemma 24 formulas or by tightening sigma against the
  exact predicate;
* :class:`GaussianSparseHistogram` — the release mechanism itself.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Hashable, Mapping, Optional, Tuple

import numpy as np

from .._validation import check_delta, check_epsilon, check_positive_int
from ..dp.distributions import sample_gaussian
from ..dp.rng import RandomState, ensure_rng
from ..dp.thresholds import gshm_loose_parameters
from ..exceptions import CalibrationError, ParameterError
from .results import PrivateHistogram, ReleaseMetadata


def _phi(x: float) -> float:
    """Standard normal cdf."""
    return 0.5 * math.erfc(-x / math.sqrt(2.0))


def _gaussian_loss_delta(shift: float, sigma: float, epsilon: float) -> float:
    """delta of the Gaussian mechanism for a single shift: Phi(s/2σ − εσ/s) − e^ε Phi(−s/2σ − εσ/s)."""
    ratio = shift / (2.0 * sigma)
    scaled = epsilon * sigma / shift
    return _phi(ratio - scaled) - math.exp(epsilon) * _phi(-ratio - scaled)


def gshm_delta(sigma: float, tau: float, epsilon: float, l: int) -> float:
    """The exact minimal delta of the GSHM (right-hand side of Theorem 23).

    Parameters
    ----------
    sigma:
        Standard deviation of the Gaussian noise added to each counter.
    tau:
        The threshold offset; noisy counts below ``1 + tau`` are removed.
    epsilon:
        The epsilon at which the delta is evaluated.
    l:
        The maximum number of counters that differ (by exactly 1, all in the
        same direction) between neighbouring inputs.
    """
    eps = check_epsilon(epsilon)
    count = check_positive_int(l, "l")
    if sigma <= 0 or tau <= 0:
        raise ParameterError("sigma and tau must be positive")
    phi_ratio = _phi(tau / sigma)
    # Branch 1: probability that any of the l differing (small) counters survives.
    branch1 = 1.0 - phi_ratio ** count
    branch2 = 0.0
    branch3 = 0.0
    for j in range(1, count + 1):
        # gamma = (l - j) * log Phi(tau/sigma) <= 0.
        gamma = (count - j) * math.log(phi_ratio)
        surviving = phi_ratio ** (count - j)
        term2 = (1.0 - surviving) + surviving * _gaussian_loss_delta(math.sqrt(j), sigma, eps - gamma)
        term3 = _gaussian_loss_delta(math.sqrt(j), sigma, eps + gamma)
        branch2 = max(branch2, term2)
        branch3 = max(branch3, term3)
    return max(branch1, branch2, branch3, 0.0)


def calibrate_gshm(epsilon: float, delta: float, l: int,
                   method: str = "exact",
                   tolerance: float = 1e-4) -> Tuple[float, float]:
    """Choose (sigma, tau) so the GSHM is (epsilon, delta)-DP.

    ``method="loose"`` returns the Lemma 24 closed form
    ``sigma = sqrt(2 l ln(2.5/delta))/epsilon``,
    ``tau = sqrt(2 ln(2 l/delta)) sigma``.  ``method="exact"`` keeps the loose
    ratio ``tau/sigma`` but shrinks sigma by bisection against the exact
    Theorem 23 predicate, which is noticeably tighter (experiment E9).
    """
    eps = check_epsilon(epsilon)
    d = check_delta(delta)
    count = check_positive_int(l, "l")
    sigma_loose, tau_loose = gshm_loose_parameters(eps, d, count)
    if method == "loose":
        return sigma_loose, tau_loose
    if method != "exact":
        raise ParameterError(f"method must be 'exact' or 'loose', got {method!r}")
    ratio = tau_loose / sigma_loose
    if gshm_delta(sigma_loose, tau_loose, eps, count) > d * (1.0 + 1e-9):
        # The loose parameters are proven for epsilon < 1; for larger epsilon
        # grow sigma until the exact predicate is met so calibration never
        # returns an invalid pair.
        sigma_high = sigma_loose
        for _ in range(200):
            sigma_high *= 1.5
            if gshm_delta(sigma_high, ratio * sigma_high, eps, count) <= d:
                break
        else:
            raise CalibrationError("could not find a feasible sigma for the GSHM")
        sigma_low, sigma_upper = sigma_loose, sigma_high
    else:
        sigma_low, sigma_upper = 1e-12, sigma_loose
    # Bisection for the smallest sigma whose exact delta is below the target.
    for _ in range(200):
        middle = 0.5 * (sigma_low + sigma_upper)
        if gshm_delta(middle, ratio * middle, eps, count) <= d:
            sigma_upper = middle
        else:
            sigma_low = middle
        if sigma_upper - sigma_low <= tolerance * sigma_upper:
            break
    return sigma_upper, ratio * sigma_upper


@dataclass(frozen=True)
class GaussianSparseHistogram:
    """The Gaussian Sparse Histogram Mechanism.

    Parameters
    ----------
    epsilon, delta:
        Target privacy parameters.
    l:
        Sensitivity structure parameter: the number of counters that can
        differ (each by exactly 1, all in the same direction) between
        neighbouring inputs.  For merged MG sketches and for the PAMG sketch
        this is the sketch size ``k``.
    calibration:
        ``"exact"`` (default) or ``"loose"`` — see :func:`calibrate_gshm`.
    """

    epsilon: float
    delta: float
    l: int
    calibration: str = "exact"

    def __post_init__(self) -> None:
        check_epsilon(self.epsilon)
        check_delta(self.delta)
        check_positive_int(self.l, "l")
        if self.calibration not in ("exact", "loose"):
            raise ParameterError(f"calibration must be 'exact' or 'loose', got {self.calibration!r}")

    def parameters(self) -> Tuple[float, float]:
        """The calibrated ``(sigma, tau)`` pair."""
        return calibrate_gshm(self.epsilon, self.delta, self.l, method=self.calibration)

    def release(self, counters: Mapping[Hashable, float],
                rng: RandomState = None,
                stream_length: int = 0,
                sketch_size: Optional[int] = None) -> PrivateHistogram:
        """Release a counter mapping through the GSHM.

        Gaussian noise is added to every *non-zero* counter and noisy values
        below ``1 + tau`` are dropped.
        """
        sigma, tau = self.parameters()
        generator = ensure_rng(rng)
        # One vectorized pass: non-zero filter, bulk noise sample, threshold
        # mask, dict built from the surviving indices only.  Equal to the seed
        # per-key loops kept in repro.core._reference.reference_gshm_filter.
        all_keys = list(counters.keys())
        all_values = np.fromiter(counters.values(), dtype=float, count=len(all_keys))
        nonzero = np.flatnonzero(all_values != 0.0)
        values = all_values[nonzero]
        if nonzero.size:
            noise = np.asarray(sample_gaussian(sigma, size=nonzero.size, rng=generator),
                               dtype=float)
            noisy = values + noise
        else:
            noisy = values
        cutoff = 1.0 + tau
        noisy_list = noisy.tolist()
        nonzero_list = nonzero.tolist()
        released: Dict[Hashable, float] = {
            all_keys[nonzero_list[slot]]: noisy_list[slot]
            for slot in np.flatnonzero(noisy >= cutoff).tolist()}
        metadata = ReleaseMetadata(
            mechanism="GSHM",
            epsilon=self.epsilon,
            delta=self.delta,
            noise_scale=sigma,
            threshold=cutoff,
            sketch_size=sketch_size if sketch_size is not None else self.l,
            stream_length=stream_length,
            notes=f"l={self.l}, calibration={self.calibration}, tau={tau:.4f}",
        )
        return PrivateHistogram(counts=released, metadata=metadata)

    def error_bound(self, beta: float = 0.05) -> float:
        """High-probability bound on the extra error over the input counters.

        With probability at least ``1 - 2 delta`` all noise samples are within
        ``tau`` (Theorem 30); thresholding adds at most ``1 + tau`` more, so we
        report ``1 + 2 tau``.  ``beta`` is accepted for interface symmetry but
        the bound already holds with the mechanism's own delta.
        """
        _, tau = self.parameters()
        return 1.0 + 2.0 * tau
