"""Result types returned by the private release mechanisms.

Every mechanism in :mod:`repro.core` and :mod:`repro.baselines` returns a
:class:`PrivateHistogram`: an immutable mapping from released keys to noisy
counts, together with the privacy parameters and release metadata needed to
interpret it (threshold used, noise scale, sketch size, stream length).  A
``PrivateHistogram`` acts as a frequency oracle (``estimate``) and supports
heavy-hitter queries.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, Iterator, List, Mapping, Optional, Tuple


@dataclass(frozen=True)
class ReleaseMetadata:
    """Descriptive metadata attached to a private release."""

    mechanism: str
    epsilon: float
    delta: float
    noise_scale: float
    threshold: float
    sketch_size: int
    stream_length: int
    notes: str = ""

    def as_dict(self) -> Dict[str, object]:
        """Plain-dict view (useful for logging and report tables)."""
        return {
            "mechanism": self.mechanism,
            "epsilon": self.epsilon,
            "delta": self.delta,
            "noise_scale": self.noise_scale,
            "threshold": self.threshold,
            "sketch_size": self.sketch_size,
            "stream_length": self.stream_length,
            "notes": self.notes,
        }


@dataclass(frozen=True)
class PrivateHistogram:
    """A differentially private approximate histogram.

    ``counts`` maps released keys to their noisy counts.  Keys not present
    have an implicit estimate of 0 — exactly the semantics of the paper's
    output ``(T̃, c̃)``.
    """

    counts: Dict[Hashable, float]
    metadata: ReleaseMetadata

    # ------------------------------------------------------------------
    # Frequency-oracle interface
    # ------------------------------------------------------------------

    def estimate(self, element: Hashable) -> float:
        """Noisy frequency estimate for ``element`` (0 if not released)."""
        return float(self.counts.get(element, 0.0))

    def __contains__(self, element: Hashable) -> bool:
        return element in self.counts

    def __len__(self) -> int:
        return len(self.counts)

    def __iter__(self) -> Iterator[Hashable]:
        return iter(self.counts)

    def keys(self) -> List[Hashable]:
        """Released keys."""
        return list(self.counts.keys())

    def items(self) -> List[Tuple[Hashable, float]]:
        """Released (key, noisy count) pairs."""
        return list(self.counts.items())

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def top(self, count: int) -> List[Tuple[Hashable, float]]:
        """The ``count`` released keys with the largest noisy counts."""
        ranked = sorted(self.counts.items(), key=lambda kv: (-kv[1], repr(kv[0])))
        return ranked[:count]

    def heavy_hitters(self, threshold: float) -> Dict[Hashable, float]:
        """Released keys whose noisy count is at least ``threshold``."""
        return {key: value for key, value in self.counts.items() if value >= threshold}

    def max_error_against(self, truth: Mapping[Hashable, float],
                          universe: Optional[List[Hashable]] = None) -> float:
        """Maximum absolute estimation error against exact frequencies.

        The maximum runs over the union of released keys and the keys of
        ``truth`` (or over ``universe`` if given), so elements that were
        dropped by the sketch/thresholding contribute their full frequency as
        error — the same convention as the paper's error statements.
        """
        keys = set(universe) if universe is not None else set(truth) | set(self.counts)
        if not keys:
            return 0.0
        return max(abs(self.estimate(key) - float(truth.get(key, 0.0))) for key in keys)

    def as_dict(self) -> Dict[Hashable, float]:
        """A plain-dict copy of the released counts."""
        return dict(self.counts)

    def __repr__(self) -> str:
        return (f"PrivateHistogram(mechanism={self.metadata.mechanism!r}, "
                f"released={len(self.counts)}, epsilon={self.metadata.epsilon}, "
                f"delta={self.metadata.delta})")
