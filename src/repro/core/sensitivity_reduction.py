"""Algorithm 3: the sensitivity-reducing post-processing of a Misra-Gries sketch.

The raw MG sketch has l1-sensitivity ``k`` because neighbouring streams can
shift *all* counters by 1 (the decrement-all case).  Algorithm 3 subtracts the
offset ``gamma = (sum of counters) / (k + 1)`` from every counter and drops
non-positive results.  Because ``sum of counters = n - alpha (k + 1)`` where
``alpha`` is the number of decrement rounds, the offset exactly cancels the
"all counters shifted" direction:

* the worst-case error stays ``n / (k + 1)`` (Lemma 15), and
* the l1-sensitivity drops below 2 (Lemma 16),

which is what the pure-DP release of Section 6 and the trusted-aggregator
merging of Section 7 build on.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, Mapping, Union

from .._validation import check_positive_int
from ..exceptions import ParameterError
from ..sketches.base import FrequencySketch
from ..sketches.misra_gries import DummyKey, MisraGriesSketch


def reduce_sensitivity(counters: Union[Mapping[Hashable, float], MisraGriesSketch],
                       k: int = None) -> Dict[Hashable, float]:
    """Apply the Algorithm 3 post-processing to MG counters.

    Parameters
    ----------
    counters:
        Either a :class:`MisraGriesSketch` or a plain ``{key: count}`` mapping
        holding the output of a Misra-Gries computation (dummy keys, if any,
        are ignored — their counters are zero and cannot survive the offset).
    k:
        Sketch size.  Required when ``counters`` is a mapping; read off the
        sketch otherwise.

    Returns
    -------
    dict
        The post-processed counters ``{x: c_x - gamma}`` restricted to keys
        with ``c_x > gamma``.  Estimates of missing keys are implicitly 0.
    """
    if isinstance(counters, MisraGriesSketch):
        size = counters.size
        raw = counters.counters()
    elif isinstance(counters, Mapping):
        if k is None:
            raise ParameterError("k must be provided when post-processing a plain mapping")
        size = check_positive_int(k, "k")
        raw = {key: float(value) for key, value in counters.items()
               if not isinstance(key, DummyKey)}
    else:
        raise ParameterError(f"unsupported input type: {type(counters)!r}")
    total = sum(raw.values())
    gamma = total / (size + 1)
    return {key: value - gamma for key, value in raw.items() if value > gamma}


class SensitivityReducedMG(FrequencySketch):
    """A Misra-Gries sketch released through the Algorithm 3 post-processing.

    The class wraps a paper-variant :class:`MisraGriesSketch`, forwards
    updates to it, and exposes estimates computed from the post-processed
    counters.  The post-processing is recomputed lazily when queried, so the
    wrapper can keep ingesting stream elements at MG speed.
    """

    def __init__(self, k: int) -> None:
        self._sketch = MisraGriesSketch(k)

    @property
    def size(self) -> int:
        """The number of counters ``k``."""
        return self._sketch.size

    @property
    def stream_length(self) -> int:
        return self._sketch.stream_length

    @property
    def inner(self) -> MisraGriesSketch:
        """The wrapped (un-post-processed) Misra-Gries sketch."""
        return self._sketch

    def update(self, element: Hashable) -> None:
        """Process one element of the stream."""
        self._sketch.update(element)

    def estimate(self, element: Hashable) -> float:
        """Post-processed frequency estimate of ``element``."""
        return float(self.counters().get(element, 0.0))

    def counters(self) -> Dict[Hashable, float]:
        """The Algorithm 3 post-processed counters."""
        return reduce_sensitivity(self._sketch)

    def offset(self) -> float:
        """The offset ``gamma = (sum of counters)/(k+1)`` currently subtracted."""
        raw = self._sketch.counters()
        return sum(raw.values()) / (self._sketch.size + 1)

    @classmethod
    def from_stream(cls, k: int, stream: Iterable[Hashable]) -> "SensitivityReducedMG":
        """Build the post-processed sketch from an iterable of elements."""
        instance = cls(k)
        instance.update_all(stream)
        return instance

    def error_bound(self) -> float:
        """Worst-case underestimation, still ``n / (k + 1)`` (Lemma 15)."""
        return self._sketch.error_bound()

    def __repr__(self) -> str:
        return (f"SensitivityReducedMG(k={self.size}, stored={len(self.counters())}, "
                f"n={self.stream_length})")
