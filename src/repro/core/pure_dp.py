"""Section 6: releasing the sensitivity-reduced sketch under pure epsilon-DP.

After the Algorithm 3 post-processing the sketch has l1-sensitivity below 2,
so the classic recipe of Chan et al. — add Laplace noise to the count of
*every* universe element and keep the top-k noisy counts — works with noise
scale ``2/epsilon`` instead of ``k/epsilon``.  The resulting maximum error is
``n/(k+1) + O(log(d)/epsilon)``, which is asymptotically optimal for pure DP.

The module also implements the (epsilon, delta) variant sketched at the end
of Section 6: following Aumüller, Lebeda and Pagh ("Representing sparse
vectors with differential privacy", Algorithm 9) values smaller than the
sensitivity are rounded probabilistically before adding noise, which lets the
release touch only the stored keys at the cost of a delta and a threshold of
``4 + 2 ln(1/delta)/epsilon``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, Iterable, List, Mapping, Optional, Sequence, Union

import numpy as np

from .._validation import check_delta, check_epsilon, check_positive_int
from ..dp.distributions import sample_laplace
from ..dp.rng import RandomState, ensure_rng
from ..exceptions import ParameterError
from ..sketches.misra_gries import MisraGriesSketch
from .results import PrivateHistogram, ReleaseMetadata
from .sensitivity_reduction import reduce_sensitivity

#: l1-sensitivity of the Algorithm 3 post-processed sketch (Lemma 16).
REDUCED_SENSITIVITY = 2.0


@dataclass(frozen=True)
class PureDPMisraGries:
    """Pure epsilon-DP release of a sensitivity-reduced Misra-Gries sketch.

    Parameters
    ----------
    epsilon:
        Privacy budget.  The release satisfies epsilon-DP.
    universe_size:
        Size ``d`` of the universe ``[0, d)``.  Noise must be added to every
        universe element for pure DP, so the release runs in O(d) time and
        memory.  (The paper notes more efficient samplers exist; the dense
        version is the clearest reference implementation.)
    top_k:
        How many noisy counts to keep.  Defaults to the sketch size.
    """

    epsilon: float
    universe_size: int
    top_k: Optional[int] = None

    def __post_init__(self) -> None:
        check_epsilon(self.epsilon)
        check_positive_int(self.universe_size, "universe_size")
        if self.top_k is not None:
            check_positive_int(self.top_k, "top_k")

    @property
    def noise_scale(self) -> float:
        """Laplace scale ``2/epsilon`` (sensitivity 2 after Algorithm 3)."""
        return REDUCED_SENSITIVITY / self.epsilon

    def release(self, sketch: Union[MisraGriesSketch, Mapping[Hashable, float]],
                k: Optional[int] = None, rng: RandomState = None,
                already_reduced: bool = False,
                stream_length: Optional[int] = None) -> PrivateHistogram:
        """Release a sketch under pure epsilon-DP.

        ``sketch`` may be a :class:`MisraGriesSketch` (post-processed here) or
        a mapping of counters; set ``already_reduced=True`` if Algorithm 3 has
        already been applied (e.g. for the trusted-aggregator merge).
        All universe elements must be integers in ``[0, universe_size)``.
        """
        if isinstance(sketch, MisraGriesSketch):
            size = sketch.size
            length = sketch.stream_length
            reduced = reduce_sensitivity(sketch)
        else:
            if k is None:
                raise ParameterError("k must be provided when releasing a plain mapping")
            size = check_positive_int(k, "k")
            length = stream_length if stream_length is not None else 0
            reduced = dict(sketch) if already_reduced else reduce_sensitivity(sketch, size)
        self._check_universe(reduced.keys())
        generator = ensure_rng(rng)
        keep = self.top_k if self.top_k is not None else size
        dense = np.zeros(self.universe_size, dtype=float)
        for key, value in reduced.items():
            dense[int(key)] = float(value)
        noise = np.asarray(sample_laplace(self.noise_scale, size=self.universe_size,
                                          rng=generator), dtype=float)
        noisy = dense + noise
        order = np.argsort(-noisy)[:keep]
        released = {int(index): float(noisy[index]) for index in order}
        metadata = ReleaseMetadata(
            mechanism="PureDP-MG",
            epsilon=self.epsilon,
            delta=0.0,
            noise_scale=self.noise_scale,
            threshold=0.0,
            sketch_size=size,
            stream_length=length,
            notes=f"universe_size={self.universe_size}, top_k={keep}",
        )
        return PrivateHistogram(counts=released, metadata=metadata)

    def run(self, stream: Iterable[int], k: int, rng: RandomState = None) -> PrivateHistogram:
        """End-to-end: build the MG sketch, post-process, release under epsilon-DP."""
        sketch = MisraGriesSketch.from_stream(k, stream)
        return self.release(sketch, rng=rng)

    def error_bound(self, stream_length: int, k: int, beta: float = 0.05) -> float:
        """High-probability max-error bound ``n/(k+1) + 2·(2/eps)·ln(d/beta)``."""
        size = check_positive_int(k, "k")
        if not (0 < beta < 1):
            raise ParameterError(f"beta must be in (0,1), got {beta}")
        noise_term = self.noise_scale * np.log(self.universe_size / beta)
        return float(stream_length / (size + 1) + noise_term)

    def _check_universe(self, keys) -> None:
        for key in keys:
            if not isinstance(key, (int, np.integer)) or not (0 <= int(key) < self.universe_size):
                raise ParameterError(
                    f"pure-DP release requires integer keys in [0, {self.universe_size}), got {key!r}")


@dataclass(frozen=True)
class ApproximateDPReducedRelease:
    """(epsilon, delta)-DP release of the sensitivity-reduced sketch.

    This is the alternative discussed at the end of Section 6: keep the
    Algorithm 3 post-processing (sensitivity < 2), add Laplace(2/epsilon)
    noise only to the stored counters, and hide small counters with
    probabilistic rounding plus a threshold of ``4 + 2 ln(1/delta)/epsilon``
    (following Aumüller et al., Algorithm 9).  Its error against the
    *non-private MG sketch* is ``n/(k+1) + O(log(1/delta)/epsilon)`` — worse
    than Algorithm 2's ``O(log(1/delta)/epsilon)`` because of the subtracted
    offset, which is exactly the comparison experiment E5 makes.
    """

    epsilon: float
    delta: float

    def __post_init__(self) -> None:
        check_epsilon(self.epsilon)
        check_delta(self.delta)

    @property
    def noise_scale(self) -> float:
        """Laplace scale ``2/epsilon``."""
        return REDUCED_SENSITIVITY / self.epsilon

    @property
    def threshold(self) -> float:
        """Release threshold ``4 + 2 ln(1/delta)/epsilon``."""
        return 4.0 + 2.0 * np.log(1.0 / self.delta) / self.epsilon

    def release(self, sketch: Union[MisraGriesSketch, Mapping[Hashable, float]],
                k: Optional[int] = None, rng: RandomState = None,
                stream_length: Optional[int] = None) -> PrivateHistogram:
        """Release the post-processed sketch under (epsilon, delta)-DP."""
        if isinstance(sketch, MisraGriesSketch):
            size = sketch.size
            length = sketch.stream_length
            reduced = reduce_sensitivity(sketch)
        else:
            if k is None:
                raise ParameterError("k must be provided when releasing a plain mapping")
            size = check_positive_int(k, "k")
            length = stream_length if stream_length is not None else 0
            reduced = reduce_sensitivity(sketch, size)
        generator = ensure_rng(rng)
        released: Dict[Hashable, float] = {}
        for key, value in reduced.items():
            rounded = self._probabilistic_round(value, generator)
            if rounded == 0.0:
                continue
            noisy = rounded + float(sample_laplace(self.noise_scale, rng=generator))
            if noisy >= self.threshold:
                released[key] = noisy
        metadata = ReleaseMetadata(
            mechanism="ApproxDP-ReducedMG",
            epsilon=self.epsilon,
            delta=self.delta,
            noise_scale=self.noise_scale,
            threshold=self.threshold,
            sketch_size=size,
            stream_length=length,
            notes="Algorithm 3 post-processing + probabilistic rounding",
        )
        return PrivateHistogram(counts=released, metadata=metadata)

    def run(self, stream: Iterable[Hashable], k: int, rng: RandomState = None) -> PrivateHistogram:
        """End-to-end: build the MG sketch, post-process, release."""
        sketch = MisraGriesSketch.from_stream(k, stream)
        return self.release(sketch, rng=rng)

    def _probabilistic_round(self, value: float, generator: np.random.Generator) -> float:
        """Round values below the sensitivity to 0 or the sensitivity.

        Values of at least the sensitivity are left unchanged; a smaller value
        ``v`` becomes the sensitivity with probability ``v / sensitivity`` and
        0 otherwise, keeping the estimate unbiased for small counts.
        """
        if value >= REDUCED_SENSITIVITY:
            return float(value)
        if generator.random() < value / REDUCED_SENSITIVITY:
            return REDUCED_SENSITIVITY
        return 0.0
