"""Algorithm 4: the Privacy-Aware Misra-Gries sketch (PAMG) for user-level DP.

In the user-level setting each stream item is a *set* of up to ``m`` distinct
elements contributed by one user.  Flattening the stream and running ordinary
Misra-Gries makes a single counter differ by up to ``m`` between neighbouring
streams (Lemma 25), so any private release of the MG sketch must add noise
scaling with ``m``.

PAMG avoids this by processing one user at a time: every element of the user's
set is incremented (adding keys as needed, so the sketch can temporarily grow
to ``k + m`` counters) and then, if more than ``k`` keys are stored, *all*
counters are decremented once and zero counters dropped.  Decrementing at most
once per user keeps neighbouring sketches within 1 of each other in every
counter (Lemma 27) — the structure the Gaussian Sparse Histogram Mechanism
needs — while the estimation error stays ``N/(k+1)`` (Lemma 26) where ``N`` is
the total number of elements.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Hashable, Iterable, List, Set

from .._validation import check_positive_int
from ..exceptions import StreamFormatError
from ..sketches.base import FrequencySketch


class PrivacyAwareMisraGries(FrequencySketch):
    """The PAMG sketch of Algorithm 4.

    Parameters
    ----------
    k:
        Nominal sketch size.  At most ``k`` counters remain after each user is
        processed (the sketch can hold up to ``k + m`` counters transiently).
    max_contribution:
        Optional declared bound ``m`` on the number of distinct elements per
        user; when set, users exceeding it (or contributing duplicates) raise
        :class:`StreamFormatError`.

    Examples
    --------
    >>> sketch = PrivacyAwareMisraGries(4)
    >>> sketch.process_user({1, 2})
    >>> sketch.process_user({1, 3})
    >>> sketch.estimate(1)
    2.0
    """

    def __init__(self, k: int, max_contribution: int = None) -> None:
        self._k = check_positive_int(k, "k")
        self._max_contribution = (check_positive_int(max_contribution, "max_contribution")
                                  if max_contribution is not None else None)
        self._counters: Dict[Hashable, float] = {}
        self._users_processed = 0
        self._total_elements = 0
        self._decrement_rounds = 0

    # ------------------------------------------------------------------
    # Stream processing
    # ------------------------------------------------------------------

    @property
    def size(self) -> int:
        """The nominal sketch size ``k``."""
        return self._k

    @property
    def stream_length(self) -> int:
        """Number of users processed (stream items, not elements)."""
        return self._users_processed

    @property
    def total_elements(self) -> int:
        """Total number of elements ``N`` across all processed users."""
        return self._total_elements

    @property
    def decrement_rounds(self) -> int:
        """How many times the decrement step has fired (at most once per user)."""
        return self._decrement_rounds

    def process_user(self, elements: Iterable[Hashable]) -> None:
        """Process one user's set of distinct elements."""
        items = list(elements)
        distinct = set(items)
        if len(distinct) != len(items):
            raise StreamFormatError("a user's contribution must consist of distinct elements")
        if self._max_contribution is not None and len(items) > self._max_contribution:
            raise StreamFormatError(
                f"user contributes {len(items)} elements, more than m={self._max_contribution}")
        self._users_processed += 1
        self._total_elements += len(items)
        for element in items:
            if element in self._counters:
                self._counters[element] += 1.0
            else:
                self._counters[element] = 1.0
        if len(self._counters) > self._k:
            self._decrement_rounds += 1
            exhausted: List[Hashable] = []
            for key in self._counters:
                self._counters[key] -= 1.0
                if self._counters[key] <= 0.0:
                    exhausted.append(key)
            for key in exhausted:
                del self._counters[key]

    def update(self, element: Hashable) -> None:
        """Process a single-element user (element-level compatibility shim)."""
        self.process_user([element])

    def process_stream(self, stream: Iterable[Iterable[Hashable]]) -> "PrivacyAwareMisraGries":
        """Process an entire user-level stream; returns ``self`` for chaining."""
        for user in stream:
            self.process_user(user)
        return self

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def estimate(self, element: Hashable) -> float:
        """Estimated frequency (number of users containing ``element``)."""
        return float(self._counters.get(element, 0.0))

    def counters(self) -> Dict[Hashable, float]:
        """Stored key/counter pairs (all strictly positive after each user)."""
        return dict(self._counters)

    def stored_keys(self) -> Set[Hashable]:
        """Currently stored keys."""
        return set(self._counters.keys())

    def error_bound(self) -> float:
        """Worst-case underestimation ``N / (k + 1)`` (Lemma 26)."""
        return self._total_elements / (self._k + 1)

    @classmethod
    def from_stream(cls, k: int, stream: Iterable[Iterable[Hashable]],
                    max_contribution: int = None) -> "PrivacyAwareMisraGries":
        """Build a PAMG sketch from a user-level stream."""
        sketch = cls(k, max_contribution=max_contribution)
        sketch.process_stream(stream)
        return sketch

    def __repr__(self) -> str:
        return (f"PrivacyAwareMisraGries(k={self._k}, stored={len(self._counters)}, "
                f"users={self._users_processed}, N={self._total_elements})")
