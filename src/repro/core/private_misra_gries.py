"""Algorithm 2: the private Misra-Gries release (the paper's main contribution).

The mechanism releases a Misra-Gries sketch under (epsilon, delta)-DP by

1. adding an independent ``Laplace(1/epsilon)`` sample to every stored counter,
2. adding one further ``Laplace(1/epsilon)`` sample — *the same draw* — to all
   counters, and
3. discarding noisy counters below the threshold ``1 + 2 ln(3/delta)/epsilon``.

Correctness of the privacy claim rests on Lemma 8: for neighbouring streams
the paper-variant MG sketches either differ by +1 in a single counter or by
-1 in every counter, and disagree on at most two stored keys whose counters
are at most 1.  The per-counter noise hides the single-counter case, the
shared noise hides the all-counters case, and the thresholding hides the
differing keys with probability at least ``1 - delta``.

The maximum additional error over the non-private sketch is
``O(log(1/delta)/epsilon)`` with high probability — independent of the sketch
size ``k`` (Theorem 14), which is the improvement over Chan et al. whose noise
scale is ``k/epsilon``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, Iterable, Optional, Union

import numpy as np

from .._validation import check_delta, check_epsilon, check_positive_int
from ..dp.distributions import sample_laplace, sample_two_sided_geometric
from ..dp.rng import RandomState, ensure_rng
from ..dp.thresholds import (
    geometric_pmg_threshold,
    pmg_threshold,
    pmg_threshold_standard_sketch,
)
from ..exceptions import ParameterError, SketchStateError
from ..sketches.misra_gries import DummyKey, MisraGriesSketch
from ..sketches.misra_gries_standard import StandardMisraGriesSketch
from .results import PrivateHistogram, ReleaseMetadata

_VALID_NOISE = ("laplace", "geometric")


@dataclass(frozen=True)
class PrivateMisraGries:
    """Private Misra-Gries mechanism (Algorithm 2, "PMG").

    Parameters
    ----------
    epsilon, delta:
        The differential-privacy parameters.  The guarantee is
        (epsilon, delta)-DP under add/remove neighbouring streams.
    noise:
        ``"laplace"`` (the paper's default) or ``"geometric"`` for the
        discrete two-sided geometric noise of Section 5.2 (with the larger
        threshold required there).
    standard_sketch:
        Set to ``True`` when releasing a :class:`StandardMisraGriesSketch`
        (or a plain counter dict produced by one).  Standard sketches evict
        zero counters eagerly, so neighbouring sketches can disagree on up to
        ``k`` keys; Section 5.1 handles this by raising the threshold to
        ``1 + 2 ln((k+1)/(2 delta))/epsilon``.

    Examples
    --------
    >>> from repro.sketches import MisraGriesSketch
    >>> sketch = MisraGriesSketch.from_stream(8, [1, 2, 1, 1, 3, 1])
    >>> mechanism = PrivateMisraGries(epsilon=1.0, delta=1e-6)
    >>> hist = mechanism.release(sketch, rng=0)
    >>> hist.metadata.mechanism
    'PMG'
    """

    epsilon: float
    delta: float
    noise: str = "laplace"
    standard_sketch: bool = False

    def __post_init__(self) -> None:
        check_epsilon(self.epsilon)
        check_delta(self.delta)
        if self.noise not in _VALID_NOISE:
            raise ParameterError(f"noise must be one of {_VALID_NOISE}, got {self.noise!r}")

    # ------------------------------------------------------------------
    # Calibration
    # ------------------------------------------------------------------

    @property
    def noise_scale(self) -> float:
        """Scale of each of the two noise layers, ``1/epsilon``."""
        return 1.0 / self.epsilon

    def threshold(self, k: int) -> float:
        """The release threshold for a sketch with ``k`` counters."""
        size = check_positive_int(k, "k")
        if self.noise == "geometric":
            return geometric_pmg_threshold(self.epsilon, self.delta)
        if self.standard_sketch:
            return pmg_threshold_standard_sketch(self.epsilon, self.delta, size)
        return pmg_threshold(self.epsilon, self.delta)

    # ------------------------------------------------------------------
    # Release
    # ------------------------------------------------------------------

    def release(self, sketch: Union[MisraGriesSketch, StandardMisraGriesSketch, Dict[Hashable, float]],
                rng: RandomState = None,
                stream_length: Optional[int] = None,
                k: Optional[int] = None) -> PrivateHistogram:
        """Release a Misra-Gries sketch as a private histogram.

        Parameters
        ----------
        sketch:
            A paper-variant :class:`MisraGriesSketch`, a
            :class:`StandardMisraGriesSketch` (set ``standard_sketch=True`` on
            the mechanism) or a plain ``{key: count}`` dict of MG counters.
        rng:
            Seed or generator for the noise.
        stream_length, k:
            Only needed when ``sketch`` is a plain dict (they are read off the
            sketch object otherwise).
        """
        counters, size, length = self._extract_counters(sketch, k, stream_length)
        generator = ensure_rng(rng)
        threshold = self.threshold(size)
        keys = list(counters.keys())
        values = np.fromiter(counters.values(), dtype=float, count=len(keys))
        per_counter, shared = self._sample_noise(len(keys), generator)
        noisy = values + per_counter + shared
        # One vectorized pass: threshold mask, dummy-key mask, dict built from
        # the surviving indices only.  Equal to the seed per-key loop kept in
        # repro.core._reference.reference_pmg_filter.
        real = np.fromiter((not isinstance(key, DummyKey) for key in keys),
                           dtype=bool, count=len(keys))
        noisy_list = noisy.tolist()
        released: Dict[Hashable, float] = {
            keys[index]: noisy_list[index]
            for index in np.flatnonzero((noisy >= threshold) & real).tolist()}
        metadata = ReleaseMetadata(
            mechanism="PMG",
            epsilon=self.epsilon,
            delta=self.delta,
            noise_scale=self.noise_scale,
            threshold=threshold,
            sketch_size=size,
            stream_length=length,
            notes=f"noise={self.noise}, standard_sketch={self.standard_sketch}",
        )
        return PrivateHistogram(counts=released, metadata=metadata)

    def run(self, stream: Iterable[Hashable], k: int,
            rng: RandomState = None) -> PrivateHistogram:
        """Convenience end-to-end run: build the sketch, then release it.

        Uses the paper-variant sketch unless ``standard_sketch=True`` was
        requested, in which case the textbook sketch is used together with
        the Section 5.1 threshold.  Integer streams (ndarrays or lists of
        ints) are sketched through the vectorized
        :meth:`~repro.sketches.MisraGriesSketch.update_batch` path.
        """
        size = check_positive_int(k, "k")
        if self.standard_sketch:
            sketch: Union[MisraGriesSketch, StandardMisraGriesSketch] = (
                StandardMisraGriesSketch.from_stream(size, stream))
        else:
            sketch = MisraGriesSketch.from_stream(size, stream)
        return self.release(sketch, rng=rng)

    # ------------------------------------------------------------------
    # Error bounds (Lemma 13 / Theorem 14)
    # ------------------------------------------------------------------

    def error_bound_vs_sketch(self, k: int, beta: float = 0.05) -> float:
        """High-probability bound on ``|released - sketch|`` (Lemma 13).

        With probability at least ``1 - beta`` every released counter is
        within ``2 ln((k+1)/beta)/epsilon`` above and
        ``2 ln((k+1)/beta)/epsilon + threshold`` below the value stored in the
        non-private sketch.  The returned value is the larger (downward) side.
        """
        size = check_positive_int(k, "k")
        if not (0 < beta < 1):
            raise ParameterError(f"beta must be in (0,1), got {beta}")
        spread = 2.0 * np.log((size + 1) / beta) / self.epsilon
        return float(spread + self.threshold(size))

    def error_bound_vs_truth(self, k: int, stream_length: int, beta: float = 0.05) -> float:
        """High-probability bound on ``|released - true frequency|`` (Theorem 14)."""
        size = check_positive_int(k, "k")
        length = check_positive_int(stream_length, "stream_length") if stream_length else 0
        return float(self.error_bound_vs_sketch(size, beta) + length / (size + 1))

    def mean_squared_error_bound(self, k: int, stream_length: int) -> float:
        """The Theorem 14 bound on the per-element mean squared error."""
        size = check_positive_int(k, "k")
        term = 1.0 + (2.0 + 2.0 * np.log(3.0 / self.delta)) / self.epsilon + stream_length / (size + 1)
        return float(3.0 * term * term)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _extract_counters(self, sketch, k: Optional[int], stream_length: Optional[int]):
        if isinstance(sketch, MisraGriesSketch):
            if self.standard_sketch:
                raise SketchStateError(
                    "standard_sketch=True but a paper-variant MisraGriesSketch was given; "
                    "use standard_sketch=False for the lower threshold")
            return sketch.raw_counters(), sketch.size, sketch.stream_length
        if isinstance(sketch, StandardMisraGriesSketch):
            if not self.standard_sketch:
                raise SketchStateError(
                    "releasing a StandardMisraGriesSketch requires standard_sketch=True "
                    "(its key set needs the larger Section 5.1 threshold)")
            return sketch.counters(), sketch.size, sketch.stream_length
        if isinstance(sketch, dict):
            if k is None:
                raise ParameterError("k must be provided when releasing a plain counter dict")
            size = check_positive_int(k, "k")
            length = stream_length if stream_length is not None else 0
            return dict(sketch), size, length
        raise ParameterError(f"unsupported sketch type: {type(sketch)!r}")

    def _sample_noise(self, count: int, generator: np.random.Generator):
        if self.noise == "laplace":
            per_counter = np.asarray(
                sample_laplace(self.noise_scale, size=count, rng=generator), dtype=float)
            shared = float(sample_laplace(self.noise_scale, rng=generator))
            return per_counter, shared
        per_counter = np.asarray(
            sample_two_sided_geometric(self.noise_scale, size=count, rng=generator), dtype=float)
        shared = float(sample_two_sided_geometric(self.noise_scale, rng=generator))
        return per_counter, shared
