"""Section 7: privately releasing merged Misra-Gries sketches.

The library supports the three aggregation regimes the paper discusses.

Trusted aggregator, unbounded memory (``MergeStrategy.TRUSTED_SUM``)
    Apply the Algorithm 3 post-processing to every sketch, sum the resulting
    counters and release the sum.  The l1-sensitivity of the aggregate stays
    below 2, so Laplace(2/epsilon) noise plus a threshold (or noise over the
    whole universe for pure DP) suffices and the error does not grow with the
    number of merges.  The aggregator may hold more than ``k`` counters.

Trusted aggregator, bounded memory (``MergeStrategy.TRUSTED_MERGED``)
    Merge with the Agarwal et al. algorithm (at most ``2k`` counters at any
    time).  Corollary 18 shows neighbouring merged sketches differ by 1 in at
    most ``k`` counters, so the release can use either Laplace noise with
    scale ``k/epsilon`` plus a threshold, or — exploiting the l2-sensitivity
    of sqrt(k) — the Gaussian Sparse Histogram Mechanism with ``l = k``
    (the default here).

Untrusted aggregator (``MergeStrategy.UNTRUSTED``)
    Each stream's sketch is released with Algorithm 2 *before* merging, and
    the noisy sketches are merged non-privately.  The noise (and in particular
    the thresholding error) grows linearly with the number of sketches, which
    is the behaviour experiment E6 demonstrates.
"""

from __future__ import annotations

import enum
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from multiprocessing import resource_tracker, shared_memory
from typing import Dict, Hashable, List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from .._validation import check_delta, check_epsilon, check_positive_int
from ..dp.distributions import sample_laplace
from ..dp.rng import RandomState, ensure_rng
from ..dp.thresholds import stability_histogram_threshold
from ..exceptions import ParameterError
from ..sketches.base import FrequencySketch
from ..sketches.merge import (
    merge_many,
    merge_many_arrays,
    merge_misra_gries,
    merge_tree,
    merge_tree_arrays,
    sum_counters,
)
from ..sketches.misra_gries import MisraGriesSketch
from .gshm import GaussianSparseHistogram
from .private_misra_gries import PrivateMisraGries
from .results import PrivateHistogram, ReleaseMetadata
from .sensitivity_reduction import reduce_sensitivity

SketchLike = Union[MisraGriesSketch, Mapping[Hashable, float], FrequencySketch]


def merge_sketches(sketches: Sequence[SketchLike], k: int) -> Dict[Hashable, float]:
    """Merge several Misra-Gries summaries into one of size at most ``k``.

    Thin re-export of :func:`repro.sketches.merge.merge_many` (the vectorized
    key-interning fold) so users of the core package do not need to import
    the sketches subpackage directly.  For very large collections consider
    :func:`repro.sketches.merge.merge_tree`.
    """
    return merge_many(list(sketches), k)


def _sketch_one_stream(k: int, stream) -> MisraGriesSketch:
    """Worker for the parallel fan-out (module-level so it pickles)."""
    return MisraGriesSketch.from_stream(k, stream)


def sketch_streams(streams: Sequence, k: int,
                   workers: Optional[int] = None) -> List[MisraGriesSketch]:
    """Build one paper-variant sketch of size ``k`` per input stream.

    Integer streams (ndarrays or lists of ints) go through the vectorized
    :meth:`~repro.sketches.MisraGriesSketch.update_batch` path, which is the
    intended entry point for the distributed setting of Section 7: each edge
    server sketches its own traffic at batch speed before shipping the sketch
    to the aggregator.

    Parameters
    ----------
    workers:
        When greater than 1, the independent streams are sketched by a
        :class:`~concurrent.futures.ProcessPoolExecutor` with that many
        processes.  Sketching is deterministic, so the result is identical to
        the sequential fan-out; the streams must be picklable (ndarrays and
        lists are).
    """
    size = check_positive_int(k, "k")
    if workers is not None:
        check_positive_int(workers, "workers")
    if workers is not None and workers > 1 and len(streams) > 1:
        with ProcessPoolExecutor(max_workers=workers) as pool:
            futures = [pool.submit(_sketch_one_stream, size, stream) for stream in streams]
            return [future.result() for future in futures]
    return [MisraGriesSketch.from_stream(size, stream) for stream in streams]


# ---------------------------------------------------------------------------
# Zero-copy sharded sketching over shared memory
# ---------------------------------------------------------------------------
#
# ``sketch_streams`` ships every shard to its worker as a pickled ndarray and
# gets a pickled sketch object back — two full serializations per shard.  The
# shared-memory fan-out below eliminates both: the input batch lives in one
# SharedMemory segment the workers view with ``np.frombuffer``, and each
# worker writes its sketch's columnar export ``[count][keys[k]][values[k]]``
# into its own fixed-size slot of an output segment.  The parent then folds
# the slots with :func:`~repro.sketches.merge.merge_tree_arrays` directly on
# the shared buffer — the sketch state is never pickled and never copied.


def _attach_untracked(name: str) -> shared_memory.SharedMemory:
    """Attach to an existing segment without resource-tracker registration.

    On Python <= 3.12 ``SharedMemory(name=...)`` registers the segment with
    the *attaching* process's resource tracker, which either double-books it
    (fork: the tracker is shared with the creating parent) or unlinks the
    parent's segment when the worker exits (spawn: the worker has its own
    tracker).  The parent owns both segments and unlinks them itself, so
    workers must attach untracked; newer Pythons expose ``track=False`` for
    exactly this.
    """
    original = resource_tracker.register
    resource_tracker.register = lambda *args, **kwargs: None
    try:
        return shared_memory.SharedMemory(name=name)
    finally:
        resource_tracker.register = original


def _sketch_shard_to_slot(input_name: str, output_name: str, k: int,
                          start: int, stop: int, slot: int) -> int:
    """Worker: sketch ``batch[start:stop]`` and export columns to its slot."""
    in_shm = _attach_untracked(input_name)
    out_shm = _attach_untracked(output_name)
    try:
        chunk = np.frombuffer(in_shm.buf, dtype=np.int64, count=stop - start,
                              offset=8 * start)
        counters = MisraGriesSketch.from_stream(k, chunk).counters()
        count = len(counters)
        base = slot * _shard_slot_bytes(k)
        header = np.frombuffer(out_shm.buf, dtype=np.int64, count=1, offset=base)
        keys = np.frombuffer(out_shm.buf, dtype=np.int64, count=count,
                             offset=base + 8)
        values = np.frombuffer(out_shm.buf, dtype=np.float64, count=count,
                               offset=base + 8 + 8 * k)
        keys[:] = np.fromiter(counters.keys(), dtype=np.int64, count=count)
        values[:] = np.fromiter(counters.values(), dtype=np.float64, count=count)
        header[0] = count
        # Views must die before close(), or close() raises BufferError.
        del chunk, header, keys, values
        return count
    finally:
        in_shm.close()
        out_shm.close()


def _shard_slot_bytes(k: int) -> int:
    """Bytes of one shard's output slot: count + k keys + k values."""
    return 8 + 16 * k


def _close_unlink(shm: shared_memory.SharedMemory, unlink: bool) -> None:
    try:
        shm.close()
    except BufferError:  # pragma: no cover - leaked view; unlink still works
        pass
    if unlink:
        try:
            shm.unlink()
        except OSError:  # pragma: no cover
            pass


def _shard_bounds(total: int, num_shards: int) -> List[Tuple[int, int]]:
    """Contiguous non-empty ``(start, stop)`` spans, as ``np.array_split``."""
    base, extra = divmod(total, num_shards)
    bounds: List[Tuple[int, int]] = []
    start = 0
    for index in range(num_shards):
        size = base + (1 if index < extra else 0)
        if size:
            bounds.append((start, start + size))
        start += size
    return bounds


def sketch_shards_shared(batch: np.ndarray, k: int, num_shards: int,
                         workers: Optional[int] = None) -> Dict[int, float]:
    """Sketch contiguous shards of one integer batch over shared memory.

    Splits ``batch`` exactly like ``np.array_split`` into ``num_shards``
    contiguous shards, sketches each in its own process reading straight from
    a shared input segment, and tree-folds the columnar shard exports with
    :func:`~repro.sketches.merge.merge_tree_arrays` over views of the shared
    output segment.  The merged dict is bit-identical to the pickled
    ``sketch_streams`` + ``merge_tree`` fan-out on the same shards.
    """
    size = check_positive_int(k, "k")
    check_positive_int(num_shards, "num_shards")
    batch = np.ascontiguousarray(batch, dtype=np.int64)
    if batch.size == 0:
        return {}
    bounds = _shard_bounds(batch.size, num_shards)
    slot_bytes = _shard_slot_bytes(size)
    input_shm = shared_memory.SharedMemory(create=True, size=batch.nbytes)
    output_shm = shared_memory.SharedMemory(create=True,
                                            size=slot_bytes * len(bounds))
    try:
        np.frombuffer(input_shm.buf, dtype=np.int64, count=batch.size)[:] = batch
        max_workers = workers if workers is not None else len(bounds)
        with ProcessPoolExecutor(max_workers=min(max_workers, len(bounds))) as pool:
            futures = [
                pool.submit(_sketch_shard_to_slot, input_shm.name,
                            output_shm.name, size, start, stop, slot)
                for slot, (start, stop) in enumerate(bounds)]
            counts = [future.result() for future in futures]
        keys_list = []
        values_list = []
        for slot, count in enumerate(counts):
            base = slot * slot_bytes
            keys_list.append(np.frombuffer(output_shm.buf, dtype=np.int64,
                                           count=count, offset=base + 8))
            values_list.append(np.frombuffer(output_shm.buf, dtype=np.float64,
                                             count=count,
                                             offset=base + 8 + 8 * size))
        # merge_tree_arrays materializes plain python keys/values, so nothing
        # in the result references the shared buffers.
        merged = merge_tree_arrays(keys_list, values_list, size)
        del keys_list, values_list
        return merged
    finally:
        _close_unlink(input_shm, unlink=True)
        _close_unlink(output_shm, unlink=True)


def sketch_and_merge_shards(batch: np.ndarray, k: int, num_shards: int,
                            workers: Optional[int] = None) -> Dict[int, float]:
    """Shard one integer batch, sketch the shards in parallel, merge.

    The zero-copy :func:`sketch_shards_shared` path handles every int64-safe
    batch; uint64 batches with keys beyond ``2**63 - 1`` (which int64 shard
    views would corrupt) and environments without working shared memory fall
    back to the pickled :func:`sketch_streams` fan-out.  Both paths return
    the identical merged dict.
    """
    size = check_positive_int(k, "k")
    int64_safe = not (batch.dtype.kind == "u" and batch.size
                      and int(batch.max()) > np.iinfo(np.int64).max)
    if int64_safe:
        try:
            return sketch_shards_shared(batch, size, num_shards, workers=workers)
        except OSError:  # pragma: no cover - no usable /dev/shm
            pass
    shards = [shard for shard in np.array_split(batch, num_shards) if shard.size]
    sketches = sketch_streams(shards, size, workers=workers)
    return merge_tree([sketch.counters() for sketch in sketches], size)


def _noisy_threshold_filter(aggregate: Mapping[Hashable, float], scale: float,
                            threshold: float,
                            generator: np.random.Generator) -> Dict[Hashable, float]:
    """Laplace-noise + threshold filter over a counter dict in one NumPy pass.

    One bulk Laplace sample (the generator consumes its bit stream exactly as
    the seed's per-key scalar draws did), one threshold mask, one dict built
    from the surviving indices.  Equal output to the seed loop kept in
    :func:`repro.core._reference.reference_trusted_sum_filter`.
    """
    keys = list(aggregate.keys())
    if not keys:
        return {}
    values = np.fromiter(aggregate.values(), dtype=float, count=len(keys))
    noise = np.asarray(sample_laplace(scale, size=len(keys), rng=generator), dtype=float)
    noisy = values + noise
    noisy_list = noisy.tolist()
    return {keys[index]: noisy_list[index]
            for index in np.flatnonzero(noisy >= threshold).tolist()}


class MergeStrategy(str, enum.Enum):
    """How a collection of per-stream sketches is aggregated and privatized."""

    TRUSTED_SUM = "trusted_sum"
    TRUSTED_MERGED = "trusted_merged"
    UNTRUSTED = "untrusted"


@dataclass(frozen=True)
class PrivateMergedRelease:
    """Private release of Misra-Gries sketches aggregated over several streams.

    Parameters
    ----------
    epsilon, delta:
        Privacy budget of the overall release.  Streams are assumed disjoint
        (each user appears in exactly one stream), so parallel composition
        applies and the per-sketch budget equals the overall budget.
    k:
        Sketch size used by every input sketch.
    strategy:
        One of :class:`MergeStrategy`; see the module docstring.
    """

    epsilon: float
    delta: float
    k: int
    strategy: MergeStrategy = MergeStrategy.TRUSTED_MERGED

    def __post_init__(self) -> None:
        check_epsilon(self.epsilon)
        check_delta(self.delta)
        check_positive_int(self.k, "k")
        if not isinstance(self.strategy, MergeStrategy):
            object.__setattr__(self, "strategy", MergeStrategy(self.strategy))

    # ------------------------------------------------------------------
    # Release
    # ------------------------------------------------------------------

    def release(self, sketches: Sequence[SketchLike], rng: RandomState = None,
                total_stream_length: Optional[int] = None,
                streams: Optional[int] = None) -> PrivateHistogram:
        """Aggregate the given per-stream sketches and release privately.

        ``streams`` overrides the stream count recorded in the release
        metadata — used by the streaming aggregator, which folds ``m``
        framed exports into one summary before handing it here.
        """
        if not sketches:
            raise ParameterError("at least one sketch is required")
        generator = ensure_rng(rng)
        length = total_stream_length if total_stream_length is not None else self._total_length(sketches)
        count = streams if streams is not None else len(sketches)
        if self.strategy is MergeStrategy.TRUSTED_SUM:
            return self._release_trusted_sum(sketches, generator, length, count)
        if self.strategy is MergeStrategy.TRUSTED_MERGED:
            return self._release_trusted_merged(sketches, generator, length, count)
        return self._release_untrusted(sketches, generator, length, count)

    def release_arrays(self, keys_list: Sequence[np.ndarray],
                       values_list: Sequence[np.ndarray],
                       rng: RandomState = None,
                       total_stream_length: Optional[int] = None,
                       streams: Optional[int] = None) -> PrivateHistogram:
        """Release sketches that arrive in columnar wire form.

        This is the aggregator's v2 wire entry point: each sketch is a
        parallel (integer keys, float values) array pair, e.g. decoded
        straight off :mod:`repro.api.wire` envelopes.  The default
        ``TRUSTED_MERGED`` strategy folds the arrays through
        :func:`~repro.sketches.merge.merge_many_arrays` — no per-key Python
        between the wire and the private release — and produces exactly the
        histogram :meth:`release` computes on the corresponding dicts.  The
        other strategies need per-sketch dict post-processing (Algorithm 3,
        or one Algorithm 2 release per sketch) and fall back to it.
        """
        if not len(keys_list):
            raise ParameterError("at least one sketch is required")
        generator = ensure_rng(rng)
        length = total_stream_length if total_stream_length is not None else 0
        count = streams if streams is not None else len(keys_list)
        if self.strategy is MergeStrategy.TRUSTED_MERGED:
            merged = merge_many_arrays(keys_list, values_list, self.k)
            return self._gshm_release(merged, generator, length, count,
                                      ", columnar wire")
        sketches = [dict(zip(np.asarray(keys).tolist(), np.asarray(values, dtype=float).tolist()))
                    for keys, values in zip(keys_list, values_list)]
        return self.release(sketches, rng=generator, total_stream_length=length,
                            streams=count)

    def release_streams(self, streams: Sequence, rng: RandomState = None,
                        workers: Optional[int] = None) -> PrivateHistogram:
        """End-to-end release from raw per-server streams.

        Builds one sketch per stream with :func:`sketch_streams` (vectorized
        for integer streams, fanned out over ``workers`` processes when
        requested) and releases the aggregate under the configured strategy.
        """
        return self.release(sketch_streams(streams, self.k, workers=workers), rng=rng)

    # -- trusted aggregator, post-process then sum --------------------------------

    def _release_trusted_sum(self, sketches, generator, length, count) -> PrivateHistogram:
        reduced = [self._reduce(sketch) for sketch in sketches]
        aggregate = sum_counters(reduced)
        scale = 2.0 / self.epsilon
        threshold = stability_histogram_threshold(self.epsilon, self.delta, sensitivity=2.0)
        released = _noisy_threshold_filter(aggregate, scale, threshold, generator)
        metadata = ReleaseMetadata(
            mechanism="MergedMG-TrustedSum",
            epsilon=self.epsilon,
            delta=self.delta,
            noise_scale=scale,
            threshold=threshold,
            sketch_size=self.k,
            stream_length=length,
            notes=f"streams={count}, unbounded aggregator memory",
        )
        return PrivateHistogram(counts=released, metadata=metadata)

    # -- trusted aggregator, Agarwal merge then GSHM -------------------------------

    def _release_trusted_merged(self, sketches, generator, length, count) -> PrivateHistogram:
        merged = merge_many([self._counters(sketch) for sketch in sketches], self.k)
        return self._gshm_release(merged, generator, length, count, "")

    def _gshm_release(self, merged: Mapping[Hashable, float], generator,
                      length: int, streams: int, note: str) -> PrivateHistogram:
        """The trusted-merged GSHM release of an already-merged summary.

        Shared by the dict and columnar wire entry points so the two paths
        cannot drift.
        """
        mechanism = GaussianSparseHistogram(epsilon=self.epsilon, delta=self.delta, l=self.k)
        histogram = mechanism.release(merged, rng=generator, stream_length=length,
                                      sketch_size=self.k)
        metadata = ReleaseMetadata(
            mechanism="MergedMG-TrustedMerged",
            epsilon=self.epsilon,
            delta=self.delta,
            noise_scale=histogram.metadata.noise_scale,
            threshold=histogram.metadata.threshold,
            sketch_size=self.k,
            stream_length=length,
            notes=f"streams={streams}, GSHM with l=k={self.k}{note}",
        )
        return PrivateHistogram(counts=histogram.counts, metadata=metadata)

    # -- untrusted aggregator -------------------------------------------------------

    def _release_untrusted(self, sketches, generator, length, count) -> PrivateHistogram:
        mechanism = PrivateMisraGries(epsilon=self.epsilon, delta=self.delta)
        noisy_summaries: List[Dict[Hashable, float]] = []
        for sketch in sketches:
            if isinstance(sketch, MisraGriesSketch):
                histogram = mechanism.release(sketch, rng=generator)
            else:
                histogram = mechanism.release(dict(self._counters(sketch)), rng=generator, k=self.k)
            noisy_summaries.append(histogram.as_dict())
        merged = merge_many(noisy_summaries, self.k)
        threshold = mechanism.threshold(self.k)
        metadata = ReleaseMetadata(
            mechanism="MergedMG-Untrusted",
            epsilon=self.epsilon,
            delta=self.delta,
            noise_scale=1.0 / self.epsilon,
            threshold=threshold,
            sketch_size=self.k,
            stream_length=length,
            notes=(f"streams={count}; each sketch privatized with Algorithm 2 "
                   "before merging, error grows with the number of streams"),
        )
        return PrivateHistogram(counts=merged, metadata=metadata)

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------

    def _counters(self, sketch: SketchLike) -> Dict[Hashable, float]:
        if isinstance(sketch, FrequencySketch):
            return sketch.counters()
        return {key: float(value) for key, value in sketch.items()}

    def _reduce(self, sketch: SketchLike) -> Dict[Hashable, float]:
        if isinstance(sketch, MisraGriesSketch):
            return reduce_sensitivity(sketch)
        return reduce_sensitivity(self._counters(sketch), self.k)

    def _total_length(self, sketches: Sequence[SketchLike]) -> int:
        total = 0
        for sketch in sketches:
            if isinstance(sketch, FrequencySketch):
                total += sketch.stream_length
        return total
