"""Continual observation: releasing heavy hitters repeatedly as the stream grows.

Chan, Li, Shi and Xu use their differentially private Misra-Gries sketch as a
subroutine for *continual monitoring*: the mechanism must publish an updated
histogram after every block of arrivals, and the privacy guarantee must hold
for the entire sequence of publications.  The paper notes that Algorithm 2 can
replace their subroutine and improve the per-release noise; this module
provides that construction.

Two composition strategies are implemented.

``blocks``
    The timeline is split into fixed-size blocks.  Each block gets its own
    Misra-Gries sketch, released once with Algorithm 2 when the block closes.
    Every stream element belongs to exactly one block, so parallel composition
    applies and the whole timeline is (epsilon, delta)-DP with the full budget
    per release.  A prefix query sums all released block histograms
    (post-processing); the noise — and in particular the thresholding error —
    therefore grows linearly with the number of closed blocks, which is the
    behaviour the paper describes for the untrusted-aggregator setting.

``binary_tree``
    The classic tree-based continual release: one Misra-Gries sketch is
    maintained *per dyadic level*, every arriving element updates all of them,
    and a level-``j`` sketch is released (with Algorithm 2) and reset whenever
    its range of ``2^j`` blocks completes.  Every released sketch is a genuine
    MG sketch of a contiguous range of the raw stream, so Algorithm 2's
    privacy analysis applies directly (the paper warns that it would *not*
    apply to Agarwal-merged sketches, which is why levels re-ingest elements
    instead of merging child nodes).  An element appears in at most ``levels``
    sketches, so each release runs with budget ``epsilon / levels`` (basic
    composition across levels, parallel composition within a level).  A prefix
    query now sums only ``O(log T)`` released histograms, so the noise in any
    estimate grows logarithmically with the number of blocks instead of
    linearly — at the cost of the ``levels`` factor in the per-release budget.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Hashable, Iterable, List, Optional

from .._batching import as_int_array
from .._validation import check_delta, check_epsilon, check_positive_int
from ..dp.rng import RandomState, ensure_rng
from ..exceptions import ParameterError, SketchStateError
from ..sketches.misra_gries import MisraGriesSketch
from .private_misra_gries import PrivateMisraGries
from .results import PrivateHistogram, ReleaseMetadata

_STRATEGIES = ("blocks", "binary_tree")


@dataclass(frozen=True)
class ContinualConfig:
    """Validated epoch parameters for a continual-release timeline.

    The monitor itself consumes its noise generator at construction time, so
    the registry cannot build a :class:`ContinualHeavyHitters` until the
    release-time ``rng`` is known.  This config carries — and eagerly
    validates — every epoch parameter, and :meth:`build` instantiates a fresh
    monitor per release.
    """

    k: int
    epsilon: float
    delta: float
    block_size: int
    strategy: str = "blocks"
    max_blocks: int = 1024

    def __post_init__(self) -> None:
        check_positive_int(self.k, "k")
        check_epsilon(self.epsilon)
        check_delta(self.delta)
        check_positive_int(self.block_size, "block_size")
        if self.strategy not in _STRATEGIES:
            raise ParameterError(
                f"strategy must be one of {_STRATEGIES}, got {self.strategy!r}")
        check_positive_int(self.max_blocks, "max_blocks")

    def build(self, rng: RandomState = None) -> "ContinualHeavyHitters":
        """A fresh monitor for one timeline, drawing noise from ``rng``."""
        return ContinualHeavyHitters(k=self.k, epsilon=self.epsilon,
                                     delta=self.delta, block_size=self.block_size,
                                     strategy=self.strategy,
                                     max_blocks=self.max_blocks, rng=rng)


@dataclass
class _NodeRelease:
    """A released histogram covering a dyadic range of blocks."""

    level: int
    start_block: int
    num_blocks: int
    histogram: PrivateHistogram


class ContinualHeavyHitters:
    """Continually observed private histogram built from Misra-Gries sketches.

    Parameters
    ----------
    k:
        Sketch size used for every block / node sketch.
    epsilon, delta:
        Privacy budget for the *entire timeline* (all publications together).
    block_size:
        Number of stream elements per block; releases happen every time a
        block completes.
    strategy:
        ``"blocks"`` (linear noise growth in the number of blocks, full budget
        per release) or ``"binary_tree"`` (logarithmic noise growth, budget
        split over the tree levels).
    max_blocks:
        Upper bound on the number of blocks the timeline can contain; for
        ``binary_tree`` it fixes the number of levels the budget is divided
        among.
    rng:
        Seed or generator used for all noise.

    Examples
    --------
    >>> monitor = ContinualHeavyHitters(k=8, epsilon=1.0, delta=1e-6,
    ...                                 block_size=100, rng=0)
    >>> for element in [1, 2, 1] * 100:
    ...     _ = monitor.process(element)
    >>> isinstance(monitor.estimate(1), float)
    True
    """

    def __init__(self, k: int, epsilon: float, delta: float, block_size: int,
                 strategy: str = "blocks", max_blocks: int = 1024,
                 rng: RandomState = None) -> None:
        self._k = check_positive_int(k, "k")
        self._epsilon = check_epsilon(epsilon)
        self._delta = check_delta(delta)
        self._block_size = check_positive_int(block_size, "block_size")
        if strategy not in _STRATEGIES:
            raise ParameterError(f"strategy must be one of {_STRATEGIES}, got {strategy!r}")
        self._strategy = strategy
        self._max_blocks = check_positive_int(max_blocks, "max_blocks")
        self._rng = ensure_rng(rng)
        if strategy == "binary_tree":
            self._levels = max(1, math.ceil(math.log2(self._max_blocks)) + 1)
        else:
            self._levels = 1
        self._mechanism = PrivateMisraGries(epsilon=self._per_release_epsilon(),
                                            delta=self._per_release_delta())
        # One sketch per level; level j covers a range of 2**j blocks.
        self._level_sketches: List[MisraGriesSketch] = [MisraGriesSketch(self._k)
                                                        for _ in range(self._levels)]
        self._current_block_count = 0
        self._closed_blocks = 0
        self._elements_processed = 0
        self._releases: List[_NodeRelease] = []

    # ------------------------------------------------------------------
    # Configuration / accounting
    # ------------------------------------------------------------------

    @property
    def strategy(self) -> str:
        """The composition strategy in use."""
        return self._strategy

    @property
    def levels(self) -> int:
        """Number of dyadic levels maintained (1 for the blocks strategy)."""
        return self._levels

    @property
    def releases(self) -> List[PrivateHistogram]:
        """All histograms released so far (one per closed block or tree node)."""
        return [node.histogram for node in self._releases]

    @property
    def closed_blocks(self) -> int:
        """Number of completed blocks."""
        return self._closed_blocks

    @property
    def elements_processed(self) -> int:
        """Total number of stream elements seen."""
        return self._elements_processed

    def _per_release_epsilon(self) -> float:
        return self._epsilon / self._levels

    def _per_release_delta(self) -> float:
        return self._delta / self._levels

    def per_release_budget(self) -> Dict[str, float]:
        """The (epsilon, delta) each individual release runs with."""
        return {"epsilon": self._per_release_epsilon(), "delta": self._per_release_delta()}

    # ------------------------------------------------------------------
    # Stream processing
    # ------------------------------------------------------------------

    def process(self, element: Hashable) -> Optional[List[PrivateHistogram]]:
        """Process one element; returns the histograms released by this step, if any."""
        for sketch in self._level_sketches:
            sketch.update(element)
        self._current_block_count += 1
        self._elements_processed += 1
        if self._current_block_count < self._block_size:
            return None
        return self._close_block()

    def process_stream(self, stream: Iterable[Hashable]) -> "ContinualHeavyHitters":
        """Process an entire iterable; returns ``self`` for chaining.

        Integer streams (ndarrays or lists of ints) are ingested block by
        block through :meth:`MisraGriesSketch.update_batch`: each level sketch
        receives the remainder of the current block as one vectorized update,
        then the block closes exactly where the per-element loop would close
        it.  Level sketches are independent between releases, so the final
        states — and the released histograms, which consume the shared ``rng``
        in the same order — are identical to per-element processing.
        """
        batch = as_int_array(stream)
        if batch is None:
            for element in stream:
                self.process(element)
            return self
        position = 0
        total = len(batch)
        while position < total:
            room = self._block_size - self._current_block_count
            segment = batch[position:position + room]
            for sketch in self._level_sketches:
                sketch.update_batch(segment)
            taken = len(segment)
            self._current_block_count += taken
            self._elements_processed += taken
            position += taken
            if self._current_block_count >= self._block_size:
                self._close_block()
        return self

    def flush(self) -> Optional[List[PrivateHistogram]]:
        """Close the current partial block (if non-empty) and release it."""
        if self._current_block_count == 0:
            return None
        return self._close_block()

    def _close_block(self) -> List[PrivateHistogram]:
        if self._closed_blocks >= self._max_blocks:
            raise SketchStateError(
                f"timeline exceeded max_blocks={self._max_blocks}; "
                "construct the monitor with a larger bound")
        block_index = self._closed_blocks
        self._closed_blocks += 1
        self._current_block_count = 0
        released: List[PrivateHistogram] = []
        for level in range(self._levels):
            span = 2 ** level
            if (block_index + 1) % span != 0:
                continue
            sketch = self._level_sketches[level]
            histogram = self._mechanism.release(sketch, rng=self._rng)
            self._releases.append(_NodeRelease(level=level,
                                               start_block=block_index + 1 - span,
                                               num_blocks=span,
                                               histogram=histogram))
            released.append(histogram)
            self._level_sketches[level] = MisraGriesSketch(self._k)
        return released

    # ------------------------------------------------------------------
    # Queries (post-processing of the released histograms)
    # ------------------------------------------------------------------

    def estimate(self, element: Hashable) -> float:
        """Estimated total frequency of ``element`` over all closed blocks."""
        return sum(node.histogram.estimate(element)
                   for node in self._covering_nodes(self._closed_blocks))

    def histogram(self) -> Dict[Hashable, float]:
        """Estimated counts for every element appearing in any covering release."""
        estimates: Dict[Hashable, float] = {}
        for node in self._covering_nodes(self._closed_blocks):
            for key, value in node.histogram.items():
                estimates[key] = estimates.get(key, 0.0) + value
        return estimates

    def heavy_hitters(self, threshold: float) -> Dict[Hashable, float]:
        """Elements whose estimated total count is at least ``threshold``."""
        return {key: value for key, value in self.histogram().items() if value >= threshold}

    def as_histogram(self) -> PrivateHistogram:
        """The current prefix query as a standard :class:`PrivateHistogram`.

        Sums the covering released histograms (pure post-processing, no new
        privacy cost) and attaches timeline metadata, so the continual
        mechanism plugs into every consumer of the uniform release interface
        (the registry adapter, the CLI, error summaries).
        """
        budget = self.per_release_budget()
        metadata = ReleaseMetadata(
            mechanism="ContinualMG",
            epsilon=self._epsilon,
            delta=self._delta,
            noise_scale=1.0 / budget["epsilon"],
            threshold=self._mechanism.threshold(self._k),
            sketch_size=self._k,
            stream_length=self._elements_processed,
            notes=(f"strategy={self._strategy}, blocks={self._closed_blocks}, "
                   f"levels={self._levels}, releases={len(self._releases)}, "
                   f"per-release budget eps={budget['epsilon']:.6g} "
                   f"delta={budget['delta']:.6g}"),
        )
        return PrivateHistogram(counts=self.histogram(), metadata=metadata)

    def releases_per_query(self) -> int:
        """How many released histograms the current prefix query sums."""
        return len(self._covering_nodes(self._closed_blocks))

    def _covering_nodes(self, num_blocks: int) -> List[_NodeRelease]:
        """A minimal set of released nodes covering blocks [0, num_blocks)."""
        if self._strategy == "blocks":
            return [node for node in self._releases if node.start_block < num_blocks]
        by_start: Dict[int, List[_NodeRelease]] = {}
        for node in self._releases:
            by_start.setdefault(node.start_block, []).append(node)
        covering: List[_NodeRelease] = []
        position = 0
        while position < num_blocks:
            candidates = [node for node in by_start.get(position, [])
                          if position + node.num_blocks <= num_blocks]
            if not candidates:
                break
            best = max(candidates, key=lambda node: node.num_blocks)
            covering.append(best)
            position += best.num_blocks
        return covering

    def __repr__(self) -> str:
        return (f"ContinualHeavyHitters(k={self._k}, strategy={self._strategy!r}, "
                f"blocks={self._closed_blocks}, n={self._elements_processed})")
