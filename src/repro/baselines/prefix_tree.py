"""Prefix-tree heavy hitters from a private frequency oracle.

Section 4 of the paper discusses the alternative route to private heavy
hitters: keep a private frequency oracle (e.g. a noisy CountMin sketch) and
*search* for the heavy elements instead of iterating over the whole universe.
The standard search structure is a binary prefix tree over the universe
``[0, d)``: level ``j`` holds the frequencies of dyadic intervals of length
``d / 2^j``, and the search expands only intervals whose noisy count clears
the threshold, so it touches ``O(k log d)`` nodes instead of ``d``.

The cost is that every stream element now contributes to ``log2(d)`` levels,
so the privacy budget is split across levels and the per-level noise picks up
a ``log d`` factor — the reason the paper's direct Misra-Gries release has
asymptotically better error (``O(log(1/delta))`` vs ``O(log k . log d)``
noise, in the respective regimes).  The class below makes that trade-off
measurable.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Hashable, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from .._validation import check_delta, check_epsilon, check_positive_int
from ..dp.distributions import sample_gaussian, sample_laplace
from ..dp.rng import RandomState, ensure_rng
from ..exceptions import ParameterError
from ..sketches.count_min import CountMinSketch
from ..core.results import PrivateHistogram, ReleaseMetadata


@dataclass(frozen=True)
class PrefixTreeHeavyHitters:
    """Heavy hitters via a hierarchy of private CountMin oracles.

    Parameters
    ----------
    epsilon, delta:
        Overall privacy budget; it is split evenly across the tree levels by
        basic composition (``delta = 0`` selects Laplace noise, otherwise
        Gaussian).
    universe_size:
        Size ``d`` of the integer universe ``[0, d)``.
    width, depth:
        Dimensions of the CountMin sketch kept at every level.
    branching:
        Fan-out of the tree (2 = binary prefixes).
    """

    epsilon: float
    delta: float
    universe_size: int
    width: int = 512
    depth: int = 3
    branching: int = 2
    seed: int = 0

    def __post_init__(self) -> None:
        check_epsilon(self.epsilon)
        check_delta(self.delta, allow_zero=True)
        check_positive_int(self.universe_size, "universe_size")
        check_positive_int(self.width, "width")
        check_positive_int(self.depth, "depth")
        if self.branching < 2:
            raise ParameterError(f"branching must be at least 2, got {self.branching}")

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------

    @property
    def num_levels(self) -> int:
        """Number of tree levels (root interval excluded, leaves included)."""
        return max(1, math.ceil(math.log(self.universe_size, self.branching)))

    @property
    def per_level_epsilon(self) -> float:
        """Privacy budget available to each level under basic composition."""
        return self.epsilon / self.num_levels

    @property
    def per_level_noise_scale(self) -> float:
        """Per-cell noise scale at each level.

        Laplace scale ``depth / per_level_epsilon`` for pure DP, Gaussian sigma
        ``sqrt(2 ln(1.25 l/delta) depth) / per_level_epsilon`` otherwise (the
        delta is also split across levels).
        """
        if self.delta == 0.0:
            return self.depth / self.per_level_epsilon
        per_level_delta = self.delta / self.num_levels
        return float(np.sqrt(2.0 * np.log(1.25 / per_level_delta) * self.depth)
                     / self.per_level_epsilon)

    def _prefix(self, element: int, level: int) -> int:
        """The index of ``element``'s ancestor interval at ``level`` (0 = coarsest)."""
        shift = self.num_levels - 1 - level
        return int(element) // (self.branching ** shift)

    # ------------------------------------------------------------------
    # Building and searching
    # ------------------------------------------------------------------

    def build(self, stream: Iterable[int], rng: RandomState = None):
        """Build the per-level noisy CountMin oracles for a stream."""
        generator = ensure_rng(rng)
        sketches: List[CountMinSketch] = [
            CountMinSketch(self.width, self.depth, seed=self.seed + level)
            for level in range(self.num_levels)
        ]
        length = 0
        for element in stream:
            if not (0 <= int(element) < self.universe_size):
                raise ParameterError(
                    f"element {element!r} outside the universe [0, {self.universe_size})")
            length += 1
            for level, sketch in enumerate(sketches):
                sketch.update(self._prefix(element, level))
        noisy_tables = []
        scale = self.per_level_noise_scale
        for sketch in sketches:
            table = sketch.table()
            if self.delta == 0.0:
                noise = np.asarray(sample_laplace(scale, size=table.size, rng=generator))
            else:
                noise = np.asarray(sample_gaussian(scale, size=table.size, rng=generator))
            noisy_tables.append(table + noise.reshape(table.shape))
        return sketches, noisy_tables, length

    def _query_node(self, sketches, noisy_tables, level: int, node: int) -> float:
        from ..sketches._hashing import bucket_hash

        values = []
        for row in range(self.depth):
            column = bucket_hash(node, self.seed + level, row, self.width)
            values.append(noisy_tables[level][row, column])
        return float(min(values))

    def heavy_hitters(self, stream: Sequence[int], phi: float,
                      rng: RandomState = None) -> PrivateHistogram:
        """phi-heavy hitters found by descending the prefix tree.

        Only nodes whose noisy count reaches ``phi * n`` are expanded, so the
        number of oracle queries is ``O((1/phi) log d)`` rather than ``d``.
        """
        if not (0 < phi < 1):
            raise ParameterError(f"phi must be in (0,1), got {phi}")
        sketches, noisy_tables, length = self.build(stream, rng=rng)
        cutoff = phi * length
        frontier = list(range(min(self.branching, self.universe_size)))
        level = 0
        nodes_visited = 0
        while level < self.num_levels - 1:
            survivors = []
            for node in frontier:
                nodes_visited += 1
                if self._query_node(sketches, noisy_tables, level, node) >= cutoff:
                    survivors.append(node)
            frontier = [node * self.branching + child
                        for node in survivors for child in range(self.branching)]
            level += 1
        released: Dict[Hashable, float] = {}
        for node in frontier:
            nodes_visited += 1
            if node >= self.universe_size:
                continue
            estimate = self._query_node(sketches, noisy_tables, level, node)
            if estimate >= cutoff:
                released[int(node)] = estimate
        metadata = ReleaseMetadata(
            mechanism="PrefixTree-Oracle",
            epsilon=self.epsilon,
            delta=self.delta,
            noise_scale=self.per_level_noise_scale,
            threshold=cutoff,
            sketch_size=self.width * self.depth * self.num_levels,
            stream_length=length,
            notes=(f"levels={self.num_levels}, per-level eps={self.per_level_epsilon:.4g}, "
                   f"nodes visited={nodes_visited}"),
        )
        return PrivateHistogram(counts=released, metadata=metadata)
