"""Local differential privacy baseline: frequency estimation without a trusted curator.

The related-work section of the paper surveys the heavy-hitters problem under
*local* differential privacy (RAPPOR and its successors), where every user
randomizes their own report and the server only ever sees noisy data.  Local
protocols need no trusted aggregator but pay a Θ(√n) error floor, so they are
not competitive with the central-model Misra-Gries release when a trusted
curator exists — which is exactly the comparison this baseline makes possible.

The implementation is the Optimized Unary Encoding (OUE) randomizer of Wang et
al.: each user encodes their element as a one-hot vector over the universe,
keeps the hot bit with probability 1/2 and flips every cold bit on with
probability ``1 / (e^epsilon + 1)``.  The aggregator debiases the column sums
to obtain unbiased frequency estimates; heavy hitters are read off the
estimated histogram.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence

import numpy as np

from .._validation import check_epsilon, check_positive_int
from ..dp.rng import RandomState, ensure_rng
from ..exceptions import ParameterError
from ..core.results import PrivateHistogram, ReleaseMetadata


@dataclass(frozen=True)
class LocalDPFrequencyEstimator:
    """Optimized Unary Encoding (OUE) local-DP frequency estimation.

    Parameters
    ----------
    epsilon:
        Local privacy budget: each user's report is epsilon-locally-DP.
    universe_size:
        Size ``d`` of the integer universe ``[0, d)``.

    Notes
    -----
    The estimator's per-element standard deviation is
    ``sqrt(n) * sqrt(4 e^epsilon) / (e^epsilon - 1)`` — the √n error floor
    that separates the local model from the central-model mechanisms in this
    library.
    """

    epsilon: float
    universe_size: int

    def __post_init__(self) -> None:
        check_epsilon(self.epsilon)
        check_positive_int(self.universe_size, "universe_size")

    @property
    def keep_probability(self) -> float:
        """Probability that the hot bit stays set (1/2 for OUE)."""
        return 0.5

    @property
    def flip_probability(self) -> float:
        """Probability that a cold bit is reported as set, ``1/(e^eps + 1)``."""
        return 1.0 / (math.exp(self.epsilon) + 1.0)

    def expected_standard_deviation(self, num_users: int) -> float:
        """Per-element standard deviation of the estimate for ``num_users`` reports."""
        exp_eps = math.exp(self.epsilon)
        return math.sqrt(num_users * 4.0 * exp_eps) / (exp_eps - 1.0)

    # ------------------------------------------------------------------
    # Protocol
    # ------------------------------------------------------------------

    def randomize(self, element: int, rng: RandomState = None) -> np.ndarray:
        """One user's randomized (epsilon-locally-DP) report: a 0/1 vector."""
        if not (0 <= int(element) < self.universe_size):
            raise ParameterError(
                f"element {element!r} outside the universe [0, {self.universe_size})")
        generator = ensure_rng(rng)
        report = (generator.random(self.universe_size) < self.flip_probability).astype(np.int8)
        report[int(element)] = 1 if generator.random() < self.keep_probability else 0
        return report

    def aggregate(self, reports: Sequence[np.ndarray]) -> Dict[int, float]:
        """Debiased frequency estimates from a collection of user reports."""
        if not len(reports):
            return {}
        stacked = np.asarray(reports, dtype=float)
        if stacked.ndim != 2 or stacked.shape[1] != self.universe_size:
            raise ParameterError("reports must be vectors over the declared universe")
        num_users = stacked.shape[0]
        column_sums = stacked.sum(axis=0)
        p, q = self.keep_probability, self.flip_probability
        estimates = (column_sums - num_users * q) / (p - q)
        return {index: float(value) for index, value in enumerate(estimates)}

    def estimate_frequencies(self, stream: Iterable[int],
                             rng: RandomState = None) -> Dict[int, float]:
        """Run the full protocol over a stream of one element per user."""
        generator = ensure_rng(rng)
        # Vectorized simulation of all users at once: one row per user.
        elements = np.fromiter((int(x) for x in stream), dtype=np.int64)
        if elements.size == 0:
            return {}
        if elements.min() < 0 or elements.max() >= self.universe_size:
            raise ParameterError("stream contains elements outside the declared universe")
        num_users = elements.size
        reports = (generator.random((num_users, self.universe_size))
                   < self.flip_probability).astype(np.int8)
        hot = (generator.random(num_users) < self.keep_probability).astype(np.int8)
        reports[np.arange(num_users), elements] = hot
        column_sums = reports.sum(axis=0, dtype=np.float64)
        p, q = self.keep_probability, self.flip_probability
        estimates = (column_sums - num_users * q) / (p - q)
        return {index: float(value) for index, value in enumerate(estimates)}

    # ------------------------------------------------------------------
    # Heavy hitters
    # ------------------------------------------------------------------

    def heavy_hitters(self, stream: Sequence[int], phi: float,
                      rng: RandomState = None) -> PrivateHistogram:
        """phi-heavy hitters from the locally-private frequency estimates."""
        if not (0 < phi < 1):
            raise ParameterError(f"phi must be in (0,1), got {phi}")
        estimates = self.estimate_frequencies(stream, rng=rng)
        length = len(stream)
        cutoff = phi * length
        released = {key: value for key, value in estimates.items() if value >= cutoff}
        metadata = ReleaseMetadata(
            mechanism="LocalDP-OUE",
            epsilon=self.epsilon,
            delta=0.0,
            noise_scale=self.expected_standard_deviation(max(length, 1)),
            threshold=cutoff,
            sketch_size=self.universe_size,
            stream_length=length,
            notes=f"local model, per-user epsilon={self.epsilon}, universe={self.universe_size}",
        )
        return PrivateHistogram(counts=released, metadata=metadata)
