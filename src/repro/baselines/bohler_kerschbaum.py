"""The Böhler-Kerschbaum [CCS 2021] Misra-Gries baseline.

One of the heavy-hitter protocols of Böhler and Kerschbaum adds Laplace noise
with scale ``1/epsilon`` to the counters of a Misra-Gries sketch and removes
noisy counts below a threshold — i.e. it treats the sketch as if its
sensitivity were 1, the sensitivity of the *exact* histogram.  As the paper
explains (and as Chan et al. showed), the MG sketch actually has sensitivity
``k``, so the published mechanism does **not** satisfy its claimed
(epsilon, delta)-DP guarantee.

Both forms are implemented here:

* ``as_published=True`` — noise scale ``1/epsilon``; useful only to
  demonstrate the privacy violation empirically (experiment E10's audit) and
  to show what error the paper's abstract result would have had, had the
  analysis been correct;
* ``as_published=False`` (the corrected variant) — noise scale ``k/epsilon``
  and threshold ``O(k log(k/delta)/epsilon)``, which is what a fixed version
  must pay and what the comparison experiments use as "BK (corrected)".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, Iterable, Mapping, Optional, Union

import numpy as np

from .._validation import check_delta, check_epsilon, check_positive_int
from ..dp.distributions import sample_laplace
from ..dp.rng import RandomState, ensure_rng
from ..dp.thresholds import stability_histogram_threshold
from ..sketches.misra_gries import DummyKey, MisraGriesSketch
from ..core.results import PrivateHistogram, ReleaseMetadata


@dataclass(frozen=True)
class BohlerKerschbaumMG:
    """Böhler-Kerschbaum style noisy Misra-Gries release.

    Parameters
    ----------
    epsilon, delta:
        The *claimed* privacy parameters.
    k:
        Sketch size.
    as_published:
        ``True`` reproduces the published mechanism (sensitivity-1 noise,
        which does not actually satisfy the claimed guarantee); ``False``
        scales noise and threshold to the correct sensitivity ``k``.
    """

    epsilon: float
    delta: float
    k: int
    as_published: bool = False

    def __post_init__(self) -> None:
        check_epsilon(self.epsilon)
        check_delta(self.delta)
        check_positive_int(self.k, "k")

    @property
    def sensitivity(self) -> float:
        """The sensitivity the noise is scaled to (1 as published, k corrected)."""
        return 1.0 if self.as_published else float(self.k)

    @property
    def noise_scale(self) -> float:
        """Laplace scale ``sensitivity / epsilon``."""
        return self.sensitivity / self.epsilon

    @property
    def threshold(self) -> float:
        """Release threshold.

        As published: ``1 + ln(1/delta)/epsilon`` (sensitivity-1 stability
        threshold).  Corrected: the same formula with sensitivity ``k`` and
        per-key failure probability ``delta/k``.
        """
        if self.as_published:
            return stability_histogram_threshold(self.epsilon, self.delta, sensitivity=1.0)
        return stability_histogram_threshold(self.epsilon, self.delta / self.k,
                                             sensitivity=float(self.k))

    def release(self, sketch: Union[MisraGriesSketch, Mapping[Hashable, float]],
                rng: RandomState = None,
                stream_length: Optional[int] = None) -> PrivateHistogram:
        """Add per-counter Laplace noise and drop values below the threshold."""
        if isinstance(sketch, MisraGriesSketch):
            counters = sketch.counters()
            length = sketch.stream_length
        else:
            counters = {key: float(value) for key, value in sketch.items()
                        if not isinstance(key, DummyKey)}
            length = stream_length if stream_length is not None else 0
        generator = ensure_rng(rng)
        released: Dict[Hashable, float] = {}
        for key, value in counters.items():
            noisy = value + float(sample_laplace(self.noise_scale, rng=generator))
            if noisy >= self.threshold:
                released[key] = noisy
        label = "BK-AsPublished" if self.as_published else "BK-Corrected"
        notes = ("noise scale 1/epsilon: does NOT satisfy the claimed guarantee "
                 "(uses the exact-histogram sensitivity instead of the sketch's)"
                 if self.as_published else
                 "noise scale k/epsilon: corrected sensitivity, error O(k log(k/delta)/eps)")
        metadata = ReleaseMetadata(
            mechanism=label,
            epsilon=self.epsilon,
            delta=self.delta,
            noise_scale=self.noise_scale,
            threshold=self.threshold,
            sketch_size=self.k,
            stream_length=length,
            notes=notes,
        )
        return PrivateHistogram(counts=released, metadata=metadata)

    def run(self, stream: Iterable[Hashable], rng: RandomState = None) -> PrivateHistogram:
        """End-to-end: build the MG sketch, then release it."""
        sketch = MisraGriesSketch.from_stream(self.k, stream)
        return self.release(sketch, rng=rng)

    def expected_max_error(self) -> float:
        """Asymptotic maximum error: ``log(1/delta)/eps`` published, ``k log(k/delta)/eps`` corrected."""
        if self.as_published:
            return np.log(1.0 / self.delta) / self.epsilon
        return self.k * np.log(self.k / self.delta) / self.epsilon
