"""The non-streaming stability histogram (Korolova et al. style).

This is the "best private solution that starts with an exact histogram" the
paper measures itself against: compute exact frequencies (unbounded memory),
add Laplace(1/epsilon) noise to every non-zero count and drop noisy counts
below ``1 + ln(1/delta)/epsilon``.  The maximum error is
``O(log(1/delta)/epsilon)`` — the benchmark Algorithm 2 matches (up to
constants) while using only ``2k`` words of memory.

A pure-DP variant over an explicit integer universe is also provided for the
Section 6 comparisons.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, Iterable, Mapping, Optional, Union

import numpy as np

from .._validation import check_delta, check_epsilon, check_positive_int
from ..dp.distributions import sample_laplace
from ..dp.rng import RandomState, ensure_rng
from ..dp.thresholds import stability_histogram_threshold
from ..exceptions import ParameterError
from ..sketches.exact import ExactCounter
from ..core.results import PrivateHistogram, ReleaseMetadata


@dataclass(frozen=True)
class StabilityHistogram:
    """Exact histogram + Laplace noise + stability threshold.

    Parameters
    ----------
    epsilon, delta:
        Privacy parameters.  ``delta=None`` selects the pure-DP variant which
        adds noise to every element of an explicit universe (requires
        ``universe_size``) instead of thresholding.
    universe_size:
        Universe size for the pure-DP variant.
    sensitivity:
        How much a single user can change one count; 1 in the element-level
        setting, ``m`` when users contribute up to ``m`` copies.
    """

    epsilon: float
    delta: Optional[float] = None
    universe_size: Optional[int] = None
    sensitivity: float = 1.0

    def __post_init__(self) -> None:
        check_epsilon(self.epsilon)
        if self.delta is not None:
            check_delta(self.delta)
        if self.universe_size is not None:
            check_positive_int(self.universe_size, "universe_size")
        if self.delta is None and self.universe_size is None:
            raise ParameterError("either delta (thresholded) or universe_size (pure DP) is required")
        if self.sensitivity <= 0:
            raise ParameterError(f"sensitivity must be positive, got {self.sensitivity}")

    @property
    def noise_scale(self) -> float:
        """Laplace scale ``sensitivity / epsilon``."""
        return self.sensitivity / self.epsilon

    @property
    def threshold(self) -> float:
        """Stability threshold (0 for the pure-DP universe variant)."""
        if self.delta is None:
            return 0.0
        return stability_histogram_threshold(self.epsilon, self.delta,
                                             sensitivity=self.sensitivity)

    def release(self, counts: Union[ExactCounter, Mapping[Hashable, float]],
                rng: RandomState = None,
                stream_length: Optional[int] = None) -> PrivateHistogram:
        """Release exact counts privately."""
        if isinstance(counts, ExactCounter):
            counters = counts.counters()
            length = counts.stream_length
        else:
            counters = {key: float(value) for key, value in counts.items()}
            length = stream_length if stream_length is not None else int(sum(counters.values()))
        generator = ensure_rng(rng)
        if self.delta is None:
            return self._release_pure(counters, generator, length)
        released: Dict[Hashable, float] = {}
        threshold = self.threshold
        for key, value in counters.items():
            if value == 0:
                continue
            noisy = value + float(sample_laplace(self.noise_scale, rng=generator))
            if noisy >= threshold:
                released[key] = noisy
        metadata = ReleaseMetadata(
            mechanism="StabilityHistogram",
            epsilon=self.epsilon,
            delta=self.delta,
            noise_scale=self.noise_scale,
            threshold=threshold,
            sketch_size=0,
            stream_length=length,
            notes="non-streaming: exact counts + Laplace + threshold",
        )
        return PrivateHistogram(counts=released, metadata=metadata)

    def run(self, stream: Iterable[Hashable], rng: RandomState = None) -> PrivateHistogram:
        """End-to-end: count exactly, then release."""
        counter = ExactCounter.from_stream(stream)
        return self.release(counter, rng=rng)

    def expected_max_error(self) -> float:
        """Asymptotic maximum error of the release."""
        if self.delta is None:
            return self.noise_scale * np.log(max(self.universe_size, 2))
        return self.noise_scale * np.log(1.0 / self.delta) + self.threshold

    def _release_pure(self, counters, generator, length) -> PrivateHistogram:
        dense = np.zeros(self.universe_size, dtype=float)
        for key, value in counters.items():
            if not isinstance(key, (int, np.integer)) or not (0 <= int(key) < self.universe_size):
                raise ParameterError(
                    f"pure-DP release requires integer keys in [0, {self.universe_size}), got {key!r}")
            dense[int(key)] = value
        noise = np.asarray(sample_laplace(self.noise_scale, size=self.universe_size,
                                          rng=generator), dtype=float)
        noisy = dense + noise
        released = {int(index): float(noisy[index]) for index in range(self.universe_size)}
        metadata = ReleaseMetadata(
            mechanism="LaplaceHistogram-PureDP",
            epsilon=self.epsilon,
            delta=0.0,
            noise_scale=self.noise_scale,
            threshold=0.0,
            sketch_size=0,
            stream_length=length,
            notes=f"noise added to all {self.universe_size} universe elements",
        )
        return PrivateHistogram(counts=released, metadata=metadata)
