"""Baseline mechanisms the paper compares against.

* :mod:`repro.baselines.chan` — the Chan, Li, Shi and Xu [PETS 2012] private
  Misra-Gries release with noise scale ``k/epsilon``.
* :mod:`repro.baselines.bohler_kerschbaum` — the Böhler-Kerschbaum [CCS 2021]
  mechanism, both as published (noise scale ``1/epsilon``, which the paper
  shows uses the wrong sensitivity) and in a corrected form.
* :mod:`repro.baselines.exact_histogram` — the non-streaming stability
  histogram (exact counts + Laplace noise + threshold), the gold standard the
  paper matches up to constants.
* :mod:`repro.baselines.oracle_heavy_hitters` — heavy hitters recovered from a
  private CountMin / CountSketch frequency oracle by iterating over the
  universe.
"""

from .bohler_kerschbaum import BohlerKerschbaumMG
from .chan import ChanPrivateMisraGries
from .exact_histogram import StabilityHistogram
from .local_dp import LocalDPFrequencyEstimator
from .oracle_heavy_hitters import PrivateFrequencyOracle
from .prefix_tree import PrefixTreeHeavyHitters

__all__ = [
    "BohlerKerschbaumMG",
    "ChanPrivateMisraGries",
    "LocalDPFrequencyEstimator",
    "PrefixTreeHeavyHitters",
    "PrivateFrequencyOracle",
    "StabilityHistogram",
]
