"""Heavy hitters from a private frequency oracle (the Section 4 alternative).

The simplest non-Misra-Gries route to private heavy hitters is to maintain a
linear sketch (CountMin or CountSketch), privatize it by adding noise to every
cell, and answer heavy-hitter queries by iterating over the whole universe.
Because each stream element touches ``depth`` cells, the l1-sensitivity of the
sketch is ``depth`` (and the noise picks up the corresponding factor), and the
universe iteration multiplies the query cost by ``d`` — both of which are the
disadvantages the paper points out when arguing for the Misra-Gries route.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from .._validation import check_delta, check_epsilon, check_positive_int
from ..dp.distributions import sample_gaussian, sample_laplace
from ..dp.rng import RandomState, ensure_rng
from ..exceptions import ParameterError
from ..sketches.count_min import CountMinSketch
from ..sketches.count_sketch import CountSketch
from ..core.results import PrivateHistogram, ReleaseMetadata


@dataclass(frozen=True)
class PrivateFrequencyOracle:
    """A DP frequency oracle backed by CountMin or CountSketch.

    Parameters
    ----------
    epsilon, delta:
        Privacy parameters.  ``delta=0`` with ``sketch_kind="count_min"`` uses
        Laplace noise scaled to the l1-sensitivity ``depth``; a positive
        ``delta`` uses Gaussian noise scaled to the l2-sensitivity
        ``sqrt(depth)``.
    width, depth:
        Sketch dimensions.
    sketch_kind:
        ``"count_min"`` or ``"count_sketch"``.
    seed:
        Hash seed for the underlying sketch.
    """

    epsilon: float
    delta: float
    width: int
    depth: int
    sketch_kind: str = "count_min"
    seed: int = 0

    def __post_init__(self) -> None:
        check_epsilon(self.epsilon)
        check_delta(self.delta, allow_zero=True)
        check_positive_int(self.width, "width")
        check_positive_int(self.depth, "depth")
        if self.sketch_kind not in ("count_min", "count_sketch"):
            raise ParameterError(
                f"sketch_kind must be 'count_min' or 'count_sketch', got {self.sketch_kind!r}")

    @property
    def noise_scale(self) -> float:
        """Per-cell noise scale.

        Laplace scale ``depth/epsilon`` for pure DP, Gaussian sigma
        ``sqrt(2 ln(1.25/delta) * depth)/epsilon`` otherwise.
        """
        if self.delta == 0.0:
            return self.depth / self.epsilon
        return float(np.sqrt(2.0 * np.log(1.25 / self.delta) * self.depth) / self.epsilon)

    def build(self, stream: Iterable[Hashable]):
        """Build the underlying (non-private) sketch from a stream."""
        if self.sketch_kind == "count_min":
            sketch = CountMinSketch(self.width, self.depth, seed=self.seed)
        else:
            sketch = CountSketch(self.width, self.depth, seed=self.seed)
        sketch.update_all(stream)
        return sketch

    def release_oracle(self, stream: Iterable[Hashable], rng: RandomState = None):
        """Return a noisy sketch table plus a point-query closure.

        The noise is added once to every cell; all subsequent point queries
        are post-processing.
        """
        sketch = self.build(stream)
        generator = ensure_rng(rng)
        table = sketch.table()
        if self.delta == 0.0:
            noise = np.asarray(sample_laplace(self.noise_scale, size=table.size, rng=generator))
        else:
            noise = np.asarray(sample_gaussian(self.noise_scale, size=table.size, rng=generator))
        noisy_table = table + noise.reshape(table.shape)
        return sketch, noisy_table

    def heavy_hitters(self, stream: Sequence[Hashable], universe: Sequence[Hashable],
                      phi: float, rng: RandomState = None) -> PrivateHistogram:
        """Heavy hitters by iterating point queries over the whole universe."""
        if not (0 < phi < 1):
            raise ParameterError(f"phi must be in (0,1), got {phi}")
        sketch, noisy_table = self.release_oracle(stream, rng=rng)
        length = sketch.stream_length
        cutoff = phi * length
        estimates = self._estimate_universe(sketch, noisy_table, universe)
        released = {key: value for key, value in estimates.items() if value >= cutoff}
        metadata = ReleaseMetadata(
            mechanism=f"Oracle-{self.sketch_kind}",
            epsilon=self.epsilon,
            delta=self.delta,
            noise_scale=self.noise_scale,
            threshold=cutoff,
            sketch_size=self.width * self.depth,
            stream_length=length,
            notes=f"universe iteration over {len(universe)} elements",
        )
        return PrivateHistogram(counts=released, metadata=metadata)

    def _estimate_universe(self, sketch, noisy_table, universe) -> Dict[Hashable, float]:
        from ..sketches._hashing import bucket_hash, sign_hash

        estimates: Dict[Hashable, float] = {}
        for element in universe:
            values = []
            for row in range(self.depth):
                column = bucket_hash(element, self.seed, row, self.width)
                cell = noisy_table[row, column]
                if self.sketch_kind == "count_sketch":
                    cell *= sign_hash(element, self.seed, row)
                values.append(cell)
            if self.sketch_kind == "count_min":
                estimates[element] = float(min(values))
            else:
                estimates[element] = float(np.median(values))
        return estimates
