"""The Chan, Li, Shi and Xu [PETS 2012] private Misra-Gries baseline.

Chan et al. privatize the MG sketch through its global l1-sensitivity, which
is ``k``: they add Laplace noise with scale ``k/epsilon`` to the count of
*every* element of the universe (elements outside the sketch count as zero)
and keep the ``k`` largest noisy counts.  The expected maximum error is
``O(k log(d)/epsilon)`` under pure epsilon-DP.

The paper also notes the standard (epsilon, delta) improvement: add the noise
only to the stored counters and drop noisy counts below a threshold, giving
error ``O(k log(k/delta)/epsilon)``.  Both variants are implemented so the
comparison experiments can sweep them against Algorithm 2.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, Iterable, Mapping, Optional, Union

import numpy as np

from .._validation import check_delta, check_epsilon, check_positive_int
from ..dp.distributions import sample_laplace
from ..dp.rng import RandomState, ensure_rng
from ..dp.thresholds import stability_histogram_threshold
from ..exceptions import ParameterError
from ..sketches.misra_gries import DummyKey, MisraGriesSketch
from ..core.results import PrivateHistogram, ReleaseMetadata


@dataclass(frozen=True)
class ChanPrivateMisraGries:
    """Private MG release with noise scaled to the sketch's global sensitivity ``k``.

    Parameters
    ----------
    epsilon:
        Privacy budget.
    k:
        Sketch size; the Laplace noise scale is ``k/epsilon``.
    delta:
        ``None`` (default) selects the pure-DP variant which requires
        ``universe_size`` at release time; a value in (0, 1) selects the
        thresholded (epsilon, delta) variant that only touches stored keys.
    universe_size:
        Size ``d`` of the integer universe ``[0, d)`` for the pure-DP variant.
    """

    epsilon: float
    k: int
    delta: Optional[float] = None
    universe_size: Optional[int] = None

    def __post_init__(self) -> None:
        check_epsilon(self.epsilon)
        check_positive_int(self.k, "k")
        if self.delta is not None:
            check_delta(self.delta)
        if self.universe_size is not None:
            check_positive_int(self.universe_size, "universe_size")
        if self.delta is None and self.universe_size is None:
            raise ParameterError(
                "pure-DP Chan release needs universe_size; give delta for the thresholded variant")

    @property
    def noise_scale(self) -> float:
        """Laplace scale ``k/epsilon`` (the sketch's l1-sensitivity over epsilon)."""
        return self.k / self.epsilon

    @property
    def threshold(self) -> float:
        """Threshold of the (epsilon, delta) variant, ``k + k ln(k/delta)/epsilon``.

        The sensitivity is ``k`` and up to ``k`` stored keys can change, so a
        union bound over ``k`` keys requires the per-key failure probability
        ``delta/k``.
        """
        if self.delta is None:
            return 0.0
        return stability_histogram_threshold(self.epsilon, self.delta / self.k,
                                             sensitivity=float(self.k))

    def release(self, sketch: Union[MisraGriesSketch, Mapping[Hashable, float]],
                rng: RandomState = None,
                stream_length: Optional[int] = None) -> PrivateHistogram:
        """Release a Misra-Gries sketch with the Chan et al. mechanism."""
        counters, length = self._extract(sketch, stream_length)
        generator = ensure_rng(rng)
        if self.delta is None:
            return self._release_pure(counters, generator, length)
        return self._release_thresholded(counters, generator, length)

    def run(self, stream: Iterable[Hashable], rng: RandomState = None) -> PrivateHistogram:
        """End-to-end: build the MG sketch, then release it."""
        sketch = MisraGriesSketch.from_stream(self.k, stream)
        return self.release(sketch, rng=rng)

    def expected_max_error(self) -> float:
        """The asymptotic maximum-error scale of the mechanism.

        ``k ln(d) / epsilon`` for the pure variant, ``k ln(k/delta) / epsilon``
        for the thresholded variant — both growing linearly with ``k``, which
        is the behaviour Algorithm 2 removes.
        """
        if self.delta is None:
            return self.k * np.log(max(self.universe_size, 2)) / self.epsilon
        return self.k * np.log(self.k / self.delta) / self.epsilon

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _extract(self, sketch, stream_length):
        if isinstance(sketch, MisraGriesSketch):
            return sketch.counters(), sketch.stream_length
        counters = {key: float(value) for key, value in sketch.items()
                    if not isinstance(key, DummyKey)}
        return counters, (stream_length if stream_length is not None else 0)

    def _release_pure(self, counters, generator, length) -> PrivateHistogram:
        dense = np.zeros(self.universe_size, dtype=float)
        for key, value in counters.items():
            if not isinstance(key, (int, np.integer)) or not (0 <= int(key) < self.universe_size):
                raise ParameterError(
                    f"pure-DP release requires integer keys in [0, {self.universe_size}), got {key!r}")
            dense[int(key)] = value
        noise = np.asarray(sample_laplace(self.noise_scale, size=self.universe_size,
                                          rng=generator), dtype=float)
        noisy = dense + noise
        order = np.argsort(-noisy)[:self.k]
        released = {int(index): float(noisy[index]) for index in order}
        metadata = ReleaseMetadata(
            mechanism="Chan-PureDP",
            epsilon=self.epsilon,
            delta=0.0,
            noise_scale=self.noise_scale,
            threshold=0.0,
            sketch_size=self.k,
            stream_length=length,
            notes=f"universe_size={self.universe_size}, top-k of noisy universe",
        )
        return PrivateHistogram(counts=released, metadata=metadata)

    def _release_thresholded(self, counters, generator, length) -> PrivateHistogram:
        released: Dict[Hashable, float] = {}
        threshold = self.threshold
        for key, value in counters.items():
            noisy = value + float(sample_laplace(self.noise_scale, rng=generator))
            if noisy >= threshold:
                released[key] = noisy
        metadata = ReleaseMetadata(
            mechanism="Chan-Thresholded",
            epsilon=self.epsilon,
            delta=self.delta,
            noise_scale=self.noise_scale,
            threshold=threshold,
            sketch_size=self.k,
            stream_length=length,
            notes="noise scale k/epsilon on stored keys, threshold hides key changes",
        )
        return PrivateHistogram(counts=released, metadata=metadata)
