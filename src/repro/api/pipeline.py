"""The ``Pipeline`` facade: sketch → private release → query, in one object.

The paper's workflow is a single pipeline, and this class exposes it as one:

>>> from repro.api import Pipeline
>>> pipe = Pipeline(sketch="misra_gries", mechanism="pmg", k=256,
...                 epsilon=1.0, delta=1e-6)
>>> histogram = pipe.fit([1, 2, 1, 1, 3, 1]).release(rng=0)
>>> histogram.metadata.mechanism
'PMG'

``sketch`` and ``mechanism`` are registry specs (names or ``{"name": ...}``
dicts; see :mod:`repro.api.registry`), so every registered mechanism —
the paper's releases and all baselines — is reachable from the same
constructor.  Remaining keyword arguments (``epsilon``, ``delta``, ``k``,
``universe_size``, ``max_contribution``, ...) form a parameter grab-bag that
each factory filters to its own signature.

``fit`` dispatches on what the mechanism consumes:

* ``"sketch"`` mechanisms stream elements into the configured sketch;
  integer ndarrays (and int lists) ride the vectorized ``update_batch``
  path automatically.
* ``"stream"`` / ``"user_stream"`` mechanisms buffer the raw stream (the
  local-DP and user-level mechanisms must see the elements themselves).
* ``"sketch_list"`` mechanisms build one sketch per ``fit`` call — each call
  represents one server's stream in the Section 7 distributed setting.

``merge`` folds other pipelines, sketches, counter mappings or columnar wire
payloads into a new pipeline via the Agarwal et al. bounded merge; payloads
that arrived on the v2 integer wire route through
:func:`~repro.sketches.merge.merge_many_arrays` with no per-key Python.
"""

from __future__ import annotations

from typing import Any, Dict, Hashable, Iterable, List, Mapping, Optional, Sequence, Union

import numpy as np

from .._batching import as_int_array
from .._validation import check_positive_int
from ..core.results import PrivateHistogram
from ..exceptions import ParameterError, SketchStateError
from ..sketches.base import FrequencySketch
from ..sketches.merge import merge_many, merge_many_arrays, merge_tree
from . import wire as wire_module
from .registry import (
    MechanismAdapter,
    MechanismSpec,
    SketchSpec,
    make_mechanism,
    make_sketch,
    mechanism_entry,
    normalize_spec,
)

Mergeable = Union["Pipeline", FrequencySketch, Mapping[Hashable, float],
                  wire_module.WirePayload, Mapping]


class Pipeline:
    """One configured sketch-and-release pipeline.

    Parameters
    ----------
    sketch:
        Sketch spec (``"misra_gries"``, ``{"name": "count_min", "depth": 5}``,
        ...).  ``None`` uses the mechanism's natural default.
    mechanism:
        Mechanism spec (``"pmg"``, ``{"name": "pmg", "noise": "geometric"}``,
        ...); see :func:`repro.api.list_mechanisms`.
    **params:
        Pipeline-level parameters (``k``, ``epsilon``, ``delta``,
        ``universe_size``, ``max_contribution``, ``phi``, ...).  Each factory
        picks the ones it accepts; spec-dict parameters win over these.
    """

    def __init__(self, sketch: Optional[SketchSpec] = None,
                 mechanism: MechanismSpec = "pmg", **params: Any) -> None:
        self._params = dict(params)
        self._mechanism: MechanismAdapter = make_mechanism(mechanism, **params)
        self._mechanism_spec = mechanism
        self._sketch_spec = sketch if sketch is not None else self._mechanism.default_sketch
        self._sketch: Optional[FrequencySketch] = None
        self._counters: Optional[Dict[Hashable, float]] = None  # merged state
        self._merged_state = False  # counters came from merge()/fit(workers=N)
        self._buffer: List = []            # stream / user_stream mechanisms
        self._sketches: List = []          # sketch_list mechanisms
        self._stream_length = 0
        self._last_release: Optional[PrivateHistogram] = None

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def mechanism(self) -> MechanismAdapter:
        """The configured mechanism adapter."""
        return self._mechanism

    @property
    def mechanism_name(self) -> str:
        """Canonical registry name of the configured mechanism."""
        return self._mechanism.name

    @property
    def stream_length(self) -> int:
        """Number of stream items processed across all ``fit`` calls."""
        return self._stream_length

    @property
    def k(self) -> Optional[int]:
        """The pipeline's sketch size, when one is configured."""
        if self._sketch is not None:
            return getattr(self._sketch, "size", self._params.get("k"))
        return self._params.get("k")

    def counters(self) -> Dict[Hashable, float]:
        """Current fitted counters (sketch counters, or the merged state)."""
        if self._counters is not None:
            return dict(self._counters)
        if self._sketch is not None:
            return self._sketch.counters()
        raise SketchStateError("pipeline holds no fitted sketch state")

    def __repr__(self) -> str:
        return (f"Pipeline(sketch={self._sketch_spec!r}, "
                f"mechanism={self.mechanism_name!r}, n={self._stream_length})")

    # ------------------------------------------------------------------
    # Fitting
    # ------------------------------------------------------------------

    def _ensure_sketch(self) -> FrequencySketch:
        if self._counters is not None:
            raise SketchStateError(
                "this pipeline holds merged counters (from merge() or a sharded "
                "fit); continue with fit(stream, workers=2) or more to fold "
                "further shards in, or create a fresh Pipeline to fit "
                "sequentially")
        if self._sketch is None:
            self._sketch = make_sketch(self._sketch_spec, **self._params)
        return self._sketch

    #: Sketch specs the sharded ``fit(stream, workers=N)`` path supports:
    #: the shard sketches are paper-variant Misra-Gries and the fan-in is the
    #: Agarwal ``merge_tree``, which is only a meaningful summary for the
    #: Misra-Gries family.
    _SHARDABLE_SKETCHES = ("misra_gries", "mg")

    #: Minimum stream elements per shard before ``fit(stream, workers=N)``
    #: fans out to worker processes.  Sketching is tens of nanoseconds per
    #: element while a process pool costs milliseconds to spin up, so a
    #: shard needs roughly this many elements before a worker pays for
    #: itself; shorter streams are sharded less (``num_shards =
    #: min(workers, size // 65536)``) and a single-shard fit runs in
    #: process with no pool at all, producing the exact result the pool
    #: would have.
    _MIN_SHARD_ELEMENTS = 65536

    def fit(self, stream: Iterable[Hashable],
            workers: Optional[int] = None,
            min_shard_elements: Optional[int] = None) -> "Pipeline":
        """Process one stream; returns ``self`` for chaining.

        Integer ndarray (and int-list) streams dispatch to the vectorized
        ``update_batch`` engine for sketch-consuming mechanisms.  For
        ``sketch_list`` mechanisms each ``fit`` call contributes one
        per-stream sketch to the eventual merged release.

        ``workers=N`` (N > 1) shards an integer ndarray stream into ``N``
        contiguous slices, sketches each slice in its own process
        (:func:`repro.core.merging.sketch_and_merge_shards`) and
        tree-reduces the shard sketches with
        :func:`~repro.sketches.merge.merge_tree`.  The
        result is a size-``k`` merged summary that satisfies the same
        Misra-Gries guarantee (estimates within ``n/(k+1)``, Lemma 29) as
        the sequential fit — the individual counter values differ.  The
        shard sketches travel through shared memory (zero-copy columnar
        exports, no pickling), and short streams use fewer shards than
        ``workers``: each shard must carry at least
        ``min_shard_elements`` (default :attr:`_MIN_SHARD_ELEMENTS`)
        elements, and a fit that collapses to one shard runs in-process
        with no pool, producing the bit-identical summary.  Only the
        ``misra_gries`` sketch spec and sketch/sketch_list mechanisms
        support sharding; stream-consuming mechanisms must see the raw
        elements and reject ``workers``.  A sharded fit leaves the pipeline
        holding a merged summary, so later ``fit`` calls on it must also
        pass ``workers`` (they fold into the summary); a plain ``fit``
        raises like any merged pipeline.

        .. warning::
            A merged summary has a different *privacy* sensitivity structure
            than a single-stream sketch: neighbouring inputs can change up
            to ``k`` counters by 1 (Corollary 18), which is what the
            merged-sensitivity releases (``merged``, ``gshm`` with
            ``l = k``) are calibrated to.  Algorithm-2 style mechanisms
            (``pmg``, ``reduced``, ...) release sharded/merged state with
            their single-stream calibration, exactly as they do for
            :meth:`merge` results — choose a merged-sensitivity mechanism
            when the DP guarantee must cover the sharded input.
        """
        consumes = self._mechanism.consumes
        if workers is not None:
            check_positive_int(workers, "workers")
            if consumes not in ("sketch", "sketch_list"):
                raise ParameterError(
                    f"{self.mechanism_name!r} consumes the raw stream; "
                    "sharded fit only applies to sketch-building pipelines")
            if min_shard_elements is not None:
                check_positive_int(min_shard_elements, "min_shard_elements")
            if workers > 1:
                return self._fit_sharded(stream, workers, min_shard_elements)
        if consumes == "sketch":
            sketch = self._ensure_sketch()
            before = sketch.stream_length
            sketch.update_all(stream)
            self._stream_length += sketch.stream_length - before
        elif consumes in ("stream", "user_stream", "checkpointed_stream"):
            items = list(stream)
            self._buffer.extend(items)
            self._stream_length += len(items)
        else:  # sketch_list: one sketch per fitted stream
            from ..sketches.misra_gries import MisraGriesSketch

            sketch = MisraGriesSketch(self._sketch_list_k())
            sketch.update_all(stream)
            self._sketches.append(sketch)
            self._stream_length += sketch.stream_length
        self._last_release = None
        return self

    def _sketch_list_k(self) -> int:
        """The sketch size for per-stream sketches of a sketch_list fit.

        The mechanism's own calibrated ``k`` (e.g. ``PrivateMergedRelease.k``)
        wins over the pipeline default, so the built sketches can never
        disagree with the release calibration.
        """
        size = self._params.get("k")
        if size is None:
            size = getattr(self._mechanism.impl, "k", None)
        return size if size is not None else 64

    def _fit_sharded(self, stream, workers: int,
                     min_shard_elements: Optional[int] = None) -> "Pipeline":
        """Shard → parallel sketch → ``merge_tree`` fan-in (see :meth:`fit`)."""
        from ..core.merging import sketch_and_merge_shards
        from ..sketches.misra_gries import MisraGriesSketch

        consumes = self._mechanism.consumes
        if consumes == "sketch_list":
            # merge() rejects collapsing untrusted/trusted-sum sketch lists;
            # the sharded fan-in performs the same collapse per fit call.
            self._require_tree_mergeable(self)
        spec_name, _ = normalize_spec(self._sketch_spec)
        if consumes == "sketch" and spec_name not in self._SHARDABLE_SKETCHES:
            raise ParameterError(
                f"sharded fit builds Misra-Gries shard sketches; sketch spec "
                f"{spec_name!r} cannot be merged with merge_tree")
        batch = as_int_array(stream)
        if batch is None:
            raise ParameterError(
                "fit(stream, workers=N) shards integer ndarray (or int-list) "
                "streams; process other streams sequentially")
        if consumes == "sketch":
            # Resolve k exactly as the sequential fit would (spec-dict
            # parameters win over the pipeline grab-bag), so the sharded
            # summary carries the same n/(k+1) guarantee.
            size = make_sketch(self._sketch_spec, **self._params).size
        else:
            size = self._sketch_list_k()
        # Cutover: a process fan-out only pays off when every shard carries
        # enough elements (see _MIN_SHARD_ELEMENTS); short streams collapse
        # to fewer shards, and a single shard is sketched in-process with no
        # pool — the summary is identical either way.
        per_shard = (min_shard_elements if min_shard_elements is not None
                     else self._MIN_SHARD_ELEMENTS)
        num_shards = min(workers, max(1, int(batch.size) // per_shard))
        if num_shards <= 1 or batch.size <= 1:
            counters = MisraGriesSketch.from_stream(size, batch).counters()
            merged = merge_tree([counters], size)
        else:
            merged = sketch_and_merge_shards(batch, size, num_shards,
                                             workers=workers)
        if consumes == "sketch_list":
            self._sketches.append(merged)
        else:
            contributions = []
            if self._sketch is not None:
                contributions.append(self._sketch.counters())
            elif self._counters is not None:
                contributions.append(self._counters)
            contributions.append(merged)
            self._sketch = None
            self._counters = merge_tree(contributions, size) if len(contributions) > 1 else merged
            self._merged_state = True
        self._stream_length += int(batch.size)
        self._last_release = None
        return self

    def add_sketch(self, sketch: Union[FrequencySketch, Mapping[Hashable, float],
                                       wire_module.WirePayload]) -> "Pipeline":
        """Add a pre-built sketch or wire envelope (``sketch_list`` mechanisms only).

        Decoded v2 payloads are kept as-is: when every added input is an
        integer-encoded envelope, the merged release stays on the columnar
        :func:`~repro.sketches.merge.merge_many_arrays` path.
        """
        if self._mechanism.consumes != "sketch_list":
            raise SketchStateError(
                f"{self.mechanism_name!r} releases a single fitted input; use fit()")
        if isinstance(sketch, Mapping) and sketch.get("format") == wire_module.WIRE_FORMAT_VERSION:
            sketch = wire_module.decode(sketch)
        self._sketches.append(sketch)
        if isinstance(sketch, (FrequencySketch, wire_module.WirePayload)):
            self._stream_length += sketch.stream_length
        self._last_release = None
        return self

    @classmethod
    def from_sketch(cls, sketch: Union[FrequencySketch, Mapping[Hashable, float],
                                       wire_module.WirePayload],
                    mechanism: MechanismSpec = "pmg", **params: Any) -> "Pipeline":
        """Wrap an already-built sketch (or decoded wire payload) in a pipeline.

        When ``k`` is not given it is read off the sketch/envelope, so
        k-calibrated mechanisms (chan, bohler_kerschbaum, gshm, merged) are
        scaled to the sketch actually being released rather than a default.
        """
        if "k" not in params:
            if isinstance(sketch, wire_module.WirePayload):
                size = sketch.k
            else:
                size = getattr(sketch, "size", None)
            if isinstance(size, int):
                params["k"] = size
        pipeline = cls(mechanism=mechanism, **params)
        if pipeline._mechanism.consumes not in ("sketch", "sketch_list"):
            raise ParameterError(
                f"{pipeline.mechanism_name!r} consumes a raw stream; "
                "feed it with fit() instead of from_sketch()")
        if pipeline._mechanism.consumes == "sketch_list":
            return pipeline.add_sketch(sketch)
        if isinstance(sketch, wire_module.WirePayload):
            payload = sketch
            if payload.kind in ("misra_gries_paper", "misra_gries_standard"):
                sketch = wire_module.payload_to_sketch(payload)
            else:
                pipeline._counters = payload.counters()
                pipeline._stream_length = payload.stream_length
                if payload.k is not None:
                    pipeline._params.setdefault("k", payload.k)
                return pipeline
        if isinstance(sketch, FrequencySketch):
            pipeline._sketch = sketch
            pipeline._stream_length = sketch.stream_length
        else:
            pipeline._counters = {key: float(value) for key, value in sketch.items()}
        return pipeline

    # ------------------------------------------------------------------
    # Release and queries
    # ------------------------------------------------------------------

    def _fitted(self) -> Any:
        consumes = self._mechanism.consumes
        if consumes == "sketch":
            if self._counters is not None:
                return self._counters
            if self._sketch is None:
                raise SketchStateError("nothing fitted yet; call fit(stream) first")
            return self._sketch
        if consumes in ("stream", "user_stream", "checkpointed_stream"):
            if not self._buffer:
                raise SketchStateError("nothing fitted yet; call fit(stream) first")
            return self._buffer
        if self._counters is not None:
            return [self._counters]
        if not self._sketches:
            raise SketchStateError("nothing fitted yet; call fit(stream) or add_sketch first")
        return self._sketches

    def release(self, rng: Any = None, **context: Any) -> PrivateHistogram:
        """Release the fitted state privately; caches the result for queries.

        Merged pipeline state (from :meth:`merge` or ``fit(workers=N)``)
        carries the merged sensitivity structure (Corollary 18: up to ``k``
        counters change by 1 between neighbours).  Single-stream mechanisms
        (``pmg``, ``reduced``, ``pure_dp``) would silently release it with
        their single-stream calibration, so they raise
        :class:`~repro.exceptions.ParameterError` instead — release through
        a merged-sensitivity mechanism (``merged``, or ``gshm`` with
        ``l = k``), or pass ``allow_single_stream_calibration=True`` (here
        or to the constructor) to accept the weaker guarantee knowingly.
        """
        allow = bool(context.pop(
            "allow_single_stream_calibration",
            self._params.get("allow_single_stream_calibration", False)))
        if self._merged_state and self._mechanism.single_stream and not allow:
            raise ParameterError(
                f"mechanism {self.mechanism_name!r} is calibrated for a "
                "single-stream sketch, but this pipeline holds a merged "
                "summary (from merge() or fit(workers=N)) whose neighbours "
                "can differ in up to k counters (Corollary 18) — the "
                "single-stream noise under-protects it. Release through a "
                "merged-sensitivity mechanism (mechanism='merged', or 'gshm' "
                "with l = k), or pass allow_single_stream_calibration=True "
                "to accept the miscalibrated release.")
        context.setdefault("k", self._params.get("k"))
        context.setdefault("stream_length", self._stream_length)
        if "phi" in self._params:
            context.setdefault("phi", self._params["phi"])
        self._last_release = self._mechanism.release(self._fitted(), rng=rng, **context)
        return self._last_release

    def heavy_hitters(self, phi: float, rng: Any = None) -> Dict[Hashable, float]:
        """phi-heavy hitters of the (cached or freshly drawn) private release."""
        if not (0 < phi < 1):
            raise ParameterError(f"phi must be in (0,1), got {phi}")
        histogram = self._last_release
        if histogram is None:
            histogram = self.release(rng=rng)
        cutoff = phi * max(histogram.metadata.stream_length, self._stream_length)
        return histogram.heavy_hitters(cutoff)

    # ------------------------------------------------------------------
    # Merging
    # ------------------------------------------------------------------

    @staticmethod
    def _require_tree_mergeable(pipeline: "Pipeline") -> None:
        """Only trusted-merged ``sketch_list`` pipelines may be tree-merged.

        The untrusted strategy privatizes every sketch *before* merging and
        trusted-sum applies Algorithm 3 per sketch; collapsing their raw
        sketches into one summary would silently change those semantics.
        """
        from ..core.merging import MergeStrategy

        strategy = getattr(pipeline._mechanism.impl, "strategy", None)
        if strategy is not None and strategy is not MergeStrategy.TRUSTED_MERGED:
            raise ParameterError(
                f"cannot tree-merge a {MergeStrategy(strategy).value!r} "
                f"sketch_list pipeline: that strategy needs its per-sketch "
                f"structure (release it directly instead)")

    @staticmethod
    def _entry_counters(entry) -> Dict[Hashable, float]:
        """Counters of one ``_sketches`` entry (sketch, dict or wire payload)."""
        if isinstance(entry, wire_module.WirePayload):
            return entry.merge_counters()
        if isinstance(entry, FrequencySketch):
            return entry.counters()
        return {key: float(value) for key, value in entry.items()}

    def _merge_contribution(self, other: Mergeable):
        """Normalize a merge input to (counters_or_None, columnar_or_None, length)."""
        if isinstance(other, Pipeline):
            if other._buffer:
                raise ParameterError(
                    f"cannot merge a {other.mechanism_name!r} pipeline: merging applies "
                    "to sketch-consuming pipelines (a fitted sketch or merged counters)")
            if other._sketches:
                self._require_tree_mergeable(other)
                size = other._params.get("k") or other.k
                if size is None:
                    raise ParameterError(
                        "merging a sketch_list pipeline requires its parameter k")
                return (merge_tree([self._entry_counters(sketch)
                                    for sketch in other._sketches], size),
                        None, other.stream_length)
            return other.counters(), None, other.stream_length
        if isinstance(other, wire_module.WirePayload):
            columnar = other.columnar()
            if columnar is not None:
                return None, columnar, other.stream_length
            return other.merge_counters(), None, other.stream_length
        if isinstance(other, FrequencySketch):
            return other.counters(), None, other.stream_length
        if isinstance(other, Mapping):
            if other.get("format") == wire_module.WIRE_FORMAT_VERSION:
                return self._merge_contribution(wire_module.decode(other))
            return {key: float(value) for key, value in other.items()}, None, 0
        raise ParameterError(f"cannot merge {type(other)!r} into a pipeline")

    def merge(self, others: Union[Mergeable, Sequence[Mergeable]]) -> "Pipeline":
        """Merge this pipeline with others into a new pipeline (Agarwal merge).

        ``others`` may be a single item or a sequence of sketch-consuming
        pipelines, sketches, counter mappings, or v2 wire payloads (decoded
        or raw JSON dicts); stream-buffering pipelines are rejected.  A
        ``sketch_list`` pipeline (its own or among ``others``) contributes
        the pairwise :func:`~repro.sketches.merge.merge_tree` reduction of
        its per-stream sketches — the Section 7 "tree of servers" fan-in
        (trusted-merged strategy only; the untrusted and trusted-sum
        strategies need their per-sketch structure and are rejected).
        The result is a new :class:`Pipeline` with the same mechanism whose
        fitted state is the size-``k`` merged summary.  When every input is
        columnar (v2 integer wire), the fold runs through
        :func:`merge_many_arrays`; otherwise through :func:`merge_many`.

        .. warning::
            Merged summaries carry the merged sensitivity structure
            (Corollary 18: up to ``k`` counters change by 1 between
            neighbours); single-stream mechanisms like ``pmg`` release the
            result with their single-stream calibration.  Use a
            merged-sensitivity mechanism (``merged``, ``gshm`` with
            ``l = k``) when the DP guarantee must cover the merged input.
        """
        size = self._params.get("k") or self.k
        if size is None:
            raise ParameterError("merging requires the pipeline parameter k")
        if isinstance(others, (Pipeline, FrequencySketch, Mapping, wire_module.WirePayload)):
            others = [others]
        contributions = [self._merge_contribution(self)] if self._has_state() else []
        contributions.extend(self._merge_contribution(other) for other in others)
        if not contributions:
            raise SketchStateError("nothing to merge")
        total_length = sum(length for _, _, length in contributions)
        if self._mechanism.consumes == "sketch_list":
            self._require_tree_mergeable(self)
            # Tree reduction over the contributing summaries: each sketch_list
            # contribution is already a tree-merged summary of its servers, so
            # one more pairwise tree round combines the server groups.
            merged = merge_tree(
                [counters if counters is not None
                 else dict(zip(columnar[0].tolist(), columnar[1].tolist()))
                 for counters, columnar, _ in contributions], size)
        elif all(columnar is not None for _, columnar, _ in contributions):
            merged = merge_many_arrays([columnar[0] for _, columnar, _ in contributions],
                                       [columnar[1] for _, columnar, _ in contributions],
                                       size)
        else:
            merged = merge_many(
                [counters if counters is not None
                 else dict(zip(columnar[0].tolist(), columnar[1].tolist()))
                 for counters, columnar, _ in contributions], size)
        result = Pipeline(sketch=self._sketch_spec, mechanism=self._mechanism_spec,
                          **self._params)
        result._counters = merged
        result._merged_state = True
        result._stream_length = total_length
        return result

    def _has_state(self) -> bool:
        return (self._sketch is not None or self._counters is not None
                or bool(self._buffer) or bool(self._sketches))

    # ------------------------------------------------------------------
    # Wire export
    # ------------------------------------------------------------------

    def to_wire(self) -> Dict:
        """The fitted state as a v2 columnar wire envelope (JSON-ready dict)."""
        if self._sketch is not None:
            return wire_module.encode_sketch(self._sketch)
        if self._counters is not None:
            return wire_module.encode_counters(self._counters, k=self._params.get("k"),
                                               stream_length=self._stream_length)
        raise SketchStateError("pipeline holds no fitted sketch state to export")

    # ------------------------------------------------------------------
    # Network conveniences (repro.net)
    # ------------------------------------------------------------------

    def _net_params(self) -> Dict[str, Any]:
        """epsilon/delta/k for the aggregation service, read off this pipeline."""
        impl = self._mechanism.impl
        resolved = {}
        for field in ("epsilon", "delta"):
            value = self._params.get(field, getattr(impl, field, None))
            if value is None:
                raise ParameterError(
                    f"the aggregation service needs {field}; pass it to the "
                    f"Pipeline constructor")
            resolved[field] = value
        resolved["k"] = self._params.get("k", getattr(impl, "k", None))
        return resolved

    def serve(self, **overrides: Any):
        """An :class:`~repro.net.AggregatorServer` configured like this pipeline.

        Reads ``epsilon``/``delta``/``k`` off the pipeline parameters (k may
        be ``None``: the server then adopts the first session's size).  The
        server is *not* started — ``await server.start(address)`` (or use
        ``repro serve`` on the command line).
        """
        from ..net import AggregatorServer

        params = {**self._net_params(), **overrides}
        return AggregatorServer(**params)

    def connect(self, address: str, **overrides: Any):
        """An :class:`~repro.net.AggregatorClient` for ``address``.

        The client declares this pipeline's ``k``; use it as an async
        context manager to push :meth:`to_wire` exports and request
        releases.
        """
        from ..net import AggregatorClient

        overrides.setdefault("k", self._params.get("k"))
        return AggregatorClient(address, **overrides)


def describe_pipeline(mechanism: MechanismSpec) -> Dict[str, Any]:
    """What a mechanism spec consumes and accepts (CLI/docs helper)."""
    name, params = normalize_spec(mechanism)
    entry = mechanism_entry(name)
    return {"name": entry.name, "consumes": entry.consumes,
            "description": entry.description,
            "parameters": entry.parameters(), "spec_overrides": params}
