"""Versioned columnar wire protocol (v2) for sketches and histograms.

The v1 format (:mod:`repro.sketches.serialization`) stores counters as a
``{token: value}`` JSON object, which forces a per-key Python decode on the
aggregator.  The v2 envelope defined here is *columnar*: keys and values
travel as two parallel JSON arrays,

.. code-block:: json

    {"format": 2, "kind": "misra_gries_paper", "k": 256,
     "key_encoding": "int", "keys": [3, 17, 42], "values": [9.0, 4.0, 1.0],
     "meta": {"stream_length": 100000, "decrement_rounds": 12}}

so the integer fast path (``key_encoding == "int"``, the common case for the
paper's workloads) decodes each sketch into one ``np.asarray`` call and feeds
:func:`repro.sketches.merge.merge_many_arrays` directly — no per-key Python
at all between the wire and the vectorized merge fold.  Sketches with
non-integer keys (strings, bytes, the paper variant's dummy padding keys)
fall back to ``key_encoding == "token"`` using the same type-prefixed tokens
as v1, so every serializable key round-trips bit-exactly through either
encoding.

Envelope kinds
--------------
``misra_gries_paper`` / ``misra_gries_standard``
    Full sketch state; :func:`payload_to_sketch` reconstructs an updatable
    sketch object, exactly as the v1 loader does.
``counters``
    A bare counter export (any :class:`~repro.sketches.base.FrequencySketch`
    or plain mapping).  ``meta.sketch`` records the producing sketch type.
``private_histogram``
    A released :class:`~repro.core.results.PrivateHistogram`; ``meta`` holds
    the full :class:`~repro.core.results.ReleaseMetadata`.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Mapping, Optional, Sequence, Union

import numpy as np

from ..core.results import PrivateHistogram, ReleaseMetadata
from ..exceptions import ParameterError, SketchStateError
from ..sketches.base import FrequencySketch
from ..sketches.misra_gries import MisraGriesSketch
from ..sketches.misra_gries_standard import StandardMisraGriesSketch
from ..sketches.serialization import _decode_key, _encode_key

#: Version tag of the columnar envelope ("format" field).
WIRE_FORMAT_VERSION = 2

_SKETCH_KINDS = ("misra_gries_paper", "misra_gries_standard")
_KINDS = _SKETCH_KINDS + ("counters", "private_histogram")


def _unsupported_version_message(payload: Mapping) -> str:
    declared = {field: payload[field] for field in ("format", "format_version")
                if field in payload}
    if declared:
        claim = ", ".join(f"{field}: {value!r}" for field, value in sorted(declared.items()))
        head = f"unsupported wire version ({claim})"
    else:
        head = "payload declares no wire version"
    return (f"{head}; supported versions are v1 ('format_version': 1) "
            f"and v2 ('format': {WIRE_FORMAT_VERSION})")


def wire_version(payload: Mapping) -> int:
    """The wire version of a decoded JSON payload (1 or 2)."""
    if payload.get("format") == WIRE_FORMAT_VERSION:
        return 2
    if payload.get("format_version") == 1:
        return 1
    raise SketchStateError(_unsupported_version_message(payload))


_INT64_MIN, _INT64_MAX = -(1 << 63), (1 << 63) - 1


def _is_plain_int(key: Hashable) -> bool:
    # Ints beyond int64 take the token path so the decoder's np.asarray
    # fast path never overflows (and JSON numbers stay interoperable).
    return (isinstance(key, int) and not isinstance(key, bool)
            and _INT64_MIN <= key <= _INT64_MAX)


def _encode_columns(counters: Mapping[Hashable, float]) -> Dict[str, object]:
    """Columnar ``key_encoding``/``keys``/``values`` fields for a counter dict."""
    keys = list(counters.keys())
    values = [float(value) for value in counters.values()]
    if all(_is_plain_int(key) for key in keys):
        return {"key_encoding": "int", "keys": keys, "values": values}
    return {"key_encoding": "token",
            "keys": [_encode_key(key) for key in keys],
            "values": values}


class WirePayload:
    """A decoded v2 envelope.

    ``keys`` holds the decoded Python keys.  When the envelope used the
    integer encoding, ``key_array`` additionally holds the keys as an int64
    ndarray (decoded with a single ``np.asarray`` call) so columnar consumers
    like :func:`~repro.sketches.merge.merge_many_arrays` can skip Python keys
    entirely; it is ``None`` for token-encoded payloads.

    ``keys`` is **lazy** for integer payloads: a decoder that already has
    ``key_array`` may pass ``keys=None`` and the Python key list is
    materialized (one ``tolist()``) only if something actually reads it.
    The aggregator hot path — binary frames into
    :class:`~repro.api.framing.StreamingMerger` — therefore never touches a
    Python key object.
    """

    __slots__ = ("kind", "values", "k", "meta", "key_array", "_keys")

    def __init__(self, kind: str, keys: Optional[List[Hashable]],
                 values: np.ndarray, k: Optional[int] = None,
                 meta: Optional[Dict[str, object]] = None,
                 key_array: Optional[np.ndarray] = None) -> None:
        if keys is None and key_array is None:
            raise ParameterError(
                "WirePayload needs decoded keys (or a key_array to derive them from)")
        self.kind = kind
        self.values = values
        self.k = k
        self.meta = {} if meta is None else meta
        self.key_array = key_array
        self._keys = keys

    @property
    def keys(self) -> List[Hashable]:
        """The decoded Python keys (materialized on first access)."""
        if self._keys is None:
            self._keys = self.key_array.tolist()
        return self._keys

    def __repr__(self) -> str:
        return (f"WirePayload(kind={self.kind!r}, count={self.values.size}, "
                f"k={self.k}, columnar={self.key_array is not None})")

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, WirePayload):
            return NotImplemented
        return (self.kind == other.kind and self.keys == other.keys
                and np.array_equal(self.values, other.values)
                and self.k == other.k and self.meta == other.meta)

    @property
    def stream_length(self) -> int:
        """The producer's stream length (0 when the envelope carries none)."""
        return int(self.meta.get("stream_length", 0))

    def counters(self) -> Dict[Hashable, float]:
        """The payload's counters as a plain dict (insertion order preserved)."""
        return dict(zip(self.keys, self.values.tolist()))

    def merge_counters(self) -> Dict[Hashable, float]:
        """The counters a merge should consume.

        Full paper-variant sketch state carries dummy padding keys; merging
        operates on the real counters (the class-level ``counters()`` view),
        so those are stripped here — every other kind passes through as-is.
        """
        counters = self.counters()
        if self.kind == "misra_gries_paper":
            from ..sketches.misra_gries import DummyKey

            counters = {key: value for key, value in counters.items()
                        if not isinstance(key, DummyKey)}
        return counters

    def columnar(self) -> Optional[tuple]:
        """``(key_array, values)`` when the integer fast path applies, else ``None``."""
        if self.key_array is None:
            return None
        return self.key_array, self.values


def encode_counters(counters: Union[FrequencySketch, Mapping[Hashable, float]],
                    k: Optional[int] = None,
                    stream_length: Optional[int] = None,
                    sketch: Optional[str] = None) -> Dict:
    """Encode a counter mapping (or any sketch's ``counters()``) as a v2 envelope."""
    if isinstance(counters, FrequencySketch):
        source = counters
        counters = source.counters()
        if k is None:
            k = getattr(source, "size", None)
        if stream_length is None:
            stream_length = source.stream_length
        if sketch is None:
            sketch = type(source).__name__
    meta: Dict[str, object] = {"stream_length": int(stream_length or 0)}
    if sketch is not None:
        meta["sketch"] = sketch
    return {
        "format": WIRE_FORMAT_VERSION,
        "kind": "counters",
        "k": int(k) if k is not None else None,
        "meta": meta,
        **_encode_columns(counters),
    }


def encode_sketch(sketch) -> Dict:
    """Encode a sketch as a v2 envelope.

    Misra-Gries variants keep their full state (including the paper variant's
    dummy keys) and reconstruct as updatable sketch objects; every other
    :class:`FrequencySketch` is carried as a ``counters`` envelope.
    """
    if isinstance(sketch, MisraGriesSketch):
        kind = "misra_gries_paper"
        counters = sketch.raw_counters()
    elif isinstance(sketch, StandardMisraGriesSketch):
        kind = "misra_gries_standard"
        counters = sketch.counters()
    elif isinstance(sketch, FrequencySketch):
        return encode_counters(sketch)
    else:
        raise ParameterError(f"unsupported sketch type: {type(sketch)!r}")
    return {
        "format": WIRE_FORMAT_VERSION,
        "kind": kind,
        "k": sketch.size,
        "meta": {"stream_length": sketch.stream_length,
                 "decrement_rounds": sketch.decrement_rounds},
        **_encode_columns(counters),
    }


def encode_histogram(histogram: PrivateHistogram) -> Dict:
    """Encode a released :class:`PrivateHistogram` as a v2 envelope."""
    return {
        "format": WIRE_FORMAT_VERSION,
        "kind": "private_histogram",
        "k": histogram.metadata.sketch_size,
        "meta": dict(histogram.metadata.as_dict()),
        **_encode_columns(histogram.counts),
    }


def decode(payload: Mapping) -> WirePayload:
    """Decode a v2 envelope into a :class:`WirePayload`.

    Integer-encoded keys are materialized with a single ``np.asarray`` call —
    the decoded ``key_array``/``values`` pair can be handed to
    :func:`merge_many_arrays` without touching a Python object per key.
    """
    if payload.get("format") != WIRE_FORMAT_VERSION:
        raise SketchStateError(
            f"not a wire v2 payload: {_unsupported_version_message(payload)}")
    kind = payload.get("kind")
    if kind not in _KINDS:
        raise SketchStateError(f"unrecognized wire v2 kind {kind!r}")
    encoding = payload.get("key_encoding")
    raw_keys = payload.get("keys", [])
    values = np.asarray(payload.get("values", []), dtype=np.float64)
    if values.ndim != 1 or len(raw_keys) != values.size:
        raise SketchStateError(
            f"malformed columnar payload: {len(raw_keys)} keys vs {values.size} values")
    key_array: Optional[np.ndarray] = None
    if encoding == "int":
        key_array = np.asarray(raw_keys, dtype=np.int64)
        keys: List[Hashable] = key_array.tolist()
    elif encoding == "token":
        keys = [_decode_key(token) for token in raw_keys]
    else:
        raise SketchStateError(f"unrecognized key encoding {encoding!r}")
    k = payload.get("k")
    return WirePayload(kind=kind, keys=keys, values=values,
                       k=int(k) if k is not None else None,
                       meta=dict(payload.get("meta", {})),
                       key_array=key_array)


def encode_payload(wire: WirePayload) -> Dict:
    """Re-encode a decoded :class:`WirePayload` as a v2 envelope dict.

    The inverse of :func:`decode`: keys/values round-trip bit-exactly through
    the same columnar encoding the original envelope used, so a payload can
    be loaded from any v1/v2 file and re-shipped (e.g. repacked into a framed
    stream) without touching the sketch state.
    """
    return {
        "format": WIRE_FORMAT_VERSION,
        "kind": wire.kind,
        "k": int(wire.k) if wire.k is not None else None,
        "meta": dict(wire.meta),
        **_encode_columns(wire.counters()),
    }


def payload_to_sketch(payload: Union[Mapping, WirePayload]):
    """Reconstruct a Misra-Gries sketch object from a v2 sketch envelope."""
    wire = payload if isinstance(payload, WirePayload) else decode(payload)
    if wire.kind not in _SKETCH_KINDS:
        raise SketchStateError(
            f"wire payload of kind {wire.kind!r} does not describe a sketch object")
    if wire.k is None:
        raise SketchStateError("sketch envelope is missing its size k")
    counters = wire.counters()
    rounds = int(wire.meta.get("decrement_rounds", 0))
    if wire.kind == "misra_gries_paper":
        sketch = MisraGriesSketch(wire.k)
        sketch._restore_state(counters, stream_length=wire.stream_length,
                              decrement_rounds=rounds)
        return sketch
    sketch = StandardMisraGriesSketch(wire.k)
    if len(counters) > wire.k:
        raise SketchStateError("standard sketch stores at most k counters")
    sketch._counters = dict(counters)
    sketch._stream_length = wire.stream_length
    sketch._decrement_rounds = rounds
    return sketch


def payload_to_histogram(payload: Union[Mapping, WirePayload]) -> PrivateHistogram:
    """Reconstruct a :class:`PrivateHistogram` from a v2 histogram envelope."""
    wire = payload if isinstance(payload, WirePayload) else decode(payload)
    if wire.kind != "private_histogram":
        raise SketchStateError("payload does not describe a private histogram")
    metadata = ReleaseMetadata(**wire.meta)
    return PrivateHistogram(counts=wire.counters(), metadata=metadata)


def load_payload(path) -> WirePayload:
    """Read any v1 or v2 JSON file into a :class:`WirePayload`.

    v1 payloads are up-converted: sketches decode through the v1 loader and
    re-export their counters, so callers can treat every file uniformly.
    """
    import json
    from pathlib import Path

    from ..sketches.serialization import histogram_from_dict, sketch_from_dict

    with Path(path).open("r", encoding="utf-8") as handle:
        payload = json.load(handle)
    try:
        version = wire_version(payload)
    except SketchStateError as error:
        raise SketchStateError(f"{path}: {error}") from None
    if version == 2:
        return decode(payload)
    kind = payload.get("kind")
    if kind == "private_histogram":
        histogram = histogram_from_dict(payload)
        return decode(encode_histogram(histogram))
    sketch = sketch_from_dict(payload)
    return decode(encode_sketch(sketch))
