"""Unified registry of sketches and release mechanisms.

The paper describes one pipeline — sketch a stream, release the sketch under
differential privacy, optionally merge many users' sketches — but the
implementing classes grew bespoke constructor and release signatures.  This
module puts every sketch and every release mechanism (the paper's and all
baselines) behind a single addressable namespace:

>>> from repro.api import list_mechanisms, make_mechanism
>>> sorted(list_mechanisms())[:3]
['bohler_kerschbaum', 'chan', 'exact']
>>> mechanism = make_mechanism({"name": "pmg", "noise": "geometric"}, epsilon=1.0, delta=1e-6)
>>> mechanism.consumes
'sketch'

A *spec* is either a registered name (``"pmg"``) or a dict with a ``name``
field plus constructor parameters (``{"name": "pmg", "noise": "geometric"}``).
Spec parameters are validated against the factory signature — unknown
parameters raise :class:`~repro.exceptions.ParameterError` — while *defaults*
(the grab-bag of pipeline-level parameters like ``epsilon``/``delta``/``k``)
are silently filtered to whatever each factory accepts, so one parameter set
can drive any mechanism.

Every mechanism is wrapped in a :class:`MechanismAdapter` with a uniform
``release(fitted, rng=None, **context)`` method; ``consumes`` declares what
the mechanism releases ("sketch", "stream", "user_stream" or "sketch_list"),
which is how the :class:`~repro.api.pipeline.Pipeline` facade and the CLI
dispatch without mechanism-specific glue.
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    Dict,
    Hashable,
    List,
    Mapping,
    Optional,
    Protocol,
    Tuple,
    Union,
    runtime_checkable,
)

from ..baselines.bohler_kerschbaum import BohlerKerschbaumMG
from ..baselines.chan import ChanPrivateMisraGries
from ..baselines.exact_histogram import StabilityHistogram
from ..baselines.local_dp import LocalDPFrequencyEstimator
from ..baselines.prefix_tree import PrefixTreeHeavyHitters
from ..core.continual import ContinualConfig
from ..core.gshm import GaussianSparseHistogram
from ..core.merging import MergeStrategy, PrivateMergedRelease
from ..core.private_misra_gries import PrivateMisraGries
from ..core.pure_dp import ApproximateDPReducedRelease, PureDPMisraGries
from ..core.results import PrivateHistogram
from ..core.user_level import UserLevelRelease
from ..exceptions import ParameterError
from ..sketches.base import FrequencySketch
from ..sketches.count_min import CountMinSketch
from ..sketches.count_sketch import CountSketch
from ..sketches.exact import ExactCounter
from ..sketches.misra_gries import MisraGriesSketch
from ..sketches.misra_gries_standard import StandardMisraGriesSketch
from ..sketches.space_saving import SpaceSavingSketch

MechanismSpec = Union[str, Mapping[str, Any]]
SketchSpec = Union[str, Mapping[str, Any]]


# ---------------------------------------------------------------------------
# Protocols
# ---------------------------------------------------------------------------

@runtime_checkable
class Sketch(Protocol):
    """Structural interface every registered sketch satisfies."""

    def update(self, element: Hashable) -> None: ...

    def estimate(self, element: Hashable) -> float: ...

    def counters(self) -> Dict[Hashable, float]: ...

    @property
    def stream_length(self) -> int: ...


@runtime_checkable
class ReleaseMechanism(Protocol):
    """Structural interface every registered mechanism adapter satisfies."""

    name: str
    consumes: str

    def release(self, fitted: Any, rng: Any = None, **context: Any) -> PrivateHistogram: ...


# ---------------------------------------------------------------------------
# Adapter
# ---------------------------------------------------------------------------

#: What a mechanism releases: a single frequency sketch, a raw element
#: stream, a user-level stream (sets of elements), several sketches, or a
#: checkpointed stream (a raw stream released repeatedly at epoch boundaries,
#: with the budget accounted over the whole timeline).
CONSUMES = ("sketch", "stream", "user_stream", "sketch_list", "checkpointed_stream")


@dataclass(frozen=True)
class MechanismAdapter:
    """Uniform wrapper around one configured release mechanism.

    ``impl`` is the underlying mechanism object (e.g. a
    :class:`PrivateMisraGries` instance) for callers that need the full
    class-level API; ``release`` is the one method the facade and CLI use.
    """

    name: str
    consumes: str
    impl: Any
    _release: Callable[[Any, Any, Any, Dict[str, Any]], PrivateHistogram]
    default_sketch: str = "misra_gries"
    #: True for mechanisms whose noise/threshold calibration assumes a
    #: *single-stream* sketch (neighbouring inputs change one counter chain,
    #: Lemma 4).  Releasing a merge()/sharded-fit summary — where up to ``k``
    #: counters can change by 1 between neighbours (Corollary 18) — through
    #: such a mechanism silently under-noises; the Pipeline facade refuses
    #: unless ``allow_single_stream_calibration=True`` is passed.
    single_stream: bool = False

    def release(self, fitted: Any, rng: Any = None, **context: Any) -> PrivateHistogram:
        """Release ``fitted`` (whatever :attr:`consumes` names) privately."""
        return self._release(self.impl, fitted, rng, context)


def _sketch_context(fitted, context) -> Tuple[Any, Optional[int], Optional[int]]:
    """Normalize a fitted sketch-or-dict plus context into (payload, k, n)."""
    if isinstance(fitted, FrequencySketch):
        return fitted, getattr(fitted, "size", context.get("k")), fitted.stream_length
    return fitted, context.get("k"), context.get("stream_length")


def _as_counter_dict(fitted) -> Dict[Hashable, float]:
    if isinstance(fitted, FrequencySketch):
        return fitted.counters()
    return {key: float(value) for key, value in fitted.items()}


# ---------------------------------------------------------------------------
# Registry storage
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class RegistryEntry:
    """One registered sketch or mechanism factory."""

    name: str
    factory: Callable[..., Any]
    description: str = ""
    aliases: Tuple[str, ...] = ()
    consumes: Optional[str] = None

    def parameters(self) -> List[str]:
        """Keyword parameters the factory accepts (for docs and validation)."""
        return [name for name, param in inspect.signature(self.factory).parameters.items()
                if param.kind in (param.POSITIONAL_OR_KEYWORD, param.KEYWORD_ONLY)]


_SKETCHES: Dict[str, RegistryEntry] = {}
_MECHANISMS: Dict[str, RegistryEntry] = {}


def _register(table: Dict[str, RegistryEntry], entry: RegistryEntry) -> None:
    for name in (entry.name, *entry.aliases):
        if name in table:
            raise ParameterError(f"duplicate registration for {name!r}")
        table[name] = entry


def register_sketch(name: str, *, description: str = "",
                    aliases: Tuple[str, ...] = ()) -> Callable:
    """Decorator registering a sketch factory under ``name`` (plus aliases)."""
    def decorator(factory: Callable) -> Callable:
        _register(_SKETCHES, RegistryEntry(name=name, factory=factory,
                                           description=description, aliases=aliases))
        return factory
    return decorator


def register_mechanism(name: str, *, consumes: str = "sketch", description: str = "",
                       aliases: Tuple[str, ...] = ()) -> Callable:
    """Decorator registering a mechanism factory under ``name`` (plus aliases).

    The factory must return a :class:`MechanismAdapter` (or any object
    satisfying the :class:`ReleaseMechanism` protocol).
    """
    if consumes not in CONSUMES:
        raise ParameterError(f"consumes must be one of {CONSUMES}, got {consumes!r}")

    def decorator(factory: Callable) -> Callable:
        _register(_MECHANISMS, RegistryEntry(name=name, factory=factory,
                                             description=description, aliases=aliases,
                                             consumes=consumes))
        return factory
    return decorator


def list_sketches() -> Dict[str, str]:
    """Registered sketch names (canonical only) mapped to their descriptions."""
    return {name: entry.description for name, entry in sorted(_SKETCHES.items())
            if name == entry.name}


def list_mechanisms() -> Dict[str, str]:
    """Registered mechanism names (canonical only) mapped to their descriptions."""
    return {name: entry.description for name, entry in sorted(_MECHANISMS.items())
            if name == entry.name}


def sketch_entry(name: str) -> RegistryEntry:
    """The registry entry for a sketch name or alias."""
    try:
        return _SKETCHES[name]
    except KeyError:
        raise ParameterError(
            f"unknown sketch {name!r}; registered: {', '.join(sorted(list_sketches()))}") from None


def mechanism_entry(name: str) -> RegistryEntry:
    """The registry entry for a mechanism name or alias."""
    try:
        return _MECHANISMS[name]
    except KeyError:
        raise ParameterError(
            f"unknown mechanism {name!r}; "
            f"registered: {', '.join(sorted(list_mechanisms()))}") from None


def normalize_spec(spec: Union[str, Mapping[str, Any]]) -> Tuple[str, Dict[str, Any]]:
    """Split a spec (name or ``{"name": ..., **params}`` dict) into (name, params)."""
    if isinstance(spec, str):
        return spec, {}
    if isinstance(spec, Mapping):
        params = dict(spec)
        name = params.pop("name", None)
        if not isinstance(name, str):
            raise ParameterError(f"spec dict must carry a string 'name' field, got {spec!r}")
        return name, params
    raise ParameterError(f"spec must be a name or a dict with a 'name' field, got {spec!r}")


def _build(entry: RegistryEntry, spec_params: Dict[str, Any],
           defaults: Mapping[str, Any]) -> Any:
    """Instantiate a registry entry.

    ``spec_params`` (from the spec dict) must all be accepted by the factory;
    ``defaults`` are filtered to the factory's signature so pipeline-level
    parameter grab-bags can be passed to any entry.
    """
    accepted = set(entry.parameters())
    unknown = set(spec_params) - accepted
    if unknown:
        raise ParameterError(
            f"{entry.name!r} does not accept parameter(s) {sorted(unknown)}; "
            f"accepted: {sorted(accepted)}")
    kwargs = {key: value for key, value in defaults.items() if key in accepted}
    kwargs.update(spec_params)
    return entry.factory(**kwargs)


def make_sketch(spec: SketchSpec, **defaults: Any) -> Sketch:
    """Construct a sketch from a spec, e.g. ``make_sketch("misra_gries", k=256)``."""
    name, params = normalize_spec(spec)
    return _build(sketch_entry(name), params, defaults)


def make_mechanism(spec: MechanismSpec, **defaults: Any) -> MechanismAdapter:
    """Construct a mechanism adapter from a spec, e.g. ``make_mechanism("pmg", epsilon=1.0)``."""
    name, params = normalize_spec(spec)
    adapter = _build(mechanism_entry(name), params, defaults)
    if not isinstance(adapter, MechanismAdapter):
        raise ParameterError(
            f"factory for {name!r} returned {type(adapter)!r}, not a MechanismAdapter")
    return adapter


# ---------------------------------------------------------------------------
# Sketch registrations
# ---------------------------------------------------------------------------

@register_sketch("misra_gries", aliases=("mg",),
                 description="Paper-variant Misra-Gries (Algorithm 1): k counters, "
                             "dummy-key padding, lazy decrements, vectorized batch path.")
def _make_misra_gries(k: int = 64, backend: str = "auto") -> MisraGriesSketch:
    return MisraGriesSketch(k, backend=backend)


@register_sketch("misra_gries_standard", aliases=("standard_mg",),
                 description="Textbook Misra-Gries: at most k counters, eager eviction.")
def _make_misra_gries_standard(k: int = 64) -> StandardMisraGriesSketch:
    return StandardMisraGriesSketch(k)


@register_sketch("space_saving",
                 description="SpaceSaving: overwrite the minimum counter instead of decrementing.")
def _make_space_saving(k: int = 64) -> SpaceSavingSketch:
    return SpaceSavingSketch(k)


@register_sketch("count_min",
                 description="CountMin: depth x width hash table of non-negative counters.")
def _make_count_min(k: int = 512, width: Optional[int] = None, depth: int = 3,
                    seed: int = 0) -> CountMinSketch:
    return CountMinSketch(width=width if width is not None else k, depth=depth, seed=seed)


@register_sketch("count_sketch",
                 description="CountSketch: signed hash table, unbiased estimates via medians.")
def _make_count_sketch(k: int = 512, width: Optional[int] = None, depth: int = 3,
                       seed: int = 0) -> CountSketch:
    return CountSketch(width=width if width is not None else k, depth=depth, seed=seed)


@register_sketch("exact",
                 description="Exact counter (unbounded memory); the ground-truth baseline.")
def _make_exact(k: Optional[int] = None) -> ExactCounter:
    return ExactCounter()


# ---------------------------------------------------------------------------
# Mechanism registrations — the paper's releases
# ---------------------------------------------------------------------------

@register_mechanism("pmg", consumes="sketch", aliases=("private_misra_gries",),
                    description="Algorithm 2: per-counter + shared noise on the MG sketch, "
                                "threshold 1 + 2 ln(3/delta)/epsilon (the paper's main mechanism).")
def _make_pmg(epsilon: float = 1.0, delta: float = 1e-6, noise: str = "laplace",
              standard_sketch: bool = False) -> MechanismAdapter:
    impl = PrivateMisraGries(epsilon=epsilon, delta=delta, noise=noise,
                             standard_sketch=standard_sketch)

    def release(mechanism, fitted, rng, context):
        payload, k, length = _sketch_context(fitted, context)
        if isinstance(payload, (MisraGriesSketch, StandardMisraGriesSketch)):
            return mechanism.release(payload, rng=rng)
        return mechanism.release(_as_counter_dict(payload), rng=rng, k=k,
                                 stream_length=length)

    return MechanismAdapter(
        name="pmg", consumes="sketch", impl=impl, _release=release,
        default_sketch="misra_gries_standard" if standard_sketch else "misra_gries",
        single_stream=True)


@register_mechanism("pure_dp", consumes="sketch", aliases=("pure_dp_mg",),
                    description="Section 6: sensitivity-reduced sketch + Laplace(2/eps) over "
                                "the whole universe, pure epsilon-DP.")
def _make_pure_dp(epsilon: float = 1.0, universe_size: int = 1024,
                  top_k: Optional[int] = None) -> MechanismAdapter:
    impl = PureDPMisraGries(epsilon=epsilon, universe_size=universe_size, top_k=top_k)

    def release(mechanism, fitted, rng, context):
        payload, k, length = _sketch_context(fitted, context)
        if isinstance(payload, MisraGriesSketch):
            return mechanism.release(payload, rng=rng)
        return mechanism.release(_as_counter_dict(payload), k=k, rng=rng,
                                 stream_length=length)

    return MechanismAdapter(name="pure_dp", consumes="sketch", impl=impl,
                            _release=release, single_stream=True)


@register_mechanism("reduced", consumes="sketch", aliases=("approx_reduced",),
                    description="Section 6 (eps, delta) variant: Algorithm 3 post-processing, "
                                "probabilistic rounding, threshold 4 + 2 ln(1/delta)/eps.")
def _make_reduced(epsilon: float = 1.0, delta: float = 1e-6) -> MechanismAdapter:
    impl = ApproximateDPReducedRelease(epsilon=epsilon, delta=delta)

    def release(mechanism, fitted, rng, context):
        payload, k, length = _sketch_context(fitted, context)
        if isinstance(payload, MisraGriesSketch):
            return mechanism.release(payload, rng=rng)
        return mechanism.release(_as_counter_dict(payload), k=k, rng=rng,
                                 stream_length=length)

    return MechanismAdapter(name="reduced", consumes="sketch", impl=impl,
                            _release=release, single_stream=True)


@register_mechanism("gshm", consumes="sketch",
                    description="Gaussian Sparse Histogram Mechanism (Theorem 23): Gaussian "
                                "noise on non-zero counters, remove below 1 + tau.")
def _make_gshm(epsilon: float = 1.0, delta: float = 1e-6, l: Optional[int] = None,
               k: Optional[int] = None, calibration: str = "exact") -> MechanismAdapter:
    structure = l if l is not None else k
    if structure is None:
        raise ParameterError("gshm requires the sensitivity structure parameter l (or k)")
    impl = GaussianSparseHistogram(epsilon=epsilon, delta=delta, l=structure,
                                   calibration=calibration)

    def release(mechanism, fitted, rng, context):
        payload, size, length = _sketch_context(fitted, context)
        return mechanism.release(_as_counter_dict(payload), rng=rng,
                                 stream_length=length or 0, sketch_size=size)

    return MechanismAdapter(name="gshm", consumes="sketch", impl=impl, _release=release)


@register_mechanism("pamg", consumes="user_stream", aliases=("user_level_pamg",),
                    description="Theorem 30 user-level route: Privacy-Aware MG sketch "
                                "(Algorithm 4) released through the GSHM, noise independent of m.")
def _make_pamg(epsilon: float = 1.0, delta: float = 1e-6, k: int = 64,
               max_contribution: int = 8, calibration: str = "exact") -> MechanismAdapter:
    impl = UserLevelRelease(epsilon=epsilon, delta=delta, k=k,
                            max_contribution=max_contribution)

    def release(mechanism, fitted, rng, context):
        return mechanism.release_pamg(list(fitted), rng=rng, calibration=calibration)

    return MechanismAdapter(name="pamg", consumes="user_stream", impl=impl, _release=release)


@register_mechanism("user_level", consumes="user_stream", aliases=("user_level_flattened",),
                    description="Lemma 20 user-level route: flatten the stream and run "
                                "Algorithm 2 with group-privacy scaled parameters.")
def _make_user_level(epsilon: float = 1.0, delta: float = 1e-6, k: int = 64,
                     max_contribution: int = 8) -> MechanismAdapter:
    impl = UserLevelRelease(epsilon=epsilon, delta=delta, k=k,
                            max_contribution=max_contribution)

    def release(mechanism, fitted, rng, context):
        return mechanism.release_flattened(list(fitted), rng=rng)

    return MechanismAdapter(name="user_level", consumes="user_stream", impl=impl,
                            _release=release)


@register_mechanism("merged", consumes="sketch_list", aliases=("merged_release",),
                    description="Section 7: aggregate many per-stream MG sketches and release "
                                "(trusted_sum / trusted_merged / untrusted strategies).")
def _make_merged(epsilon: float = 1.0, delta: float = 1e-6, k: Optional[int] = None,
                 strategy: Union[str, MergeStrategy] = MergeStrategy.TRUSTED_MERGED
                 ) -> MechanismAdapter:
    if k is None:
        # The merge truncation and the GSHM noise are both calibrated to k,
        # so a silent default would miscalibrate the DP guarantee.
        raise ParameterError("the merged release requires the sketch size k")
    impl = PrivateMergedRelease(epsilon=epsilon, delta=delta, k=k,
                                strategy=MergeStrategy(strategy))

    def release(mechanism, fitted, rng, context):
        from .wire import WirePayload, payload_to_sketch

        items = list(fitted)
        columnar = [item.columnar() if isinstance(item, WirePayload) else None
                    for item in items]
        if items and all(pair is not None for pair in columnar):
            # All inputs arrived on the v2 integer wire: stay columnar.
            return mechanism.release_arrays(
                [pair[0] for pair in columnar], [pair[1] for pair in columnar],
                rng=rng, total_stream_length=context.get("stream_length"))

        def materialize(item):
            if not isinstance(item, WirePayload):
                return item
            if item.kind in ("misra_gries_paper", "misra_gries_standard"):
                return payload_to_sketch(item)
            return item.counters()

        return mechanism.release([materialize(item) for item in items], rng=rng,
                                 total_stream_length=context.get("stream_length"))

    return MechanismAdapter(name="merged", consumes="sketch_list", impl=impl,
                            _release=release)


@register_mechanism("continual", consumes="checkpointed_stream",
                    aliases=("continual_heavy_hitters",),
                    description="Continual observation: per-block Algorithm 2 releases "
                                "('blocks' linear or 'binary_tree' logarithmic noise "
                                "growth), budget accounted over the whole timeline.")
def _make_continual(epsilon: float = 1.0, delta: float = 1e-6, k: int = 64,
                    block_size: int = 1000, strategy: str = "blocks",
                    max_blocks: int = 1024) -> MechanismAdapter:
    # Epoch parameters are validated eagerly (ContinualConfig.__post_init__),
    # so a bad block_size/strategy/max_blocks fails at construction with
    # ParameterError, not at release time inside the monitor.
    config = ContinualConfig(k=k, epsilon=epsilon, delta=delta,
                             block_size=block_size, strategy=strategy,
                             max_blocks=max_blocks)

    def release(mechanism, fitted, rng, context):
        monitor = mechanism.build(rng)
        monitor.process_stream(fitted)
        monitor.flush()
        return monitor.as_histogram()

    return MechanismAdapter(name="continual", consumes="checkpointed_stream",
                            impl=config, _release=release)


# ---------------------------------------------------------------------------
# Mechanism registrations — baselines
# ---------------------------------------------------------------------------

@register_mechanism("chan", consumes="sketch",
                    description="Chan et al. [PETS 2012] baseline: Laplace(k/eps) noise, "
                                "pure (needs universe_size) or thresholded (needs delta).")
def _make_chan(epsilon: float = 1.0, k: int = 64, delta: Optional[float] = 1e-6,
               universe_size: Optional[int] = None) -> MechanismAdapter:
    impl = ChanPrivateMisraGries(epsilon=epsilon, k=k, delta=delta,
                                 universe_size=universe_size)

    def release(mechanism, fitted, rng, context):
        payload, _, length = _sketch_context(fitted, context)
        if isinstance(payload, MisraGriesSketch):
            return mechanism.release(payload, rng=rng)
        return mechanism.release(_as_counter_dict(payload), rng=rng, stream_length=length)

    return MechanismAdapter(name="chan", consumes="sketch", impl=impl, _release=release)


@register_mechanism("bohler_kerschbaum", consumes="sketch", aliases=("bk",),
                    description="Boehler-Kerschbaum [CCS 2021] baseline: sensitivity-1 noise "
                                "as published (privacy-violating) or corrected to k.")
def _make_bk(epsilon: float = 1.0, delta: float = 1e-6, k: int = 64,
             as_published: bool = False) -> MechanismAdapter:
    impl = BohlerKerschbaumMG(epsilon=epsilon, delta=delta, k=k, as_published=as_published)

    def release(mechanism, fitted, rng, context):
        payload, _, length = _sketch_context(fitted, context)
        if isinstance(payload, MisraGriesSketch):
            return mechanism.release(payload, rng=rng)
        return mechanism.release(_as_counter_dict(payload), rng=rng, stream_length=length)

    return MechanismAdapter(name="bohler_kerschbaum", consumes="sketch", impl=impl,
                            _release=release)


@register_mechanism("exact", consumes="stream", aliases=("stability_histogram",),
                    description="Non-streaming stability histogram: exact counts + "
                                "Laplace(1/eps) + threshold (the gold-standard baseline).")
def _make_exact_mechanism(epsilon: float = 1.0, delta: Optional[float] = 1e-6,
                          universe_size: Optional[int] = None,
                          sensitivity: float = 1.0) -> MechanismAdapter:
    impl = StabilityHistogram(epsilon=epsilon, delta=delta, universe_size=universe_size,
                              sensitivity=sensitivity)

    def release(mechanism, fitted, rng, context):
        return mechanism.run(list(fitted), rng=rng)

    return MechanismAdapter(name="exact", consumes="stream", impl=impl, _release=release,
                            default_sketch="exact")


@register_mechanism("local_dp", consumes="stream", aliases=("oue",),
                    description="Local-model baseline: Optimized Unary Encoding frequency "
                                "estimation, phi-heavy hitters from the debiased histogram.")
def _make_local_dp(epsilon: float = 1.0, universe_size: int = 1024,
                   phi: float = 0.01) -> MechanismAdapter:
    impl = LocalDPFrequencyEstimator(epsilon=epsilon, universe_size=universe_size)

    def release(mechanism, fitted, rng, context):
        return mechanism.heavy_hitters(list(fitted), context.get("phi", phi), rng=rng)

    return MechanismAdapter(name="local_dp", consumes="stream", impl=impl, _release=release)


@register_mechanism("prefix_tree", consumes="stream",
                    description="Frequency-oracle baseline: hierarchy of private CountMin "
                                "sketches searched for phi-heavy dyadic intervals.")
def _make_prefix_tree(epsilon: float = 1.0, delta: float = 1e-6, universe_size: int = 1024,
                      width: int = 512, depth: int = 3, branching: int = 2,
                      phi: float = 0.01) -> MechanismAdapter:
    impl = PrefixTreeHeavyHitters(epsilon=epsilon, delta=delta, universe_size=universe_size,
                                  width=width, depth=depth, branching=branching)

    def release(mechanism, fitted, rng, context):
        return mechanism.heavy_hitters(list(fitted), context.get("phi", phi), rng=rng)

    return MechanismAdapter(name="prefix_tree", consumes="stream", impl=impl,
                            _release=release)
