"""Unified public API: mechanism/sketch registry, Pipeline facade, wire protocol.

This package is the single addressable surface over the library:

* :mod:`repro.api.registry` — ``@register_sketch`` / ``@register_mechanism``
  decorators, ``list_sketches()`` / ``list_mechanisms()`` enumeration, and
  spec-based construction (``make_mechanism("pmg", epsilon=1.0)``).
* :mod:`repro.api.pipeline` — the :class:`Pipeline` facade:
  ``Pipeline(sketch="misra_gries", mechanism="pmg", k=256, epsilon=1.0,
  delta=1e-6).fit(stream).release(rng=0)``.
* :mod:`repro.api.wire` — the versioned columnar wire envelope (v2) whose
  integer fast path feeds the vectorized merge with no per-key Python.
* :mod:`repro.api.framing` — length-prefixed chunked framing over the v2
  envelopes: ``m`` sketch exports in one binary stream, decoded and merged
  one frame at a time (:class:`StreamingMerger`) without buffering the file.

:func:`kernel_info` (re-exported from :mod:`repro.kernels`) reports which
compiled kernel backend the hot paths resolved to, if any.
"""

from ..kernels import kernel_info
from .framing import (
    FRAMING_VERSION,
    FrameHeader,
    FrameReader,
    FrameWriter,
    StreamingMerger,
    combine_mergers,
    iter_frames,
    merge_frames,
    write_frames,
)
from .pipeline import Pipeline, describe_pipeline
from .registry import (
    MechanismAdapter,
    RegistryEntry,
    ReleaseMechanism,
    Sketch,
    list_mechanisms,
    list_sketches,
    make_mechanism,
    make_sketch,
    mechanism_entry,
    normalize_spec,
    register_mechanism,
    register_sketch,
    sketch_entry,
)
from .wire import (
    WIRE_FORMAT_VERSION,
    WirePayload,
    decode,
    encode_counters,
    encode_histogram,
    encode_payload,
    encode_sketch,
    load_payload,
    payload_to_histogram,
    payload_to_sketch,
    wire_version,
)

__all__ = [
    "FRAMING_VERSION",
    "FrameHeader",
    "FrameReader",
    "FrameWriter",
    "MechanismAdapter",
    "Pipeline",
    "RegistryEntry",
    "ReleaseMechanism",
    "Sketch",
    "StreamingMerger",
    "WIRE_FORMAT_VERSION",
    "WirePayload",
    "combine_mergers",
    "decode",
    "describe_pipeline",
    "encode_counters",
    "encode_histogram",
    "encode_payload",
    "encode_sketch",
    "iter_frames",
    "kernel_info",
    "list_mechanisms",
    "list_sketches",
    "load_payload",
    "make_mechanism",
    "make_sketch",
    "mechanism_entry",
    "merge_frames",
    "normalize_spec",
    "payload_to_histogram",
    "payload_to_sketch",
    "register_mechanism",
    "register_sketch",
    "sketch_entry",
    "wire_version",
    "write_frames",
]
