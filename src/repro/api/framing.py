"""Length-prefixed chunked framing for wire-v2 envelopes (streaming transport).

The deployment story of the paper is ``m`` untrusted clients each exporting
one Misra-Gries sketch to an aggregator that merges and releases privately.
A plain JSON file per sketch forces the aggregator to either open ``m``
files or buffer one giant JSON array; this module defines a *framed* binary
container so all ``m`` exports travel in one stream (a file, a socket, a
pipe) and the aggregator decodes **one sketch at a time**:

.. code-block:: text

    +---------------------------+
    | magic  b"RPRF"  (4 bytes) |
    | framing version (1 byte)  |
    +---------------------------+
    | frame 0: header           |  {"kind": "frame_header", "framing": 1,
    |   u32 length (big-endian) |   "frames": m or null, "k": ..., "meta": {}}
    |   UTF-8 JSON payload      |
    +---------------------------+
    | frame 1..m: envelopes     |  each a wire-v2 envelope (format: 2),
    |   u32 length (big-endian) |  one frame per sketch export
    |   JSON or binary columnar |
    +---------------------------+

A payload frame body is one of two self-describing encodings, distinguished
by its first byte:

* ``0x7B`` (``{``) — a UTF-8 JSON wire-v2 envelope, exactly as
  :func:`repro.api.wire.decode` consumes it.
* ``0x01`` — a *binary columnar* envelope for integer-keyed exports:
  ``0x01 | u32 header_len | header JSON | int64-LE keys | float64-LE values``
  where the header carries the envelope fields minus ``keys``/``values``
  (plus ``count``).  Decoding is two ``np.frombuffer`` views — no JSON
  number parsing on the hot path — and round-trips bit-exactly (raw IEEE
  bits for values, raw two's-complement for keys).

Rules:

* The first frame is always a header frame (JSON); its ``framing`` field
  repeats the container version so the header survives being copied out of
  the stream.  ``frames`` may declare the number of payload frames
  (``null`` for open-ended streams); when declared, the reader enforces it.
* Every payload frame is exactly one wire-v2 envelope
  (:mod:`repro.api.wire`), so framing composes with — rather than
  replaces — the versioned columnar wire protocol.
* A clean stream ends exactly at a frame boundary.  A truncated length
  prefix, a truncated frame body, an implausible length, an unrecognized
  frame tag, bytes that do not parse, or payload frames beyond a declared
  ``frames`` count all raise :class:`~repro.exceptions.FramingError`.

:class:`StreamingMerger` folds decoded frames into a running Agarwal merge
as they arrive — the aggregator never materializes the whole file, only the
current frame plus the ``<= k``-counter accumulator — and feeds
:meth:`~repro.core.merging.PrivateMergedRelease.release_arrays` at the end.
The incremental fold is *bit-identical* to the buffered
``load_payload`` → :func:`~repro.sketches.merge.merge_many_arrays` path
(property-tested in ``tests/property/test_framing_equivalence.py``).
"""

from __future__ import annotations

import io
import json
import struct
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Hashable, Iterable, Iterator, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from .. import kernels as _kernels
from .._validation import check_positive_int
from ..core.merging import PrivateMergedRelease
from ..kernels import _engine as _scan
from ..core.results import PrivateHistogram
from ..dp.rng import RandomState
from ..exceptions import FramingError, ParameterError, SketchStateError
from ..sketches.base import FrequencySketch
from ..sketches.merge import merge_many, merge_many_arrays, merge_misra_gries
from . import wire as wire_module
from .wire import WIRE_FORMAT_VERSION, WirePayload

#: Container magic; the byte after it is the framing version.
MAGIC = b"RPRF"

#: Version of the framing container (independent of the envelope version).
FRAMING_VERSION = 1

#: Upper bound on a single frame's byte length.  A corrupt or garbage length
#: prefix must not make the reader allocate gigabytes before failing.
MAX_FRAME_BYTES = 1 << 28

#: First body byte of a binary columnar frame (JSON frames start with ``{``).
BINARY_FRAME_TAG = 0x01

#: First body byte of a *control* frame (``0x02 | UTF-8 JSON object``): the
#: aggregation control protocol of :mod:`repro.net` (HELLO/PUSH/RELEASE/...)
#: layered on this container format.  Payload-only streams (``repro pack``
#: files) never carry control frames; :class:`FrameReader` rejects them.
CONTROL_FRAME_TAG = 0x02

#: Widest dense accumulator the incremental fold keeps (ids = key - low).
#: Matches the dense-offset bound of the batch interner; streams over wider
#: key universes fall back to the pairwise fold.
_DENSE_SPAN_LIMIT = 1 << 23

_LENGTH = struct.Struct(">I")


@dataclass(frozen=True)
class FrameHeader:
    """The decoded header frame of a framed stream."""

    framing: int
    frames: Optional[int] = None
    k: Optional[int] = None
    meta: Dict[str, object] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, object]:
        return {"kind": "frame_header", "framing": self.framing,
                "frames": self.frames, "k": self.k, "meta": dict(self.meta)}


def _read_exact(fileobj, count: int, what: str) -> bytes:
    """Read exactly ``count`` bytes, never more, raising on short streams."""
    chunks = []
    remaining = count
    while remaining:
        chunk = fileobj.read(remaining)
        if not chunk:
            got = count - remaining
            raise FramingError(f"truncated {what}: expected {count} bytes, got {got}")
        chunks.append(chunk)
        remaining -= len(chunk)
    return chunks[0] if len(chunks) == 1 else b"".join(chunks)


# ---------------------------------------------------------------------------
# Frame codecs (shared by the sync reader/writer and the async repro.net
# channel — the byte layout lives here exactly once)
# ---------------------------------------------------------------------------

def stream_prefix() -> bytes:
    """The 5-byte stream prefix: magic plus container version."""
    return MAGIC + bytes([FRAMING_VERSION])


def check_stream_prefix(prefix: bytes) -> None:
    """Validate a 5-byte stream prefix, raising :class:`FramingError`."""
    if prefix[:len(MAGIC)] != MAGIC:
        raise FramingError(
            f"bad magic {prefix[:len(MAGIC)]!r}; not a framed wire stream")
    version = prefix[len(MAGIC)]
    if version != FRAMING_VERSION:
        raise FramingError(
            f"unsupported framing version {version}; this reader speaks "
            f"version {FRAMING_VERSION}")


def encode_frame(body: bytes) -> bytes:
    """Length-prefix one frame body (validates the plausibility bound)."""
    if len(body) > MAX_FRAME_BYTES:
        raise FramingError(
            f"frame of {len(body)} bytes exceeds MAX_FRAME_BYTES={MAX_FRAME_BYTES}")
    return _LENGTH.pack(len(body)) + body


def encode_json_frame(payload: Mapping) -> bytes:
    """One JSON frame (header or ``{``-tagged envelope), length prefix included."""
    return encode_frame(json.dumps(payload, sort_keys=True).encode("utf-8"))


def encode_control_frame(message: Mapping) -> bytes:
    """One control frame (tag 0x02 + JSON body), length prefix included.

    ``message`` must carry a string ``verb`` field — the control protocol's
    dispatch key (see :mod:`repro.net.protocol`).
    """
    if not isinstance(message.get("verb"), str):
        raise FramingError(
            f"control frames must carry a string 'verb' field, got {message!r}")
    body = json.dumps(message, sort_keys=True).encode("utf-8")
    return encode_frame(bytes([CONTROL_FRAME_TAG]) + body)


def decode_control_body(body: bytes) -> Dict[str, object]:
    """Decode a control frame body (``0x02`` tag included) into its message."""
    if body[:1] != bytes([CONTROL_FRAME_TAG]):
        raise FramingError(
            f"not a control frame (tag {body[:1]!r}, expected 0x02)")
    message = FrameReader._parse_json_body(body[1:])
    if not isinstance(message.get("verb"), str):
        raise FramingError(
            f"control frame carries no string 'verb' field: {message!r}")
    return message


def encode_payload_frame(payload: Union[Mapping, WirePayload],
                         encoding: str = "binary") -> bytes:
    """One payload frame (binary columnar when possible), length prefix included."""
    return encode_frame(payload_frame_body(payload, encoding=encoding))


def payload_frame_body(payload: Union[Mapping, WirePayload],
                       encoding: str = "binary") -> bytes:
    """One payload frame *body* (no length prefix) — what ``push_raw`` and
    :func:`append_frame` consume verbatim."""
    if isinstance(payload, WirePayload):
        payload = wire_module.encode_payload(payload)
    if payload.get("format") != WIRE_FORMAT_VERSION:
        raise FramingError(
            f"frames must carry wire v2 envelopes (format: {WIRE_FORMAT_VERSION}), "
            f"got format={payload.get('format')!r}")
    if encoding == "binary" and payload.get("key_encoding") == "int":
        return _binary_frame_body(payload)
    return json.dumps(payload, sort_keys=True).encode("utf-8")


def _binary_frame_body(payload: Mapping) -> bytes:
    """The body of one integer-keyed binary columnar frame (tag 0x01)."""
    keys = np.asarray(payload.get("keys", []), dtype="<i8")
    values = np.asarray(payload.get("values", []), dtype="<f8")
    if keys.size != values.size:
        raise FramingError(
            f"malformed columnar payload: {keys.size} keys vs {values.size} values")
    header = {field: payload[field] for field in ("format", "kind", "k", "meta")
              if field in payload}
    header["key_encoding"] = "int"
    header["count"] = int(keys.size)
    header_bytes = json.dumps(header, sort_keys=True).encode("utf-8")
    return b"".join((bytes([BINARY_FRAME_TAG]), _LENGTH.pack(len(header_bytes)),
                     header_bytes, keys.tobytes(), values.tobytes()))


def decode_payload_body(body: bytes, what: str = "frame") -> WirePayload:
    """Decode one payload frame body (JSON envelope or binary columnar)."""
    if body[:1] == b"{":
        payload = FrameReader._parse_json_body(body)
        try:
            return wire_module.decode(payload)
        except Exception as error:
            raise FramingError(
                f"{what} is not a wire v2 envelope: {error}") from None
    if body[:1] == bytes([BINARY_FRAME_TAG]):
        return _decode_binary_body(body)
    if body[:1] == bytes([CONTROL_FRAME_TAG]):
        raise FramingError(
            f"{what} is a control frame (tag 0x02); payload streams carry only "
            "wire v2 envelopes — the aggregation control protocol lives in "
            "repro.net")
    raise FramingError(
        f"unrecognized frame tag {body[:1]!r}; frames are JSON envelopes "
        "('{'), binary columnar (0x01) or control (0x02)")


def _decode_binary_body(body: bytes) -> WirePayload:
    """Decode a binary columnar frame: two ``frombuffer`` views, no JSON keys.

    The JSON header of a canonical frame (the only kind our writers emit) is
    parsed by the compiled ``scan_binary_header`` kernel when one is
    available — a single pass over the bytes with no per-frame dict or
    string churn.  The scanner accepts exactly the canonical
    ``json.dumps(..., sort_keys=True)`` grammar; any deviation falls back to
    ``json.loads`` below, so malformed or foreign frames keep byte-exact
    python error behaviour.
    """
    if len(body) < 5:
        raise FramingError("binary frame too short for its header length")
    (header_length,) = _LENGTH.unpack_from(body, 1)
    if 5 + header_length > len(body):
        raise FramingError("binary frame header overruns the frame body")
    kernel = _kernels.get_kernel("scan_binary_header")
    if kernel is not None:
        scanned = np.zeros(_scan.SCAN_OUT_SLOTS, dtype=np.int64)
        header_bytes = np.frombuffer(body, dtype=np.uint8, count=header_length,
                                     offset=5)
        if kernel(np.ascontiguousarray(header_bytes), scanned) == _scan.SCAN_OK:
            return _binary_payload_from_scan(body, header_length, scanned)
    header = FrameReader._parse_json_body(body[5:5 + header_length])
    kind = header.get("kind")
    if header.get("format") != wire_module.WIRE_FORMAT_VERSION:
        raise FramingError(
            f"binary frame declares format {header.get('format')!r}, "
            f"expected {wire_module.WIRE_FORMAT_VERSION}")
    if kind not in wire_module._KINDS:
        raise FramingError(f"unrecognized wire v2 kind {kind!r}")
    count = header.get("count")
    if not isinstance(count, int) or count < 0:
        raise FramingError(f"binary frame declares a bad count {count!r}")
    offset = 5 + header_length
    if len(body) != offset + 16 * count:
        raise FramingError(
            f"binary frame carries {len(body) - offset} payload bytes; "
            f"count={count} requires {16 * count}")
    keys = np.asarray(np.frombuffer(body, dtype="<i8", count=count,
                                    offset=offset), dtype=np.int64)
    values = np.asarray(np.frombuffer(body, dtype="<f8", count=count,
                                      offset=offset + 8 * count),
                        dtype=np.float64)
    k = header.get("k")
    # Lazy keys: the aggregator hot path never materializes the Python list.
    return WirePayload(kind=kind, keys=None, values=values,
                       k=int(k) if k is not None else None,
                       meta=dict(header.get("meta", {})), key_array=keys)


def _binary_payload_from_scan(body: bytes, header_length: int,
                              scanned: np.ndarray) -> WirePayload:
    """Build a :class:`WirePayload` from a kernel-scanned canonical header.

    Replays the validation sequence of the ``json.loads`` path above in the
    same order with the same messages, and assembles ``meta`` in canonical
    (sorted) key order — which is the text order of a canonical header, so
    the resulting payload is indistinguishable from the fallback path's.
    """
    declared = int(scanned[_scan.SCAN_FORMAT]) \
        if scanned[_scan.SCAN_HAS_FORMAT] else None
    if declared != wire_module.WIRE_FORMAT_VERSION:
        raise FramingError(
            f"binary frame declares format {declared!r}, "
            f"expected {wire_module.WIRE_FORMAT_VERSION}")
    kind_length = int(scanned[_scan.SCAN_KIND_LEN])
    if kind_length >= 0:
        kind_start = 5 + int(scanned[_scan.SCAN_KIND_START])
        kind = body[kind_start:kind_start + kind_length].decode("ascii")
    else:
        kind = None
    if kind not in wire_module._KINDS:
        raise FramingError(f"unrecognized wire v2 kind {kind!r}")
    count = int(scanned[_scan.SCAN_COUNT]) \
        if scanned[_scan.SCAN_HAS_COUNT] else None
    if count is None or count < 0:
        raise FramingError(f"binary frame declares a bad count {count!r}")
    offset = 5 + header_length
    if len(body) != offset + 16 * count:
        raise FramingError(
            f"binary frame carries {len(body) - offset} payload bytes; "
            f"count={count} requires {16 * count}")
    keys = np.asarray(np.frombuffer(body, dtype="<i8", count=count,
                                    offset=offset), dtype=np.int64)
    values = np.asarray(np.frombuffer(body, dtype="<f8", count=count,
                                      offset=offset + 8 * count),
                        dtype=np.float64)
    meta: Dict[str, object] = {}
    if scanned[_scan.SCAN_HAS_META]:
        if scanned[_scan.SCAN_HAS_DECREMENT_ROUNDS]:
            meta["decrement_rounds"] = int(scanned[_scan.SCAN_DECREMENT_ROUNDS])
        sketch_length = int(scanned[_scan.SCAN_SKETCH_LEN])
        if sketch_length >= 0:
            sketch_start = 5 + int(scanned[_scan.SCAN_SKETCH_START])
            meta["sketch"] = body[sketch_start:sketch_start
                                  + sketch_length].decode("ascii")
        if scanned[_scan.SCAN_HAS_STREAM_LENGTH]:
            meta["stream_length"] = int(scanned[_scan.SCAN_STREAM_LENGTH])
    return WirePayload(kind=kind, keys=None, values=values,
                       k=int(scanned[_scan.SCAN_K])
                       if scanned[_scan.SCAN_HAS_K] else None,
                       meta=meta, key_array=keys)


def parse_header_body(body: Optional[bytes]) -> FrameHeader:
    """Validate and decode the mandatory first (header) frame body."""
    header = FrameReader._parse_json_body(body) if body is not None else None
    if header is None or header.get("kind") != "frame_header":
        raise FramingError("first frame must be a frame_header")
    framing = header.get("framing")
    if framing != FRAMING_VERSION:
        raise FramingError(f"header declares framing version {framing!r}, "
                           f"expected {FRAMING_VERSION}")
    frames = header.get("frames")
    if frames is not None and (not isinstance(frames, int) or frames < 0):
        raise FramingError(f"header declares a bad frame count {frames!r}")
    k = header.get("k")
    return FrameHeader(framing=FRAMING_VERSION, frames=frames,
                       k=int(k) if k is not None else None,
                       meta=dict(header.get("meta") or {}))


class FrameWriter:
    """Write a framed stream of wire-v2 envelopes to a binary file-like.

    The magic and header frame are written on construction; each
    :meth:`write_sketch` / :meth:`write_payload` call appends one frame.
    Usable as a context manager; :meth:`close` verifies a declared frame
    count was honored (it does not close the underlying file object).
    """

    def __init__(self, fileobj, k: Optional[int] = None,
                 frames: Optional[int] = None,
                 meta: Optional[Mapping[str, object]] = None,
                 encoding: str = "binary") -> None:
        if frames is not None and (not isinstance(frames, int) or frames < 0):
            raise ParameterError(f"frames must be a non-negative count, got {frames!r}")
        if encoding not in ("binary", "json"):
            raise ParameterError(
                f"encoding must be 'binary' or 'json', got {encoding!r}")
        self._fileobj = fileobj
        self._declared = frames
        self._written = 0
        self._closed = False
        self._encoding = encoding
        self.header = FrameHeader(framing=FRAMING_VERSION, frames=frames,
                                  k=int(k) if k is not None else None,
                                  meta=dict(meta or {}))
        fileobj.write(stream_prefix())
        fileobj.write(encode_json_frame(self.header.as_dict()))

    @property
    def frames_written(self) -> int:
        """Number of payload frames written so far (header excluded)."""
        return self._written

    def write_payload(self, payload: Union[Mapping, WirePayload]) -> None:
        """Append one wire-v2 envelope (dict or decoded payload) as a frame."""
        if self._closed:
            raise FramingError("writer is closed")
        if self._declared is not None and self._written >= self._declared:
            raise FramingError(
                f"header declared {self._declared} frame(s); cannot write more")
        self._fileobj.write(encode_payload_frame(payload, self._encoding))
        self._written += 1

    def write_sketch(self, sketch) -> None:
        """Append one sketch export (any :class:`FrequencySketch`) as a frame."""
        self.write_payload(wire_module.encode_sketch(sketch))

    def write_counters(self, counters, k: Optional[int] = None,
                       stream_length: Optional[int] = None) -> None:
        """Append a bare counter export as a frame."""
        self.write_payload(wire_module.encode_counters(counters, k=k,
                                                       stream_length=stream_length))

    def close(self) -> None:
        """Finish the stream (verifies a declared frame count was met)."""
        if self._closed:
            return
        self._closed = True
        if self._declared is not None and self._written != self._declared:
            raise FramingError(
                f"header declared {self._declared} frame(s) but {self._written} "
                "were written")

    def __enter__(self) -> "FrameWriter":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is None:
            self.close()


class FrameReader:
    """Iterate the wire-v2 envelopes of a framed stream, one frame at a time.

    Only ``fileobj.read(n)`` with explicit sizes is ever issued (one length
    prefix, then one frame body), so the reader works over non-seekable
    streams and never materializes more than a single frame.

    ``raw=True`` yields the undecoded frame *bodies* (bytes) instead of
    :class:`WirePayload` objects — the pass-through path of ``repro push``,
    which forwards a packed file's frames to an aggregator verbatim without
    decoding and re-encoding them.  Tags are still validated.
    """

    def __init__(self, fileobj, raw: bool = False) -> None:
        self._fileobj = fileobj
        self._delivered = 0
        self._exhausted = False
        self._raw = raw
        check_stream_prefix(_read_exact(fileobj, len(MAGIC) + 1, "magic header"))
        self.header = parse_header_body(self._read_frame_bytes("header frame"))

    def _read_frame_bytes(self, what: str) -> Optional[bytes]:
        """The next frame body, or ``None`` at a clean end of stream."""
        prefix = self._fileobj.read(_LENGTH.size)
        if not prefix:
            return None
        if len(prefix) < _LENGTH.size:
            raise FramingError(
                f"truncated length prefix: expected {_LENGTH.size} bytes, "
                f"got {len(prefix)} (trailing garbage?)")
        (length,) = _LENGTH.unpack(prefix)
        if length > MAX_FRAME_BYTES:
            raise FramingError(
                f"frame length {length} exceeds MAX_FRAME_BYTES={MAX_FRAME_BYTES} "
                "(corrupt length prefix or trailing garbage)")
        return _read_exact(self._fileobj, length, what)

    @staticmethod
    def _parse_json_body(body: bytes) -> Dict:
        try:
            payload = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise FramingError(f"frame body is not valid JSON: {error}") from None
        if not isinstance(payload, dict):
            raise FramingError(f"frame body must be a JSON object, got {type(payload)!r}")
        return payload

    def __iter__(self) -> Iterator[WirePayload]:
        return self

    def __next__(self) -> WirePayload:
        if self._exhausted:
            raise StopIteration
        body = self._read_frame_bytes(f"frame {self._delivered + 1}")
        declared = self.header.frames
        if body is None:
            self._exhausted = True
            if declared is not None and self._delivered != declared:
                raise FramingError(
                    f"stream ended after {self._delivered} frame(s); header "
                    f"declared {declared}")
            raise StopIteration
        if declared is not None and self._delivered >= declared:
            raise FramingError(
                f"stream carries more frames than the declared {declared} "
                "(trailing garbage?)")
        self._delivered += 1
        if self._raw:
            if body[:1] not in (b"{", bytes([BINARY_FRAME_TAG])):
                decode_payload_body(body, f"frame {self._delivered}")  # raises
            return body
        return decode_payload_body(body, f"frame {self._delivered}")


# ---------------------------------------------------------------------------
# Verbatim re-emit helpers (the WAL spool path: repro.net.wal appends the
# exact bytes of every accepted PUSH frame and replays them on recovery)
# ---------------------------------------------------------------------------

def write_stream_header(fileobj, k: Optional[int] = None,
                        meta: Optional[Mapping[str, object]] = None) -> int:
    """Open a framed stream on ``fileobj``: magic prefix plus header frame.

    Returns the number of bytes written.  Unlike :class:`FrameWriter` this
    leaves the stream open-ended (no declared frame count) and hands back no
    writer object — the append-only shape a write-ahead spool needs, where
    frames are re-emitted verbatim with :func:`append_frame`.
    """
    prefix = stream_prefix()
    header = encode_json_frame(FrameHeader(framing=FRAMING_VERSION, k=k,
                                           meta=dict(meta or {})).as_dict())
    fileobj.write(prefix)
    fileobj.write(header)
    return len(prefix) + len(header)


def append_frame(fileobj, body: bytes) -> int:
    """Re-emit one frame body verbatim (length prefix added, tag preserved).

    Returns the number of bytes written, so callers tracking a committed
    byte watermark can advance it without a ``tell()`` on the file object.
    """
    data = encode_frame(body)
    fileobj.write(data)
    return len(data)


def replay_raw_frames(fileobj, count: int, what: str = "spool") -> Iterator[bytes]:
    """Yield exactly ``count`` verbatim frame bodies from a framed stream.

    The stream prefix and header frame are consumed first; iteration stops
    after ``count`` bodies without touching any bytes beyond them (so an
    uncommitted spool tail past the committed watermark is never read, let
    alone folded).  A stream that ends before ``count`` bodies raises
    :class:`FramingError` — the ledger said those frames were durable.
    """
    reader = FrameReader(fileobj, raw=True)
    delivered = 0
    for body in reader:
        if delivered >= count:
            return
        yield body
        delivered += 1
        if delivered == count:
            return
    if delivered < count:
        raise FramingError(
            f"{what} ends after {delivered} frame(s); the checkpoint ledger "
            f"committed {count}")


class StreamingMerger:
    """Fold framed sketch exports into one Agarwal-merged summary incrementally.

    The merger keeps only the running ``<= k``-counter accumulator; each
    :meth:`add` folds one frame and discards it, so the aggregator's live
    memory is one frame plus ``O(k)`` — never the whole stream.  Integer
    envelopes stay on the columnar :func:`merge_many_arrays` path; the first
    token-encoded envelope drops the accumulator to dict mode (still the
    exact same fold).  The final summary is **bit-identical** to the
    buffered ``merge_many_arrays([all frames])`` fold because both equal the
    seed pairwise left fold.
    """

    def __init__(self, k: int) -> None:
        self._k = check_positive_int(k, "k")
        self._frames = 0
        self._total_length = 0
        # Columnar accumulator, one of two representations:
        # * dense fold (the fast path): ``_acc`` is a dense float array over
        #   the id space ``key - _low`` with the ``acc[id] > 0 iff live``
        #   invariant of the batch fold; ``_active`` holds live ids in seed
        #   insertion order.  Replicates merge._fold_interned step by step.
        # * pairwise fallback (very wide key universes): ``_acc_keys`` /
        #   ``_acc_values`` arrays folded through merge_many_arrays.
        self._low: Optional[int] = None
        self._acc: Optional[np.ndarray] = None
        self._active: Optional[np.ndarray] = None
        self._zero_live: Optional[np.ndarray] = None
        self._first_negative = False
        self._acc_keys: Optional[np.ndarray] = None
        self._acc_values: Optional[np.ndarray] = None
        self._acc_dict: Optional[Dict[Hashable, float]] = None

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------

    @property
    def frames(self) -> int:
        """Number of sketch exports folded so far."""
        return self._frames

    @property
    def total_stream_length(self) -> int:
        """Sum of the folded envelopes' declared stream lengths."""
        return self._total_length

    @property
    def columnar(self) -> bool:
        """Whether the accumulator is still on the integer-array fast path."""
        return self._acc_dict is None

    # ------------------------------------------------------------------
    # Folding
    # ------------------------------------------------------------------

    def _dense_to_pairwise(self) -> None:
        """Drop the dense accumulator to the pairwise (keys, values) arrays."""
        if self._acc is not None:
            self._acc_keys = (self._active + self._low).astype(np.int64)
            self._acc_values = self._acc[self._active].copy()
            self._low = self._acc = self._active = None
            # The pairwise fold re-checks negatives itself; the zero-live
            # bookkeeping transfers implicitly (zero-valued survivors of a
            # sole first frame sit in the arrays and drop on the next merge).

    def _to_dict_mode(self) -> Dict[Hashable, float]:
        if self._acc_dict is None:
            self._dense_to_pairwise()
            if self._acc_keys is None:
                self._acc_dict = {}
            else:
                self._acc_dict = dict(zip(self._acc_keys.tolist(),
                                          self._acc_values.tolist()))
            self._acc_keys = self._acc_values = None
        return self._acc_dict

    # -- dense incremental fold (mirrors merge._fold_interned per step) -----

    def _dense_viable(self, keys: np.ndarray) -> bool:
        """Whether the dense id space can (still) cover this frame's keys."""
        if keys.size == 0:
            return True
        low = int(keys.min())
        high = int(keys.max()) + 1
        if self._low is not None:
            low = min(low, self._low)
            high = max(high, self._low + self._acc.size)
        return high - low <= _DENSE_SPAN_LIMIT

    def _dense_grow(self, keys: np.ndarray) -> None:
        """Extend the dense id space to cover ``keys`` (ids shift with low)."""
        if keys.size == 0 and self._acc is not None:
            return
        low = int(keys.min()) if keys.size else 0
        high = int(keys.max()) + 1 if keys.size else 1
        if self._acc is None:
            self._low = low
            self._acc = np.zeros(high - low, dtype=np.float64)
            self._active = np.empty(0, dtype=np.intp)
            return
        old_high = self._low + self._acc.size
        new_low = min(low, self._low)
        new_high = max(high, old_high)
        if new_low == self._low and new_high == old_high:
            return
        # Grow geometrically (at least double the span, capped at the dense
        # limit) with the headroom on the side(s) that forced the growth, so
        # a stream of monotonically expanding key ranges reallocates O(log)
        # times instead of copying the accumulator on every frame.
        needed = new_high - new_low
        target = min(_DENSE_SPAN_LIMIT, max(needed, 2 * self._acc.size))
        slack = target - needed
        if slack:
            down = new_low < self._low
            up = new_high > old_high
            low_slack = slack // 2 if (down and up) else (slack if down else 0)
            new_low -= low_slack
            new_high += slack - low_slack
        grown = np.zeros(new_high - new_low, dtype=np.float64)
        offset = self._low - new_low
        grown[offset:offset + self._acc.size] = self._acc
        if offset:
            self._active = self._active + offset
            if self._zero_live is not None:
                self._zero_live = self._zero_live + offset
        self._low = new_low
        self._acc = grown

    def _dense_first_step(self, ids: np.ndarray, values: np.ndarray) -> None:
        size = self._k
        length = ids.size
        if length == 0:
            return
        if length > size and bool(values.min() < 0.0):
            # The seed reduces an oversized single input through a merge with
            # nothing, which validates it immediately.
            offender = int(ids[int(np.flatnonzero(values < 0.0)[0])]) + self._low
            raise SketchStateError(
                f"negative counter for {offender!r} cannot be merged")
        self._first_negative = bool(values.min() < 0.0)
        self._acc[ids] = values
        if length > size:
            scratch = values.copy()
            scratch.partition(length - 1 - size)
            shifted = values - scratch[length - 1 - size]
            keep = shifted > 0.0
            self._acc[ids] = np.where(keep, shifted, 0.0)
            self._active = ids[keep]
        else:
            self._active = ids
            zeros = values == 0.0
            if zeros.any():
                self._zero_live = ids[zeros]

    def _dense_step(self, ids: np.ndarray, values: np.ndarray,
                    keys: np.ndarray) -> None:
        size = self._k
        acc, active = self._acc, self._active
        if self._first_negative:
            # The seed's second fold step revisits the first sketch's
            # counters and raises on the negative it let through.
            bad = int(np.flatnonzero(acc[active] < 0.0)[0])
            raise SketchStateError(
                f"negative counter for {int(active[bad]) + self._low!r} "
                "cannot be merged")
        if ids.size == 0:
            if self._zero_live is not None:
                self._active = active[acc[active] > 0.0]
                self._zero_live = None
            return
        if bool(values.min() < 0.0):
            offender = keys[int(np.flatnonzero(values < 0.0)[0])]
            raise SketchStateError(
                f"negative counter for {int(offender)!r} cannot be merged")
        before = acc[ids]
        if self._zero_live is not None:
            fresh = ids[(before == 0.0) & ~np.isin(ids, self._zero_live)]
        else:
            fresh = ids[before == 0.0]
        acc[ids] = before + values
        combined = np.concatenate((active, fresh)) if fresh.size else active
        count = combined.size
        if count > size:
            current = acc[combined]
            scratch = current.copy()
            scratch.partition(count - 1 - size)
            shifted = current - scratch[count - 1 - size]
            keep = shifted > 0.0
            acc[combined] = np.where(keep, shifted, 0.0)
            self._active = combined[keep]
        elif self._zero_live is None and bool(values.min() > 0.0):
            self._active = combined
        else:
            current = acc[combined]
            keep = current > 0.0
            acc[combined] = np.where(keep, current, 0.0)
            self._active = combined[keep]
        self._zero_live = None

    def _add_columnar(self, keys: np.ndarray, values: np.ndarray,
                      first: bool) -> None:
        if self._acc_keys is None and self._dense_viable(keys):
            self._dense_grow(keys)
            ids = (keys - self._low).astype(np.intp, copy=False)
            if first:
                self._dense_first_step(ids, values)
            else:
                self._dense_step(ids, values, keys)
            return
        self._dense_to_pairwise()
        if self._acc_keys is None:
            # First frame: mirror the left fold's first step (reduce a
            # single oversized input through a merge with nothing).
            merged = merge_many_arrays([keys], [values], self._k)
        else:
            merged = merge_many_arrays([self._acc_keys, keys],
                                       [self._acc_values, values], self._k)
        self._acc_keys = np.fromiter(merged.keys(), dtype=np.int64,
                                     count=len(merged))
        self._acc_values = np.fromiter(merged.values(), dtype=np.float64,
                                       count=len(merged))

    def add(self, payload: Union[WirePayload, Mapping]) -> "StreamingMerger":
        """Fold one sketch export (decoded payload or raw v2 envelope dict)."""
        if isinstance(payload, Mapping):
            payload = wire_module.decode(payload)
        self._frames += 1
        self._total_length += payload.stream_length
        columnar = payload.columnar()
        if columnar is not None and self._acc_dict is None:
            self._add_columnar(columnar[0], columnar[1], first=self._frames == 1)
            return self
        counters = payload.merge_counters()
        acc = self._to_dict_mode()
        if not acc and self._frames == 1:
            self._acc_dict = (merge_misra_gries(counters, {}, self._k)
                              if len(counters) > self._k else dict(counters))
        else:
            self._acc_dict = merge_many([acc, counters], self._k)
        return self

    def add_summary(self, payload: Union[WirePayload, Mapping]) -> "StreamingMerger":
        """Fold one relay *summary* frame, adopting its origin accounting.

        A summary frame (:func:`summary_payload`) is the merged state of a
        whole origin session re-encoded as one envelope — a fixed point of
        the fold, so adding it to a fresh merger reproduces the origin
        session's summary bit-identically.  The envelope's
        ``meta["relay"]["frames"]`` records how many sketch exports the
        origin folded; that count (not 1) is what release metadata must
        report, so it is carried into this merger's frame accounting.
        """
        if isinstance(payload, Mapping):
            payload = wire_module.decode(payload)
        relay = payload.meta.get(RELAY_META_KEY)
        origin_frames = 1
        if isinstance(relay, Mapping):
            declared = relay.get("frames")
            if not isinstance(declared, int) or declared < 1:
                raise FramingError(
                    f"relay summary frame declares a bad origin frame count "
                    f"{declared!r}")
            origin_frames = declared
        self.add(payload)
        self._frames += origin_frames - 1
        return self

    def consume(self, frames: Iterable[Union[WirePayload, Mapping]]) -> "StreamingMerger":
        """Fold every frame of an iterable (e.g. a :class:`FrameReader`)."""
        for payload in frames:
            self.add(payload)
        return self

    def absorb(self, other: "StreamingMerger") -> "StreamingMerger":
        """Fold another merger's summary into this one as a single contribution.

        This is the deterministic fan-in of the aggregation service and of
        the multi-file ``repro merge --framed`` path: each source (framed
        file, client session) folds its own frames through its own merger,
        and the per-source summaries are absorbed in a canonical order.  The
        Agarwal merge is not associative, so the two-level fold is a
        *different* (equally valid, Section 7 tree-of-servers) aggregation
        than the flat fold over all frames — which is why both the network
        release and the offline CLI use exactly this method.  Frame and
        stream-length accounting carries over, so release metadata reports
        the true number of folded sketch exports.
        """
        if not isinstance(other, StreamingMerger):
            raise ParameterError(
                f"can only absorb another StreamingMerger, got {type(other)!r}")
        if other._k != self._k:
            raise ParameterError(
                f"cannot absorb a merger folded at k={other._k} into one "
                f"folded at k={self._k}")
        if other._frames == 0:
            return self
        first = self._frames == 0
        self._frames += other._frames
        self._total_length += other._total_length
        if other._acc_dict is None and self._acc_dict is None:
            keys, values = other.merged_arrays()
            self._add_columnar(keys, values, first=first)
            return self
        counters = other.merged()
        acc = self._to_dict_mode()
        if not acc and first:
            self._acc_dict = (merge_misra_gries(counters, {}, self._k)
                              if len(counters) > self._k else dict(counters))
        else:
            self._acc_dict = merge_many([acc, counters], self._k)
        return self

    # ------------------------------------------------------------------
    # Results
    # ------------------------------------------------------------------

    def merged(self) -> Dict[Hashable, float]:
        """The current merged summary (at most ``k`` counters)."""
        if self._acc_dict is not None:
            return dict(self._acc_dict)
        keys, values = self.merged_arrays()
        return dict(zip(keys.tolist(), values.tolist()))

    def merged_arrays(self) -> Tuple[np.ndarray, np.ndarray]:
        """The merged summary as a columnar (keys, values) pair.

        Key order matches the seed fold's dict insertion order.  Raises
        :class:`~repro.exceptions.ParameterError` in dict mode (token keys
        cannot be shipped as an integer array).
        """
        if self._acc_dict is not None:
            raise ParameterError(
                "merger left the columnar path (token-encoded frames were folded)")
        if self._acc is not None:
            return ((self._active + self._low).astype(np.int64),
                    self._acc[self._active].copy())
        if self._acc_keys is None:
            return (np.empty(0, dtype=np.int64), np.empty(0, dtype=np.float64))
        return self._acc_keys, self._acc_values

    def release(self, mechanism: PrivateMergedRelease,
                rng: RandomState = None) -> PrivateHistogram:
        """Release the folded aggregate through a :class:`PrivateMergedRelease`.

        Columnar accumulators feed
        :meth:`~repro.core.merging.PrivateMergedRelease.release_arrays`
        directly; the already-merged summary folds through as a single input,
        which leaves it unchanged — so the released histogram is exactly what
        the buffered release of all frames would produce for the default
        trusted-merged strategy.
        """
        from ..core.merging import MergeStrategy

        if self._frames == 0:
            raise ParameterError("no frames folded yet; nothing to release")
        if mechanism.strategy is not MergeStrategy.TRUSTED_MERGED:
            raise ParameterError(
                f"streaming merge releases the {MergeStrategy.TRUSTED_MERGED.value} "
                f"strategy; {mechanism.strategy.value!r} needs per-sketch state "
                "(use PrivateMergedRelease.release on the buffered sketches)")
        if mechanism.k != self._k:
            raise ParameterError(
                f"merger folded at k={self._k} but the mechanism is calibrated "
                f"to k={mechanism.k}")
        if self._acc_dict is None:
            keys, values = self.merged_arrays()
            return mechanism.release_arrays(
                [keys], [values], rng=rng,
                total_stream_length=self._total_length, streams=self._frames)
        return mechanism.release([self._acc_dict], rng=rng,
                                 total_stream_length=self._total_length,
                                 streams=self._frames)


# ---------------------------------------------------------------------------
# Convenience file-level helpers
# ---------------------------------------------------------------------------

def write_frames(target, payloads: Iterable[Union[Mapping, WirePayload, FrequencySketch]],
                 k: Optional[int] = None,
                 frames: Optional[int] = None,
                 meta: Optional[Mapping[str, object]] = None) -> int:
    """Pack envelopes/sketches into a framed stream at ``target`` (path or file).

    ``frames`` declares the expected payload count in the header so readers
    can detect a stream truncated at a frame boundary; when ``payloads`` is
    a sized collection it is declared automatically.  Returns the number of
    payload frames written.
    """
    if frames is None and hasattr(payloads, "__len__"):
        frames = len(payloads)

    def _pack(fileobj) -> int:
        with FrameWriter(fileobj, k=k, frames=frames, meta=meta) as writer:
            for payload in payloads:
                if isinstance(payload, FrequencySketch):
                    writer.write_sketch(payload)
                else:
                    writer.write_payload(payload)
            return writer.frames_written

    if hasattr(target, "write"):
        return _pack(target)
    path = Path(target)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("wb") as fileobj:
        return _pack(fileobj)


def iter_frames(source) -> Iterator[WirePayload]:
    """Yield the envelopes of a framed stream (path or binary file-like)."""
    if hasattr(source, "read"):
        yield from FrameReader(source)
        return
    with Path(source).open("rb") as fileobj:
        yield from FrameReader(fileobj)


#: Envelope ``meta`` key a relay summary frame carries its origin
#: accounting under (``{"frames": <origin sketch exports>}``).
RELAY_META_KEY = "relay"


def summary_payload(merger: StreamingMerger) -> Dict[str, object]:
    """Encode a merger's summary as one relay forward frame (v2 envelope).

    The envelope is a *fixed point* of the fold: its counters are the
    merger's merged state in seed dict order, its ``stream_length`` is the
    origin total, and folding it as the sole frame of a fresh merger (via
    :meth:`StreamingMerger.add_summary`) reproduces the origin summary
    bit-identically — dense first step with ``<= k`` entries is the
    identity assignment.  ``meta["relay"]["frames"]`` carries the origin
    frame count so downstream release metadata still reports the true
    number of folded sketch exports.
    """
    if merger.frames == 0:
        raise ParameterError("merger folded no frames; nothing to summarize")
    envelope = wire_module.encode_counters(
        merger.merged(), k=merger._k,
        stream_length=merger.total_stream_length)
    envelope["meta"][RELAY_META_KEY] = {"frames": merger.frames}
    return envelope


def combine_mergers(parts: Sequence[StreamingMerger], k: int) -> StreamingMerger:
    """Combine per-source mergers into one summary, in the given order.

    A single non-empty source passes through untouched — the two-level fold
    of one source is bit-identical to its flat fold, so ``repro merge
    --framed`` over one file (and a one-client aggregation session) keeps
    exactly the historical flat-fold result.  Multiple sources are absorbed
    in sequence order (the caller supplies the canonical ordering, e.g. CLI
    argument order or client ordinals).
    """
    live = [part for part in parts if part.frames]
    if len(live) == 1:
        return live[0]
    combined = StreamingMerger(k)
    for part in live:
        combined.absorb(part)
    return combined


def merge_frames(source, k: Optional[int] = None) -> StreamingMerger:
    """Stream-merge a framed file into a :class:`StreamingMerger`.

    ``k`` defaults to the stream header's declared sketch size.
    """
    def _fold(fileobj) -> StreamingMerger:
        reader = FrameReader(fileobj)
        size = k if k is not None else reader.header.k
        if size is None:
            raise ParameterError(
                "the framed stream's header declares no k; pass k explicitly")
        return StreamingMerger(size).consume(reader)

    if hasattr(source, "read"):
        return _fold(source)
    with Path(source).open("rb") as fileobj:
        return _fold(fileobj)
