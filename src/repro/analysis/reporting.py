"""Plain-text rendering of experiment results.

The benchmark harness prints its tables through these helpers so that the
rows recorded in EXPERIMENTS.md can be regenerated verbatim with
``pytest benchmarks/ --benchmark-only``.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence


def _format_value(value: Any, precision: int) -> str:
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1e5 or abs(value) < 1e-3:
            return f"{value:.{precision}e}"
        return f"{value:.{precision}f}"
    return str(value)


def format_table(rows: Sequence[Mapping[str, Any]], columns: Optional[Sequence[str]] = None,
                 title: Optional[str] = None, precision: int = 3) -> str:
    """Render a list of dict rows as an aligned plain-text table."""
    if not rows:
        return (title + "\n(no rows)") if title else "(no rows)"
    if columns is None:
        columns = []
        for row in rows:
            for key in row:
                if key not in columns:
                    columns.append(key)
    rendered = [[_format_value(row.get(column, ""), precision) for column in columns]
                for row in rows]
    widths = [max(len(column), *(len(line[index]) for line in rendered))
              for index, column in enumerate(columns)]
    header = " | ".join(column.ljust(widths[index]) for index, column in enumerate(columns))
    separator = "-+-".join("-" * width for width in widths)
    body = [" | ".join(line[index].ljust(widths[index]) for index in range(len(columns)))
            for line in rendered]
    lines = ([title, "=" * len(title)] if title else []) + [header, separator] + body
    return "\n".join(lines)


def format_series(x_label: str, y_label: str, points: Sequence[tuple],
                  title: Optional[str] = None, precision: int = 3) -> str:
    """Render an (x, y) series as a two-column table (a 'figure' in text form)."""
    rows = [{x_label: x, y_label: y} for x, y in points]
    return format_table(rows, columns=[x_label, y_label], title=title, precision=precision)
