"""Error metrics for comparing released histograms with ground truth.

All metrics take the estimate source either as a plain mapping or as anything
exposing ``estimate`` (sketches and :class:`~repro.core.results.PrivateHistogram`
both do), and the ground truth as a mapping of exact frequencies.  The error
for an element absent from the estimates is its full true frequency, matching
the paper's "maximum error among all elements of the universe" convention.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, Iterable, Mapping, Optional, Sequence, Set, Union

import numpy as np

from ..exceptions import ParameterError

EstimateSource = Union[Mapping[Hashable, float], object]


def _estimate(source: EstimateSource, element: Hashable) -> float:
    if hasattr(source, "estimate"):
        return float(source.estimate(element))
    return float(source.get(element, 0.0))


def _keys(source: EstimateSource) -> Set[Hashable]:
    if hasattr(source, "counts"):
        return set(source.counts.keys())
    if hasattr(source, "counters"):
        return set(source.counters().keys())
    return set(source.keys())


def _error_values(estimates: EstimateSource, truth: Mapping[Hashable, float],
                  universe: Optional[Iterable[Hashable]] = None) -> np.ndarray:
    keys = set(universe) if universe is not None else set(truth) | _keys(estimates)
    if not keys:
        return np.zeros(0)
    return np.array([_estimate(estimates, key) - float(truth.get(key, 0.0)) for key in keys])


def max_error(estimates: EstimateSource, truth: Mapping[Hashable, float],
              universe: Optional[Iterable[Hashable]] = None) -> float:
    """Maximum absolute estimation error over the universe."""
    errors = _error_values(estimates, truth, universe)
    return float(np.max(np.abs(errors))) if errors.size else 0.0


def mean_absolute_error(estimates: EstimateSource, truth: Mapping[Hashable, float],
                        universe: Optional[Iterable[Hashable]] = None) -> float:
    """Mean absolute estimation error over the universe."""
    errors = _error_values(estimates, truth, universe)
    return float(np.mean(np.abs(errors))) if errors.size else 0.0


def mean_squared_error(estimates: EstimateSource, truth: Mapping[Hashable, float],
                       universe: Optional[Iterable[Hashable]] = None) -> float:
    """Mean squared estimation error over the universe."""
    errors = _error_values(estimates, truth, universe)
    return float(np.mean(errors ** 2)) if errors.size else 0.0


@dataclass(frozen=True)
class ErrorSummary:
    """Summary statistics of the estimation error of one release."""

    max_error: float
    mean_absolute_error: float
    mean_squared_error: float
    released_keys: int

    def as_dict(self) -> Dict[str, float]:
        """Plain-dict view for reporting code."""
        return {
            "max_error": self.max_error,
            "mean_absolute_error": self.mean_absolute_error,
            "mean_squared_error": self.mean_squared_error,
            "released_keys": float(self.released_keys),
        }


def summarize_errors(estimates: EstimateSource, truth: Mapping[Hashable, float],
                     universe: Optional[Iterable[Hashable]] = None) -> ErrorSummary:
    """Compute all error statistics at once."""
    errors = _error_values(estimates, truth, universe)
    if errors.size == 0:
        return ErrorSummary(0.0, 0.0, 0.0, 0)
    return ErrorSummary(
        max_error=float(np.max(np.abs(errors))),
        mean_absolute_error=float(np.mean(np.abs(errors))),
        mean_squared_error=float(np.mean(errors ** 2)),
        released_keys=len(_keys(estimates)),
    )


def heavy_hitter_scores(predicted: Iterable[Hashable], actual: Iterable[Hashable]) -> Dict[str, float]:
    """Precision, recall and F1 of a predicted heavy-hitter set.

    ``actual`` is the ground-truth heavy-hitter set (e.g. from
    :func:`repro.core.heavy_hitters.true_heavy_hitters`).  An empty actual set
    with an empty prediction scores 1.0 across the board.
    """
    predicted_set = set(predicted)
    actual_set = set(actual)
    if not predicted_set and not actual_set:
        return {"precision": 1.0, "recall": 1.0, "f1": 1.0}
    true_positives = len(predicted_set & actual_set)
    precision = true_positives / len(predicted_set) if predicted_set else 0.0
    recall = true_positives / len(actual_set) if actual_set else 0.0
    if precision + recall == 0.0:
        f1 = 0.0
    else:
        f1 = 2.0 * precision * recall / (precision + recall)
    return {"precision": precision, "recall": recall, "f1": f1}
