"""Monte-Carlo privacy auditing of release mechanisms.

A privacy audit runs a mechanism many times on a fixed pair of neighbouring
inputs and estimates, for a chosen family of output events, the largest
violation of the (epsilon, delta) inequality

    P[M(S) in Z]  <=  e^eps * P[M(S') in Z] + delta.

An audit can only produce *lower bounds* on the true privacy loss, but that is
enough for the purpose it serves here (experiment E10): demonstrating that the
Böhler-Kerschbaum mechanism as published exceeds its claimed budget on the
worst-case input pair from the paper's argument, while Algorithm 2 stays
within budget on the same pair.

Audited events:

* per-key events ``{x is released}`` and ``{x's noisy count >= t}`` for every
  probed key and a grid of thresholds — these expose single-counter leaks;
* global events ``{sum of released counts >= t}`` and
  ``{number of released keys >= j}`` — these expose the "all counters shifted
  together" leak that sensitivity-1 noise cannot hide, which is exactly the
  flaw in the as-published Böhler-Kerschbaum mechanism.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, Hashable, List, Optional, Sequence, Tuple

import numpy as np

from .._validation import check_positive_int
from ..dp.rng import RandomState, ensure_rng
from ..core.results import PrivateHistogram

MechanismRunner = Callable[..., PrivateHistogram]


@dataclass(frozen=True)
class PrivacyAuditResult:
    """Outcome of a Monte-Carlo privacy audit."""

    claimed_epsilon: float
    claimed_delta: float
    estimated_epsilon_lower_bound: float
    worst_event: str
    trials: int
    violated: bool

    def as_dict(self) -> Dict[str, object]:
        """Plain-dict view for reporting code."""
        return {
            "claimed_epsilon": self.claimed_epsilon,
            "claimed_delta": self.claimed_delta,
            "estimated_epsilon_lower_bound": self.estimated_epsilon_lower_bound,
            "worst_event": self.worst_event,
            "trials": self.trials,
            "violated": self.violated,
        }


def _event_indicators(histograms: Sequence[PrivateHistogram], probe_keys: Sequence[Hashable],
                      key_thresholds: Sequence[float], sum_thresholds: Sequence[float],
                      count_thresholds: Sequence[int]) -> Dict[str, np.ndarray]:
    """Indicator vectors (one entry per trial) for every audited event."""
    events: Dict[str, np.ndarray] = {}
    totals = np.array([sum(hist.counts.values()) for hist in histograms])
    released_counts = np.array([len(hist) for hist in histograms])
    for key in probe_keys:
        estimates = np.array([hist.estimate(key) for hist in histograms])
        released = np.array([key in hist for hist in histograms])
        events[f"released[{key!r}]"] = released
        events[f"not_released[{key!r}]"] = ~released
        for threshold in key_thresholds:
            events[f"key_ge[{key!r},{threshold:.3g}]"] = released & (estimates >= threshold)
    for threshold in sum_thresholds:
        events[f"sum_ge[{threshold:.4g}]"] = totals >= threshold
    for count in count_thresholds:
        events[f"released_count_ge[{count}]"] = released_counts >= count
    return events


def audit_mechanism(run_on_stream: MechanismRunner, stream: Sequence, neighbour: Sequence,
                    claimed_epsilon: float, claimed_delta: float,
                    trials: int = 2000, rng: RandomState = 0,
                    probe_keys: Optional[Sequence[Hashable]] = None,
                    num_thresholds: int = 8) -> PrivacyAuditResult:
    """Estimate a lower bound on the privacy loss of a mechanism.

    Parameters
    ----------
    run_on_stream:
        Callable ``(stream, rng) -> PrivateHistogram`` running the full
        pipeline (sketch + release) on a stream.
    stream, neighbour:
        The neighbouring input pair to audit.
    claimed_epsilon, claimed_delta:
        The guarantee the mechanism claims; ``violated`` is set when the
        estimated loss exceeds the claim beyond the Monte-Carlo margin.
    trials:
        Number of runs per input.
    probe_keys:
        Keys whose per-key events are audited; defaults to (a sample of) the
        keys appearing in the outputs.
    num_thresholds:
        Grid size for the count / sum threshold events.
    """
    count = check_positive_int(trials, "trials")
    generator = ensure_rng(rng)
    outputs_stream = [run_on_stream(stream, rng=generator) for _ in range(count)]
    outputs_neighbour = [run_on_stream(neighbour, rng=generator) for _ in range(count)]
    if probe_keys is None:
        keys: set = set()
        for hist in outputs_stream[:50] + outputs_neighbour[:50]:
            keys.update(hist.keys())
        probe_keys = sorted(keys, key=repr)[:20]
    # Threshold grids from the pooled observations.
    all_estimates: List[float] = []
    all_sums: List[float] = []
    all_counts: List[int] = []
    for hist in outputs_stream + outputs_neighbour:
        all_estimates.extend(hist.counts.values())
        all_sums.append(sum(hist.counts.values()))
        all_counts.append(len(hist))
    if all_estimates:
        key_thresholds = list(np.quantile(all_estimates, np.linspace(0.05, 0.95, num_thresholds)))
    else:
        key_thresholds = []
    sum_thresholds = list(np.quantile(all_sums, np.linspace(0.05, 0.95, 2 * num_thresholds)))
    count_thresholds = sorted(set(int(c) for c in np.quantile(all_counts, [0.25, 0.5, 0.75, 0.9])))
    events_stream = _event_indicators(outputs_stream, probe_keys, key_thresholds,
                                      sum_thresholds, count_thresholds)
    events_neighbour = _event_indicators(outputs_neighbour, probe_keys, key_thresholds,
                                         sum_thresholds, count_thresholds)
    # The Monte-Carlo margin guards against declaring a violation from
    # estimation noise: a 3-sigma binomial confidence radius.
    margin = 3.0 / math.sqrt(count)
    worst_epsilon = 0.0
    worst_event = ""
    for event in events_stream:
        p_stream = float(np.mean(events_stream[event]))
        p_neighbour = float(np.mean(events_neighbour[event]))
        for p, q in ((p_stream, p_neighbour), (p_neighbour, p_stream)):
            p_adjusted = p - margin - claimed_delta
            q_adjusted = q + margin
            if p_adjusted <= 0.0:
                continue
            estimated = math.log(p_adjusted / q_adjusted) if q_adjusted > 0 else math.inf
            if estimated > worst_epsilon:
                worst_epsilon = estimated
                worst_event = event
    return PrivacyAuditResult(
        claimed_epsilon=claimed_epsilon,
        claimed_delta=claimed_delta,
        estimated_epsilon_lower_bound=worst_epsilon,
        worst_event=worst_event,
        trials=count,
        violated=worst_epsilon > claimed_epsilon,
    )
