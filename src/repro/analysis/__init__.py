"""Analysis layer: error metrics, theoretical bounds, experiment running and reporting."""

from .audit import PrivacyAuditResult, audit_mechanism
from .bounds import (
    chan_error_bound,
    mg_error_bound,
    pamg_release_error_bound,
    pmg_error_bound,
    pmg_mse_bound,
    pure_dp_error_bound,
)
from .metrics import (
    ErrorSummary,
    heavy_hitter_scores,
    max_error,
    mean_absolute_error,
    mean_squared_error,
    summarize_errors,
)
from .reporting import format_series, format_table
from .runner import ExperimentResult, ExperimentRunner, PipelineTrial, SweepSpec

__all__ = [
    "ErrorSummary",
    "ExperimentResult",
    "ExperimentRunner",
    "PipelineTrial",
    "PrivacyAuditResult",
    "SweepSpec",
    "audit_mechanism",
    "chan_error_bound",
    "format_series",
    "format_table",
    "heavy_hitter_scores",
    "max_error",
    "mean_absolute_error",
    "mean_squared_error",
    "mg_error_bound",
    "pamg_release_error_bound",
    "pmg_error_bound",
    "pmg_mse_bound",
    "pure_dp_error_bound",
    "summarize_errors",
]
