"""Theoretical error bounds from the paper, as executable formulas.

The benchmarks report these side by side with the measured errors so that
EXPERIMENTS.md can show "paper (bound) vs measured" for every experiment.
"""

from __future__ import annotations

import math

from .._validation import check_delta, check_epsilon, check_positive_int, check_probability
from ..dp.thresholds import pmg_threshold


def mg_error_bound(stream_length: int, k: int) -> float:
    """Fact 7: the MG sketch underestimates by at most ``n / (k + 1)``."""
    size = check_positive_int(k, "k")
    return stream_length / (size + 1)


def pmg_error_bound(stream_length: int, k: int, epsilon: float, delta: float,
                    beta: float = 0.05) -> float:
    """Theorem 14: high-probability max error of Algorithm 2 against the truth.

    ``n/(k+1) + 2 ln((k+1)/beta)/eps + 1 + 2 ln(3/delta)/eps`` with probability
    at least ``1 - beta``.
    """
    size = check_positive_int(k, "k")
    eps = check_epsilon(epsilon)
    check_delta(delta)
    b = check_probability(beta, "beta")
    laplace_term = 2.0 * math.log((size + 1) / b) / eps
    return stream_length / (size + 1) + laplace_term + pmg_threshold(eps, delta)


def pmg_noise_error_bound(k: int, epsilon: float, delta: float, beta: float = 0.05) -> float:
    """Lemma 13: high-probability max error of Algorithm 2 against the MG sketch."""
    size = check_positive_int(k, "k")
    eps = check_epsilon(epsilon)
    check_delta(delta)
    b = check_probability(beta, "beta")
    laplace_term = 2.0 * math.log((size + 1) / b) / eps
    return laplace_term + pmg_threshold(eps, delta)


def pmg_mse_bound(stream_length: int, k: int, epsilon: float, delta: float) -> float:
    """Theorem 14: per-element mean-squared-error bound of Algorithm 2."""
    size = check_positive_int(k, "k")
    eps = check_epsilon(epsilon)
    d = check_delta(delta)
    term = 1.0 + (2.0 + 2.0 * math.log(3.0 / d)) / eps + stream_length / (size + 1)
    return 3.0 * term * term


def chan_error_bound(stream_length: int, k: int, epsilon: float, universe_size: int,
                     beta: float = 0.05) -> float:
    """Chan et al.: max error ``n/(k+1) + 2 (k/eps) ln(d/beta)`` (pure DP variant)."""
    size = check_positive_int(k, "k")
    eps = check_epsilon(epsilon)
    d = check_positive_int(universe_size, "universe_size")
    b = check_probability(beta, "beta")
    return stream_length / (size + 1) + 2.0 * (size / eps) * math.log(d / b)


def chan_thresholded_error_bound(stream_length: int, k: int, epsilon: float, delta: float,
                                 beta: float = 0.05) -> float:
    """Chan et al. with the (eps, delta) thresholding improvement: ``O(k log(k/delta)/eps)``."""
    size = check_positive_int(k, "k")
    eps = check_epsilon(epsilon)
    d = check_delta(delta)
    b = check_probability(beta, "beta")
    noise = (size / eps) * math.log(size / (d * b) + 1.0)
    threshold = size + size * math.log(size / d) / eps
    return stream_length / (size + 1) + noise + threshold


def pure_dp_error_bound(stream_length: int, k: int, epsilon: float, universe_size: int,
                        beta: float = 0.05) -> float:
    """Section 6: ``n/(k+1) + 2 (2/eps) ln(d/beta)`` for the sensitivity-reduced release."""
    size = check_positive_int(k, "k")
    eps = check_epsilon(epsilon)
    d = check_positive_int(universe_size, "universe_size")
    b = check_probability(beta, "beta")
    return stream_length / (size + 1) + 2.0 * (2.0 / eps) * math.log(d / b)


def pamg_release_error_bound(total_elements: int, k: int, sigma: float, tau: float) -> float:
    """Theorem 30: ``M/(k+1) + 2 tau + 1`` (downward side) for the PAMG + GSHM release."""
    size = check_positive_int(k, "k")
    return total_elements / (size + 1) + 2.0 * tau + 1.0


def balcer_vadhan_lower_bound(universe_size: int, k: int, epsilon: float, delta: float,
                              stream_length: int) -> float:
    """The Balcer-Vadhan style lower bound quoted in Section 4.

    Any (eps, delta)-DP mechanism releasing at most ``k`` counters has, for
    some input, expected error
    ``Omega(min(log(d/k)/eps, log(1/delta)/eps, n))``.  The constant is taken
    as 1 (the bound is asymptotic); benchmarks report it only to show which
    regime the measured error sits in.
    """
    size = check_positive_int(k, "k")
    eps = check_epsilon(epsilon)
    d = check_delta(delta)
    du = check_positive_int(universe_size, "universe_size")
    return min(math.log(max(du / size, 2.0)) / eps, math.log(1.0 / d) / eps, float(stream_length))
