"""A small experiment runner for parameter sweeps with repetitions.

The benchmarks all have the same shape: sweep one or two parameters, run a
handful of repetitions with independent seeds, aggregate an error metric.
``ExperimentRunner`` centralizes seed management and result collection so the
benchmark modules stay declarative.
"""

from __future__ import annotations

import itertools
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Mapping, Optional, Sequence

import numpy as np

from .._validation import check_positive_int
from ..dp.rng import RandomState, ensure_rng, spawn_rngs


@dataclass(frozen=True)
class SweepSpec:
    """A named grid of parameter values to sweep over."""

    parameters: Dict[str, Sequence[Any]]

    def combinations(self) -> List[Dict[str, Any]]:
        """All parameter combinations in the grid, as dicts."""
        names = list(self.parameters.keys())
        values = [self.parameters[name] for name in names]
        return [dict(zip(names, combo)) for combo in itertools.product(*values)]


@dataclass
class ExperimentResult:
    """Aggregated result of one parameter combination."""

    parameters: Dict[str, Any]
    metrics: Dict[str, float]
    repetitions: int
    seconds: float

    def row(self) -> Dict[str, Any]:
        """Flat dict mixing parameters and metrics (for table rendering)."""
        merged: Dict[str, Any] = dict(self.parameters)
        merged.update(self.metrics)
        merged["repetitions"] = self.repetitions
        merged["seconds"] = round(self.seconds, 4)
        return merged


class ExperimentRunner:
    """Run a trial function over a parameter sweep with independent seeds.

    The trial function receives the parameter combination (as keyword
    arguments) plus an ``rng`` keyword and returns a mapping of metric name to
    value.  Metrics are averaged over repetitions; ``*_max`` metrics are
    maximized instead, so worst-case quantities survive aggregation.
    """

    def __init__(self, repetitions: int = 5, rng: RandomState = 0) -> None:
        self._repetitions = check_positive_int(repetitions, "repetitions")
        self._rng = ensure_rng(rng)

    def run(self, trial: Callable[..., Mapping[str, float]],
            sweep: SweepSpec) -> List[ExperimentResult]:
        """Run ``trial`` for every parameter combination in ``sweep``."""
        results: List[ExperimentResult] = []
        for combo in sweep.combinations():
            results.append(self.run_single(trial, combo))
        return results

    def run_single(self, trial: Callable[..., Mapping[str, float]],
                   parameters: Dict[str, Any]) -> ExperimentResult:
        """Run one parameter combination with independent per-repetition seeds."""
        rngs = spawn_rngs(self._rng, self._repetitions)
        start = time.perf_counter()
        collected: Dict[str, List[float]] = {}
        for generator in rngs:
            metrics = trial(rng=generator, **parameters)
            for name, value in metrics.items():
                collected.setdefault(name, []).append(float(value))
        elapsed = time.perf_counter() - start
        aggregated: Dict[str, float] = {}
        for name, values in collected.items():
            if name.endswith("_max"):
                aggregated[name] = float(np.max(values))
            else:
                aggregated[name] = float(np.mean(values))
        return ExperimentResult(parameters=dict(parameters), metrics=aggregated,
                                repetitions=self._repetitions, seconds=elapsed)
