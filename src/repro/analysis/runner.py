"""A small experiment runner for parameter sweeps with repetitions.

The benchmarks all have the same shape: sweep one or two parameters, run a
handful of repetitions with independent seeds, aggregate an error metric.
``ExperimentRunner`` centralizes seed management and result collection so the
benchmark modules stay declarative.

Sweep combinations are independent, so the runner can execute them in
parallel worker processes (``workers=``).  Per-repetition generators are
spawned from the runner's root generator *in combination order before*
dispatching, which makes the parallel results bit-identical to a sequential
run (only the wall-clock ``seconds`` field differs).
"""

from __future__ import annotations

import itertools
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence

import numpy as np

from .._validation import check_positive_int
from ..dp.rng import RandomState, ensure_rng, spawn_rngs


@dataclass(frozen=True)
class SweepSpec:
    """A named grid of parameter values to sweep over."""

    parameters: Dict[str, Sequence[Any]]

    def combinations(self) -> List[Dict[str, Any]]:
        """All parameter combinations in the grid, as dicts."""
        names = list(self.parameters.keys())
        values = [self.parameters[name] for name in names]
        return [dict(zip(names, combo)) for combo in itertools.product(*values)]


@dataclass
class ExperimentResult:
    """Aggregated result of one parameter combination."""

    parameters: Dict[str, Any]
    metrics: Dict[str, float]
    repetitions: int
    seconds: float

    def row(self) -> Dict[str, Any]:
        """Flat dict mixing parameters and metrics (for table rendering)."""
        merged: Dict[str, Any] = dict(self.parameters)
        merged.update(self.metrics)
        merged["repetitions"] = self.repetitions
        merged["seconds"] = round(self.seconds, 4)
        return merged


def _run_combination(trial: Callable[..., Mapping[str, float]],
                     parameters: Dict[str, Any],
                     rngs: List[np.random.Generator]) -> ExperimentResult:
    """Execute one parameter combination with pre-spawned repetition rngs.

    Module-level so worker processes can unpickle it; the per-repetition
    generators are spawned by the caller, which is what keeps parallel and
    sequential execution bit-identical.
    """
    start = time.perf_counter()
    collected: Dict[str, List[float]] = {}
    for generator in rngs:
        metrics = trial(rng=generator, **parameters)
        for name, value in metrics.items():
            collected.setdefault(name, []).append(float(value))
    elapsed = time.perf_counter() - start
    aggregated: Dict[str, float] = {}
    for name, values in collected.items():
        if name.endswith("_max"):
            aggregated[name] = float(np.max(values))
        else:
            aggregated[name] = float(np.mean(values))
    return ExperimentResult(parameters=dict(parameters), metrics=aggregated,
                            repetitions=len(rngs), seconds=elapsed)


@dataclass
class PipelineTrial:
    """A picklable trial function that runs a :class:`repro.api.Pipeline`.

    Sweeping the ``mechanism`` (or ``sketch``) parameter compares registered
    mechanisms *by name* — the sweep grid carries specs, not bespoke
    constructor glue:

    >>> from repro.analysis import ExperimentRunner, PipelineTrial, SweepSpec
    >>> runner = ExperimentRunner(repetitions=3, rng=0)
    >>> results = runner.run(
    ...     PipelineTrial(stream=[1, 2, 1, 1, 3] * 200, defaults={"k": 16}),
    ...     SweepSpec({"mechanism": ["pmg", "chan"], "epsilon": [0.5, 1.0]}))
    ... # doctest: +SKIP

    ``stream`` is the workload every trial fits (a user-level stream for the
    user-level mechanisms); ``defaults`` are pipeline parameters shared by
    every combination, overridden by swept parameters of the same name.
    Metrics: released key count, max / mean-absolute error against the exact
    histogram of the stream.  Instances are module-level picklable, so sweeps
    parallelize across ``workers`` processes unchanged.
    """

    stream: Sequence[Any]
    truth: Optional[Dict[Any, float]] = None
    defaults: Dict[str, Any] = field(default_factory=dict)
    user_level: bool = False

    def _exact_truth(self) -> Dict[Any, float]:
        if self.truth is not None:
            return self.truth
        from ..sketches.exact import ExactCounter

        counter = ExactCounter()
        if self.user_level:
            counter.update_sets(self.stream)
        else:
            counter.update_all(self.stream)
        self.truth = counter.counters()
        return self.truth

    def __call__(self, rng: RandomState = None, mechanism: Any = "pmg",
                 sketch: Any = None, **params: Any) -> Dict[str, float]:
        from ..api.pipeline import Pipeline
        from .metrics import summarize_errors

        merged = {**self.defaults, **params}
        pipeline = Pipeline(sketch=sketch, mechanism=mechanism, **merged)
        histogram = pipeline.fit(self.stream).release(rng=rng)
        summary = summarize_errors(histogram, self._exact_truth())
        return {
            "released": float(len(histogram)),
            "max_error_max": summary.max_error,
            "mean_absolute_error": summary.mean_absolute_error,
        }


class ExperimentRunner:
    """Run a trial function over a parameter sweep with independent seeds.

    The trial function receives the parameter combination (as keyword
    arguments) plus an ``rng`` keyword and returns a mapping of metric name to
    value.  Metrics are averaged over repetitions; ``*_max`` metrics are
    maximized instead, so worst-case quantities survive aggregation.

    Parameters
    ----------
    repetitions:
        Number of independently seeded repetitions per combination.
    rng:
        Root seed or generator; per-repetition generators are spawned from it.
    workers:
        When greater than 1, :meth:`run` executes the sweep combinations in a
        :class:`~concurrent.futures.ProcessPoolExecutor` with that many
        processes.  Per-repetition generators are spawned in combination
        order before dispatching, so parameters, metrics and repetition
        counts are bit-identical to a sequential run; only the wall-clock
        ``seconds`` field differs.  The trial function (and its metric
        values) must be picklable — i.e. defined at module level.
    """

    def __init__(self, repetitions: int = 5, rng: RandomState = 0,
                 workers: Optional[int] = None) -> None:
        self._repetitions = check_positive_int(repetitions, "repetitions")
        self._rng = ensure_rng(rng)
        if workers is not None:
            check_positive_int(workers, "workers")
        self._workers = workers

    def run(self, trial: Callable[..., Mapping[str, float]],
            sweep: SweepSpec) -> List[ExperimentResult]:
        """Run ``trial`` for every parameter combination in ``sweep``."""
        combinations = sweep.combinations()
        # Spawn every combination's repetition generators from the root
        # generator first, in combination order — the single source of
        # randomness — so execution order (or process boundaries) cannot
        # change any result.
        spawned = [spawn_rngs(self._rng, self._repetitions) for _ in combinations]
        if self._workers is not None and self._workers > 1 and len(combinations) > 1:
            with ProcessPoolExecutor(max_workers=self._workers) as pool:
                futures = [pool.submit(_run_combination, trial, combo, rngs)
                           for combo, rngs in zip(combinations, spawned)]
                return [future.result() for future in futures]
        return [_run_combination(trial, combo, rngs)
                for combo, rngs in zip(combinations, spawned)]

    def run_single(self, trial: Callable[..., Mapping[str, float]],
                   parameters: Dict[str, Any]) -> ExperimentResult:
        """Run one parameter combination with independent per-repetition seeds."""
        return _run_combination(trial, parameters, spawn_rngs(self._rng, self._repetitions))

    def run_pipelines(self, stream: Sequence[Any], sweep: SweepSpec,
                      truth: Optional[Dict[Any, float]] = None,
                      user_level: bool = False,
                      **defaults: Any) -> List[ExperimentResult]:
        """Sweep :class:`repro.api.Pipeline` specs over a fixed workload.

        A convenience wrapper around :class:`PipelineTrial`: the sweep grid
        names registered mechanisms/sketches (``SweepSpec({"mechanism":
        ["pmg", "chan", "bohler_kerschbaum"], "epsilon": [0.5, 1.0]})``) and
        ``defaults`` carries the shared pipeline parameters (``k``,
        ``delta``, ``universe_size``, ...).
        """
        trial = PipelineTrial(stream=stream, truth=truth, defaults=defaults,
                              user_level=user_level)
        trial._exact_truth()  # compute once here, not in every worker
        return self.run(trial, sweep)
