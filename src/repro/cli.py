"""Command-line interface for the library.

The CLI covers the operational loop a deployment needs without writing Python:
generate or ingest a stream, build a sketch, release it under differential
privacy, merge sketches from several machines, and query heavy hitters.

Examples
--------
Generate a synthetic workload, sketch it, and release it::

    repro generate --dataset network_flows -n 100000 --out flows.txt
    repro sketch --stream flows.txt -k 256 --out flows.sketch.json
    repro release --sketch flows.sketch.json --epsilon 1.0 --delta 1e-6 \
        --out flows.hist.json
    repro heavy-hitters --histogram flows.hist.json --phi 0.01

Merge sketches produced on several servers::

    repro merge --epsilon 1.0 --delta 1e-6 -k 256 \
        --out merged.hist.json server1.sketch.json server2.sketch.json
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional, Sequence

from .analysis.metrics import summarize_errors
from .analysis.reporting import format_table
from .core.merging import MergeStrategy, PrivateMergedRelease
from .core.private_misra_gries import PrivateMisraGries
from .core.pure_dp import PureDPMisraGries
from .exceptions import ReproError
from .sketches.exact import ExactCounter
from .sketches.misra_gries import MisraGriesSketch
from .sketches.serialization import (
    histogram_from_dict,
    histogram_to_dict,
    load_histogram,
    load_sketch,
    save_histogram,
    save_sketch,
)
from .streams.datasets import list_datasets, load_dataset
from .streams.generators import uniform_stream, zipf_stream
from .streams.io import read_stream, write_stream


def build_parser() -> argparse.ArgumentParser:
    """Construct the top-level argument parser."""
    parser = argparse.ArgumentParser(prog="repro",
                                     description="Differentially private Misra-Gries toolkit")
    subparsers = parser.add_subparsers(dest="command", required=True)

    generate = subparsers.add_parser("generate", help="generate a synthetic stream")
    generate.add_argument("--dataset", choices=list_datasets() + ["zipf", "uniform"],
                          default="zipf")
    generate.add_argument("-n", type=int, default=100_000, help="stream length")
    generate.add_argument("--universe", type=int, default=10_000)
    generate.add_argument("--exponent", type=float, default=1.2, help="Zipf exponent")
    generate.add_argument("--seed", type=int, default=0)
    generate.add_argument("--out", required=True, help="output stream file")

    sketch = subparsers.add_parser("sketch", help="build a Misra-Gries sketch from a stream file")
    sketch.add_argument("--stream", required=True)
    sketch.add_argument("-k", type=int, required=True, help="sketch size")
    sketch.add_argument("--out", required=True, help="output sketch JSON file")

    release = subparsers.add_parser("release", help="release a sketch under differential privacy")
    release.add_argument("--sketch", required=True, help="sketch JSON file")
    release.add_argument("--epsilon", type=float, required=True)
    release.add_argument("--delta", type=float, default=None,
                         help="omit for the pure-DP release (requires --universe)")
    release.add_argument("--universe", type=int, default=None,
                         help="universe size for the pure-DP release")
    release.add_argument("--noise", choices=["laplace", "geometric"], default="laplace")
    release.add_argument("--seed", type=int, default=None)
    release.add_argument("--out", default=None, help="output histogram JSON (stdout if omitted)")

    merge = subparsers.add_parser("merge", help="privately release merged sketches")
    merge.add_argument("sketches", nargs="+", help="sketch JSON files")
    merge.add_argument("--epsilon", type=float, required=True)
    merge.add_argument("--delta", type=float, required=True)
    merge.add_argument("-k", type=int, required=True)
    merge.add_argument("--strategy", choices=[s.value for s in MergeStrategy],
                       default=MergeStrategy.TRUSTED_MERGED.value)
    merge.add_argument("--seed", type=int, default=None)
    merge.add_argument("--out", default=None, help="output histogram JSON (stdout if omitted)")

    heavy = subparsers.add_parser("heavy-hitters", help="query heavy hitters from a histogram")
    heavy.add_argument("--histogram", required=True, help="released histogram JSON file")
    heavy.add_argument("--phi", type=float, required=True,
                       help="heavy-hitter fraction of the stream length")
    heavy.add_argument("--top", type=int, default=None, help="print only the top N")

    evaluate = subparsers.add_parser("evaluate",
                                     help="compare a released histogram with the exact counts")
    evaluate.add_argument("--histogram", required=True)
    evaluate.add_argument("--stream", required=True)

    return parser


# ---------------------------------------------------------------------------
# Subcommand implementations
# ---------------------------------------------------------------------------

def _cmd_generate(args: argparse.Namespace) -> int:
    if args.dataset == "zipf":
        stream = zipf_stream(args.n, args.universe, exponent=args.exponent, rng=args.seed)
    elif args.dataset == "uniform":
        stream = uniform_stream(args.n, args.universe, rng=args.seed)
    else:
        dataset = load_dataset(args.dataset, n=args.n, rng=args.seed)
        if dataset.user_level:
            write_stream(args.out, dataset.stream, user_level=True)
            print(f"wrote {dataset.length} user records to {args.out}")
            return 0
        stream = dataset.stream
    count = write_stream(args.out, stream)
    print(f"wrote {count} elements to {args.out}")
    return 0


def _cmd_sketch(args: argparse.Namespace) -> int:
    stream = read_stream(args.stream)
    sketch = MisraGriesSketch.from_stream(args.k, stream)
    save_sketch(sketch, args.out)
    print(f"sketched {sketch.stream_length} elements into k={args.k} counters -> {args.out}")
    return 0


def _emit_histogram(histogram, out: Optional[str]) -> None:
    if out:
        save_histogram(histogram, out)
        print(f"released {len(histogram)} elements -> {out}")
    else:
        json.dump(histogram_to_dict(histogram), sys.stdout, indent=2, sort_keys=True)
        print()


def _cmd_release(args: argparse.Namespace) -> int:
    sketch = load_sketch(args.sketch)
    if args.delta is None:
        if args.universe is None:
            print("error: the pure-DP release requires --universe", file=sys.stderr)
            return 2
        mechanism = PureDPMisraGries(epsilon=args.epsilon, universe_size=args.universe)
        histogram = mechanism.release(sketch, rng=args.seed)
    else:
        mechanism = PrivateMisraGries(epsilon=args.epsilon, delta=args.delta, noise=args.noise)
        histogram = mechanism.release(sketch, rng=args.seed)
    _emit_histogram(histogram, args.out)
    return 0


def _cmd_merge(args: argparse.Namespace) -> int:
    sketches = [load_sketch(path) for path in args.sketches]
    release = PrivateMergedRelease(epsilon=args.epsilon, delta=args.delta, k=args.k,
                                   strategy=MergeStrategy(args.strategy))
    histogram = release.release(sketches, rng=args.seed)
    _emit_histogram(histogram, args.out)
    return 0


def _cmd_heavy_hitters(args: argparse.Namespace) -> int:
    histogram = load_histogram(args.histogram)
    length = histogram.metadata.stream_length
    cutoff = args.phi * length
    heavy = histogram.heavy_hitters(cutoff)
    ranked = sorted(heavy.items(), key=lambda kv: -kv[1])
    if args.top is not None:
        ranked = ranked[:args.top]
    rows = [{"element": key, "noisy count": value} for key, value in ranked]
    print(format_table(rows, title=f"{args.phi:.4g}-heavy hitters (cutoff {cutoff:.1f})"))
    return 0


def _cmd_evaluate(args: argparse.Namespace) -> int:
    histogram = load_histogram(args.histogram)
    stream = read_stream(args.stream)
    truth = ExactCounter.from_stream(stream).counters()
    summary = summarize_errors(histogram, truth)
    rows = [summary.as_dict()]
    print(format_table(rows, title=f"error of {args.histogram} against {args.stream}"))
    return 0


_HANDLERS = {
    "generate": _cmd_generate,
    "sketch": _cmd_sketch,
    "release": _cmd_release,
    "merge": _cmd_merge,
    "heavy-hitters": _cmd_heavy_hitters,
    "evaluate": _cmd_evaluate,
}


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    handler = _HANDLERS[args.command]
    try:
        return handler(args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    except FileNotFoundError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
