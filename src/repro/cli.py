"""Command-line interface for the library.

The CLI is a thin layer over the unified API registry
(:mod:`repro.api.registry`): every registered release mechanism — the
paper's and all baselines — is reachable through ``repro release
--mechanism <name>``, and ``repro list`` enumerates what is available.

Examples
--------
Generate a synthetic workload, sketch it, and release it::

    repro generate --dataset network_flows -n 100000 --out flows.txt
    repro sketch --stream flows.txt -k 256 --out flows.sketch.json
    repro release --sketch flows.sketch.json --epsilon 1.0 --delta 1e-6 \
        --out flows.hist.json
    repro heavy-hitters --histogram flows.hist.json --phi 0.01

Pick any registered mechanism by name (``repro list`` shows them all)::

    repro release --mechanism chan --sketch flows.sketch.json --epsilon 1.0
    repro release --mechanism local_dp --stream flows.txt --universe 10000 \
        --phi 0.01 --epsilon 2.0
    repro release --mechanism pamg --stream users.txt --user-level -m 8 \
        --epsilon 1.0 --delta 1e-6 -k 256

Merge sketches produced on several servers (v2 files ride the columnar
``merge_many_arrays`` path; ``--format v1`` keeps the old row format)::

    repro merge --epsilon 1.0 --delta 1e-6 -k 256 \
        --out merged.hist.json server1.sketch.json server2.sketch.json

Pack many sketch exports into one length-prefix framed stream and merge it
without ever buffering the whole file (the aggregator folds one frame at a
time through :class:`repro.api.framing.StreamingMerger`)::

    repro pack --out exports.frames server1.sketch.json server2.sketch.json
    repro merge --framed --epsilon 1.0 --delta 1e-6 --out merged.hist.json \
        exports.frames

Monitor a stream continually (one private release per closed block)::

    repro release --mechanism continual --stream flows.txt --epsilon 1.0 \
        --delta 1e-6 -k 64 --block-size 1000

Run the live aggregation service (``repro.net``): one server, any number of
concurrent pushing clients, then a release request that returns the DP
histogram over everything committed so far.  Give each pushing client a
distinct ``--ordinal`` and the result is bit-identical to ``repro merge
--framed`` over the same files with the same seed::

    repro serve --listen 127.0.0.1:7788 --epsilon 1.0 --delta 1e-6 -k 256 &
    repro push --to 127.0.0.1:7788 --ordinal 0 server1.frames
    repro push --to 127.0.0.1:7788 --ordinal 1 server2.frames
    repro request-release --to 127.0.0.1:7788 --seed 4 --out merged.hist.json

Scale out with a relay tree (``repro.net.relay``): leaves accept clients and
forward committed sessions to a root started with ``--accept-relays``; a
release through any leaf is bit-identical to the flat single-server run::

    repro serve --listen 127.0.0.1:7788 --epsilon 1.0 --delta 1e-6 -k 256 \
        --accept-relays &
    repro relay --listen 127.0.0.1:7789 --upstream 127.0.0.1:7788 \
        --epsilon 1.0 --delta 1e-6 -k 256 --ordinal 0 &
    repro push --to 127.0.0.1:7789 --ordinal 0 server1.frames
    repro request-release --to 127.0.0.1:7789 --seed 4

``repro stats ADDRESS`` pretty-prints any server's live counters (sessions,
committed frames, fold rate, and — for relays — the upstream forward state).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any, Dict, List, Optional, Sequence

from .analysis.metrics import summarize_errors
from .analysis.reporting import format_table
from .api.pipeline import Pipeline
from .api.registry import list_mechanisms, list_sketches, make_sketch, mechanism_entry
from .api.wire import load_payload
from .core.merging import MergeStrategy
from .exceptions import ReproError
from .sketches.exact import ExactCounter
from .sketches.serialization import (
    histogram_to_dict,
    load_histogram,
    save_histogram,
    save_sketch,
)
from .streams.datasets import list_datasets, load_dataset
from .streams.generators import uniform_stream, zipf_stream
from .streams.io import read_stream, write_stream


def _add_format(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--format", choices=["v1", "v2"], default="v2",
                        help="wire format for output files (default v2, columnar)")


def _add_hardening_flags(parser: argparse.ArgumentParser) -> None:
    """Multi-tenant hardening flags shared by `serve` and `relay`."""
    parser.add_argument("--budget-epsilon", type=float, default=None,
                        help="total epsilon budget across releases; the first "
                             "RELEASE whose composed spend would exceed it is "
                             "refused with a budget_exhausted error (with "
                             "--wal-dir the spend survives kill -9)")
    parser.add_argument("--budget-delta", type=float, default=None,
                        help="total delta budget across releases (default: "
                             "unconstrained — only the epsilon budget and "
                             "the vacuous delta >= 1 line bind)")
    parser.add_argument("--composition", choices=("basic", "advanced"),
                        default="basic",
                        help="how release spends compose against the budget: "
                             "basic (epsilons/deltas add) or advanced "
                             "(Dwork & Roth Thm 3.20; needs a budget with "
                             "delta > 0) (default basic)")
    parser.add_argument("--auth-token", default=None,
                        help="require this session token in every HELLO "
                             "(client and relay roles); sessions without it "
                             "are rejected with auth_failed")
    parser.add_argument("--max-session-frames", type=int, default=None,
                        help="per-session quota on pushed frames; exceeding "
                             "it rejects only that session (quota_exceeded)")
    parser.add_argument("--max-session-bytes", type=int, default=None,
                        help="per-session quota on pushed payload bytes")
    parser.add_argument("--max-session-sketches", type=int, default=None,
                        help="per-session quota on origin sketch exports (a "
                             "relay summary counts its origin exports)")


def _add_obs_flags(parser: argparse.ArgumentParser) -> None:
    """Observability flags shared by `serve` and `relay` (repro.obs)."""
    parser.add_argument("--log-json", default=None, metavar="PATH",
                        help="append one JSON line per traced span (session, "
                             "push, release) to PATH; '-' streams to stderr")
    parser.add_argument("--no-metrics", action="store_true",
                        help="disable the in-process metrics registry (no "
                             "metrics stanza in STATS; instrumentation sites "
                             "become no-ops)")


def build_parser() -> argparse.ArgumentParser:
    """Construct the top-level argument parser."""
    parser = argparse.ArgumentParser(prog="repro",
                                     description="Differentially private Misra-Gries toolkit")
    subparsers = parser.add_subparsers(dest="command", required=True)

    listing = subparsers.add_parser("list",
                                    help="list registered mechanisms and sketches")
    listing.add_argument("--what", choices=["mechanisms", "sketches", "all"], default="all")
    listing.add_argument("--backends", action="store_true",
                         help="report the compiled kernel backends (what "
                              "REPRO_KERNELS / backend='auto' resolves to)")

    generate = subparsers.add_parser("generate", help="generate a synthetic stream")
    generate.add_argument("--dataset", choices=list_datasets() + ["zipf", "uniform"],
                          default="zipf")
    generate.add_argument("-n", type=int, default=100_000, help="stream length")
    generate.add_argument("--universe", type=int, default=10_000)
    generate.add_argument("--exponent", type=float, default=1.2, help="Zipf exponent")
    generate.add_argument("--seed", type=int, default=0)
    generate.add_argument("--out", required=True, help="output stream file")

    sketch = subparsers.add_parser("sketch", help="build a sketch from a stream file")
    sketch.add_argument("--stream", required=True)
    sketch.add_argument("--type", dest="sketch_type", default="misra_gries",
                        choices=sorted(list_sketches()),
                        help="registered sketch type (default misra_gries)")
    sketch.add_argument("-k", type=int, required=True, help="sketch size")
    sketch.add_argument("--depth", type=int, default=3,
                        help="rows for the hash-table sketches (count_min/count_sketch)")
    sketch.add_argument("--out", required=True, help="output sketch JSON file")
    _add_format(sketch)

    release = subparsers.add_parser(
        "release", help="release a sketch or stream under differential privacy")
    release.add_argument("--mechanism", default=None, choices=sorted(list_mechanisms()),
                         help="registered mechanism (default: pmg, or pure_dp when "
                              "--delta is omitted)")
    release.add_argument("--sketch", action="append", default=None,
                         help="sketch JSON file (repeatable for the merged mechanism)")
    release.add_argument("--stream", default=None,
                         help="stream file (for stream/user-level mechanisms)")
    release.add_argument("--user-level", action="store_true",
                         help="read --stream as a user-level stream (one comma-separated "
                              "set per line)")
    release.add_argument("--epsilon", type=float, required=True)
    release.add_argument("--delta", type=float, default=None,
                         help="omit for the pure-DP release (requires --universe)")
    release.add_argument("--universe", type=int, default=None,
                         help="universe size (pure_dp, chan, local_dp, prefix_tree, exact)")
    release.add_argument("-k", type=int, default=None, help="sketch size context")
    release.add_argument("-m", "--max-contribution", type=int, default=None,
                         help="distinct elements per user (user-level mechanisms)")
    release.add_argument("--noise", choices=["laplace", "geometric"], default=None)
    release.add_argument("--phi", type=float, default=None,
                         help="heavy-hitter fraction (local_dp, prefix_tree)")
    release.add_argument("--block-size", type=int, default=None,
                         help="elements per release epoch (continual mechanism)")
    release.add_argument("--param", action="append", default=[], metavar="KEY=VALUE",
                         help="extra mechanism parameter (repeatable; value parsed as JSON "
                              "when possible)")
    release.add_argument("--seed", type=int, default=None)
    release.add_argument("--out", default=None, help="output histogram JSON (stdout if omitted)")
    _add_format(release)

    merge = subparsers.add_parser("merge", help="privately release merged sketches")
    merge.add_argument("sketches", nargs="+",
                       help="sketch JSON files (v1 or v2), or framed streams "
                            "with --framed")
    merge.add_argument("--framed", action="store_true",
                       help="treat inputs as length-prefix framed streams "
                            "(repro pack output) and merge them frame by frame "
                            "without buffering")
    merge.add_argument("--epsilon", type=float, required=True)
    merge.add_argument("--delta", type=float, required=True)
    merge.add_argument("-k", type=int, default=None,
                       help="sketch size (required for JSON inputs; framed "
                            "streams default to their header's k)")
    merge.add_argument("--strategy", choices=[s.value for s in MergeStrategy],
                       default=MergeStrategy.TRUSTED_MERGED.value)
    merge.add_argument("--seed", type=int, default=None)
    merge.add_argument("--out", default=None, help="output histogram JSON (stdout if omitted)")
    _add_format(merge)

    pack = subparsers.add_parser(
        "pack", help="pack sketch JSON files into one framed stream")
    pack.add_argument("sketches", nargs="+", help="sketch JSON files (v1 or v2)")
    pack.add_argument("--out", required=True, help="output framed stream file")
    pack.add_argument("-k", type=int, default=None,
                      help="sketch size recorded in the stream header "
                           "(default: taken from the inputs when they agree)")

    serve = subparsers.add_parser(
        "serve", help="run the asyncio aggregation server (repro.net)")
    serve.add_argument("--listen", default="127.0.0.1:0",
                       help="endpoint to bind: HOST:PORT (:0 for an ephemeral "
                            "port) or unix:/path (default 127.0.0.1:0)")
    serve.add_argument("--epsilon", type=float, required=True)
    serve.add_argument("--delta", type=float, required=True)
    serve.add_argument("-k", type=int, default=None,
                       help="sketch size all sessions must agree on (default: "
                            "adopt the first session's declared k)")
    serve.add_argument("--releases", type=int, default=None,
                       help="exit after serving this many releases (default: "
                            "run until SIGINT/SIGTERM)")
    serve.add_argument("--drain-timeout", type=float, default=5.0,
                       help="seconds to wait for in-flight sessions on shutdown")
    serve.add_argument("--ready-file", default=None,
                       help="write the bound address to this file once listening "
                            "(lets scripts discover an ephemeral port)")
    serve.add_argument("--wal-dir", default=None,
                       help="write-ahead log directory: accepted frames are "
                            "spooled + fsynced before they are acked, and a "
                            "restart on the same directory replays committed "
                            "sessions bit-identically")
    serve.add_argument("--read-timeout", type=float, default=30.0,
                       help="per-read seconds before a stalling (slow-loris) "
                            "peer is rejected; 0 disables (default 30)")
    serve.add_argument("--accept-relays", action="store_true",
                       help="accept role=relay sessions (leaf aggregators "
                            "forwarding per-origin-session summary frames); "
                            "required to act as a relay tree's root")
    _add_hardening_flags(serve)
    _add_obs_flags(serve)

    relay = subparsers.add_parser(
        "relay",
        help="run a leaf aggregator that forwards committed sessions to an "
             "upstream root (repro.net.relay)")
    relay.add_argument("--listen", default="127.0.0.1:0",
                       help="endpoint to bind: HOST:PORT (:0 for an ephemeral "
                            "port) or unix:/path (default 127.0.0.1:0)")
    relay.add_argument("--upstream", required=True,
                       help="the root aggregator's endpoint (must run with "
                            "--accept-relays)")
    relay.add_argument("--epsilon", type=float, required=True)
    relay.add_argument("--delta", type=float, required=True)
    relay.add_argument("-k", type=int, default=None,
                       help="sketch size all sessions must agree on (default: "
                            "adopt the first session's declared k)")
    relay.add_argument("--ordinal", type=int, default=0,
                       help="this leaf's position among its siblings; it "
                            "prefixes every forwarded session's root ordinal, "
                            "so give each leaf a distinct one (default 0)")
    relay.add_argument("--forward-on", choices=("commit", "release"),
                       default="release",
                       help="when to push committed sessions upstream: "
                            "eagerly as each commits, or lazily when a "
                            "release is requested (default release)")
    relay.add_argument("--releases", type=int, default=None,
                       help="exit after proxying this many releases (default: "
                            "run until SIGINT/SIGTERM)")
    relay.add_argument("--drain-timeout", type=float, default=5.0,
                       help="seconds to wait for in-flight sessions on shutdown")
    relay.add_argument("--ready-file", default=None,
                       help="write the bound address to this file once listening")
    relay.add_argument("--wal-dir", default=None,
                       help="write-ahead log directory; also holds the "
                            "durable forward queue (wal-dir/forward), so a "
                            "leaf crash mid-forward re-pushes on restart — "
                            "crash safety needs a --wal-dir on both tiers")
    relay.add_argument("--read-timeout", type=float, default=30.0,
                       help="per-read seconds before a stalling (slow-loris) "
                            "peer is rejected; 0 disables (default 30)")
    relay.add_argument("--accept-relays", action="store_true",
                       help="also accept role=relay sessions, making this a "
                            "mid-tier of a deeper relay chain")
    relay.add_argument("--forward-max-elapsed", type=float, default=60.0,
                       help="total retry budget in seconds for each upstream "
                            "forward (default 60)")
    _add_hardening_flags(relay)
    _add_obs_flags(relay)
    relay.add_argument("--upstream-token", default=None,
                       help="session token this leaf presents to the upstream "
                            "in every forward/release HELLO (required when "
                            "the root runs --auth-token; the leaf-to-root "
                            "hop is a trust boundary)")

    stats = subparsers.add_parser(
        "stats",
        help="fetch and pretty-print an aggregation server's STATS counters")
    stats.add_argument("address", help="server endpoint (HOST:PORT or unix:/path)")
    stats.add_argument("--timeout", type=float, default=30.0)
    stats.add_argument("--retries", type=int, default=5,
                       help="connection attempts before giving up")
    stats.add_argument("--token", default=None,
                       help="session token (required when the server runs "
                            "--auth-token)")
    stats.add_argument("--json", action="store_true",
                       help="dump the raw STATS reply as JSON (the same dict "
                            "the console renders; external scrapers consume "
                            "this)")

    status = subparsers.add_parser(
        "status",
        help="live operator console over repeated STATS polls (repro.obs)")
    status.add_argument("address", help="server endpoint (HOST:PORT or unix:/path)")
    status.add_argument("--watch", action="store_true",
                        help="repaint continuously (plain-ANSI full-screen "
                             "refresh) until Ctrl-C; default is one frame")
    status.add_argument("--once", action="store_true",
                        help="print a single status frame and exit (the "
                             "default; explicit for scripts)")
    status.add_argument("--json", action="store_true",
                        help="with --once: dump the raw STATS reply as JSON "
                             "(shares the stats --json code path)")
    status.add_argument("--interval", type=float, default=2.0,
                        help="seconds between --watch polls (default 2)")
    status.add_argument("--iterations", type=int, default=None,
                        help="stop --watch after N repaints (default: until "
                             "Ctrl-C; tests and demos bound the loop)")
    status.add_argument("--timeout", type=float, default=30.0)
    status.add_argument("--retries", type=int, default=5)
    status.add_argument("--token", default=None,
                        help="session token (required when the server runs "
                             "--auth-token)")

    loadgen = subparsers.add_parser(
        "loadgen",
        help="simulate 10^4-10^6 clients against a flat server or a "
             "self-hosted relay tree and measure sustained throughput")
    loadgen.add_argument("--clients", type=int, default=None,
                         help="simulated client population (default 100000; "
                              "--quick: 10000)")
    loadgen.add_argument("--concurrency", type=int, default=128,
                         help="clients in flight at once (default 128)")
    loadgen.add_argument("--arrival", choices=("closed", "poisson", "uniform"),
                         default="closed",
                         help="arrival process: closed-loop back-to-back "
                              "(default), poisson gaps, or uniform gaps")
    loadgen.add_argument("--rate", type=float, default=1000.0,
                         help="arrivals/s for poisson/uniform (default 1000)")
    loadgen.add_argument("--exponent", type=float, default=1.2,
                         help="Zipf exponent of each client stream (default 1.2)")
    loadgen.add_argument("--stream-length", type=int, default=None,
                         help="items per simulated client stream (default "
                              "200; --quick: 50)")
    loadgen.add_argument("--universe", type=int, default=None,
                         help="Zipf universe size (default 10000; --quick: "
                              "1000)")
    loadgen.add_argument("--frames-per-client", type=int, default=1,
                         help="PUSH frames per client session (default 1)")
    loadgen.add_argument("--churn", type=float, default=0.0,
                         help="fraction of clients dying mid-push (default 0)")
    loadgen.add_argument("-k", type=int, default=64,
                         help="sketch size (default 64)")
    loadgen.add_argument("--seed", type=int, default=0,
                         help="harness RNG seed (payload pool + churn draws)")
    loadgen.add_argument("--releases", type=int, default=3,
                         help="release probes after the wave (default 3)")
    loadgen.add_argument("--timeout", type=float, default=30.0,
                         help="per-operation client timeout (default 30)")
    loadgen.add_argument("--to", default=None,
                         help="target an external server instead of "
                              "self-hosting (HOST:PORT or unix:/path)")
    loadgen.add_argument("--leaves", type=int, default=0,
                         help="self-host a relay tree with this many leaves "
                              "(default 0 = one flat server)")
    loadgen.add_argument("--depth", type=int, default=1,
                         help="relay tiers between leaves and root (default 1)")
    loadgen.add_argument("--quick", action="store_true",
                         help="CI smoke profile: 10^4 clients, shorter "
                              "streams, smaller universe (explicit flags "
                              "still win)")
    loadgen.add_argument("--json", action="store_true",
                         help="dump the full report as JSON")

    push = subparsers.add_parser(
        "push", help="push sketch exports to an aggregation server")
    push.add_argument("inputs", nargs="+",
                      help="framed streams (repro pack output) and/or sketch "
                           "JSON files (v1 or v2)")
    push.add_argument("--to", required=True, help="server endpoint "
                                                  "(HOST:PORT or unix:/path)")
    push.add_argument("--ordinal", type=int, default=None,
                      help="this client's position in the canonical release "
                           "order (distinct ordinals make releases "
                           "bit-reproducible under concurrency)")
    push.add_argument("-k", type=int, default=None,
                      help="sketch size to declare (default: the inputs' k)")
    push.add_argument("--timeout", type=float, default=30.0)
    push.add_argument("--retries", type=int, default=5,
                      help="connection attempts before giving up")
    push.add_argument("--resume", action="store_true",
                      help="survive crashes: retry the whole push with "
                           "jittered backoff, resuming from the committed "
                           "frame count a --wal-dir server reports (needs "
                           "--ordinal and a single framed input)")
    push.add_argument("--max-elapsed", type=float, default=60.0,
                      help="total retry budget in seconds for --resume "
                           "(default 60)")
    push.add_argument("--token", default=None,
                      help="session token (required when the server runs "
                           "--auth-token)")

    wal = subparsers.add_parser(
        "wal", help="inspect or replay an aggregation write-ahead log")
    wal_sub = wal.add_subparsers(dest="wal_command", required=True)
    wal_inspect = wal_sub.add_parser(
        "inspect", help="list the sessions a --wal-dir holds")
    wal_inspect.add_argument("wal_dir", help="the server's --wal-dir")
    wal_replay = wal_sub.add_parser(
        "replay",
        help="release the committed sessions of a --wal-dir offline "
             "(bit-identical to what a restarted server would release)")
    wal_replay.add_argument("wal_dir", help="the server's --wal-dir")
    wal_replay.add_argument("--epsilon", type=float, required=True)
    wal_replay.add_argument("--delta", type=float, required=True)
    wal_replay.add_argument("--seed", type=int, default=None)
    wal_replay.add_argument("--out", default=None,
                            help="output histogram JSON (stdout if omitted)")
    _add_format(wal_replay)

    request = subparsers.add_parser(
        "request-release",
        help="ask an aggregation server for the DP histogram of everything "
             "committed so far")
    request.add_argument("--to", required=True, help="server endpoint")
    request.add_argument("--seed", type=int, default=None)
    request.add_argument("--timeout", type=float, default=30.0)
    request.add_argument("--retries", type=int, default=5)
    request.add_argument("--token", default=None,
                         help="session token (required when the server runs "
                              "--auth-token)")
    request.add_argument("--out", default=None,
                         help="output histogram JSON (stdout if omitted)")
    _add_format(request)

    heavy = subparsers.add_parser("heavy-hitters", help="query heavy hitters from a histogram")
    heavy.add_argument("--histogram", required=True, help="released histogram JSON file")
    heavy.add_argument("--phi", type=float, required=True,
                       help="heavy-hitter fraction of the stream length")
    heavy.add_argument("--top", type=int, default=None, help="print only the top N")

    evaluate = subparsers.add_parser("evaluate",
                                     help="compare a released histogram with the exact counts")
    evaluate.add_argument("--histogram", required=True)
    evaluate.add_argument("--stream", required=True)

    return parser


# ---------------------------------------------------------------------------
# Subcommand implementations
# ---------------------------------------------------------------------------

def _cmd_list(args: argparse.Namespace) -> int:
    if getattr(args, "backends", False):
        from .kernels import kernel_info

        info = kernel_info()
        rows = []
        for name, provider in info["providers"].items():
            rows.append({
                "provider": name,
                "available": "yes" if provider["available"] else "no",
                "detail": (", ".join(provider["kernels"]) if provider["available"]
                           else (provider["error"] or "unavailable")),
            })
        rows.append({"provider": "python", "available": "yes",
                     "detail": "pure-python engines (always available)"})
        print(format_table(rows, title="compiled kernel providers"))
        print()
        env = f" (REPRO_KERNELS={info['env']})" if info["env"] else ""
        print(f"resolved backend: {info['backend']}{env}")
        for kernel, backend in info["kernels"].items():
            print(f"  {kernel}: {backend}")
        return 0
    if args.what in ("mechanisms", "all"):
        rows = []
        for name, description in list_mechanisms().items():
            entry = mechanism_entry(name)
            rows.append({"mechanism": name, "consumes": entry.consumes,
                         "description": description})
        print(format_table(rows, title="registered release mechanisms"))
    if args.what == "all":
        print()
    if args.what in ("sketches", "all"):
        rows = [{"sketch": name, "description": description}
                for name, description in list_sketches().items()]
        print(format_table(rows, title="registered sketches"))
    return 0


def _cmd_generate(args: argparse.Namespace) -> int:
    if args.dataset == "zipf":
        stream = zipf_stream(args.n, args.universe, exponent=args.exponent, rng=args.seed)
    elif args.dataset == "uniform":
        stream = uniform_stream(args.n, args.universe, rng=args.seed)
    else:
        dataset = load_dataset(args.dataset, n=args.n, rng=args.seed)
        if dataset.user_level:
            write_stream(args.out, dataset.stream, user_level=True)
            print(f"wrote {dataset.length} user records to {args.out}")
            return 0
        stream = dataset.stream
    count = write_stream(args.out, stream)
    print(f"wrote {count} elements to {args.out}")
    return 0


def _cmd_sketch(args: argparse.Namespace) -> int:
    restorable = args.sketch_type in ("misra_gries", "misra_gries_standard")
    if args.format == "v1" and not restorable:
        print(f"error: the v1 format only stores Misra-Gries sketches; "
              f"{args.sketch_type!r} needs --format v2", file=sys.stderr)
        return 2
    stream = read_stream(args.stream)
    sketch = make_sketch(args.sketch_type, k=args.k, depth=args.depth)
    sketch.update_all(stream)
    if restorable:
        save_sketch(sketch, args.out, format=args.format)
    else:
        # Non-MG sketches have no restorable full state; ship their counters
        # as a v2 envelope (readable by `repro release/merge`).
        from pathlib import Path

        from .api.wire import encode_counters

        target = Path(args.out)
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(json.dumps(encode_counters(sketch, k=args.k),
                                     indent=2, sort_keys=True),
                          encoding="utf-8")
    print(f"sketched {sketch.stream_length} elements with {args.sketch_type} "
          f"(k={args.k}) -> {args.out}")
    return 0


def _emit_histogram(histogram, out: Optional[str], format: str = "v2") -> None:
    if out:
        save_histogram(histogram, out, format=format)
        print(f"released {len(histogram)} elements -> {out}")
    else:
        if format == "v1":
            payload = histogram_to_dict(histogram)
        else:
            from .api.wire import encode_histogram

            payload = encode_histogram(histogram)
        json.dump(payload, sys.stdout, indent=2, sort_keys=True)
        print()


def _parse_params(pairs: Sequence[str]) -> Dict[str, Any]:
    params: Dict[str, Any] = {}
    for pair in pairs:
        key, separator, raw = pair.partition("=")
        if not separator or not key:
            raise ReproError(f"--param expects KEY=VALUE, got {pair!r}")
        try:
            params[key] = json.loads(raw)
        except json.JSONDecodeError:
            params[key] = raw
    return params


def _infer_k(payloads) -> Optional[int]:
    """The single sketch size the payloads agree on, else ``None`` (with a
    uniform ``error:`` line naming what they actually declare)."""
    declared = sorted({payload.k for payload in payloads if payload.k is not None})
    if len(declared) == 1:
        return declared[0]
    print(f"error: pass -k (the sketch files declare "
          f"k={declared if declared else 'nothing'})", file=sys.stderr)
    return None


def _release_params(args: argparse.Namespace) -> Dict[str, Any]:
    params: Dict[str, Any] = {"epsilon": args.epsilon}
    if args.delta is not None:
        params["delta"] = args.delta
    if args.universe is not None:
        params["universe_size"] = args.universe
    if args.k is not None:
        params["k"] = args.k
    if args.max_contribution is not None:
        params["max_contribution"] = args.max_contribution
    if args.noise is not None:
        params["noise"] = args.noise
    if args.phi is not None:
        params["phi"] = args.phi
    if args.block_size is not None:
        params["block_size"] = args.block_size
    params.update(_parse_params(args.param))
    return params


def _cmd_release(args: argparse.Namespace) -> int:
    mechanism = args.mechanism
    if mechanism is None:
        # Back-compat default: Algorithm 2 when delta is given, the pure-DP
        # release otherwise (which needs an explicit universe).
        mechanism = "pmg" if args.delta is not None else "pure_dp"
    params = _release_params(args)
    consumes = mechanism_entry(mechanism).consumes
    if mechanism == "pure_dp" and args.universe is None:
        print("error: the pure-DP release requires --universe", file=sys.stderr)
        return 2

    if consumes in ("stream", "user_stream", "checkpointed_stream"):
        if args.stream is None:
            print(f"error: mechanism {mechanism!r} releases a raw stream; pass --stream "
                  f"(and --user-level for user-level input)", file=sys.stderr)
            return 2
        user_level = consumes == "user_stream" or args.user_level
        stream = read_stream(args.stream, user_level=user_level)
        pipeline = Pipeline(mechanism=mechanism, **params).fit(stream)
    else:
        if not args.sketch:
            print(f"error: mechanism {mechanism!r} releases a sketch; pass --sketch",
                  file=sys.stderr)
            return 2
        payloads = [load_payload(path) for path in args.sketch]
        if consumes == "sketch_list":
            if "k" not in params:
                # The merged release is calibrated to k; take it from the
                # envelopes when they agree rather than guessing.
                inferred = _infer_k(payloads)
                if inferred is None:
                    return 2
                params["k"] = inferred
            pipeline = Pipeline(mechanism=mechanism, **params)
            for payload in payloads:
                pipeline.add_sketch(payload)
        else:
            if len(payloads) > 1:
                print(f"error: mechanism {mechanism!r} releases a single sketch, "
                      f"got {len(payloads)}", file=sys.stderr)
                return 2
            pipeline = Pipeline.from_sketch(payloads[0], mechanism=mechanism, **params)
    histogram = pipeline.release(rng=args.seed)
    _emit_histogram(histogram, args.out, args.format)
    return 0


def _cmd_merge(args: argparse.Namespace) -> int:
    if args.framed:
        return _cmd_merge_framed(args)
    k = args.k
    payloads = [load_payload(path) for path in args.sketches]
    if k is None:
        k = _infer_k(payloads)
        if k is None:
            return 2
    # One dispatch path with `release --mechanism merged`: the registered
    # adapter keeps all-columnar v2 inputs on the merge_many_arrays wire
    # route and materializes per-sketch state otherwise.
    pipeline = Pipeline(mechanism={"name": "merged", "strategy": args.strategy},
                        k=k, epsilon=args.epsilon, delta=args.delta)
    for payload in payloads:
        pipeline.add_sketch(payload)
    histogram = pipeline.release(rng=args.seed)
    _emit_histogram(histogram, args.out, args.format)
    return 0


def _cmd_merge_framed(args: argparse.Namespace) -> int:
    # Streaming aggregation: fold each framed file one frame at a time
    # through its own StreamingMerger — nothing beyond the current frame and
    # the <= k-counter accumulators is ever resident — then combine the
    # per-file summaries in argument order.  This two-level fold is exactly
    # what the aggregation server performs over its client sessions, so
    # `repro serve` + N `repro push` clients + `repro request-release` is
    # bit-identical to this command over the same files and seed.
    from pathlib import Path

    from .api.framing import FrameReader, StreamingMerger, combine_mergers
    from .core.merging import PrivateMergedRelease

    if MergeStrategy(args.strategy) is not MergeStrategy.TRUSTED_MERGED:
        print(f"error: --framed streams the {MergeStrategy.TRUSTED_MERGED.value} "
              f"strategy; {args.strategy!r} needs the buffered `repro merge`",
              file=sys.stderr)
        return 2
    parts = []
    k = args.k
    for path in args.sketches:
        with Path(path).open("rb") as fileobj:
            reader = FrameReader(fileobj)
            declared = reader.header.k
            if k is None:
                k = declared
            if k is None:
                print(f"error: {path} declares no k in its header; pass -k",
                      file=sys.stderr)
                return 2
            if args.k is None and declared is not None and declared != k:
                # Mirror the buffered path: disagreeing declared sizes need
                # an explicit -k rather than a silent truncation to the
                # first stream's k.
                print(f"error: {path} declares k={declared} but the merge "
                      f"is folding at k={k}; pass -k to override",
                      file=sys.stderr)
                return 2
            parts.append(StreamingMerger(k).consume(reader))
    merger = combine_mergers(parts, k)
    mechanism = PrivateMergedRelease(epsilon=args.epsilon, delta=args.delta, k=k,
                                     strategy=MergeStrategy.TRUSTED_MERGED)
    histogram = merger.release(mechanism, rng=args.seed)
    _emit_histogram(histogram, args.out, args.format)
    return 0


def _cmd_pack(args: argparse.Namespace) -> int:
    from .api.framing import write_frames

    payloads = [load_payload(path) for path in args.sketches]
    k = args.k
    if k is None:
        k = _infer_k(payloads)
        if k is None:
            return 2
    count = write_frames(args.out, payloads, k=k)
    print(f"packed {count} sketch export(s) (k={k}) -> {args.out}")
    return 0


def _serve_loop(args: argparse.Namespace, make_server, banner: str) -> int:
    """Shared serve/relay driver: bind, announce, wait, drain, report."""
    import asyncio
    import signal
    from pathlib import Path

    async def _serve() -> int:
        server = make_server()
        await server.start(args.listen)
        if args.ready_file:
            ready = Path(args.ready_file)
            ready.parent.mkdir(parents=True, exist_ok=True)
            ready.write_text(server.address + "\n", encoding="utf-8")
        print(f"{banner} listening on {server.address} "
              f"(epsilon={args.epsilon}, delta={args.delta}, k={args.k})",
              flush=True)
        stop = asyncio.Event()
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(signum, stop.set)
            except (NotImplementedError, RuntimeError):
                pass
        waiters = [asyncio.ensure_future(stop.wait())]
        if args.releases is not None:
            waiters.append(asyncio.ensure_future(server.wait_release_limit()))
        try:
            await asyncio.wait(waiters, return_when=asyncio.FIRST_COMPLETED)
        finally:
            for waiter in waiters:
                waiter.cancel()
            await server.aclose(drain=True)
        stats = server.stats()
        print(f"server drained: {stats['sessions_committed']} committed "
              f"session(s), {stats['frames']} frame(s), "
              f"{stats['releases']} release(s), "
              f"{stats['sessions_rejected']} rejected", flush=True)
        return 0

    try:
        return asyncio.run(_serve())
    except KeyboardInterrupt:
        return 0


def _hardening_kwargs(args: argparse.Namespace) -> Optional[Dict[str, Any]]:
    """Budget/auth/quota server kwargs from the shared hardening flags.

    Returns ``None`` (after printing the error) on inconsistent flags.
    """
    from .dp.accounting import PrivacyParams

    budget = None
    if args.budget_epsilon is not None:
        # Epsilon-only budget: leave the delta dimension unconstrained
        # (just below the vacuous line) instead of 0.0, which would refuse
        # even the first approximate-DP release.
        delta = (args.budget_delta if args.budget_delta is not None
                 else 1.0 - 1e-12)
        budget = PrivacyParams(epsilon=args.budget_epsilon, delta=delta)
    elif args.budget_delta is not None:
        print("error: --budget-delta needs --budget-epsilon", file=sys.stderr)
        return None
    if args.composition == "advanced" and (
            args.budget_delta is None or args.budget_delta <= 0):
        # An implicit near-1 delta would hand the advanced bound a junk
        # delta' slack of ~0.5, so advanced demands the real number.
        print("error: --composition advanced needs an explicit "
              "--budget-delta > 0 (the delta' slack defaults to half of it)",
              file=sys.stderr)
        return None
    return {
        "budget": budget,
        "composition": args.composition,
        "auth_token": args.auth_token,
        "max_session_frames": args.max_session_frames,
        "max_session_bytes": args.max_session_bytes,
        "max_session_sketches": args.max_session_sketches,
    }


def _obs_kwargs(args: argparse.Namespace) -> Dict[str, Any]:
    """Server kwargs from the shared observability flags.

    A ``--log-json`` file handle stays open for the server's whole life
    (the process exit closes it); ``-`` streams spans to stderr so they
    interleave with the banner instead of polluting stdout.
    """
    log_json = None
    if args.log_json == "-":
        log_json = sys.stderr
    elif args.log_json:
        log_json = open(args.log_json, "a", encoding="utf-8")
    return {"metrics": not args.no_metrics, "log_json": log_json}


def _cmd_serve(args: argparse.Namespace) -> int:
    from .net import AggregatorServer

    hardening = _hardening_kwargs(args)
    if hardening is None:
        return 2
    obs = _obs_kwargs(args)

    def make_server():
        read_timeout = args.read_timeout if args.read_timeout > 0 else None
        return AggregatorServer(epsilon=args.epsilon, delta=args.delta,
                                k=args.k, drain_timeout=args.drain_timeout,
                                max_releases=args.releases,
                                wal_dir=args.wal_dir,
                                read_timeout=read_timeout,
                                accept_relays=args.accept_relays,
                                **hardening, **obs)

    return _serve_loop(args, make_server, "aggregation server")


def _cmd_relay(args: argparse.Namespace) -> int:
    from .net import RelayAggregatorServer

    hardening = _hardening_kwargs(args)
    if hardening is None:
        return 2
    obs = _obs_kwargs(args)

    def make_server():
        read_timeout = args.read_timeout if args.read_timeout > 0 else None
        return RelayAggregatorServer(epsilon=args.epsilon, delta=args.delta,
                                     k=args.k, upstream=args.upstream,
                                     relay_ordinal=args.ordinal,
                                     forward_on=args.forward_on,
                                     forward_max_elapsed=args.forward_max_elapsed,
                                     upstream_token=args.upstream_token,
                                     drain_timeout=args.drain_timeout,
                                     max_releases=args.releases,
                                     wal_dir=args.wal_dir,
                                     read_timeout=read_timeout,
                                     accept_relays=args.accept_relays,
                                     **hardening, **obs)

    return _serve_loop(args, make_server,
                       f"relay leaf {args.ordinal} (upstream {args.upstream})")


def _cmd_stats(args: argparse.Namespace) -> int:
    from .obs import console

    stats = console.poll_stats(args.address, token=args.token,
                               timeout=args.timeout, retries=args.retries)
    if args.json:
        print(json.dumps(stats, indent=2, sort_keys=True, default=str))
        return 0
    print(console.render_stats(stats, args.address))
    return 0


def _cmd_status(args: argparse.Namespace) -> int:
    from .obs import console

    if args.watch and not args.once:
        return console.watch(args.address, interval=args.interval,
                             token=args.token, timeout=args.timeout,
                             retries=args.retries,
                             iterations=args.iterations)
    stats = console.poll_stats(args.address, token=args.token,
                               timeout=args.timeout, retries=args.retries)
    if args.json:
        print(json.dumps(stats, indent=2, sort_keys=True, default=str))
        return 0
    print(console.render_status(stats, args.address))
    return 0


def _cmd_loadgen(args: argparse.Namespace) -> int:
    from .obs.loadgen import LoadgenConfig, run_loadgen

    quick = args.quick
    config = LoadgenConfig(
        clients=(args.clients if args.clients is not None
                 else (10_000 if quick else 100_000)),
        concurrency=args.concurrency,
        arrival=args.arrival,
        rate=args.rate,
        exponent=args.exponent,
        stream_length=(args.stream_length if args.stream_length is not None
                       else (50 if quick else 200)),
        universe=(args.universe if args.universe is not None
                  else (1_000 if quick else 10_000)),
        frames_per_client=args.frames_per_client,
        churn=args.churn,
        k=args.k,
        seed=args.seed,
        releases=args.releases,
        timeout=args.timeout,
        to=args.to,
        leaves=args.leaves,
        depth=args.depth,
    )
    report = run_loadgen(config)
    if args.json:
        print(json.dumps(report.as_dict(), indent=2, sort_keys=True,
                         default=str))
        return 0 if not report.clients_failed else 1
    target = (args.to if args.to is not None
              else (f"self-hosted tree ({config.leaves} leaves, depth "
                    f"{config.depth})" if config.leaves
                    else "self-hosted flat server"))
    overview = [{
        "target": target,
        "clients": config.clients,
        "concurrency": config.concurrency,
        "arrival": config.arrival,
        "churn": f"{config.churn:.1%}",
        "ok": report.clients_ok,
        "churned": report.clients_churned,
        "failed": report.clients_failed,
    }]
    print(format_table(overview, title="load wave"))
    print()
    throughput = [{
        "elapsed (s)": f"{report.elapsed_s:.2f}",
        "frames": report.frames_total,
        "frames/s": f"{report.sustained_frames_per_sec:.0f}",
        "clients/s": f"{report.sustained_clients_per_sec:.0f}",
        "payload bytes": report.bytes_total,
    }]
    print(format_table(throughput, title="sustained throughput"))
    if report.latencies:
        print()
        rows = []
        for name in sorted(report.latencies):
            summary = report.latencies[name]
            if not summary.get("count"):
                continue
            rows.append({
                "op": name,
                "count": summary["count"],
                "p50": f"{summary['p50'] * 1e3:.2f} ms",
                "p90": f"{summary['p90'] * 1e3:.2f} ms",
                "p99": f"{summary['p99'] * 1e3:.2f} ms",
                "max": f"{summary['max'] * 1e3:.2f} ms",
            })
        if rows:
            print(format_table(rows, title="client-side latency"))
    if report.errors:
        print()
        print(f"{len(report.errors)} error(s); first: {report.errors[0]}",
              file=sys.stderr)
    return 0 if not report.clients_failed else 1


def _cmd_push(args: argparse.Namespace) -> int:
    import asyncio
    from pathlib import Path

    from .api.framing import MAGIC, FrameReader
    from .net import AggregatorClient

    # Probe every input up front so the session can declare the k the
    # exports actually use — the server then rejects a disagreeing
    # aggregation at HELLO time instead of folding miscalibrated sketches.
    inputs = []  # (path, is_framed, payload-or-None)
    declared = set()
    for path in map(Path, args.inputs):
        with path.open("rb") as probe:
            framed = probe.read(len(MAGIC)) == MAGIC
        if framed:
            with path.open("rb") as fileobj:
                header_k = FrameReader(fileobj).header.k
            if header_k is not None:
                declared.add(header_k)
            inputs.append((path, True, None))
        else:
            payload = load_payload(path)
            if payload.k is not None:
                declared.add(payload.k)
            inputs.append((path, False, payload))
    k = args.k
    if k is None:
        if len(declared) > 1:
            print(f"error: inputs declare k={sorted(declared)}; pass -k",
                  file=sys.stderr)
            return 2
        k = declared.pop() if declared else None

    if args.resume:
        from .net import push_file_resilient

        if args.ordinal is None:
            print("error: --resume needs --ordinal (the durable session "
                  "identity the server resumes by)", file=sys.stderr)
            return 2
        if len(inputs) != 1 or not inputs[0][1]:
            print("error: --resume pushes exactly one framed (repro pack) "
                  "input", file=sys.stderr)
            return 2
        total = push_file_resilient(args.to, inputs[0][0], ordinal=args.ordinal,
                                    k=k, auth_token=args.token,
                                    timeout=args.timeout,
                                    connect_retries=args.retries,
                                    max_elapsed=args.max_elapsed)
        print(f"pushed {total} sketch export(s) (k={k}) -> {args.to} "
              "(durably committed)")
        return 0

    async def _push():
        async with AggregatorClient(args.to, k=k, ordinal=args.ordinal,
                                    auth_token=args.token,
                                    timeout=args.timeout,
                                    connect_retries=args.retries) as client:
            total = 0
            for path, framed, payload in inputs:
                if framed:
                    total += await client.push_file(path)
                else:
                    total += await client.push([payload])
            return total, client.server_k

    total, agreed = asyncio.run(_push())
    print(f"pushed {total} sketch export(s) (k={agreed}) -> {args.to}")
    return 0


def _cmd_wal(args: argparse.Namespace) -> int:
    from .api.wire import payload_to_histogram
    from .exceptions import RemoteError
    from .net import SessionWal
    from .net.server import AggregatorServer

    if args.wal_command == "inspect":
        from .net import is_reserved_record

        wal = SessionWal(args.wal_dir)
        try:
            records = wal.store.records()
            reserved = [r for r in records if is_reserved_record(r)]
            records = [r for r in records if not is_reserved_record(r)]
            if not records and not reserved:
                print(f"{args.wal_dir}: no sessions recorded")
                return 0
            usage = wal.spool_usage()
            print(f"{args.wal_dir}: {len(records)} session(s), "
                  f"{usage['spools']} spool file(s), "
                  f"{usage['bytes']} byte(s) on disk")
            for record in reserved:
                # The privacy accountant's spend row: releases charged under
                # the recorded composition mode, no spool.
                print(f"  {record.session_id}: "
                      f"{record.committed_frames} release(s) charged "
                      f"(composition={record.client or '-'})")
            for record in records:
                spool = wal.spool_path(record)
                size = spool.stat().st_size if spool.exists() else 0
                state = (f"committed seq={record.commit_seq}"
                         if record.commit_seq is not None else "open")
                tail = size - record.committed_bytes
                print(f"  {record.session_id}: ordinal={record.ordinal} "
                      f"client={record.client or '-'} k={record.k} "
                      f"frames={record.committed_frames} "
                      f"bytes={record.committed_bytes} {state} "
                      f"spool={record.spool}"
                      + (f" (+{tail}B uncommitted tail)" if tail > 0 else ""))
            return 0
        finally:
            wal.close()

    # replay: run the exact recovery + release path a restarted server uses,
    # minus the socket — guaranteeing bit-identical output by construction.
    server = AggregatorServer(epsilon=args.epsilon, delta=args.delta,
                              wal_dir=args.wal_dir)
    try:
        server._recover_from_wal()
        envelope = server.perform_release(args.seed)
    except RemoteError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    finally:
        server.wal.close()
    histogram = payload_to_histogram(envelope)
    _emit_histogram(histogram, args.out, args.format)
    return 0


def _cmd_request_release(args: argparse.Namespace) -> int:
    from .net import request_release

    histogram = request_release(args.to, seed=args.seed,
                                auth_token=args.token, timeout=args.timeout,
                                connect_retries=args.retries)
    _emit_histogram(histogram, args.out, args.format)
    return 0


def _cmd_heavy_hitters(args: argparse.Namespace) -> int:
    histogram = load_histogram(args.histogram)
    length = histogram.metadata.stream_length
    cutoff = args.phi * length
    heavy = histogram.heavy_hitters(cutoff)
    ranked = sorted(heavy.items(), key=lambda kv: -kv[1])
    if args.top is not None:
        ranked = ranked[:args.top]
    rows = [{"element": key, "noisy count": value} for key, value in ranked]
    print(format_table(rows, title=f"{args.phi:.4g}-heavy hitters (cutoff {cutoff:.1f})"))
    return 0


def _cmd_evaluate(args: argparse.Namespace) -> int:
    histogram = load_histogram(args.histogram)
    stream = read_stream(args.stream)
    truth = ExactCounter.from_stream(stream).counters()
    summary = summarize_errors(histogram, truth)
    rows = [summary.as_dict()]
    print(format_table(rows, title=f"error of {args.histogram} against {args.stream}"))
    return 0


_HANDLERS = {
    "list": _cmd_list,
    "generate": _cmd_generate,
    "sketch": _cmd_sketch,
    "release": _cmd_release,
    "merge": _cmd_merge,
    "pack": _cmd_pack,
    "serve": _cmd_serve,
    "relay": _cmd_relay,
    "stats": _cmd_stats,
    "status": _cmd_status,
    "loadgen": _cmd_loadgen,
    "push": _cmd_push,
    "wal": _cmd_wal,
    "request-release": _cmd_request_release,
    "heavy-hitters": _cmd_heavy_hitters,
    "evaluate": _cmd_evaluate,
}


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    handler = _HANDLERS[args.command]
    try:
        return handler(args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    except FileNotFoundError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
