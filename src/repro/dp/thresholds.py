"""Threshold formulas used by the paper's mechanisms.

Thresholding (dropping noisy counts below a cut-off) is what lets the
mechanisms add noise only to the keys actually stored in the sketch while
hiding, with probability 1 - delta, the small set of keys on which sketches
for neighbouring streams disagree.
"""

from __future__ import annotations

import math

from .._validation import check_delta, check_epsilon, check_positive_int
from ..exceptions import CalibrationError
from .distributions import gaussian_quantile


def pmg_threshold(epsilon: float, delta: float) -> float:
    """Threshold of Algorithm 2 (Private Misra-Gries): ``1 + 2 ln(3/delta)/epsilon``.

    Counters whose noisy value falls below this threshold are dropped.  The
    constant 3 comes from the union bound over the at most 6 noise samples
    that can push a differing key above the threshold (Lemma 11).
    """
    eps = check_epsilon(epsilon)
    d = check_delta(delta)
    return 1.0 + 2.0 * math.log(3.0 / d) / eps


def pmg_threshold_standard_sketch(epsilon: float, delta: float, k: int) -> float:
    """Threshold for releasing a *standard* MG sketch (Section 5.1).

    Standard implementations evict keys as soon as their counter reaches zero,
    so neighbouring sketches can disagree on up to ``k`` keys each holding a
    count of 1.  Increasing the threshold to ``1 + 2 ln((k+1)/(2 delta)) /
    epsilon`` bounds the probability of outputting any of them by delta.
    """
    eps = check_epsilon(epsilon)
    d = check_delta(delta)
    size = check_positive_int(k, "k")
    return 1.0 + 2.0 * math.log((size + 1.0) / (2.0 * d)) / eps


def geometric_pmg_threshold(epsilon: float, delta: float) -> float:
    """Threshold for Algorithm 2 with two-sided geometric noise (Section 5.2).

    The paper states the proof of Lemma 11 goes through for the Geometric
    mechanism of Ghosh et al. when the threshold is raised to
    ``1 + 2 * ceil(ln(6 e^eps / ((e^eps + 1) delta)) / eps)``.
    """
    eps = check_epsilon(epsilon)
    d = check_delta(delta)
    inner = math.log(6.0 * math.exp(eps) / ((math.exp(eps) + 1.0) * d)) / eps
    return 1.0 + 2.0 * math.ceil(inner)


def pure_dp_noise_scale(epsilon: float, sensitivity: float = 2.0) -> float:
    """Laplace scale for the pure-DP release of Section 6.

    After the sensitivity-reduction post-processing (Algorithm 3) the sketch
    has l1-sensitivity < 2, so Laplace(2/epsilon) noise added to every
    universe element gives epsilon-DP.
    """
    eps = check_epsilon(epsilon)
    if sensitivity <= 0:
        raise CalibrationError(f"sensitivity must be positive, got {sensitivity}")
    return sensitivity / eps


def stability_histogram_threshold(epsilon: float, delta: float,
                                  sensitivity: float = 1.0) -> float:
    """Threshold of the Korolova et al. style stability histogram.

    Adding Laplace(sensitivity/epsilon) noise to the non-zero counts of an
    exact histogram and removing counts below
    ``sensitivity + sensitivity * ln(1/delta) / epsilon`` yields
    (epsilon, delta)-DP when a user changes a single count by at most
    ``sensitivity``.
    """
    eps = check_epsilon(epsilon)
    d = check_delta(delta)
    if sensitivity <= 0:
        raise CalibrationError(f"sensitivity must be positive, got {sensitivity}")
    return sensitivity + sensitivity * math.log(1.0 / d) / eps


def gshm_threshold(sigma: float, delta: float, l: int) -> float:
    """The loose GSHM threshold ``tau = sqrt(2 ln(2 l / delta)) * sigma`` (Lemma 24)."""
    d = check_delta(delta)
    count = check_positive_int(l, "l")
    if sigma <= 0:
        raise CalibrationError(f"sigma must be positive, got {sigma}")
    return math.sqrt(2.0 * math.log(2.0 * count / d)) * sigma


def gshm_loose_parameters(epsilon: float, delta: float, l: int) -> tuple[float, float]:
    """Loose (sigma, tau) for the Gaussian Sparse Histogram Mechanism (Lemma 24).

    ``sigma = sqrt(l * 2 ln(2.5/delta)) / epsilon`` and
    ``tau = sqrt(2 ln(2 l / delta)) * sigma``.  Valid for ``epsilon < 1``; the
    exact calibration of Theorem 23 (see :mod:`repro.core.gshm`) is tighter
    and should be preferred in deployments.
    """
    eps = check_epsilon(epsilon)
    d = check_delta(delta)
    count = check_positive_int(l, "l")
    sigma = math.sqrt(count * 2.0 * math.log(2.5 / d)) / eps
    tau = gshm_threshold(sigma, d, count)
    return sigma, tau


def gaussian_tail_bound(sigma: float, count: int, beta: float) -> float:
    """Value exceeded by the max of ``count`` N(0, sigma^2) samples w.p. <= beta."""
    if count <= 0:
        return 0.0
    if sigma <= 0:
        raise CalibrationError(f"sigma must be positive, got {sigma}")
    b = check_delta(beta, allow_zero=False)
    return sigma * abs(gaussian_quantile(1.0 - b / (2.0 * count)))
