"""Privacy accounting: parameters, composition and group privacy.

The paper uses three accounting facts:

* basic composition of (epsilon, delta) guarantees across releases (used when
  merging with an untrusted aggregator, Section 7);
* group privacy (Lemma 19): an (epsilon, delta)-DP mechanism for add/remove
  neighbouring streams is (m*epsilon, m*e^(m*epsilon)*delta)-DP for streams
  differing in up to m elements;
* the inverse direction (Lemma 20): to obtain a target (epsilon', delta') at
  user level with contributions of size m, run the element-level mechanism
  with epsilon = epsilon'/m and delta = delta' / (m * e^(epsilon')).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Sequence

from .._validation import check_delta, check_epsilon, check_positive_int
from ..exceptions import PrivacyParameterError, VacuousGuaranteeError


@dataclass(frozen=True)
class PrivacyParams:
    """A pair of differential-privacy parameters.

    ``delta == 0`` encodes pure epsilon-DP.
    """

    epsilon: float
    delta: float = 0.0

    def __post_init__(self) -> None:
        check_epsilon(self.epsilon)
        check_delta(self.delta, allow_zero=True)

    @property
    def is_pure(self) -> bool:
        """True when the guarantee is pure epsilon-DP (delta == 0)."""
        return self.delta == 0.0

    def scaled_for_group(self, group_size: int) -> "PrivacyParams":
        """Parameters satisfied for inputs differing in ``group_size`` elements."""
        return group_privacy(self, group_size)


def compose_basic(params: Iterable[PrivacyParams]) -> PrivacyParams:
    """Basic (sequential) composition: epsilons and deltas add up."""
    total_epsilon = 0.0
    total_delta = 0.0
    count = 0
    for p in params:
        total_epsilon += p.epsilon
        total_delta += p.delta
        count += 1
    if count == 0:
        raise PrivacyParameterError("compose_basic requires at least one guarantee")
    if total_delta >= 1.0:
        raise VacuousGuaranteeError(
            f"basic composition of {count} guarantees gives "
            f"delta={total_delta:.6g} >= 1: a vacuous guarantee",
            epsilon=total_epsilon, delta=total_delta)
    return PrivacyParams(epsilon=total_epsilon, delta=total_delta)


def compose_adaptive(epsilon: float, delta: float, rounds: int,
                     delta_prime: float) -> PrivacyParams:
    """Advanced composition (Dwork & Roth, Theorem 3.20).

    Running ``rounds`` adaptive (epsilon, delta)-DP mechanisms satisfies
    ``(epsilon', rounds*delta + delta_prime)``-DP with
    ``epsilon' = sqrt(2 rounds ln(1/delta')) epsilon + rounds epsilon (e^epsilon - 1)``.

    Raises :class:`VacuousGuaranteeError` when the composed delta reaches 1,
    or when ``e^epsilon`` overflows the float range (an epsilon too large to
    represent is no usable guarantee either).
    """
    eps = check_epsilon(epsilon)
    d = check_delta(delta, allow_zero=True)
    dp = check_delta(delta_prime)
    k = check_positive_int(rounds, "rounds")
    delta_total = k * d + dp
    if delta_total >= 1.0:
        raise VacuousGuaranteeError(
            f"advanced composition over {k} rounds gives "
            f"delta={delta_total:.6g} >= 1: a vacuous guarantee",
            epsilon=math.inf, delta=delta_total)
    try:
        eps_total = (math.sqrt(2.0 * k * math.log(1.0 / dp)) * eps
                     + k * eps * (math.exp(eps) - 1.0))
    except OverflowError:
        raise VacuousGuaranteeError(
            f"advanced composition over {k} rounds at epsilon={eps:.6g} "
            f"overflows the float range: no representable guarantee",
            epsilon=math.inf, delta=delta_total) from None
    return PrivacyParams(epsilon=eps_total, delta=delta_total)


def group_privacy(params: PrivacyParams, group_size: int) -> PrivacyParams:
    """Group privacy (Lemma 19).

    If a mechanism is (epsilon, delta)-DP for streams differing in one
    element, it is (m*epsilon, m*e^(m*epsilon)*delta)-DP for streams differing
    in up to ``m = group_size`` elements.

    Pure DP stays pure (``delta == 0`` maps to exactly ``(m*epsilon, 0)``
    regardless of how large ``m*epsilon`` grows).  For approximate DP the
    group delta blows up as ``e^(m*epsilon)``; once it reaches 1 — including
    when ``e^(m*epsilon)`` overflows the float range — the result is a
    vacuous guarantee and :class:`VacuousGuaranteeError` is raised.
    """
    m = check_positive_int(group_size, "group_size")
    epsilon = m * params.epsilon
    if params.delta == 0.0:
        return PrivacyParams(epsilon=epsilon, delta=0.0)
    try:
        delta = m * math.exp(m * params.epsilon) * params.delta
    except OverflowError:
        delta = math.inf
    if delta >= 1.0:
        raise VacuousGuaranteeError(
            f"group privacy at group_size={m} gives delta={delta:.6g} >= 1: "
            f"a vacuous guarantee",
            epsilon=epsilon, delta=delta)
    return PrivacyParams(epsilon=epsilon, delta=delta)


def user_level_parameters(target_epsilon: float, target_delta: float,
                          max_contribution: int) -> PrivacyParams:
    """Element-level parameters that give a user-level target (Lemma 20).

    To release ``PMG`` over the flattened stream with user-level
    (epsilon', delta')-DP when each user contributes at most
    ``max_contribution`` elements, run it with ``epsilon = epsilon' / m`` and
    ``delta = delta' / (m * e^(epsilon'))``.
    """
    eps_prime = check_epsilon(target_epsilon)
    delta_prime = check_delta(target_delta)
    m = check_positive_int(max_contribution, "max_contribution")
    epsilon = eps_prime / m
    delta = delta_prime / (m * math.exp(eps_prime))
    return PrivacyParams(epsilon=epsilon, delta=delta)


def verify_group_privacy_roundtrip(target_epsilon: float, target_delta: float,
                                   max_contribution: int) -> bool:
    """Check that Lemma 20 parameters recover the target under Lemma 19.

    Mostly useful in tests: applying :func:`group_privacy` with
    ``max_contribution`` to the output of :func:`user_level_parameters`
    must give back guarantees at least as strong as the target.
    """
    element_level = user_level_parameters(target_epsilon, target_delta, max_contribution)
    recovered = group_privacy(element_level, max_contribution)
    eps_ok = recovered.epsilon <= target_epsilon * (1.0 + 1e-12)
    delta_ok = recovered.delta <= target_delta * (1.0 + 1e-9)
    return eps_ok and delta_ok


def total_budget_for_merges(per_sketch: PrivacyParams, num_sketches: int,
                            streams_disjoint: bool = True) -> PrivacyParams:
    """Privacy guarantee when releasing ``num_sketches`` noisy sketches.

    With an untrusted aggregator each stream's sketch is released separately.
    When the streams are disjoint (each user appears in exactly one stream, as
    in Section 7), parallel composition applies and the overall guarantee is
    the per-sketch guarantee.  Otherwise basic composition applies.
    """
    count = check_positive_int(num_sketches, "num_sketches")
    if streams_disjoint:
        return per_sketch
    return compose_basic([per_sketch] * count)
