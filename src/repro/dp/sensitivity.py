"""Sensitivity tooling for sketches over neighbouring streams.

The paper's analysis is all about the structure of the difference between the
sketches computed on neighbouring streams (Lemma 8, Lemma 16, Lemma 17,
Lemma 25, Lemma 27).  This module provides:

* distance functions between sketch outputs viewed as sparse vectors;
* generation of all (or a sample of) neighbouring streams obtained by
  deleting one element / one user from a stream;
* empirical sensitivity estimation for an arbitrary "stream -> dict" function,
  used both in tests and in the sensitivity benchmarks (experiment E4).
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass
from typing import Callable, Dict, Hashable, Iterable, Iterator, List, Mapping, Optional, Sequence

import numpy as np

from ..exceptions import ParameterError
from .rng import RandomState, ensure_rng

SketchOutput = Mapping[Hashable, float]
SketchFunction = Callable[[Sequence], Dict[Hashable, float]]


@dataclass(frozen=True)
class NeighbouringPair:
    """A pair of neighbouring streams together with the deletion index."""

    stream: tuple
    neighbour: tuple
    removed_index: int

    @property
    def removed_element(self):
        """The element (or user set) present in ``stream`` but not ``neighbour``."""
        return self.stream[self.removed_index]


def counter_difference(first: SketchOutput, second: SketchOutput) -> Dict[Hashable, float]:
    """Sparse difference ``first - second`` over the union of keys.

    Keys missing from a sketch implicitly have value 0 (as in the paper).
    Only keys where the difference is non-zero are returned.
    """
    keys = set(first) | set(second)
    diff = {}
    for key in keys:
        delta = float(first.get(key, 0.0)) - float(second.get(key, 0.0))
        if delta != 0.0:
            diff[key] = delta
    return diff


def l1_distance(first: SketchOutput, second: SketchOutput) -> float:
    """l1 distance between two sparse sketch outputs."""
    return float(sum(abs(v) for v in counter_difference(first, second).values()))


def l2_distance(first: SketchOutput, second: SketchOutput) -> float:
    """l2 distance between two sparse sketch outputs."""
    return math.sqrt(sum(v * v for v in counter_difference(first, second).values()))


def linf_distance(first: SketchOutput, second: SketchOutput) -> float:
    """l-infinity distance between two sparse sketch outputs."""
    diff = counter_difference(first, second)
    if not diff:
        return 0.0
    return float(max(abs(v) for v in diff.values()))


def sketch_distance(first: SketchOutput, second: SketchOutput, order: float) -> float:
    """lp distance between sketch outputs for ``order`` in {1, 2, inf}."""
    if order == 1:
        return l1_distance(first, second)
    if order == 2:
        return l2_distance(first, second)
    if order == math.inf:
        return linf_distance(first, second)
    raise ParameterError(f"order must be 1, 2 or inf, got {order!r}")


def neighbouring_streams_by_deletion(stream: Sequence,
                                     max_pairs: Optional[int] = None,
                                     rng: RandomState = None) -> Iterator[NeighbouringPair]:
    """Yield neighbouring streams obtained by deleting a single position.

    With ``max_pairs`` set, a random subset of deletion positions is sampled
    (without replacement) instead of enumerating all ``len(stream)``
    neighbours; this keeps empirical sensitivity estimation tractable on long
    streams.
    """
    items = tuple(stream)
    n = len(items)
    if n == 0:
        return
    positions: Iterable[int]
    if max_pairs is None or max_pairs >= n:
        positions = range(n)
    else:
        generator = ensure_rng(rng)
        positions = sorted(generator.choice(n, size=max_pairs, replace=False).tolist())
    for index in positions:
        neighbour = items[:index] + items[index + 1:]
        yield NeighbouringPair(stream=items, neighbour=neighbour, removed_index=index)


@dataclass
class SensitivityReport:
    """Summary of an empirical sensitivity sweep over neighbouring streams."""

    max_l1: float
    max_l2: float
    max_linf: float
    max_differing_keys: int
    pairs_checked: int

    def as_dict(self) -> Dict[str, float]:
        """Plain-dict view for reporting code."""
        return {
            "max_l1": self.max_l1,
            "max_l2": self.max_l2,
            "max_linf": self.max_linf,
            "max_differing_keys": float(self.max_differing_keys),
            "pairs_checked": float(self.pairs_checked),
        }


def empirical_sensitivity(sketch_fn: SketchFunction, streams: Iterable[Sequence],
                          max_pairs_per_stream: Optional[int] = None,
                          rng: RandomState = None) -> SensitivityReport:
    """Estimate the sensitivity of ``sketch_fn`` over deletion neighbours.

    ``sketch_fn`` maps a stream to a dict of counters.  For each provided
    stream every (or a sampled subset of) deletion neighbour is evaluated and
    the maximum l1 / l2 / l-infinity distances and number of differing keys
    are recorded.  This is a lower bound on the true global sensitivity, which
    is how it is used in the benchmarks: the paper's lemmas give matching
    upper bounds.
    """
    generator = ensure_rng(rng)
    max_l1 = 0.0
    max_l2 = 0.0
    max_linf = 0.0
    max_keys = 0
    pairs = 0
    for stream in streams:
        base = sketch_fn(list(stream))
        for pair in neighbouring_streams_by_deletion(stream, max_pairs_per_stream, generator):
            other = sketch_fn(list(pair.neighbour))
            diff = counter_difference(base, other)
            if diff:
                l1 = sum(abs(v) for v in diff.values())
                l2 = math.sqrt(sum(v * v for v in diff.values()))
                linf = max(abs(v) for v in diff.values())
                max_l1 = max(max_l1, l1)
                max_l2 = max(max_l2, l2)
                max_linf = max(max_linf, linf)
                max_keys = max(max_keys, len(diff))
            pairs += 1
    return SensitivityReport(max_l1=max_l1, max_l2=max_l2, max_linf=max_linf,
                             max_differing_keys=max_keys, pairs_checked=pairs)


def all_streams(universe: Sequence[Hashable], length: int) -> Iterator[tuple]:
    """Enumerate every stream of a given length over a small universe.

    Only intended for exhaustive sensitivity checks on tiny instances
    (universe and length of a handful of elements); the number of streams is
    ``len(universe) ** length``.
    """
    if length < 0:
        raise ParameterError(f"length must be non-negative, got {length}")
    return itertools.product(universe, repeat=length)
