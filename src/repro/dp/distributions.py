"""Noise distributions used by the private mechanisms.

The paper's main mechanism uses real-valued Laplace noise; Section 5.2 notes
the same construction works with the (two-sided) geometric distribution for
finite computers, and Section 8 uses Gaussian noise through the Gaussian
Sparse Histogram Mechanism.  This module provides samplers together with the
cdf / survival / quantile functions needed for threshold calibration, without
depending on scipy at runtime.
"""

from __future__ import annotations

import math
from typing import Optional, Sequence, Union

import numpy as np

from .._validation import check_positive_float, check_probability
from ..exceptions import ParameterError
from .rng import RandomState, ensure_rng

ArrayLike = Union[float, Sequence[float], np.ndarray]

_SQRT2 = math.sqrt(2.0)


# ---------------------------------------------------------------------------
# Laplace distribution
# ---------------------------------------------------------------------------

def sample_laplace(scale: float, size: Optional[int] = None, rng: RandomState = None):
    """Draw samples from a zero-centred Laplace distribution.

    Parameters
    ----------
    scale:
        The scale parameter ``b`` (for the Laplace mechanism this is
        ``sensitivity / epsilon``).
    size:
        Number of samples; ``None`` returns a scalar float.
    rng:
        Seed or generator for reproducibility.
    """
    b = check_positive_float(scale, "scale")
    generator = ensure_rng(rng)
    samples = generator.laplace(loc=0.0, scale=b, size=size)
    if size is None:
        return float(samples)
    return samples


def laplace_cdf(x: ArrayLike, scale: float):
    """Cumulative distribution function of Laplace(0, scale)."""
    b = check_positive_float(scale, "scale")
    arr = np.asarray(x, dtype=float)
    # exp(-|x|/b) never overflows, unlike evaluating both where-branches.
    tail = 0.5 * np.exp(-np.abs(arr) / b)
    result = np.where(arr < 0, tail, 1.0 - tail)
    if np.isscalar(x) or arr.ndim == 0:
        return float(result)
    return result


def laplace_survival(x: ArrayLike, scale: float):
    """Survival function ``P[Laplace(scale) >= x]``."""
    b = check_positive_float(scale, "scale")
    arr = np.asarray(x, dtype=float)
    tail = 0.5 * np.exp(-np.abs(arr) / b)
    result = np.where(arr < 0, 1.0 - tail, tail)
    if np.isscalar(x) or arr.ndim == 0:
        return float(result)
    return result


def laplace_quantile(p: float, scale: float) -> float:
    """Quantile (inverse cdf) of Laplace(0, scale)."""
    prob = check_probability(p, "p")
    b = check_positive_float(scale, "scale")
    if prob < 0.5:
        return b * math.log(2.0 * prob)
    return -b * math.log(2.0 * (1.0 - prob))


# ---------------------------------------------------------------------------
# Gaussian distribution
# ---------------------------------------------------------------------------

def sample_gaussian(sigma: float, size: Optional[int] = None, rng: RandomState = None):
    """Draw samples from a zero-centred normal distribution with std ``sigma``."""
    std = check_positive_float(sigma, "sigma")
    generator = ensure_rng(rng)
    samples = generator.normal(loc=0.0, scale=std, size=size)
    if size is None:
        return float(samples)
    return samples


def gaussian_cdf(x: ArrayLike, sigma: float = 1.0):
    """Cumulative distribution function of N(0, sigma^2)."""
    std = check_positive_float(sigma, "sigma")
    arr = np.asarray(x, dtype=float)
    result = 0.5 * (1.0 + _erf_vec(arr / (std * _SQRT2)))
    if np.isscalar(x) or arr.ndim == 0:
        return float(result)
    return result


def gaussian_survival(x: ArrayLike, sigma: float = 1.0):
    """Survival function ``P[N(0, sigma^2) >= x]``."""
    std = check_positive_float(sigma, "sigma")
    arr = np.asarray(x, dtype=float)
    result = 0.5 * _erfc_vec(arr / (std * _SQRT2))
    if np.isscalar(x) or arr.ndim == 0:
        return float(result)
    return result


def gaussian_quantile(p: float, sigma: float = 1.0) -> float:
    """Quantile (inverse cdf) of N(0, sigma^2).

    Uses the Acklam rational approximation refined with one Halley step; the
    absolute error is far below anything that matters for noise calibration.
    """
    prob = check_probability(p, "p")
    std = check_positive_float(sigma, "sigma")
    return std * _standard_normal_quantile(prob)


def _erf_vec(x: np.ndarray) -> np.ndarray:
    return np.vectorize(math.erf, otypes=[float])(x)


def _erfc_vec(x: np.ndarray) -> np.ndarray:
    return np.vectorize(math.erfc, otypes=[float])(x)


def _standard_normal_quantile(p: float) -> float:
    """Inverse cdf of the standard normal distribution."""
    # Acklam's algorithm.
    a = (-3.969683028665376e01, 2.209460984245205e02, -2.759285104469687e02,
         1.383577518672690e02, -3.066479806614716e01, 2.506628277459239e00)
    b = (-5.447609879822406e01, 1.615858368580409e02, -1.556989798598866e02,
         6.680131188771972e01, -1.328068155288572e01)
    c = (-7.784894002430293e-03, -3.223964580411365e-01, -2.400758277161838e00,
         -2.549732539343734e00, 4.374664141464968e00, 2.938163982698783e00)
    d = (7.784695709041462e-03, 3.224671290700398e-01, 2.445134137142996e00,
         3.754408661907416e00)
    p_low = 0.02425
    if p < p_low:
        q = math.sqrt(-2.0 * math.log(p))
        x = (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) / (
            (((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0)
    elif p <= 1.0 - p_low:
        q = p - 0.5
        r = q * q
        x = (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) * q / (
            ((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0)
    else:
        q = math.sqrt(-2.0 * math.log(1.0 - p))
        x = -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) / (
            (((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0)
    # One Halley refinement step using the exact cdf.
    e = 0.5 * math.erfc(-x / _SQRT2) - p
    u = e * math.sqrt(2.0 * math.pi) * math.exp(x * x / 2.0)
    x = x - u / (1.0 + x * u / 2.0)
    return x


# ---------------------------------------------------------------------------
# Two-sided geometric distribution (discrete Laplace)
# ---------------------------------------------------------------------------

def sample_two_sided_geometric(scale: float, size: Optional[int] = None,
                               rng: RandomState = None):
    """Draw samples from the two-sided geometric ("discrete Laplace") law.

    The distribution has ``P[X = x] ∝ exp(-|x| / scale)`` over the integers.
    It is the integer-valued analogue of Laplace noise used by the Geometric
    mechanism of Ghosh, Roughgarden and Sundararajan, which Section 5.2 of the
    paper recommends for finite-precision deployments.
    """
    b = check_positive_float(scale, "scale")
    generator = ensure_rng(rng)
    # A two-sided geometric variable is the difference of two iid geometric
    # variables with success probability p = 1 - exp(-1/b).
    p = 1.0 - math.exp(-1.0 / b)
    n = 1 if size is None else int(size)
    if n < 0:
        raise ParameterError(f"size must be non-negative, got {size}")
    forward = generator.geometric(p, size=n) - 1
    backward = generator.geometric(p, size=n) - 1
    samples = (forward - backward).astype(np.int64)
    if size is None:
        return int(samples[0])
    return samples


def two_sided_geometric_survival(x: int, scale: float) -> float:
    """Survival function ``P[X >= x]`` of the two-sided geometric law."""
    b = check_positive_float(scale, "scale")
    alpha = math.exp(-1.0 / b)
    k = int(math.ceil(x))
    if k <= 0:
        # By symmetry P[X >= k] = 1 - P[X >= -k + 1].
        return 1.0 - two_sided_geometric_survival(-k + 1, scale)
    # For k >= 1: P[X >= k] = alpha^k / (1 + alpha).
    return alpha ** k / (1.0 + alpha)
