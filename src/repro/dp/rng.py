"""Random-number-generator plumbing.

Every randomized component in the library accepts an optional ``rng``
argument.  ``ensure_rng`` normalizes the accepted forms (``None``, an integer
seed, or an existing :class:`numpy.random.Generator`) into a Generator so that
experiments are reproducible end to end by passing a single seed at the top.
"""

from __future__ import annotations

from typing import Optional, Union

import numpy as np

from ..exceptions import ParameterError

RandomState = Union[None, int, np.random.Generator]


def ensure_rng(rng: RandomState = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` from flexible input.

    Parameters
    ----------
    rng:
        ``None`` for a fresh nondeterministic generator, an ``int`` seed for a
        reproducible generator, or an existing ``Generator`` which is returned
        unchanged.
    """
    if rng is None:
        return np.random.default_rng()
    if isinstance(rng, np.random.Generator):
        return rng
    if isinstance(rng, bool):
        raise ParameterError(f"rng must be None, an int seed or a Generator, got {rng!r}")
    if isinstance(rng, (int, np.integer)):
        if rng < 0:
            raise ParameterError(f"rng seed must be non-negative, got {rng}")
        return np.random.default_rng(int(rng))
    raise ParameterError(f"rng must be None, an int seed or a Generator, got {rng!r}")


def spawn_rngs(rng: RandomState, count: int) -> list[np.random.Generator]:
    """Split a generator into ``count`` independent child generators.

    Useful when an experiment fans out over repetitions and each repetition
    should use an independent, reproducible stream of randomness.
    """
    if count < 0:
        raise ParameterError(f"count must be non-negative, got {count}")
    parent = ensure_rng(rng)
    seeds = parent.integers(0, 2**63 - 1, size=count, dtype=np.int64)
    return [np.random.default_rng(int(seed)) for seed in seeds]
