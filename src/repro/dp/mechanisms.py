"""Standard differential-privacy mechanisms.

These are the generic building blocks: the Laplace mechanism (epsilon-DP for a
function with bounded l1-sensitivity), the Gaussian mechanism ((epsilon,
delta)-DP, scaled to l2-sensitivity) and the Geometric mechanism (the discrete
counterpart of Laplace).  The paper's own mechanisms (Algorithm 2, the GSHM,
...) are built in :mod:`repro.core` on top of the samplers here, because their
privacy analysis relies on structure beyond plain global sensitivity.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Dict, Hashable, Mapping, Optional

import numpy as np

from .._validation import check_delta, check_epsilon, check_positive_float
from ..exceptions import PrivacyParameterError
from .distributions import (
    sample_gaussian,
    sample_laplace,
    sample_two_sided_geometric,
)
from .rng import RandomState, ensure_rng


class NoiseMechanism(ABC):
    """Interface for additive-noise mechanisms over real vectors or dicts."""

    @abstractmethod
    def add_noise_array(self, values: np.ndarray, rng: RandomState = None) -> np.ndarray:
        """Return ``values`` plus one independent noise sample per entry."""

    def add_noise_dict(self, values: Mapping[Hashable, float],
                       rng: RandomState = None) -> Dict[Hashable, float]:
        """Return a new dict with independent noise added to every value.

        Values are gathered with ``np.fromiter`` (no per-key dict lookup) and
        the noisy array is converted back through ``ndarray.tolist`` (C-level
        float unboxing) instead of a per-entry ``float()`` call.
        """
        generator = ensure_rng(rng)
        keys = list(values.keys())
        flat = np.fromiter(values.values(), dtype=float, count=len(keys))
        noisy = self.add_noise_array(flat, rng=generator)
        return dict(zip(keys, np.asarray(noisy, dtype=float).tolist()))

    @abstractmethod
    def noise_scale(self) -> float:
        """A scalar summary of the noise magnitude (scale b or std sigma)."""


@dataclass(frozen=True)
class LaplaceMechanism(NoiseMechanism):
    """The Laplace mechanism of Dwork, McSherry, Nissim and Smith.

    Adding ``Laplace(sensitivity / epsilon)`` noise independently to every
    coordinate of a function with l1-sensitivity ``sensitivity`` satisfies
    ``epsilon``-differential privacy.
    """

    epsilon: float
    sensitivity: float = 1.0

    def __post_init__(self) -> None:
        check_epsilon(self.epsilon)
        check_positive_float(self.sensitivity, "sensitivity")

    @property
    def scale(self) -> float:
        """The Laplace scale parameter ``b = sensitivity / epsilon``."""
        return self.sensitivity / self.epsilon

    def noise_scale(self) -> float:
        return self.scale

    def add_noise_array(self, values: np.ndarray, rng: RandomState = None) -> np.ndarray:
        values = np.asarray(values, dtype=float)
        noise = sample_laplace(self.scale, size=values.size, rng=rng)
        return values + np.reshape(noise, values.shape)

    def high_probability_bound(self, count: int, beta: float) -> float:
        """Bound exceeded by any of ``count`` samples with prob. at most ``beta``."""
        if count <= 0:
            return 0.0
        return self.scale * math.log(count / beta)


@dataclass(frozen=True)
class GaussianMechanism(NoiseMechanism):
    """The (classical) Gaussian mechanism.

    For ``epsilon < 1`` adding ``N(0, sigma^2)`` noise with
    ``sigma = sqrt(2 ln(1.25/delta)) * l2_sensitivity / epsilon`` to every
    coordinate satisfies (epsilon, delta)-DP (Dwork & Roth, Theorem A.1).
    """

    epsilon: float
    delta: float
    l2_sensitivity: float = 1.0

    def __post_init__(self) -> None:
        eps = check_epsilon(self.epsilon)
        check_delta(self.delta)
        check_positive_float(self.l2_sensitivity, "l2_sensitivity")
        if eps >= 1.0:
            # The classical calibration is only proven for epsilon < 1; it is
            # still a valid (if conservative) noise level for larger epsilon,
            # so we warn through the exception message only when asked for an
            # exact guarantee elsewhere.  Here we simply allow it.
            pass

    @property
    def sigma(self) -> float:
        """The Gaussian standard deviation used by the mechanism."""
        return math.sqrt(2.0 * math.log(1.25 / self.delta)) * self.l2_sensitivity / self.epsilon

    def noise_scale(self) -> float:
        return self.sigma

    def add_noise_array(self, values: np.ndarray, rng: RandomState = None) -> np.ndarray:
        values = np.asarray(values, dtype=float)
        noise = sample_gaussian(self.sigma, size=values.size, rng=rng)
        return values + np.reshape(noise, values.shape)


@dataclass(frozen=True)
class GeometricMechanism(NoiseMechanism):
    """The Geometric mechanism (discrete Laplace) for integer-valued outputs.

    Adds two-sided geometric noise with ``P[X = x] ∝ exp(-epsilon |x| /
    sensitivity)``; satisfies ``epsilon``-DP for integer-valued functions with
    l1-sensitivity ``sensitivity``.
    """

    epsilon: float
    sensitivity: float = 1.0

    def __post_init__(self) -> None:
        check_epsilon(self.epsilon)
        check_positive_float(self.sensitivity, "sensitivity")

    @property
    def scale(self) -> float:
        """Scale of the two-sided geometric distribution."""
        return self.sensitivity / self.epsilon

    def noise_scale(self) -> float:
        return self.scale

    def add_noise_array(self, values: np.ndarray, rng: RandomState = None) -> np.ndarray:
        values = np.asarray(values, dtype=float)
        noise = sample_two_sided_geometric(self.scale, size=values.size, rng=rng)
        return values + np.reshape(np.asarray(noise, dtype=float), values.shape)


def make_mechanism(kind: str, epsilon: float, delta: Optional[float] = None,
                   sensitivity: float = 1.0) -> NoiseMechanism:
    """Factory for mechanisms by name (``"laplace"``, ``"gaussian"``,
    ``"geometric"``)."""
    name = kind.lower()
    if name == "laplace":
        return LaplaceMechanism(epsilon=epsilon, sensitivity=sensitivity)
    if name == "geometric":
        return GeometricMechanism(epsilon=epsilon, sensitivity=sensitivity)
    if name == "gaussian":
        if delta is None:
            raise PrivacyParameterError("gaussian mechanism requires delta")
        return GaussianMechanism(epsilon=epsilon, delta=delta, l2_sensitivity=sensitivity)
    raise PrivacyParameterError(f"unknown mechanism kind: {kind!r}")
