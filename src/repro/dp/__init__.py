"""Differential-privacy primitives used throughout the library.

This subpackage is the substrate below the paper's contribution: random noise
distributions, standard mechanisms (Laplace, Gaussian, two-sided geometric),
the threshold formulas used by the paper, privacy accounting (composition and
group privacy) and sensitivity tooling for neighbouring streams.
"""

from .accounting import (
    PrivacyParams,
    compose_adaptive,
    compose_basic,
    group_privacy,
    user_level_parameters,
)
from ..exceptions import VacuousGuaranteeError
from .distributions import (
    gaussian_quantile,
    gaussian_survival,
    laplace_cdf,
    laplace_quantile,
    laplace_survival,
    sample_gaussian,
    sample_laplace,
    sample_two_sided_geometric,
)
from .mechanisms import (
    GaussianMechanism,
    GeometricMechanism,
    LaplaceMechanism,
    NoiseMechanism,
)
from .rng import RandomState, ensure_rng
from .sensitivity import (
    NeighbouringPair,
    counter_difference,
    empirical_sensitivity,
    l1_distance,
    l2_distance,
    linf_distance,
    neighbouring_streams_by_deletion,
    sketch_distance,
)
from .thresholds import (
    geometric_pmg_threshold,
    gshm_loose_parameters,
    gshm_threshold,
    pmg_threshold,
    pmg_threshold_standard_sketch,
    pure_dp_noise_scale,
)

__all__ = [
    "GaussianMechanism",
    "GeometricMechanism",
    "LaplaceMechanism",
    "NeighbouringPair",
    "NoiseMechanism",
    "PrivacyParams",
    "RandomState",
    "VacuousGuaranteeError",
    "compose_adaptive",
    "compose_basic",
    "counter_difference",
    "empirical_sensitivity",
    "ensure_rng",
    "gaussian_quantile",
    "gaussian_survival",
    "geometric_pmg_threshold",
    "group_privacy",
    "gshm_loose_parameters",
    "gshm_threshold",
    "l1_distance",
    "l2_distance",
    "laplace_cdf",
    "laplace_quantile",
    "laplace_survival",
    "linf_distance",
    "neighbouring_streams_by_deletion",
    "pmg_threshold",
    "pmg_threshold_standard_sketch",
    "pure_dp_noise_scale",
    "sample_gaussian",
    "sample_laplace",
    "sample_two_sided_geometric",
    "sketch_distance",
    "user_level_parameters",
]
