"""Exception hierarchy for the ``repro`` library.

All exceptions raised intentionally by the library derive from
:class:`ReproError` so that callers can catch library failures with a single
``except`` clause while still letting programming errors (``TypeError`` from
the standard library, ``KeyError`` on internal dicts, ...) propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class ParameterError(ReproError, ValueError):
    """An argument has an invalid value (wrong range, wrong sign, ...)."""


class PrivacyParameterError(ParameterError):
    """A privacy parameter (epsilon, delta, sensitivity) is invalid."""


class VacuousGuaranteeError(PrivacyParameterError):
    """A composed privacy guarantee is vacuous (``delta >= 1``).

    Raised by the composition helpers in :mod:`repro.dp.accounting` instead
    of silently clamping the composed delta below one: a guarantee with
    ``delta >= 1`` permits publishing the raw input and must never be
    reported as a valid (epsilon, delta) pair.  ``epsilon`` and ``delta``
    carry the composed values that crossed the line (``delta`` may be
    ``math.inf`` when the computation overflowed).
    """

    def __init__(self, message: str, *, epsilon: float, delta: float) -> None:
        super().__init__(message)
        self.epsilon = epsilon
        self.delta = delta


class SketchStateError(ReproError, RuntimeError):
    """A sketch is used in a way incompatible with its current state.

    Examples include merging sketches of different sizes or releasing a
    private histogram twice from a single-use mechanism.
    """


class FramingError(SketchStateError):
    """A framed wire stream is malformed.

    Raised when a length-prefixed frame stream has a bad magic header, a
    truncated length prefix or frame body, an implausible frame length, or
    trailing garbage after the final frame.  Subclasses
    :class:`SketchStateError` so existing wire-level error handling catches
    framing failures too.
    """


class ProtocolError(FramingError):
    """A peer violated the aggregation control protocol of :mod:`repro.net`.

    Raised when a framed connection carries an unexpected verb for the
    session's state (e.g. a payload frame before HELLO), a malformed control
    frame, or a declared-count violation inside a PUSH burst.  Subclasses
    :class:`FramingError`: a protocol violation is a malformed stream.
    """


class NetworkError(ReproError, OSError):
    """A network operation failed at the transport level.

    Connect failures after all retries, operation timeouts and connections
    dropped mid-exchange raise this (the aggregation *content* errors the
    server reports explicitly raise :class:`RemoteError` instead).
    """


class RemoteError(NetworkError):
    """The aggregation server answered with an ERROR control frame.

    ``code`` carries the server's machine-readable reason (``k_mismatch``,
    ``nothing_to_release``, ``bad_verb``, ...).
    """

    def __init__(self, message: str, code: str = "error") -> None:
        super().__init__(message)
        self.code = code


class StreamFormatError(ReproError, ValueError):
    """A stream does not conform to the expected format.

    Raised e.g. when a user-level stream contains a set larger than the
    declared maximum contribution ``m``, or when elements fall outside the
    declared universe.
    """


class CalibrationError(ReproError, RuntimeError):
    """Noise calibration failed (e.g. no feasible sigma for the GSHM)."""
