"""C mirror of :mod:`repro.kernels._engine`, embedded as source text.

:mod:`repro.kernels._c_provider` compiles this translation unit once with the
system C compiler (``cc -O2 -fPIC -shared``) into a cached shared object and
loads it through :mod:`ctypes`.  The algorithms, tie-breaks and float
operation order are a line-for-line mirror of the python engine module; see
its docstring for why that yields bit-identical results.  ``-ffast-math`` is
never passed — the doubles here only see adds, subtracts and compares, which
C compilers may not reassociate under default (strict) floating-point
semantics.

Keep ``SOURCE_VERSION`` in sync with behavioural changes: the provider keys
its build cache on a hash of the source text, so editing the C automatically
invalidates stale binaries.
"""

SOURCE_VERSION = 1

C_SOURCE = r"""
#include <stdint.h>
#include <stdlib.h>

#define MG_OK 0
#define MG_CORRUPT 1
#define MG_NOMEM 2
#define SCAN_OK 0
#define SCAN_FALLBACK 1

/* ------------------------------------------------------------------ */
/* Shared open-addressed int64 -> int64 map (-1 empty, -2 tombstone). */
/* ------------------------------------------------------------------ */

static int64_t pow2_at_least(int64_t n) {
    int64_t cap = 16;
    while (cap < n) cap <<= 1;
    return cap;
}

static int64_t hash_int(int64_t key, int64_t mask) {
    /* Identical to the python engine's _hash_int (int64-safe pieces). */
    int64_t lo = key & 0x3FFFFFFFLL;
    int64_t mid = (key >> 30) & 0x3FFFFFFFLL;
    int64_t hi = (key >> 60) & 0xFLL;
    int64_t x = lo * 0x61C88647LL + mid * 0x3243F6A9LL + hi * 0x9E3779B9LL;
    x ^= x >> 31;
    x = (x & 0x3FFFFFFFLL) * 0x45D9F3BLL + (x >> 30);
    x ^= x >> 16;
    return x & mask;
}

static int64_t map_find(const int64_t *tkey, const int64_t *tval,
                        int64_t mask, int64_t key) {
    int64_t i = hash_int(key, mask);
    for (;;) {
        int64_t v = tval[i];
        if (v == -1) return -1;
        if (v != -2 && tkey[i] == key) return i;
        i = (i + 1) & mask;
    }
}

static int64_t map_put(int64_t *tkey, int64_t *tval, int64_t mask,
                       int64_t key, int64_t value) {
    int64_t i = hash_int(key, mask);
    for (;;) {
        int64_t v = tval[i];
        if (v == -1) { tkey[i] = key; tval[i] = value; return 1; }
        if (v == -2) { tkey[i] = key; tval[i] = value; return 0; }
        i = (i + 1) & mask;
    }
}

/* Eviction order: real keys before dummies, then smallest key/index. */
static int heap_le(int64_t rank_a, int64_t key_a, int64_t rank_b, int64_t key_b) {
    if (rank_a != rank_b) return rank_a < rank_b;
    return key_a <= key_b;
}

typedef struct {
    int64_t *rank;
    int64_t *key;
    int64_t *slot;
    int64_t *gen;
    int64_t len;
    int64_t cap;
} Heap;

static void heap_push(Heap *h, int64_t rank, int64_t key, int64_t slot, int64_t gen) {
    int64_t pos = h->len++;
    while (pos > 0) {
        int64_t parent = (pos - 1) >> 1;
        if (heap_le(h->rank[parent], h->key[parent], rank, key)) break;
        h->rank[pos] = h->rank[parent];
        h->key[pos] = h->key[parent];
        h->slot[pos] = h->slot[parent];
        h->gen[pos] = h->gen[parent];
        pos = parent;
    }
    h->rank[pos] = rank;
    h->key[pos] = key;
    h->slot[pos] = slot;
    h->gen[pos] = gen;
}

static void heap_pop(Heap *h, int64_t *top_slot, int64_t *top_gen) {
    *top_slot = h->slot[0];
    *top_gen = h->gen[0];
    int64_t last = --h->len;
    if (last <= 0) return;
    int64_t rank = h->rank[last], key = h->key[last];
    int64_t slot = h->slot[last], gen = h->gen[last];
    int64_t pos = 0;
    for (;;) {
        int64_t child = 2 * pos + 1;
        if (child >= last) break;
        int64_t right = child + 1;
        if (right < last &&
            !heap_le(h->rank[child], h->key[child], h->rank[right], h->key[right]))
            child = right;
        if (heap_le(rank, key, h->rank[child], h->key[child])) break;
        h->rank[pos] = h->rank[child];
        h->key[pos] = h->key[child];
        h->slot[pos] = h->slot[child];
        h->gen[pos] = h->gen[child];
        pos = child;
    }
    h->rank[pos] = rank;
    h->key[pos] = key;
    h->slot[pos] = slot;
    h->gen[pos] = gen;
}

/* ------------------------------------------------------------------ */
/* Misra-Gries update kernel (Branches 1-3 of Algorithm 1).           */
/* ------------------------------------------------------------------ */

typedef struct {
    int64_t k;
    int64_t *keys, *dummy, *stored, *ins_seq;
    int64_t kcap, kmask, kh_used;
    int64_t *kh_key, *kh_slot;
    int64_t vcap, vmask, vh_used;
    int64_t *vh_val, *vh_head;
    int64_t *bnext, *bprev, *gen;
    Heap heap;
} MGState;

static void mg_bucket_insert(MGState *st, int64_t slot, int64_t value) {
    int64_t vi = map_find(st->vh_val, st->vh_head, st->vmask, value);
    if (vi == -1) {
        st->vh_used += map_put(st->vh_val, st->vh_head, st->vmask, value, slot);
        st->bnext[slot] = -1;
        st->bprev[slot] = -1;
    } else {
        int64_t head = st->vh_head[vi];
        st->bnext[slot] = head;
        st->bprev[head] = slot;
        st->bprev[slot] = -1;
        st->vh_head[vi] = slot;
    }
}

static void mg_bucket_remove(MGState *st, int64_t slot, int64_t value) {
    int64_t prev = st->bprev[slot], next = st->bnext[slot];
    if (prev == -1) {
        int64_t vi = map_find(st->vh_val, st->vh_head, st->vmask, value);
        if (next == -1) {
            st->vh_head[vi] = -2; /* bucket emptied: tombstone the entry */
        } else {
            st->vh_head[vi] = next;
            st->bprev[next] = -1;
        }
    } else {
        st->bnext[prev] = next;
        if (next != -1) st->bprev[next] = prev;
    }
}

static void mg_rebuild_keys(MGState *st) {
    for (int64_t i = 0; i < st->kcap; i++) st->kh_slot[i] = -1;
    st->kh_used = 0;
    for (int64_t slot = 0; slot < st->k; slot++)
        if (st->dummy[slot] == 0)
            st->kh_used += map_put(st->kh_key, st->kh_slot, st->kmask,
                                   st->keys[slot], slot);
}

static void mg_rebuild_buckets(MGState *st) {
    for (int64_t i = 0; i < st->vcap; i++) st->vh_head[i] = -1;
    st->vh_used = 0;
    for (int64_t slot = 0; slot < st->k; slot++) {
        st->bnext[slot] = -1;
        st->bprev[slot] = -1;
    }
    for (int64_t slot = 0; slot < st->k; slot++)
        mg_bucket_insert(st, slot, st->stored[slot]);
}

/* Rebuild the heap from the (complete) zero bucket at map index vi. */
static void mg_compact_heap(MGState *st, int64_t vi) {
    st->heap.len = 0;
    int64_t slot = st->vh_head[vi];
    while (slot != -1) {
        heap_push(&st->heap, st->dummy[slot], st->keys[slot], slot, st->gen[slot]);
        slot = st->bnext[slot];
    }
}

int64_t repro_mg_update(int64_t *keys, int64_t *dummy, int64_t *stored,
                        int64_t *ins_seq, int64_t *io, int64_t k,
                        const int64_t *chunk, int64_t n) {
    MGState st;
    int64_t base = io[0], rounds = io[1], next_seq = io[2];
    st.k = k;
    st.keys = keys;
    st.dummy = dummy;
    st.stored = stored;
    st.ins_seq = ins_seq;
    st.kcap = pow2_at_least(4 * k);
    st.kmask = st.kcap - 1;
    st.vcap = pow2_at_least(4 * k);
    st.vmask = st.vcap - 1;
    int64_t hcap = 4 * k + 64;
    int64_t cells = 2 * st.kcap + 2 * st.vcap + 3 * k + 4 * hcap;
    int64_t *block = (int64_t *) malloc((size_t) cells * sizeof(int64_t));
    if (block == NULL) return MG_NOMEM;
    int64_t *cursor = block;
    st.kh_key = cursor; cursor += st.kcap;
    st.kh_slot = cursor; cursor += st.kcap;
    st.vh_val = cursor; cursor += st.vcap;
    st.vh_head = cursor; cursor += st.vcap;
    st.bnext = cursor; cursor += k;
    st.bprev = cursor; cursor += k;
    st.gen = cursor; cursor += k;
    st.heap.rank = cursor; cursor += hcap;
    st.heap.key = cursor; cursor += hcap;
    st.heap.slot = cursor; cursor += hcap;
    st.heap.gen = cursor;
    st.heap.len = 0;
    st.heap.cap = hcap;
    for (int64_t slot = 0; slot < k; slot++) st.gen[slot] = 0;
    mg_rebuild_keys(&st);
    mg_rebuild_buckets(&st);

    /* Seed the heap with the current zero set (the bucket at base). */
    {
        int64_t vi = map_find(st.vh_val, st.vh_head, st.vmask, base);
        if (vi != -1) mg_compact_heap(&st, vi);
    }

    for (int64_t index = 0; index < n; index++) {
        int64_t element = chunk[index];
        if (st.kh_used * 4 >= st.kcap * 3) mg_rebuild_keys(&st);
        if (st.vh_used * 4 >= st.vcap * 3) mg_rebuild_buckets(&st);

        int64_t ki = map_find(st.kh_key, st.kh_slot, st.kmask, element);
        if (ki != -1) {
            /* Branch 1: increment the stored counter. */
            int64_t slot = st.kh_slot[ki];
            int64_t value = stored[slot];
            mg_bucket_remove(&st, slot, value);
            stored[slot] = value + 1;
            mg_bucket_insert(&st, slot, value + 1);
            continue;
        }
        int64_t zi = map_find(st.vh_val, st.vh_head, st.vmask, base);
        if (zi == -1) {
            /* Branch 2: decrement everything lazily; drop the element. */
            rounds += 1;
            base += 1;
            int64_t vi = map_find(st.vh_val, st.vh_head, st.vmask, base);
            if (vi != -1) {
                int64_t slot = st.vh_head[vi];
                while (slot != -1) {
                    if (st.heap.len == st.heap.cap) {
                        /* The compaction re-pushes the whole zero bucket,
                           covering everything this loop had left. */
                        mg_compact_heap(&st, vi);
                        break;
                    }
                    heap_push(&st.heap, dummy[slot], keys[slot], slot,
                              st.gen[slot]);
                    slot = st.bnext[slot];
                }
            }
            continue;
        }
        /* Branch 3: evict the smallest zero-count key. */
        int64_t victim = -1;
        while (st.heap.len > 0) {
            int64_t top_slot, top_gen;
            heap_pop(&st.heap, &top_slot, &top_gen);
            if (st.gen[top_slot] == top_gen && stored[top_slot] == base) {
                victim = top_slot;
                break;
            }
        }
        if (victim == -1) {
            free(block);
            io[0] = base; io[1] = rounds; io[2] = next_seq;
            return MG_CORRUPT;
        }
        mg_bucket_remove(&st, victim, base);
        if (dummy[victim] == 0) {
            int64_t kd = map_find(st.kh_key, st.kh_slot, st.kmask, keys[victim]);
            st.kh_slot[kd] = -2;
        }
        keys[victim] = element;
        dummy[victim] = 0;
        st.gen[victim] += 1;
        ins_seq[victim] = next_seq++;
        stored[victim] = base + 1;
        st.kh_used += map_put(st.kh_key, st.kh_slot, st.kmask, element, victim);
        mg_bucket_insert(&st, victim, base + 1);
    }

    free(block);
    io[0] = base; io[1] = rounds; io[2] = next_seq;
    return MG_OK;
}

/* ------------------------------------------------------------------ */
/* Interned merge fold (scalar replica of merge._fold_interned).      */
/* ------------------------------------------------------------------ */

/* The pos-th smallest of buf[:n] — the order statistic np.partition
   selects.  Callers guarantee no NaNs. */
static double select_kth(double *buf, int64_t n, int64_t pos) {
    int64_t lo = 0, hi = n - 1;
    while (lo < hi) {
        int64_t mid = (lo + hi) >> 1;
        double a = buf[lo], b = buf[mid], c = buf[hi];
        if (a > b) { double t = a; a = b; b = t; }
        if (b > c) b = c;
        if (a > b) b = a;
        double pivot = b;
        int64_t i = lo, lt = lo, gt = hi;
        while (i <= gt) {
            double v = buf[i];
            if (v < pivot) {
                buf[i] = buf[lt];
                buf[lt] = v;
                lt++; i++;
            } else if (v > pivot) {
                buf[i] = buf[gt];
                buf[gt] = v;
                gt--; /* the swapped-in element is unexamined */
            } else {
                i++;
            }
        }
        if (pos < lt) hi = lt - 1;
        else if (pos > gt) lo = gt + 1;
        else return pivot;
    }
    return buf[lo];
}

int64_t repro_fold_interned(const int64_t *flat_ids, const double *flat_values,
                            const int64_t *lengths, int64_t n_sketches,
                            int64_t size, double *acc, int64_t *active,
                            int64_t *scratch_ids, double *scratch_vals,
                            int64_t *zero_live, int64_t *out_n) {
    int64_t n_active = 0, n_zero = 0, start = 0;
    int first = 1;
    for (int64_t step = 0; step < n_sketches; step++) {
        int64_t length = lengths[step];
        const int64_t *ids = flat_ids + start;
        const double *values = flat_values + start;
        start += length;
        if (first) {
            first = 0;
            if (length == 0) continue;
            if (length > size) {
                int64_t pos = length - 1 - size;
                for (int64_t j = 0; j < length; j++) scratch_vals[j] = values[j];
                double offset = select_kth(scratch_vals, length, pos);
                n_active = 0;
                for (int64_t j = 0; j < length; j++) {
                    double shifted = values[j] - offset;
                    if (shifted > 0.0) {
                        acc[ids[j]] = shifted;
                        active[n_active++] = ids[j];
                    } else {
                        acc[ids[j]] = 0.0;
                    }
                }
            } else {
                for (int64_t j = 0; j < length; j++) {
                    int64_t idv = ids[j];
                    acc[idv] = values[j];
                    active[j] = idv;
                    if (values[j] == 0.0) zero_live[n_zero++] = idv;
                }
                n_active = length;
            }
            continue;
        }
        if (length == 0) {
            if (n_zero > 0) {
                int64_t w = 0;
                for (int64_t j = 0; j < n_active; j++)
                    if (acc[active[j]] > 0.0) active[w++] = active[j];
                n_active = w;
                n_zero = 0;
            }
            continue;
        }
        int64_t n_comb = n_active;
        for (int64_t j = 0; j < n_active; j++) scratch_ids[j] = active[j];
        int all_positive = 1;
        for (int64_t j = 0; j < length; j++) {
            int64_t idv = ids[j];
            double value = values[j];
            if (!(value > 0.0)) all_positive = 0;
            double before = acc[idv];
            int fresh = before == 0.0;
            if (fresh && n_zero > 0) {
                for (int64_t t = 0; t < n_zero; t++) {
                    if (zero_live[t] == idv) { fresh = 0; break; }
                }
            }
            acc[idv] = before + value;
            if (fresh) scratch_ids[n_comb++] = idv;
        }
        if (n_comb > size) {
            int64_t pos = n_comb - 1 - size;
            for (int64_t j = 0; j < n_comb; j++)
                scratch_vals[j] = acc[scratch_ids[j]];
            double offset = select_kth(scratch_vals, n_comb, pos);
            int64_t w = 0;
            for (int64_t j = 0; j < n_comb; j++) {
                int64_t idv = scratch_ids[j];
                double shifted = acc[idv] - offset;
                if (shifted > 0.0) {
                    acc[idv] = shifted;
                    active[w++] = idv;
                } else {
                    acc[idv] = 0.0;
                }
            }
            n_active = w;
        } else if (n_zero == 0 && all_positive) {
            for (int64_t j = 0; j < n_comb; j++) active[j] = scratch_ids[j];
            n_active = n_comb;
        } else {
            int64_t w = 0;
            for (int64_t j = 0; j < n_comb; j++) {
                int64_t idv = scratch_ids[j];
                if (acc[idv] > 0.0) active[w++] = idv;
                else acc[idv] = 0.0;
            }
            n_active = w;
        }
        n_zero = 0;
    }
    *out_n = n_active;
    return MG_OK;
}

/* ------------------------------------------------------------------ */
/* Canonical binary-frame header scanner.                             */
/* ------------------------------------------------------------------ */

#define SCAN_HAS_FORMAT 0
#define SCAN_FORMAT 1
#define SCAN_KIND_START 2
#define SCAN_KIND_LEN 3
#define SCAN_HAS_K 4
#define SCAN_K 5
#define SCAN_HAS_COUNT 6
#define SCAN_COUNT 7
#define SCAN_HAS_META 8
#define SCAN_HAS_STREAM_LENGTH 9
#define SCAN_STREAM_LENGTH 10
#define SCAN_HAS_DECREMENT_ROUNDS 11
#define SCAN_DECREMENT_ROUNDS 12
#define SCAN_SKETCH_START 13
#define SCAN_SKETCH_LEN 14
#define SCAN_OUT_SLOTS 16

static int64_t scan_ws(const uint8_t *buf, int64_t pos, int64_t end) {
    while (pos < end) {
        uint8_t c = buf[pos];
        if (c != 32 && c != 9 && c != 10 && c != 13) break;
        pos++;
    }
    return pos;
}

static int scan_int(const uint8_t *buf, int64_t *pos_io, int64_t end,
                    int64_t *value_out) {
    int64_t pos = *pos_io;
    int neg = 0;
    if (pos < end && buf[pos] == '-') { neg = 1; pos++; }
    int64_t first = pos, value = 0;
    while (pos < end) {
        uint8_t c = buf[pos];
        if (c < '0' || c > '9') break;
        int64_t digit = c - '0';
        if (value > 922337203685477580LL ||
            (value == 922337203685477580LL && digit > 7))
            return SCAN_FALLBACK; /* beyond int64: python handles it */
        value = value * 10 + digit;
        pos++;
    }
    if (pos == first) return SCAN_FALLBACK;
    if (buf[first] == '0' && pos - first > 1) return SCAN_FALLBACK;
    if (pos < end) {
        uint8_t c = buf[pos];
        if (c == '.' || c == 'e' || c == 'E') return SCAN_FALLBACK;
    }
    *value_out = neg ? -value : value;
    *pos_io = pos;
    return SCAN_OK;
}

static int scan_string(const uint8_t *buf, int64_t *pos_io, int64_t end,
                       int64_t *start_out, int64_t *len_out) {
    int64_t pos = *pos_io;
    if (pos >= end || buf[pos] != '"') return SCAN_FALLBACK;
    pos++;
    int64_t begin = pos;
    while (pos < end) {
        uint8_t c = buf[pos];
        if (c == '"') {
            *start_out = begin;
            *len_out = pos - begin;
            *pos_io = pos + 1;
            return SCAN_OK;
        }
        if (c == '\\' || c < 32 || c > 126) return SCAN_FALLBACK;
        pos++;
    }
    return SCAN_FALLBACK;
}

static int match_lit(const uint8_t *buf, int64_t start, int64_t length,
                     const char *lit, int64_t lit_len) {
    if (length != lit_len) return 0;
    for (int64_t i = 0; i < length; i++)
        if (buf[start + i] != (uint8_t) lit[i]) return 0;
    return 1;
}

static int is_null_at(const uint8_t *buf, int64_t pos, int64_t end) {
    return pos + 4 <= end && buf[pos] == 'n' && buf[pos + 1] == 'u'
        && buf[pos + 2] == 'l' && buf[pos + 3] == 'l';
}

int64_t repro_scan_header(const uint8_t *buf, int64_t end, int64_t *out) {
    for (int64_t i = 0; i < SCAN_OUT_SLOTS; i++) out[i] = 0;
    out[SCAN_KIND_LEN] = -1;
    out[SCAN_SKETCH_LEN] = -1;
    int64_t pos = scan_ws(buf, 0, end);
    if (pos >= end || buf[pos] != '{') return SCAN_FALLBACK;
    pos = scan_ws(buf, pos + 1, end);
    if (pos < end && buf[pos] == '}') {
        pos = scan_ws(buf, pos + 1, end);
        return pos == end ? SCAN_OK : SCAN_FALLBACK;
    }
    /* Canonical (sorted) key order turns "seen" tracking into a monotone
       index: count(0) < format(1) < k(2) < key_encoding(3) < kind(4)
       < meta(5). */
    int64_t last_key = -1;
    for (;;) {
        int64_t kstart, klen;
        if (scan_string(buf, &pos, end, &kstart, &klen) != SCAN_OK)
            return SCAN_FALLBACK;
        pos = scan_ws(buf, pos, end);
        if (pos >= end || buf[pos] != ':') return SCAN_FALLBACK;
        pos = scan_ws(buf, pos + 1, end);
        if (pos >= end) return SCAN_FALLBACK;
        if (match_lit(buf, kstart, klen, "count", 5)) {
            if (last_key >= 0) return SCAN_FALLBACK;
            last_key = 0;
            int64_t value;
            if (scan_int(buf, &pos, end, &value) != SCAN_OK)
                return SCAN_FALLBACK;
            out[SCAN_HAS_COUNT] = 1;
            out[SCAN_COUNT] = value;
        } else if (match_lit(buf, kstart, klen, "format", 6)) {
            if (last_key >= 1) return SCAN_FALLBACK;
            last_key = 1;
            if (buf[pos] == 'n') {
                if (!is_null_at(buf, pos, end)) return SCAN_FALLBACK;
                pos += 4;
            } else {
                int64_t value;
                if (scan_int(buf, &pos, end, &value) != SCAN_OK)
                    return SCAN_FALLBACK;
                out[SCAN_HAS_FORMAT] = 1;
                out[SCAN_FORMAT] = value;
            }
        } else if (match_lit(buf, kstart, klen, "k", 1)) {
            if (last_key >= 2) return SCAN_FALLBACK;
            last_key = 2;
            if (buf[pos] == 'n') {
                if (!is_null_at(buf, pos, end)) return SCAN_FALLBACK;
                pos += 4;
            } else {
                int64_t value;
                if (scan_int(buf, &pos, end, &value) != SCAN_OK)
                    return SCAN_FALLBACK;
                out[SCAN_HAS_K] = 1;
                out[SCAN_K] = value;
            }
        } else if (match_lit(buf, kstart, klen, "key_encoding", 12)) {
            if (last_key >= 3) return SCAN_FALLBACK;
            last_key = 3;
            int64_t vstart, vlen; /* value is ignored by the decoder */
            if (scan_string(buf, &pos, end, &vstart, &vlen) != SCAN_OK)
                return SCAN_FALLBACK;
        } else if (match_lit(buf, kstart, klen, "kind", 4)) {
            if (last_key >= 4) return SCAN_FALLBACK;
            last_key = 4;
            int64_t vstart, vlen;
            if (scan_string(buf, &pos, end, &vstart, &vlen) != SCAN_OK)
                return SCAN_FALLBACK;
            out[SCAN_KIND_START] = vstart;
            out[SCAN_KIND_LEN] = vlen;
        } else if (match_lit(buf, kstart, klen, "meta", 4)) {
            if (last_key >= 5) return SCAN_FALLBACK;
            last_key = 5;
            if (pos >= end || buf[pos] != '{') return SCAN_FALLBACK;
            pos = scan_ws(buf, pos + 1, end);
            out[SCAN_HAS_META] = 1;
            if (pos < end && buf[pos] == '}') {
                pos++;
            } else {
                int64_t meta_last = -1;
                for (;;) {
                    int64_t mstart, mlen;
                    if (scan_string(buf, &pos, end, &mstart, &mlen) != SCAN_OK)
                        return SCAN_FALLBACK;
                    pos = scan_ws(buf, pos, end);
                    if (pos >= end || buf[pos] != ':') return SCAN_FALLBACK;
                    pos = scan_ws(buf, pos + 1, end);
                    if (pos >= end) return SCAN_FALLBACK;
                    if (match_lit(buf, mstart, mlen, "decrement_rounds", 16)) {
                        if (meta_last >= 0) return SCAN_FALLBACK;
                        meta_last = 0;
                        int64_t value;
                        if (scan_int(buf, &pos, end, &value) != SCAN_OK)
                            return SCAN_FALLBACK;
                        out[SCAN_HAS_DECREMENT_ROUNDS] = 1;
                        out[SCAN_DECREMENT_ROUNDS] = value;
                    } else if (match_lit(buf, mstart, mlen, "sketch", 6)) {
                        if (meta_last >= 1) return SCAN_FALLBACK;
                        meta_last = 1;
                        int64_t vstart, vlen;
                        if (scan_string(buf, &pos, end, &vstart, &vlen) != SCAN_OK)
                            return SCAN_FALLBACK;
                        out[SCAN_SKETCH_START] = vstart;
                        out[SCAN_SKETCH_LEN] = vlen;
                    } else if (match_lit(buf, mstart, mlen, "stream_length", 13)) {
                        if (meta_last >= 2) return SCAN_FALLBACK;
                        meta_last = 2;
                        int64_t value;
                        if (scan_int(buf, &pos, end, &value) != SCAN_OK)
                            return SCAN_FALLBACK;
                        out[SCAN_HAS_STREAM_LENGTH] = 1;
                        out[SCAN_STREAM_LENGTH] = value;
                    } else {
                        return SCAN_FALLBACK;
                    }
                    pos = scan_ws(buf, pos, end);
                    if (pos < end && buf[pos] == ',') {
                        pos = scan_ws(buf, pos + 1, end);
                        continue;
                    }
                    if (pos < end && buf[pos] == '}') { pos++; break; }
                    return SCAN_FALLBACK;
                }
            }
        } else {
            return SCAN_FALLBACK;
        }
        pos = scan_ws(buf, pos, end);
        if (pos < end && buf[pos] == ',') {
            pos = scan_ws(buf, pos + 1, end);
            continue;
        }
        if (pos < end && buf[pos] == '}') {
            pos = scan_ws(buf, pos + 1, end);
            break;
        }
        return SCAN_FALLBACK;
    }
    return pos == end ? SCAN_OK : SCAN_FALLBACK;
}
"""
