"""Optional compiled kernel tier for the interpreter-bound hot paths.

The three hot loops that stay python-bound after vectorization — the
Misra-Gries per-element eviction loop behind ``update_batch``, the interned
merge fold behind ``merge_many``/``merge_many_arrays``, and the binary
columnar frame-header parse — have compiled implementations provided by (in
preference order):

``numba``
    ``@njit``-compiled from the shared source in
    :mod:`repro.kernels._engine` (no build step; used when numba is
    installed).
``cc``
    A C mirror (:mod:`repro.kernels._c_src`) compiled on demand with the
    system C compiler and loaded via ctypes (used when a toolchain exists
    but numba does not).

Both produce **bit-identical** results to the pure-python engines — same
keys, same float bits, same dict order — which the property suite verifies
against the frozen references.  With neither provider available everything
silently runs pure python, exactly as before this tier existed.

Backend selection
-----------------
* Registry specs: ``{"name": "misra_gries", "backend": "compiled"}``
  (``auto`` | ``python`` | ``compiled`` | ``numba`` | ``cc``).
* The ``REPRO_KERNELS`` environment variable overrides every in-code
  request (``off`` is accepted as an alias of ``python``).
* ``auto`` (the default everywhere) picks the best available provider and
  falls back to python silently — emitting one
  :class:`KernelFallbackWarning` per process the first time it does so —
  while ``compiled``/``numba``/``cc`` raise
  :class:`~repro.exceptions.ParameterError` when the request cannot be
  honoured.

``kernel_info()`` (also surfaced as ``repro list --backends``) reports what
actually resolved, so a deploy can verify it is running native kernels.
"""

from __future__ import annotations

import os
import warnings
from typing import Callable, Dict, Optional

from ..exceptions import ParameterError
from . import _c_provider, _numba_provider

__all__ = [
    "BACKENDS",
    "KERNEL_NAMES",
    "KernelFallbackWarning",
    "available",
    "get_kernel",
    "kernel_info",
    "resolve_backend",
    "validate_backend",
]

#: Accepted ``backend=`` values (``off`` is accepted as an env alias).
BACKENDS = ("auto", "python", "compiled", "numba", "cc")

#: The kernels every provider implements.
KERNEL_NAMES = ("mg_update", "fold_interned", "scan_binary_header")

#: Environment variable overriding every in-code backend request.
ENV_VAR = "REPRO_KERNELS"

_PROVIDERS = {
    _numba_provider.PROVIDER_NAME: _numba_provider,
    _c_provider.PROVIDER_NAME: _c_provider,
}
#: Preference order for ``auto``/``compiled``.
_PROVIDER_ORDER = (_numba_provider.PROVIDER_NAME, _c_provider.PROVIDER_NAME)

_fallback_warned = False


class KernelFallbackWarning(UserWarning):
    """Emitted once per process when ``auto`` finds no compiled provider."""


def validate_backend(backend: str) -> str:
    """Normalize and validate a ``backend=`` parameter value."""
    if not isinstance(backend, str):
        raise ParameterError(
            f"backend must be one of {BACKENDS}, got {backend!r}")
    choice = backend.strip().lower()
    if choice == "off":
        choice = "python"
    if choice not in BACKENDS:
        raise ParameterError(
            f"backend must be one of {BACKENDS}, got {backend!r}")
    return choice


def _first_available() -> Optional[str]:
    for name in _PROVIDER_ORDER:
        if _PROVIDERS[name].available():
            return name
    return None


def resolve_backend(requested: Optional[str] = None) -> str:
    """Resolve a backend request to ``"python"`` or a provider name.

    The ``REPRO_KERNELS`` environment variable (read at call time, so a
    deploy or a test can flip it without touching code) overrides
    ``requested``; ``None`` means ``auto``.  Explicit compiled requests
    raise :class:`~repro.exceptions.ParameterError` when unavailable;
    ``auto`` falls back to ``"python"``, warning once per process only when
    *no* provider exists at all.
    """
    global _fallback_warned
    env = os.environ.get(ENV_VAR, "").strip()
    if env:
        choice = validate_backend(env)
    else:
        choice = validate_backend(requested) if requested is not None else "auto"
    if choice == "python":
        return "python"
    if choice in _PROVIDERS:
        if not _PROVIDERS[choice].available():
            raise ParameterError(
                f"kernel backend {choice!r} requested but unavailable: "
                f"{_PROVIDERS[choice].error()}")
        return choice
    if choice == "compiled":
        name = _first_available()
        if name is None:
            raise ParameterError(
                "kernel backend 'compiled' requested but no provider is "
                f"available (numba: {_numba_provider.error()}; "
                f"cc: {_c_provider.error()})")
        return name
    # auto
    name = _first_available()
    if name is None:
        if not _fallback_warned:
            _fallback_warned = True
            warnings.warn(
                "no compiled kernel provider is available (numba missing and "
                "the C toolchain build failed); repro.kernels is running the "
                "pure-python engines",
                KernelFallbackWarning, stacklevel=2)
        return "python"
    return name


def get_kernel(name: str, backend: Optional[str] = None) -> Optional[Callable]:
    """The compiled kernel ``name`` for a backend request, or ``None``.

    ``None`` means "use the pure-python engine" — either because the request
    resolved to ``python`` or because the resolved provider lacks ``name``.
    """
    resolved = resolve_backend(backend)
    if resolved == "python":
        return None
    table = _PROVIDERS[resolved].load()
    if table is None:
        return None
    return table.get(name)


def available() -> bool:
    """Whether any compiled provider is available."""
    return _first_available() is not None


def backend_name(requested: Optional[str] = None) -> str:
    """Like :func:`resolve_backend` but never raises (for reporting)."""
    try:
        return resolve_backend(requested)
    except ParameterError:
        return "python"


def kernel_info() -> Dict:
    """What the kernel tier resolved to — providers, kernels, versions.

    This is the operator-facing deploy check (``repro list --backends``):
    ``backend`` is what ``auto`` resolves to right now, ``providers`` carries
    per-provider availability (with the failure reason when not), and
    ``kernels`` maps each kernel to the backend that will actually run it.
    """
    env = os.environ.get(ENV_VAR, "").strip()
    try:
        resolved = resolve_backend(None)
        resolve_error = None
    except ParameterError as exc:
        resolved = "python"
        resolve_error = str(exc)
    providers = {name: _PROVIDERS[name].info() for name in _PROVIDER_ORDER}
    kernels = {}
    for kernel in KERNEL_NAMES:
        if resolved != "python" and kernel in providers[resolved]["kernels"]:
            kernels[kernel] = resolved
        else:
            kernels[kernel] = "python"
    return {
        "backend": resolved,
        "env": env or None,
        "error": resolve_error,
        "providers": providers,
        "kernels": kernels,
        "numba_version": _numba_provider.numba_version(),
    }


def reset_for_tests() -> None:
    """Reset provider caches and the warn-once flag (test isolation)."""
    global _fallback_warned
    _fallback_warned = False
    _numba_provider.reset_for_tests()
    _c_provider.reset_for_tests()
