"""Compiled kernel provider backed by Numba's ``@njit`` (when installed).

Rather than keeping a second copy of the algorithms, this provider
re-executes the source of :mod:`repro.kernels._engine` in a namespace where
``jit`` is bound to ``numba.njit(cache=True, fastmath=False)`` (the engine
module binds ``jit`` to the identity only when it is not already defined).
Every function compiles in nopython mode on first call; ``fastmath`` stays
off so float adds/subtracts keep their source order and the results remain
bit-identical to the python engines.

When numba is not installed the provider is simply unavailable — the
``auto`` backend then resolves to the C provider or pure python.
"""

from __future__ import annotations

import importlib.util
from typing import Dict, Optional

PROVIDER_NAME = "numba"

_kernels: Optional[Dict] = None
_error: Optional[str] = None
_loaded = False


def _compile_kernels() -> Dict:
    import numba

    spec = importlib.util.find_spec("repro.kernels._engine")
    if spec is None or spec.origin is None:
        raise RuntimeError("cannot locate repro.kernels._engine source")
    with open(spec.origin, "r", encoding="utf-8") as handle:
        source = handle.read()
    namespace: Dict = {
        "__name__": "repro.kernels._engine__numba",
        "__file__": spec.origin,
        # Seen by the engine's ``try: jit`` probe, replacing the identity
        # decorator with the real compiler.
        "jit": numba.njit(cache=True, fastmath=False),
    }
    exec(compile(source, spec.origin, "exec"), namespace)
    return {
        "mg_update": namespace["mg_update"],
        "fold_interned": namespace["fold_interned"],
        "scan_binary_header": namespace["scan_binary_header"],
    }


def load() -> Optional[Dict]:
    """Kernel table for this provider, or ``None`` (reason in :func:`error`)."""
    global _kernels, _error, _loaded
    if _loaded:
        return _kernels
    _loaded = True
    try:
        _kernels = _compile_kernels()
    except ImportError:
        _error = "numba is not installed"
        _kernels = None
    except Exception as exc:  # numba present but broken: degrade, keep reason
        _error = f"{type(exc).__name__}: {exc}"
        _kernels = None
    return _kernels


def available() -> bool:
    return load() is not None


def error() -> Optional[str]:
    load()
    return _error


def numba_version() -> Optional[str]:
    try:
        import numba

        return str(numba.__version__)
    except ImportError:
        return None


def info() -> Dict:
    table = load()
    return {
        "name": PROVIDER_NAME,
        "available": table is not None,
        "error": _error,
        "kernels": sorted(table) if table else [],
        "numba_version": numba_version(),
    }


def reset_for_tests() -> None:
    """Forget the load result so tests can monkeypatch the import away."""
    global _kernels, _error, _loaded
    _kernels = None
    _error = None
    _loaded = False
