"""Shared-source kernel implementations (the executable specification).

Every kernel in this module is written in the restricted "array style" that
Numba's nopython mode compiles directly: ndarray parameters, scalar locals,
explicit loops, no dicts/strings/exceptions.  The module serves three roles:

* imported normally it runs as plain Python — the *executable spec* the
  property tests exercise even when no compiler is present;
* :mod:`repro.kernels._numba_provider` re-executes this file's source with
  ``jit`` bound to ``numba.njit(cache=True, fastmath=False)``, turning every
  function into a compiled kernel without a second copy of the algorithm;
* :mod:`repro.kernels._c_provider` mirrors the same algorithms in C
  (:mod:`repro.kernels._c_src`); this module is the reference the C code is
  property-tested against.

Bit-identity
------------
The kernels must produce *exactly* the state the pure-python engines produce
(same keys, same float bits, same dict insertion order).  That is feasible
because every float operation here is a plain add/subtract/compare performed
in the same order as the python engine (``fastmath`` stays off, so the
compilers may not reassociate), and every tie-break is a total order on the
data itself (never on hash-iteration order):

* ``mg_update`` replays Branches 1-3 of Algorithm 1 element by element;
  ``update_batch`` is already property-tested bit-identical to the
  sequential engine, so matching the sequential engine matches both.
* ``fold_interned`` mirrors :func:`repro.sketches.merge._fold_interned`
  per-id: ids are unique within one sketch, so the vectorized
  fancy-indexed adds decompose into the independent scalar adds performed
  here, and the (k+1)-th-largest selection is an order statistic — any
  correct selection algorithm returns the same value as ``np.partition``.
* ``scan_binary_header`` parses only the canonical header grammar emitted
  by ``json.dumps(..., sort_keys=True)``; anything unexpected returns the
  FALLBACK status and the caller re-parses with ``json.loads``, so error
  behaviour is byte-for-byte the python path's.
"""

from __future__ import annotations

import numpy as np

try:  # pragma: no cover - exercised via the numba provider
    jit  # type: ignore[used-before-def]  # noqa: B018 - injected by _numba_provider
except NameError:  # plain import: run uncompiled as the executable spec
    def jit(func):
        return func

# Status codes shared by all kernels (and the C mirror).
MG_OK = 0
MG_CORRUPT = 1
SCAN_OK = 0
SCAN_FALLBACK = 1

# ``scan_binary_header`` output slots (int64[16]).
SCAN_HAS_FORMAT = 0
SCAN_FORMAT = 1
SCAN_KIND_START = 2
SCAN_KIND_LEN = 3
SCAN_HAS_K = 4
SCAN_K = 5
SCAN_HAS_COUNT = 6
SCAN_COUNT = 7
SCAN_HAS_META = 8
SCAN_HAS_STREAM_LENGTH = 9
SCAN_STREAM_LENGTH = 10
SCAN_HAS_DECREMENT_ROUNDS = 11
SCAN_DECREMENT_ROUNDS = 12
SCAN_SKETCH_START = 13
SCAN_SKETCH_LEN = 14
SCAN_OUT_SLOTS = 16


@jit
def _pow2_at_least(n):
    cap = 16
    while cap < n:
        cap <<= 1
    return cap


@jit
def _hash_int(key, mask):
    # Mixed in int64-safe pieces: every product stays below 2**62, so the
    # arithmetic is identical under python bigints and C/numba int64.
    lo = key & 0x3FFFFFFF
    mid = (key >> 30) & 0x3FFFFFFF
    hi = (key >> 60) & 0xF
    x = lo * 0x61C88647 + mid * 0x3243F6A9 + hi * 0x9E3779B9
    x ^= x >> 31
    x = (x & 0x3FFFFFFF) * 0x45D9F3B + (x >> 30)
    x ^= x >> 16
    return x & mask


@jit
def _map_find(tkey, tval, mask, key):
    """Index of ``key`` in an open-addressed map, or -1 (values >= 0 live,
    -1 empty, -2 tombstone)."""
    i = _hash_int(key, mask)
    while True:
        v = tval[i]
        if v == -1:
            return -1
        if v != -2 and tkey[i] == key:
            return i
        i = (i + 1) & mask


@jit
def _heap_le(rank_a, key_a, rank_b, key_b):
    """Eviction order: real keys before dummies, then smallest key/index."""
    if rank_a != rank_b:
        return rank_a < rank_b
    return key_a <= key_b


@jit
def _map_put(tkey, tval, mask, key, value):
    """Insert an *absent* key; returns 1 if an empty cell was consumed."""
    i = _hash_int(key, mask)
    while True:
        v = tval[i]
        if v == -1:
            tkey[i] = key
            tval[i] = value
            return 1
        if v == -2:
            tkey[i] = key
            tval[i] = value
            return 0
        i = (i + 1) & mask


@jit
def mg_update(keys, dummy, stored, ins_seq, io, chunk):
    """Branches 1-3 of Algorithm 1 over ``chunk``, on exported sketch state.

    State arrays (all ``int64[k]``, mutated in place):

    * ``keys``    — the stored key of each slot (a dummy's *index* when
      ``dummy[slot]`` is 1);
    * ``dummy``   — 1 for the paper's padding keys, 0 for real keys;
    * ``stored``  — stored (offset) counter values;
    * ``ins_seq`` — dict insertion order; evicting slots get fresh maximal
      sequence numbers so the importer can rebuild the exact dict order.

    ``io`` carries ``[base, decrement_rounds, next_seq]`` in and out.
    Returns ``MG_OK`` or ``MG_CORRUPT`` (zero-key heap exhausted).
    """
    k = keys.shape[0]
    base = io[0]
    rounds = io[1]
    next_seq = io[2]

    # Key -> slot open-addressed map (real keys only).
    kcap = _pow2_at_least(4 * k)
    kmask = kcap - 1
    kh_key = np.zeros(kcap, np.int64)
    kh_slot = np.full(kcap, -1, np.int64)
    kh_used = 0
    for slot in range(k):
        if dummy[slot] == 0:
            kh_used += _map_put(kh_key, kh_slot, kmask, keys[slot], slot)

    # Stored-value -> bucket map; buckets are intrusive doubly-linked slot
    # lists (bnext/bprev), mirroring the python engine's ``_buckets`` sets.
    vcap = _pow2_at_least(4 * k)
    vmask = vcap - 1
    vh_val = np.zeros(vcap, np.int64)
    vh_head = np.full(vcap, -1, np.int64)
    vh_used = 0
    bnext = np.full(k, -1, np.int64)
    bprev = np.full(k, -1, np.int64)
    for slot in range(k):
        value = stored[slot]
        vi = _map_find(vh_val, vh_head, vmask, value)
        if vi == -1:
            vh_used += _map_put(vh_val, vh_head, vmask, value, slot)
        else:
            head = vh_head[vi]
            bnext[slot] = head
            bprev[head] = slot
            vh_head[vi] = slot

    # Min-heap of zero-count eviction candidates ordered by
    # (dummy-last, smallest key/index first); entries invalidate lazily via
    # per-slot generation stamps, like the python engine's ``_zero_heap``.
    gen = np.zeros(k, np.int64)
    hcap = 4 * k + 64
    h_rank = np.zeros(hcap, np.int64)
    h_key = np.zeros(hcap, np.int64)
    h_slot = np.zeros(hcap, np.int64)
    h_gen = np.zeros(hcap, np.int64)
    h_len = 0

    # Seed the heap with the current zero set (the bucket at ``base``).
    vi = _map_find(vh_val, vh_head, vmask, base)
    if vi != -1:
        slot = vh_head[vi]
        while slot != -1:
            pos = h_len
            h_len += 1
            rank = dummy[slot]
            key = keys[slot]
            while pos > 0:
                parent = (pos - 1) >> 1
                if _heap_le(h_rank[parent], h_key[parent], rank, key):
                    break
                h_rank[pos] = h_rank[parent]
                h_key[pos] = h_key[parent]
                h_slot[pos] = h_slot[parent]
                h_gen[pos] = h_gen[parent]
                pos = parent
            h_rank[pos] = rank
            h_key[pos] = key
            h_slot[pos] = slot
            h_gen[pos] = gen[slot]
            slot = bnext[slot]

    n = chunk.shape[0]
    for index in range(n):
        element = chunk[index]

        # Rebuild a map once tombstones crowd it (amortized O(1) per update).
        if kh_used * 4 >= kcap * 3:
            for i in range(kcap):
                kh_slot[i] = -1
            kh_used = 0
            for slot in range(k):
                if dummy[slot] == 0:
                    kh_used += _map_put(kh_key, kh_slot, kmask, keys[slot], slot)
        if vh_used * 4 >= vcap * 3:
            for i in range(vcap):
                vh_head[i] = -1
            vh_used = 0
            for slot in range(k):
                bnext[slot] = -1
                bprev[slot] = -1
            for slot in range(k):
                value = stored[slot]
                vi = _map_find(vh_val, vh_head, vmask, value)
                if vi == -1:
                    vh_used += _map_put(vh_val, vh_head, vmask, value, slot)
                else:
                    head = vh_head[vi]
                    bnext[slot] = head
                    bprev[head] = slot
                    bprev[slot] = -1
                    vh_head[vi] = slot

        ki = _map_find(kh_key, kh_slot, kmask, element)
        if ki != -1:
            # Branch 1: increment the stored counter (move between buckets).
            slot = kh_slot[ki]
            value = stored[slot]
            prev = bprev[slot]
            nxt = bnext[slot]
            if prev == -1:
                vi = _map_find(vh_val, vh_head, vmask, value)
                if nxt == -1:
                    vh_head[vi] = -2
                else:
                    vh_head[vi] = nxt
                    bprev[nxt] = -1
            else:
                bnext[prev] = nxt
                if nxt != -1:
                    bprev[nxt] = prev
            value += 1
            stored[slot] = value
            vi = _map_find(vh_val, vh_head, vmask, value)
            if vi == -1:
                vh_used += _map_put(vh_val, vh_head, vmask, value, slot)
                bnext[slot] = -1
                bprev[slot] = -1
            else:
                head = vh_head[vi]
                bnext[slot] = head
                bprev[head] = slot
                bprev[slot] = -1
                vh_head[vi] = slot
            continue

        zi = _map_find(vh_val, vh_head, vmask, base)
        if zi == -1:
            # Branch 2: no zero-count key; decrement all counters lazily and
            # drop the element.  Keys that just reached zero join the heap.
            rounds += 1
            base += 1
            vi = _map_find(vh_val, vh_head, vmask, base)
            if vi != -1:
                slot = vh_head[vi]
                while slot != -1:
                    if h_len == hcap:
                        # Compact: rebuild from the (complete) zero bucket
                        # and stop pushing — the rebuild covers every slot
                        # this loop had left to visit.
                        h_len = 0
                        zslot = vh_head[vi]
                        while zslot != -1:
                            pos = h_len
                            h_len += 1
                            rank = dummy[zslot]
                            key = keys[zslot]
                            while pos > 0:
                                parent = (pos - 1) >> 1
                                if _heap_le(h_rank[parent], h_key[parent], rank, key):
                                    break
                                h_rank[pos] = h_rank[parent]
                                h_key[pos] = h_key[parent]
                                h_slot[pos] = h_slot[parent]
                                h_gen[pos] = h_gen[parent]
                                pos = parent
                            h_rank[pos] = rank
                            h_key[pos] = key
                            h_slot[pos] = zslot
                            h_gen[pos] = gen[zslot]
                            zslot = bnext[zslot]
                        break
                    pos = h_len
                    h_len += 1
                    rank = dummy[slot]
                    key = keys[slot]
                    while pos > 0:
                        parent = (pos - 1) >> 1
                        if _heap_le(h_rank[parent], h_key[parent], rank, key):
                            break
                        h_rank[pos] = h_rank[parent]
                        h_key[pos] = h_key[parent]
                        h_slot[pos] = h_slot[parent]
                        h_gen[pos] = h_gen[parent]
                        pos = parent
                    h_rank[pos] = rank
                    h_key[pos] = key
                    h_slot[pos] = slot
                    h_gen[pos] = gen[slot]
                    slot = bnext[slot]
            continue

        # Branch 3: evict the smallest zero-count key (dummies last), then
        # store the new element with counter base + 1.
        victim = -1
        while h_len > 0:
            top_slot = h_slot[0]
            top_gen = h_gen[0]
            # Pop the heap root.
            h_len -= 1
            last = h_len
            if last > 0:
                rank = h_rank[last]
                key = h_key[last]
                slot2 = h_slot[last]
                gen2 = h_gen[last]
                pos = 0
                while True:
                    child = 2 * pos + 1
                    if child >= last:
                        break
                    right = child + 1
                    if right < last and not _heap_le(
                            h_rank[child], h_key[child], h_rank[right], h_key[right]):
                        child = right
                    if _heap_le(rank, key, h_rank[child], h_key[child]):
                        break
                    h_rank[pos] = h_rank[child]
                    h_key[pos] = h_key[child]
                    h_slot[pos] = h_slot[child]
                    h_gen[pos] = h_gen[child]
                    pos = child
                h_rank[pos] = rank
                h_key[pos] = key
                h_slot[pos] = slot2
                h_gen[pos] = gen2
            # A heap entry is live iff the slot still holds the same key
            # (generation stamp) and that key still counts zero.
            if gen[top_slot] == top_gen and stored[top_slot] == base:
                victim = top_slot
                break
        if victim == -1:
            io[0] = base
            io[1] = rounds
            io[2] = next_seq
            return MG_CORRUPT

        # Unlink the victim from the zero bucket.
        prev = bprev[victim]
        nxt = bnext[victim]
        if prev == -1:
            if nxt == -1:
                vh_head[zi] = -2
            else:
                vh_head[zi] = nxt
                bprev[nxt] = -1
        else:
            bnext[prev] = nxt
            if nxt != -1:
                bprev[nxt] = prev
        if dummy[victim] == 0:
            kd = _map_find(kh_key, kh_slot, kmask, keys[victim])
            kh_slot[kd] = -2
        keys[victim] = element
        dummy[victim] = 0
        gen[victim] += 1
        ins_seq[victim] = next_seq
        next_seq += 1
        value = base + 1
        stored[victim] = value
        kh_used += _map_put(kh_key, kh_slot, kmask, element, victim)
        vi = _map_find(vh_val, vh_head, vmask, value)
        if vi == -1:
            vh_used += _map_put(vh_val, vh_head, vmask, value, victim)
            bnext[victim] = -1
            bprev[victim] = -1
        else:
            head = vh_head[vi]
            bnext[victim] = head
            bprev[head] = victim
            bprev[victim] = -1
            vh_head[vi] = victim

    io[0] = base
    io[1] = rounds
    io[2] = next_seq
    return MG_OK


@jit
def _select_kth(buf, n, pos):
    """The ``pos``-th smallest of ``buf[:n]`` (the same order statistic
    ``np.partition`` selects); scrambles ``buf``.  No NaNs (callers filter)."""
    lo = 0
    hi = n - 1
    while lo < hi:
        mid = (lo + hi) >> 1
        # Median-of-three pivot.
        a = buf[lo]
        b = buf[mid]
        c = buf[hi]
        if a > b:
            t = a
            a = b
            b = t
        if b > c:
            b = c
        if a > b:
            b = a
        pivot = b
        # Three-way partition around the pivot value.
        i = lo
        lt = lo
        gt = hi
        while i <= gt:
            v = buf[i]
            if v < pivot:
                buf[i] = buf[lt]
                buf[lt] = v
                lt += 1
                i += 1
            elif v > pivot:
                buf[i] = buf[gt]
                buf[gt] = v
                gt -= 1
                # Do not advance i: the swapped-in element is unexamined.
            else:
                i += 1
        if pos < lt:
            hi = lt - 1
        elif pos > gt:
            lo = gt + 1
        else:
            return pivot
    return buf[lo]


@jit
def fold_interned(flat_ids, flat_values, lengths, size, acc, active,
                  scratch_ids, scratch_vals, zero_live):
    """Scalar replica of :func:`repro.sketches.merge._fold_interned`.

    ``acc`` (``float64[domain]``, zeroed), ``active`` (``int64[>=size]``),
    ``scratch_ids``/``scratch_vals`` (``>= size + max(lengths)``) and
    ``zero_live`` (``>= size``) are caller-allocated.  Returns the number of
    live ids written to ``active`` (in the seed dict's insertion order).
    Callers must route NaN values to the python path: the quickselect's
    comparisons assume a total order.
    """
    n_active = 0
    n_zero = 0
    first = True
    start = 0
    for step in range(lengths.shape[0]):
        length = lengths[step]
        end = start + length
        ids = flat_ids[start:end]
        values = flat_values[start:end]
        start = end
        if first:
            first = False
            if length == 0:
                continue
            if length > size:
                # Over-sized first sketch: reduce through a merge with {}.
                pos = length - 1 - size
                for j in range(length):
                    scratch_vals[j] = values[j]
                offset = _select_kth(scratch_vals, length, pos)
                n_active = 0
                for j in range(length):
                    shifted = values[j] - offset
                    if shifted > 0.0:
                        acc[ids[j]] = shifted
                        active[n_active] = ids[j]
                        n_active += 1
                    else:
                        acc[ids[j]] = 0.0
            else:
                # Passed through verbatim; zero-valued counters stay live
                # until the second step drops (or refills) them.
                for j in range(length):
                    idv = ids[j]
                    acc[idv] = values[j]
                    active[j] = idv
                    if values[j] == 0.0:
                        zero_live[n_zero] = idv
                        n_zero += 1
                n_active = length
            continue
        if length == 0:
            if n_zero > 0:
                w = 0
                for j in range(n_active):
                    if acc[active[j]] > 0.0:
                        active[w] = active[j]
                        w += 1
                n_active = w
                n_zero = 0
            continue
        # Ids are unique within one sketch, so the vectorized gather-add
        # decomposes into these independent per-id scalar adds.
        n_comb = n_active
        for j in range(n_active):
            scratch_ids[j] = active[j]
        all_positive = True
        for j in range(length):
            idv = ids[j]
            value = values[j]
            if not (value > 0.0):
                all_positive = False
            before = acc[idv]
            fresh = before == 0.0
            if fresh and n_zero > 0:
                for t in range(n_zero):
                    if zero_live[t] == idv:
                        fresh = False
                        break
            acc[idv] = before + value
            if fresh:
                scratch_ids[n_comb] = idv
                n_comb += 1
        if n_comb > size:
            # Subtract the (k+1)-th largest combined counter, drop <= 0.
            pos = n_comb - 1 - size
            for j in range(n_comb):
                scratch_vals[j] = acc[scratch_ids[j]]
            offset = _select_kth(scratch_vals, n_comb, pos)
            w = 0
            for j in range(n_comb):
                idv = scratch_ids[j]
                shifted = acc[idv] - offset
                if shifted > 0.0:
                    acc[idv] = shifted
                    active[w] = idv
                    w += 1
                else:
                    acc[idv] = 0.0
            n_active = w
        elif n_zero == 0 and all_positive:
            # Strictly positive inputs cannot create zero counters.
            for j in range(n_comb):
                active[j] = scratch_ids[j]
            n_active = n_comb
        else:
            w = 0
            for j in range(n_comb):
                idv = scratch_ids[j]
                if acc[idv] > 0.0:
                    active[w] = idv
                    w += 1
                else:
                    acc[idv] = 0.0
            n_active = w
        n_zero = 0
    return n_active


# ---------------------------------------------------------------------------
# Binary frame header scanner
# ---------------------------------------------------------------------------
#
# The canonical header is ``json.dumps(header, sort_keys=True)`` of a flat
# object with keys drawn from (count, format, k, key_encoding, kind, meta),
# where meta is itself flat with keys from (decrement_rounds, sketch,
# stream_length).  The scanner accepts exactly that grammar — ASCII strings
# without escapes, int64-range integers, nulls, canonical key order — and
# reports SCAN_FALLBACK for anything else, handing the frame back to the
# ``json.loads`` path so non-canonical and malformed frames keep byte-exact
# python error behaviour.

@jit
def _scan_ws(buf, pos, end):
    while pos < end:
        c = buf[pos]
        if c != 32 and c != 9 and c != 10 and c != 13:
            break
        pos += 1
    return pos


@jit
def _scan_int(buf, pos, end):
    """Parse a JSON integer; returns (newpos, value, status)."""
    neg = False
    if pos < end and buf[pos] == 45:  # '-'
        neg = True
        pos += 1
    first = pos
    value = 0
    while pos < end:
        c = buf[pos]
        if c < 48 or c > 57:
            break
        # Widen before arithmetic: ``c`` is a uint8 scalar under numpy, and
        # uint8 would silently infect ``value`` and wrap mod 256.
        digit = np.int64(c) - 48
        if value > 922337203685477580 or (value == 922337203685477580 and digit > 7):
            return pos, 0, SCAN_FALLBACK  # beyond int64: python handles it
        value = value * 10 + digit
        pos += 1
    if pos == first:
        return pos, 0, SCAN_FALLBACK
    if buf[first] == 48 and pos - first > 1:
        return pos, 0, SCAN_FALLBACK  # leading zeros are invalid JSON
    if pos < end:
        c = buf[pos]
        if c == 46 or c == 101 or c == 69:  # '.', 'e', 'E': a float
            return pos, 0, SCAN_FALLBACK
    if neg:
        value = -value
    return pos, value, SCAN_OK


@jit
def _scan_string(buf, pos, end):
    """Parse a plain ASCII JSON string; returns (newpos, start, length, status)."""
    if pos >= end or buf[pos] != 34:  # '"'
        return pos, 0, 0, SCAN_FALLBACK
    pos += 1
    begin = pos
    while pos < end:
        c = buf[pos]
        if c == 34:
            return pos + 1, begin, pos - begin, SCAN_OK
        if c == 92 or c < 32 or c > 126:  # escapes / control / non-ASCII
            return pos, 0, 0, SCAN_FALLBACK
        pos += 1
    return pos, 0, 0, SCAN_FALLBACK


# Exact byte matchers for the canonical vocabulary.  Written as explicit
# indexed comparisons (not arrays/strings) so they compile in nopython mode
# and translate 1:1 to the C mirror.

@jit
def _is_count(buf, s, n):  # "count"
    return (n == 5 and buf[s] == 99 and buf[s + 1] == 111 and buf[s + 2] == 117
            and buf[s + 3] == 110 and buf[s + 4] == 116)


@jit
def _is_format(buf, s, n):  # "format"
    return (n == 6 and buf[s] == 102 and buf[s + 1] == 111 and buf[s + 2] == 114
            and buf[s + 3] == 109 and buf[s + 4] == 97 and buf[s + 5] == 116)


@jit
def _is_k(buf, s, n):  # "k"
    return n == 1 and buf[s] == 107


@jit
def _is_key_encoding(buf, s, n):  # "key_encoding"
    return (n == 12 and buf[s] == 107 and buf[s + 1] == 101 and buf[s + 2] == 121
            and buf[s + 3] == 95 and buf[s + 4] == 101 and buf[s + 5] == 110
            and buf[s + 6] == 99 and buf[s + 7] == 111 and buf[s + 8] == 100
            and buf[s + 9] == 105 and buf[s + 10] == 110 and buf[s + 11] == 103)


@jit
def _is_kind(buf, s, n):  # "kind"
    return (n == 4 and buf[s] == 107 and buf[s + 1] == 105 and buf[s + 2] == 110
            and buf[s + 3] == 100)


@jit
def _is_meta(buf, s, n):  # "meta"
    return (n == 4 and buf[s] == 109 and buf[s + 1] == 101 and buf[s + 2] == 116
            and buf[s + 3] == 97)


@jit
def _is_null_at(buf, pos, end):  # "null"
    return (pos + 4 <= end and buf[pos] == 110 and buf[pos + 1] == 117
            and buf[pos + 2] == 108 and buf[pos + 3] == 108)


@jit
def _is_decrement_rounds(buf, s, n):  # "decrement_rounds"
    return (n == 16 and buf[s] == 100 and buf[s + 1] == 101 and buf[s + 2] == 99
            and buf[s + 3] == 114 and buf[s + 4] == 101 and buf[s + 5] == 109
            and buf[s + 6] == 101 and buf[s + 7] == 110 and buf[s + 8] == 116
            and buf[s + 9] == 95 and buf[s + 10] == 114 and buf[s + 11] == 111
            and buf[s + 12] == 117 and buf[s + 13] == 110 and buf[s + 14] == 100
            and buf[s + 15] == 115)


@jit
def _is_sketch(buf, s, n):  # "sketch"
    return (n == 6 and buf[s] == 115 and buf[s + 1] == 107 and buf[s + 2] == 101
            and buf[s + 3] == 116 and buf[s + 4] == 99 and buf[s + 5] == 104)


@jit
def _is_stream_length(buf, s, n):  # "stream_length"
    return (n == 13 and buf[s] == 115 and buf[s + 1] == 116 and buf[s + 2] == 114
            and buf[s + 3] == 101 and buf[s + 4] == 97 and buf[s + 5] == 109
            and buf[s + 6] == 95 and buf[s + 7] == 108 and buf[s + 8] == 101
            and buf[s + 9] == 110 and buf[s + 10] == 103 and buf[s + 11] == 116
            and buf[s + 12] == 104)


@jit
def scan_binary_header(buf, out):
    """Scan a canonical binary-frame header into ``out`` (int64[16]).

    Returns SCAN_OK with the slots documented at the top of this module
    filled in, or SCAN_FALLBACK when the header deviates from the canonical
    grammar in any way.
    """
    for i in range(SCAN_OUT_SLOTS):
        out[i] = 0
    out[SCAN_KIND_LEN] = -1
    out[SCAN_SKETCH_LEN] = -1
    end = buf.shape[0]

    pos = _scan_ws(buf, 0, end)
    if pos >= end or buf[pos] != 123:  # '{'
        return SCAN_FALLBACK
    pos = _scan_ws(buf, pos + 1, end)
    if pos < end and buf[pos] == 125:  # empty object
        pos = _scan_ws(buf, pos + 1, end)
        if pos != end:
            return SCAN_FALLBACK
        return SCAN_OK
    # Canonical key order makes "seen" tracking a simple monotone index:
    # count(0) < format(1) < k(2) < key_encoding(3) < kind(4) < meta(5).
    last_key = -1
    while True:
        pos, kstart, klen, status = _scan_string(buf, pos, end)
        if status != SCAN_OK:
            return SCAN_FALLBACK
        pos = _scan_ws(buf, pos, end)
        if pos >= end or buf[pos] != 58:  # ':'
            return SCAN_FALLBACK
        pos = _scan_ws(buf, pos + 1, end)
        if pos >= end:
            return SCAN_FALLBACK
        if _is_count(buf, kstart, klen):
            if last_key >= 0:
                return SCAN_FALLBACK
            last_key = 0
            pos, value, status = _scan_int(buf, pos, end)
            if status != SCAN_OK:
                return SCAN_FALLBACK
            out[SCAN_HAS_COUNT] = 1
            out[SCAN_COUNT] = value
        elif _is_format(buf, kstart, klen):
            if last_key >= 1:
                return SCAN_FALLBACK
            last_key = 1
            if buf[pos] == 110:  # null -> header.get("format") is None
                if not _is_null_at(buf, pos, end):
                    return SCAN_FALLBACK
                pos += 4
            else:
                pos, value, status = _scan_int(buf, pos, end)
                if status != SCAN_OK:
                    return SCAN_FALLBACK
                out[SCAN_HAS_FORMAT] = 1
                out[SCAN_FORMAT] = value
        elif _is_k(buf, kstart, klen):
            if last_key >= 2:
                return SCAN_FALLBACK
            last_key = 2
            if buf[pos] == 110:
                if not _is_null_at(buf, pos, end):
                    return SCAN_FALLBACK
                pos += 4
            else:
                pos, value, status = _scan_int(buf, pos, end)
                if status != SCAN_OK:
                    return SCAN_FALLBACK
                out[SCAN_HAS_K] = 1
                out[SCAN_K] = value
        elif _is_key_encoding(buf, kstart, klen):
            if last_key >= 3:
                return SCAN_FALLBACK
            last_key = 3
            pos, _, _, status = _scan_string(buf, pos, end)
            if status != SCAN_OK:  # the python decoder ignores the value
                return SCAN_FALLBACK
        elif _is_kind(buf, kstart, klen):
            if last_key >= 4:
                return SCAN_FALLBACK
            last_key = 4
            pos, vstart, vlen, status = _scan_string(buf, pos, end)
            if status != SCAN_OK:
                return SCAN_FALLBACK
            out[SCAN_KIND_START] = vstart
            out[SCAN_KIND_LEN] = vlen
        elif _is_meta(buf, kstart, klen):
            if last_key >= 5:
                return SCAN_FALLBACK
            last_key = 5
            if pos >= end or buf[pos] != 123:
                return SCAN_FALLBACK
            pos = _scan_ws(buf, pos + 1, end)
            out[SCAN_HAS_META] = 1
            if pos < end and buf[pos] == 125:
                pos += 1
            else:
                meta_last = -1
                while True:
                    pos, mstart, mlen, status = _scan_string(buf, pos, end)
                    if status != SCAN_OK:
                        return SCAN_FALLBACK
                    pos = _scan_ws(buf, pos, end)
                    if pos >= end or buf[pos] != 58:
                        return SCAN_FALLBACK
                    pos = _scan_ws(buf, pos + 1, end)
                    if pos >= end:
                        return SCAN_FALLBACK
                    if _is_decrement_rounds(buf, mstart, mlen):
                        if meta_last >= 0:
                            return SCAN_FALLBACK
                        meta_last = 0
                        pos, value, status = _scan_int(buf, pos, end)
                        if status != SCAN_OK:
                            return SCAN_FALLBACK
                        out[SCAN_HAS_DECREMENT_ROUNDS] = 1
                        out[SCAN_DECREMENT_ROUNDS] = value
                    elif _is_sketch(buf, mstart, mlen):
                        if meta_last >= 1:
                            return SCAN_FALLBACK
                        meta_last = 1
                        pos, vstart, vlen, status = _scan_string(buf, pos, end)
                        if status != SCAN_OK:
                            return SCAN_FALLBACK
                        out[SCAN_SKETCH_START] = vstart
                        out[SCAN_SKETCH_LEN] = vlen
                    elif _is_stream_length(buf, mstart, mlen):
                        if meta_last >= 2:
                            return SCAN_FALLBACK
                        meta_last = 2
                        pos, value, status = _scan_int(buf, pos, end)
                        if status != SCAN_OK:
                            return SCAN_FALLBACK
                        out[SCAN_HAS_STREAM_LENGTH] = 1
                        out[SCAN_STREAM_LENGTH] = value
                    else:
                        return SCAN_FALLBACK
                    pos = _scan_ws(buf, pos, end)
                    if pos < end and buf[pos] == 44:  # ','
                        pos = _scan_ws(buf, pos + 1, end)
                        continue
                    if pos < end and buf[pos] == 125:  # '}'
                        pos += 1
                        break
                    return SCAN_FALLBACK
        else:
            return SCAN_FALLBACK
        pos = _scan_ws(buf, pos, end)
        if pos < end and buf[pos] == 44:
            pos = _scan_ws(buf, pos + 1, end)
            continue
        if pos < end and buf[pos] == 125:
            pos = _scan_ws(buf, pos + 1, end)
            break
        return SCAN_FALLBACK
    if pos != end:
        return SCAN_FALLBACK
    return SCAN_OK
