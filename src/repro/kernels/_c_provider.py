"""Compiled kernel provider backed by the system C toolchain.

Builds :data:`repro.kernels._c_src.C_SOURCE` once into a shared object with
``cc -O2 -fPIC -shared`` (no extra dependencies — just a working C compiler)
and loads it through :mod:`ctypes`.  The binary is cached under
``$REPRO_KERNELS_CACHE`` (default ``~/.cache/repro-kernels``) keyed on a hash
of the source text, so editing the C invalidates stale builds and concurrent
processes converge on one file via an atomic rename.

The provider degrades to *unavailable* — never an import error — when no
compiler exists, the build fails, or the cache directory cannot be written;
:func:`error` keeps the reason for ``kernel_info()``.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import shutil
import subprocess
import tempfile
from typing import Dict, Optional

import numpy as np

from ._c_src import C_SOURCE, SOURCE_VERSION

PROVIDER_NAME = "cc"

_lib = None
_kernels: Optional[Dict] = None
_error: Optional[str] = None
_loaded = False

_I64 = np.ctypeslib.ndpointer(dtype=np.int64, flags="C_CONTIGUOUS")
_F64 = np.ctypeslib.ndpointer(dtype=np.float64, flags="C_CONTIGUOUS")
_U8 = np.ctypeslib.ndpointer(dtype=np.uint8, flags="C_CONTIGUOUS")


def cache_dir() -> str:
    """The build-cache directory (``REPRO_KERNELS_CACHE`` overrides)."""
    override = os.environ.get("REPRO_KERNELS_CACHE")
    if override:
        return override
    return os.path.join(os.path.expanduser("~"), ".cache", "repro-kernels")


def _find_compiler() -> Optional[str]:
    override = os.environ.get("REPRO_KERNELS_CC")
    if override:
        return override if shutil.which(override) else None
    for name in ("cc", "gcc", "clang"):
        path = shutil.which(name)
        if path:
            return path
    return None


def _source_tag() -> str:
    digest = hashlib.sha256(
        f"v{SOURCE_VERSION}:".encode() + C_SOURCE.encode()).hexdigest()
    return digest[:16]


def shared_object_path() -> str:
    return os.path.join(cache_dir(), f"repro_kernels_{_source_tag()}.so")


def _build_shared_object() -> str:
    """Compile the C source into the cache; returns the .so path."""
    target = shared_object_path()
    if os.path.exists(target):
        return target
    compiler = _find_compiler()
    if compiler is None:
        raise RuntimeError("no C compiler found (tried $REPRO_KERNELS_CC, cc, gcc, clang)")
    directory = cache_dir()
    os.makedirs(directory, exist_ok=True)
    fd, c_path = tempfile.mkstemp(suffix=".c", dir=directory)
    so_tmp = c_path[:-2] + ".so"
    try:
        with os.fdopen(fd, "w") as handle:
            handle.write(C_SOURCE)
        result = subprocess.run(
            [compiler, "-O2", "-fPIC", "-shared", "-o", so_tmp, c_path],
            capture_output=True, text=True, timeout=120)
        if result.returncode != 0:
            raise RuntimeError(
                f"{compiler} failed ({result.returncode}): {result.stderr.strip()[:500]}")
        # Atomic publish: concurrent builders race benignly to the same name.
        os.replace(so_tmp, target)
    finally:
        for leftover in (c_path, so_tmp):
            try:
                os.unlink(leftover)
            except OSError:
                pass
    return target


def _bind(lib) -> Dict:
    lib.repro_mg_update.restype = ctypes.c_int64
    lib.repro_mg_update.argtypes = [_I64, _I64, _I64, _I64, _I64,
                                    ctypes.c_int64, _I64, ctypes.c_int64]
    lib.repro_fold_interned.restype = ctypes.c_int64
    lib.repro_fold_interned.argtypes = [_I64, _F64, _I64, ctypes.c_int64,
                                        ctypes.c_int64, _F64, _I64, _I64,
                                        _F64, _I64, _I64]
    lib.repro_scan_header.restype = ctypes.c_int64
    lib.repro_scan_header.argtypes = [_U8, ctypes.c_int64, _I64]

    def mg_update(keys, dummy, stored, ins_seq, io, chunk):
        status = lib.repro_mg_update(keys, dummy, stored, ins_seq, io,
                                     keys.shape[0], chunk, chunk.shape[0])
        if status == 2:
            raise MemoryError("repro_mg_update: allocation failed")
        return int(status)

    def fold_interned(flat_ids, flat_values, lengths, size, acc, active,
                      scratch_ids, scratch_vals, zero_live):
        out_n = np.zeros(1, dtype=np.int64)
        lib.repro_fold_interned(flat_ids, flat_values, lengths,
                                lengths.shape[0], size, acc, active,
                                scratch_ids, scratch_vals, zero_live, out_n)
        return int(out_n[0])

    def scan_binary_header(buf, out):
        return int(lib.repro_scan_header(buf, buf.shape[0], out))

    return {"mg_update": mg_update, "fold_interned": fold_interned,
            "scan_binary_header": scan_binary_header}


def load() -> Optional[Dict]:
    """Kernel table for this provider, or ``None`` (reason in :func:`error`)."""
    global _lib, _kernels, _error, _loaded
    if _loaded:
        return _kernels
    _loaded = True
    try:
        path = _build_shared_object()
        _lib = ctypes.CDLL(path)
        _kernels = _bind(_lib)
    except Exception as exc:  # degrade to unavailable, keep the reason
        _error = f"{type(exc).__name__}: {exc}"
        _kernels = None
    return _kernels


def available() -> bool:
    return load() is not None


def error() -> Optional[str]:
    load()
    return _error


def info() -> Dict:
    table = load()
    return {
        "name": PROVIDER_NAME,
        "available": table is not None,
        "error": _error,
        "kernels": sorted(table) if table else [],
        "artifact": shared_object_path() if table is not None else None,
    }


def reset_for_tests() -> None:
    """Forget the load result so tests can flip cache/compiler env vars."""
    global _lib, _kernels, _error, _loaded
    _lib = None
    _kernels = None
    _error = None
    _loaded = False
