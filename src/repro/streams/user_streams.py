"""User-level (set-valued) stream generation for Section 8.

In the user-level setting each stream item is a *set* of up to ``m`` distinct
elements contributed by a single user; neighbouring streams differ by one
whole user.  These generators produce such streams plus the flattening helper
used when feeding them to an element-level sketch (Lemma 20 route).
"""

from __future__ import annotations

from typing import FrozenSet, Iterable, List, Sequence

import numpy as np

from .._validation import check_non_negative_int, check_positive_float, check_positive_int
from ..exceptions import StreamFormatError
from ..dp.rng import RandomState, ensure_rng

UserSet = FrozenSet[int]


def distinct_user_stream(num_users: int, universe_size: int, max_contribution: int,
                         exponent: float = 1.1, rng: RandomState = None) -> List[UserSet]:
    """Users each contributing a set of up to ``max_contribution`` distinct elements.

    Each user's set size is drawn uniformly from ``[1, max_contribution]`` and
    its elements are sampled without replacement from a Zipf-shaped popularity
    distribution, so popular elements appear in many users' sets.
    """
    n = check_non_negative_int(num_users, "num_users")
    d = check_positive_int(universe_size, "universe_size")
    m = check_positive_int(max_contribution, "max_contribution")
    s = check_positive_float(exponent, "exponent")
    if m > d:
        raise StreamFormatError("max_contribution cannot exceed the universe size")
    generator = ensure_rng(rng)
    weights = 1.0 / np.power(np.arange(1, d + 1, dtype=float), s)
    probabilities = weights / weights.sum()
    stream: List[UserSet] = []
    for _ in range(n):
        size = int(generator.integers(1, m + 1))
        elements = generator.choice(d, size=size, replace=False, p=probabilities)
        stream.append(frozenset(int(x) for x in elements))
    return stream


def duplicate_user_stream(num_users: int, universe_size: int, max_contribution: int,
                          exponent: float = 1.1, rng: RandomState = None) -> List[tuple]:
    """Users contributing up to ``max_contribution`` *possibly repeated* elements.

    Returned items are tuples rather than frozensets because duplicates are
    allowed.  This is the harder setting of Corollary 21 / Lemma 22 where the
    noise must scale linearly with ``m``.
    """
    n = check_non_negative_int(num_users, "num_users")
    d = check_positive_int(universe_size, "universe_size")
    m = check_positive_int(max_contribution, "max_contribution")
    s = check_positive_float(exponent, "exponent")
    generator = ensure_rng(rng)
    weights = 1.0 / np.power(np.arange(1, d + 1, dtype=float), s)
    probabilities = weights / weights.sum()
    stream: List[tuple] = []
    for _ in range(n):
        size = int(generator.integers(1, m + 1))
        elements = generator.choice(d, size=size, replace=True, p=probabilities)
        stream.append(tuple(int(x) for x in elements))
    return stream


def flatten_user_stream(stream: Iterable[Iterable[int]], sort_within_user: bool = True) -> List[int]:
    """Flatten a user-level stream into an element stream.

    The paper's flattening processes each user's elements "in some fixed
    order (e.g. ascending order)"; ``sort_within_user=True`` reproduces that.
    """
    flattened: List[int] = []
    for user_set in stream:
        elements = list(user_set)
        if sort_within_user:
            elements = sorted(elements, key=repr)
        flattened.extend(elements)
    return flattened


def user_stream_total_length(stream: Iterable[Iterable[int]]) -> int:
    """Total number of elements ``N`` across all users."""
    return sum(len(list(user_set)) for user_set in stream)


def validate_user_stream(stream: Sequence[Iterable[int]], max_contribution: int,
                         require_distinct: bool = True) -> None:
    """Raise :class:`StreamFormatError` if any user violates the contribution bound.

    ``require_distinct`` also rejects users whose contribution contains
    duplicates, matching the setting of Algorithm 4 / Theorem 30.
    """
    m = check_positive_int(max_contribution, "max_contribution")
    for index, user in enumerate(stream):
        items = list(user)
        if len(items) > m:
            raise StreamFormatError(
                f"user {index} contributes {len(items)} elements, more than m={m}")
        if require_distinct and len(set(items)) != len(items):
            raise StreamFormatError(f"user {index} contributes duplicate elements")
