"""Stream persistence: newline-delimited plain-text streams.

Streams are stored one item per line.  Flat element streams store the element
(int or string) directly; user-level streams store the user's elements as a
comma-separated list.  The format is deliberately trivial so that traces can
be produced or inspected with standard command-line tools.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, Iterator, List, Sequence, Union

from ..exceptions import StreamFormatError

PathLike = Union[str, Path]


def write_stream(path: PathLike, stream: Iterable, user_level: bool = False) -> int:
    """Write a stream to ``path``; returns the number of items written.

    ``user_level=True`` expects each item to be an iterable of elements and
    stores it as a comma-separated line.
    """
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    count = 0
    with target.open("w", encoding="utf-8") as handle:
        for item in stream:
            if user_level:
                parts = [str(element) for element in item]
                if any("," in part or "\n" in part for part in parts):
                    raise StreamFormatError("user-level elements must not contain ',' or newlines")
                handle.write(",".join(parts) + "\n")
            else:
                text = str(item)
                if "\n" in text:
                    raise StreamFormatError("stream elements must not contain newlines")
                handle.write(text + "\n")
            count += 1
    return count


def read_stream(path: PathLike, user_level: bool = False,
                parse_int: bool = True) -> List:
    """Read a stream previously written by :func:`write_stream`.

    ``parse_int=True`` converts elements that look like integers back to int,
    leaving other tokens as strings.
    """
    source = Path(path)
    items: List = []
    with source.open("r", encoding="utf-8") as handle:
        for line in handle:
            line = line.rstrip("\n")
            if not line and not user_level:
                continue
            if user_level:
                elements = [_parse_token(token, parse_int) for token in line.split(",") if token]
                items.append(frozenset(elements))
            else:
                items.append(_parse_token(line, parse_int))
    return items


def iter_stream(path: PathLike, parse_int: bool = True) -> Iterator:
    """Lazily iterate over a flat element stream without loading it in memory."""
    source = Path(path)
    with source.open("r", encoding="utf-8") as handle:
        for line in handle:
            line = line.rstrip("\n")
            if line:
                yield _parse_token(line, parse_int)


def _parse_token(token: str, parse_int: bool):
    if not parse_int:
        return token
    try:
        return int(token)
    except ValueError:
        return token
