"""Named synthetic datasets used by the examples and benchmarks.

The paper's motivating applications are high-volume streams such as network
monitoring and search-query logs.  Since no real traces ship with the paper
(and none are needed for a pure-algorithm reproduction), this module provides
reproducible synthetic stand-ins with realistic shape: heavy-tailed element
popularity and, for the user-level dataset, bounded per-user contributions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Union

from ..exceptions import ParameterError
from ..dp.rng import RandomState
from .generators import planted_heavy_hitters_stream, uniform_stream, zipf_stream
from .user_streams import distinct_user_stream


@dataclass(frozen=True)
class SyntheticDataset:
    """A named, reproducible synthetic workload.

    ``stream`` is either a flat element stream (list of ints) or a user-level
    stream (list of frozensets) depending on ``user_level``.
    """

    name: str
    description: str
    stream: Union[List[int], List[frozenset]]
    universe_size: int
    user_level: bool = False

    @property
    def length(self) -> int:
        """Number of stream items (elements, or users for user-level data)."""
        return len(self.stream)


def _network_flows(n: int, rng: RandomState) -> SyntheticDataset:
    """Synthetic stand-in for a network-flow destination log (very skewed)."""
    universe = 50_000
    stream = zipf_stream(n, universe, exponent=1.3, rng=rng)
    return SyntheticDataset(
        name="network_flows",
        description=("Synthetic network monitoring trace: destination identifiers with "
                     "Zipf(1.3) popularity over a 50k-address universe."),
        stream=stream,
        universe_size=universe,
    )


def _search_queries(n: int, rng: RandomState) -> SyntheticDataset:
    """Synthetic stand-in for a search-query log (moderately skewed)."""
    universe = 200_000
    stream = zipf_stream(n, universe, exponent=1.1, rng=rng)
    return SyntheticDataset(
        name="search_queries",
        description=("Synthetic search-query log: query identifiers with Zipf(1.1) "
                     "popularity over a 200k-query universe."),
        stream=stream,
        universe_size=universe,
    )


def _flat_background(n: int, rng: RandomState) -> SyntheticDataset:
    """A nearly-uniform workload where there are no true heavy hitters."""
    universe = 100_000
    stream = uniform_stream(n, universe, rng=rng)
    return SyntheticDataset(
        name="flat_background",
        description="Uniform background traffic over a 100k universe (no heavy hitters).",
        stream=stream,
        universe_size=universe,
    )


def _planted_heavy_hitters(n: int, rng: RandomState) -> SyntheticDataset:
    """A workload with 20 planted heavy hitters holding half of the mass."""
    universe = 100_000
    stream = planted_heavy_hitters_stream(n, universe, num_heavy=20,
                                          heavy_fraction=0.5, rng=rng)
    return SyntheticDataset(
        name="planted_heavy_hitters",
        description="20 planted heavy hitters carrying 50% of a 100k-universe stream.",
        stream=stream,
        universe_size=universe,
    )


def _user_purchases(n: int, rng: RandomState) -> SyntheticDataset:
    """Synthetic user-level dataset: each user contributes up to 8 distinct items."""
    universe = 20_000
    stream = distinct_user_stream(n, universe, max_contribution=8, exponent=1.2, rng=rng)
    return SyntheticDataset(
        name="user_purchases",
        description=("User-level purchases: each of the n users contributes a set of up to 8 "
                     "distinct item identifiers, Zipf(1.2) popularity, 20k-item universe."),
        stream=stream,
        universe_size=universe,
        user_level=True,
    )


_REGISTRY: Dict[str, Callable[[int, RandomState], SyntheticDataset]] = {
    "network_flows": _network_flows,
    "search_queries": _search_queries,
    "flat_background": _flat_background,
    "planted_heavy_hitters": _planted_heavy_hitters,
    "user_purchases": _user_purchases,
}


def list_datasets() -> List[str]:
    """Names of the available synthetic datasets."""
    return sorted(_REGISTRY.keys())


def load_dataset(name: str, n: int = 100_000, rng: RandomState = 0) -> SyntheticDataset:
    """Generate the named dataset with ``n`` items using seed/generator ``rng``.

    Datasets are generated on the fly (nothing is stored on disk) so ``rng``
    fully determines the content; the default seed 0 makes examples and
    benchmarks reproducible out of the box.
    """
    try:
        factory = _REGISTRY[name]
    except KeyError as exc:
        known = ", ".join(list_datasets())
        raise ParameterError(f"unknown dataset {name!r}; available: {known}") from exc
    return factory(n, rng)
