"""Splitting a stream across several servers for the merging experiments.

Section 7 of the paper considers a dataset distributed over many servers,
each holding one or more streams.  These helpers split a single synthetic
stream into ``parts`` sub-streams either contiguously (server i sees a
contiguous time window) or round-robin (elements are spread evenly).
"""

from __future__ import annotations

from typing import List, Sequence, TypeVar

import numpy as np

from .._validation import check_positive_int

T = TypeVar("T")


def split_contiguous(stream: Sequence[T], parts: int) -> List[Sequence[T]]:
    """Split ``stream`` into ``parts`` contiguous chunks of near-equal length.

    NumPy arrays are split into array *views* (same chunk boundaries, no
    copies), so a columnar stream stays columnar all the way into the
    vectorized sketch batch path; any other input is materialized into
    per-chunk lists.
    """
    count = check_positive_int(parts, "parts")
    items = stream if isinstance(stream, np.ndarray) else list(stream)
    n = len(items)
    chunks: List[Sequence[T]] = []
    base, remainder = divmod(n, count)
    start = 0
    for index in range(count):
        length = base + (1 if index < remainder else 0)
        chunks.append(items[start:start + length])
        start += length
    return chunks


def split_round_robin(stream: Sequence[T], parts: int) -> List[List[T]]:
    """Split ``stream`` into ``parts`` chunks by dealing elements round-robin."""
    count = check_positive_int(parts, "parts")
    chunks: List[List[T]] = [[] for _ in range(count)]
    for index, item in enumerate(stream):
        chunks[index % count].append(item)
    return chunks
