"""Random stream generators over an integer universe ``[0, d)``.

By default all generators return Python lists of ints so they can be fed
directly to any sketch, stored with :mod:`repro.streams.io` and sliced for
distributed merging; the lists are produced with ``ndarray.tolist()`` (a
single C call) rather than a per-element ``int(x)`` loop.  The random
generators also accept ``as_array=True`` to return the raw integer ndarray,
which feeds :meth:`repro.sketches.MisraGriesSketch.update_batch` with zero
copies.  Every generator takes an ``rng`` seed/generator for reproducibility.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from .._validation import check_non_negative_int, check_positive_float, check_positive_int
from ..dp.rng import RandomState, ensure_rng


def zipf_stream(n: int, universe_size: int, exponent: float = 1.1,
                rng: RandomState = None, as_array: bool = False):
    """A stream of ``n`` elements with Zipf-distributed frequencies.

    Element ``i`` of the universe is drawn with probability proportional to
    ``1 / (i + 1) ** exponent``; low-numbered elements are the heavy hitters.
    This is the standard workload for evaluating heavy-hitter sketches.

    Parameters
    ----------
    n:
        Stream length.
    universe_size:
        Size ``d`` of the universe; the stream contains ints in ``[0, d)``.
    exponent:
        Skew parameter ``s > 0``; larger means more skewed.
    rng:
        Seed or generator.
    as_array:
        Return the integer ndarray instead of a list (batch-update ready).
    """
    length = check_non_negative_int(n, "n")
    d = check_positive_int(universe_size, "universe_size")
    s = check_positive_float(exponent, "exponent")
    generator = ensure_rng(rng)
    if length == 0:
        return np.empty(0, dtype=np.int64) if as_array else []
    weights = 1.0 / np.power(np.arange(1, d + 1, dtype=float), s)
    probabilities = weights / weights.sum()
    samples = generator.choice(d, size=length, p=probabilities)
    return samples if as_array else samples.tolist()


def uniform_stream(n: int, universe_size: int, rng: RandomState = None,
                   as_array: bool = False):
    """A stream of ``n`` elements drawn uniformly from ``[0, universe_size)``."""
    length = check_non_negative_int(n, "n")
    d = check_positive_int(universe_size, "universe_size")
    generator = ensure_rng(rng)
    if length == 0:
        return np.empty(0, dtype=np.int64) if as_array else []
    samples = generator.integers(0, d, size=length)
    return samples if as_array else samples.tolist()


def constant_stream(n: int, element: int = 0) -> List[int]:
    """A stream consisting of ``n`` copies of a single element."""
    length = check_non_negative_int(n, "n")
    return [int(element)] * length


def shuffled_exact_frequencies(frequencies: dict, rng: RandomState = None) -> List[int]:
    """A stream realizing exactly the given ``{element: count}`` frequencies.

    The elements are shuffled so that the stream order carries no signal; the
    exact counts make it easy to verify error bounds deterministically.
    """
    generator = ensure_rng(rng)
    stream: List[int] = []
    for element, count in frequencies.items():
        checked = check_non_negative_int(int(count), "count")
        stream.extend([element] * checked)
    generator.shuffle(stream)
    return stream


def planted_heavy_hitters_stream(n: int, universe_size: int, num_heavy: int,
                                 heavy_fraction: float = 0.5,
                                 rng: RandomState = None,
                                 as_array: bool = False):
    """A stream where ``num_heavy`` planted elements share ``heavy_fraction`` of the mass.

    The remaining mass is spread uniformly over the rest of the universe.
    Useful for heavy-hitter precision/recall experiments where the ground
    truth set is known by construction.
    """
    length = check_non_negative_int(n, "n")
    d = check_positive_int(universe_size, "universe_size")
    h = check_positive_int(num_heavy, "num_heavy")
    if h >= d:
        raise ValueError("num_heavy must be smaller than universe_size")
    if not (0 < heavy_fraction < 1):
        raise ValueError(f"heavy_fraction must be in (0,1), got {heavy_fraction}")
    generator = ensure_rng(rng)
    if length == 0:
        return np.empty(0, dtype=np.int64) if as_array else []
    probabilities = np.full(d, (1.0 - heavy_fraction) / (d - h))
    probabilities[:h] = heavy_fraction / h
    probabilities = probabilities / probabilities.sum()
    samples = generator.choice(d, size=length, p=probabilities)
    return samples if as_array else samples.tolist()
