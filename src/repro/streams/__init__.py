"""Workload generation: synthetic streams for experiments and tests.

The paper evaluates no real-world dataset (it is a theory paper), so all
workloads here are synthetic, matching the standard heavy-hitter evaluation
setup: Zipf-distributed streams with varying skew, uniform streams,
adversarial / worst-case constructions from the paper's lower-bound arguments,
and user-level set-valued streams for Section 8.
"""

from .adversarial import (
    alternating_stream,
    lemma25_streams,
    mg_worst_case_stream,
    tight_error_stream,
)
from .datasets import SyntheticDataset, load_dataset, list_datasets
from .generators import (
    constant_stream,
    shuffled_exact_frequencies,
    uniform_stream,
    zipf_stream,
)
from .io import read_stream, write_stream
from .user_streams import (
    duplicate_user_stream,
    flatten_user_stream,
    distinct_user_stream,
    user_stream_total_length,
)
from .splitting import split_round_robin, split_contiguous

__all__ = [
    "SyntheticDataset",
    "alternating_stream",
    "constant_stream",
    "distinct_user_stream",
    "duplicate_user_stream",
    "flatten_user_stream",
    "lemma25_streams",
    "list_datasets",
    "load_dataset",
    "mg_worst_case_stream",
    "read_stream",
    "shuffled_exact_frequencies",
    "split_contiguous",
    "split_round_robin",
    "tight_error_stream",
    "uniform_stream",
    "user_stream_total_length",
    "write_stream",
    "zipf_stream",
]
