"""Worst-case stream constructions used in the paper's arguments.

* :func:`mg_worst_case_stream` realizes the Fact 7 lower bound: ``k + 1``
  distinct elements with equal frequency force any ``k``-counter summary to
  drop one of them, so an error of ``n / (k + 1)`` is unavoidable.
* :func:`lemma25_streams` constructs the neighbouring pair of user-level
  streams from Lemma 25 where a *single* Misra-Gries counter differs by ``m``,
  showing that the MG sketch cannot avoid noise scaling with ``m``.
* :func:`alternating_stream` keeps the decrement branch firing as often as
  possible, maximizing the error accumulated by counter-based sketches.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from .._validation import check_non_negative_int, check_positive_int
from ..exceptions import ParameterError


def mg_worst_case_stream(k: int, repetitions: int) -> List[int]:
    """``k + 1`` distinct elements, each appearing ``repetitions`` times, interleaved.

    On this stream a Misra-Gries sketch of size ``k`` reports 0 for at least
    one element whose true frequency is ``repetitions = n / (k + 1)``, matching
    the Fact 7 bound exactly.
    """
    size = check_positive_int(k, "k")
    reps = check_non_negative_int(repetitions, "repetitions")
    stream: List[int] = []
    for _ in range(reps):
        stream.extend(range(size + 1))
    return stream


def tight_error_stream(k: int, n: int) -> List[int]:
    """A stream of length approximately ``n`` achieving error close to ``n/(k+1)``.

    Rounds ``n`` down to a multiple of ``k + 1`` and interleaves ``k + 1``
    distinct elements.
    """
    size = check_positive_int(k, "k")
    length = check_non_negative_int(n, "n")
    repetitions = length // (size + 1)
    return mg_worst_case_stream(size, repetitions)


def alternating_stream(k: int, rounds: int, heavy_element: int = 0) -> List[int]:
    """A stream alternating one heavy element with bursts of fresh elements.

    Each round contributes one occurrence of ``heavy_element`` followed by
    ``k`` distinct never-repeated elements, so the decrement branch fires once
    per round and the heavy element's counter stays pinned near zero even
    though its true frequency is ``rounds``.
    """
    size = check_positive_int(k, "k")
    count = check_non_negative_int(rounds, "rounds")
    stream: List[int] = []
    fresh = heavy_element + 1
    for _ in range(count):
        stream.append(heavy_element)
        stream.extend(range(fresh, fresh + size))
        fresh += size
    return stream


def lemma25_streams(k: int, m: int, tail_length: int = 0,
                    target_element: str = "x") -> Tuple[List[frozenset], List[frozenset]]:
    """The neighbouring user-level streams of Lemma 25.

    Returns a pair ``(stream, neighbour)`` of user-level streams (lists of
    frozensets) such that the Misra-Gries sketch computed on the flattened
    streams has ``counter(target_element)`` differing by exactly ``m`` between
    the two.  ``neighbour`` is ``stream`` with user ``k+1`` removed.

    Construction (following the proof): the first ``k`` users contribute
    ``m`` copies of ``k`` distinct padding elements arranged by cycling, the
    ``(k+1)``-th user contributes ``m`` fresh padding elements (forcing a full
    decrement on ``stream`` only), and the remaining ``m + tail_length`` users
    contribute the singleton ``{target_element}``.
    """
    size = check_positive_int(k, "k")
    contribution = check_positive_int(m, "m")
    tail = check_non_negative_int(tail_length, "tail_length")
    if contribution > size:
        raise ParameterError("Lemma 25 construction requires m <= k")
    padding = [f"pad-{i}" for i in range(size)]
    users: List[frozenset] = []
    # k users cycling through the padding elements, m at a time: element j is
    # contained in exactly m of these user sets.
    position = 0
    for _ in range(size):
        chosen = [padding[(position + offset) % size] for offset in range(contribution)]
        users.append(frozenset(chosen))
        position = (position + contribution) % size
    # The user that is removed in the neighbouring stream: m fresh elements.
    extra_user = frozenset(f"extra-{i}" for i in range(contribution))
    users_with_extra = users + [extra_user]
    # Tail of singleton {target_element} users.
    tail_users = [frozenset({target_element})] * (contribution + tail)
    stream = users_with_extra + tail_users
    neighbour = users + tail_users
    return stream, neighbour
