"""`repro.obs`: zero-dependency observability for the aggregation service.

Four pieces, layered so the core stays import-light:

* :mod:`repro.obs.metrics` — process-local counters, gauges and
  sliding-window histograms (:class:`MetricsRegistry`), plus the disabled
  :data:`NULL_METRICS` registry that makes instrumentation sites
  branch-free.
* :mod:`repro.obs.trace` — :class:`Tracer` span timing around the
  accept -> fold -> commit -> release lifecycle, with optional structured
  JSON log emission (``repro serve --log-json``).
* :mod:`repro.obs.console` — the ``repro status`` operator console
  (plain-ANSI live refresh over repeated STATS polls) and the shared
  stats renderer the CLI uses.
* :mod:`repro.obs.loadgen` — the ``repro loadgen`` harness: 10^4-10^6
  simulated clients against a flat server or a self-hosted relay tree.

Import discipline: this package root re-exports **only** metrics and
trace, which depend on nothing but the standard library — so
:mod:`repro.net` can import them without a cycle.  ``console`` and
``loadgen`` import :mod:`repro.net` and are therefore imported lazily, as
explicit submodules, by the CLI handlers that need them.
"""

from .metrics import (METRICS_VERSION, Counter, Gauge, Histogram,
                      MetricsRegistry, NullMetrics, NULL_METRICS, as_registry)
from .trace import NULL_TRACER, Tracer

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullMetrics",
    "NULL_METRICS",
    "METRICS_VERSION",
    "as_registry",
    "Tracer",
    "NULL_TRACER",
]
