"""Process-local metrics: counters, gauges and sliding-window histograms.

Zero-dependency observability for the aggregation service (`repro.net`).
A :class:`MetricsRegistry` lives inside one process (one per
:class:`~repro.net.server.AggregatorServer`, one per ``repro loadgen`` run)
and is a **pure read-side layer**: nothing in here touches the fold, the
release RNG or the wire bytes, so an instrumented server releases
bit-identically to an uninstrumented one (property-tested in
``tests/property/test_obs_equivalence.py``).

Three instrument kinds, all write-cheap (an attribute bump or a deque
append) because they sit on the per-frame hot path:

* :class:`Counter` — monotonic totals (``server.frames_total``).
* :class:`Gauge` — last-set values (``forward.queue_depth``).
* :class:`Histogram` — a ring buffer of ``(timestamp, value)`` samples over
  a sliding wall-clock window; :meth:`Histogram.summary` reports
  count/mean/p50/p90/p99/max over the samples still inside the window
  (nearest-rank percentiles).  The ring (``maxlen``) bounds memory under
  any load; the window bounds staleness.

Clocks are injectable everywhere (``clock`` drives window eviction,
:attr:`MetricsRegistry.clock` is the duration clock instrumentation sites
use), so the unit suite exercises window semantics without a single real
sleep.  :data:`NULL_METRICS` is the disabled registry: same API, every
write a no-op, ``snapshot()`` is ``None`` — servers constructed with
``metrics=False`` pay only a method call per instrumentation site.

Naming scheme (DESIGN.md "Observability"): dotted
``<component>.<quantity>_<unit>`` — ``server.fold_seconds``,
``wal.fsync_seconds``, ``budget.epsilon_spent`` — with histogram names
always unit-suffixed so the console can label axes without a lookup table.
"""

from __future__ import annotations

import time
from collections import deque
from typing import Callable, Dict, Optional

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry",
           "NullMetrics", "NULL_METRICS", "METRICS_VERSION", "as_registry"]

#: Version of the ``metrics`` STATS stanza (:meth:`MetricsRegistry.snapshot`).
#: Bump on any breaking change to the stanza layout; additions of new
#: counters/gauges/histograms are non-breaking and do not bump it.
METRICS_VERSION = 1

#: Default sliding-window length (seconds) for histogram summaries.
DEFAULT_WINDOW = 60.0
#: Default ring-buffer capacity per histogram (bounds memory under load).
DEFAULT_MAXLEN = 2048


class Counter:
    """A monotonic counter.  Never decremented, never reset."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount


class Gauge:
    """A last-value-wins instrument (queue depth, budget remaining)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value: float = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount


def _nearest_rank(ordered, quantile: float):
    """Nearest-rank percentile over pre-sorted samples (q in [0, 1])."""
    rank = int(quantile * len(ordered) + 0.999999) or 1
    return ordered[min(rank, len(ordered)) - 1]


class Histogram:
    """Ring-buffered samples summarized over a sliding wall-clock window.

    ``observe`` stamps each sample with ``clock()`` and appends to a
    bounded deque; ``summary`` first evicts samples older than ``window``
    seconds, then reports nearest-rank percentiles over what remains.
    Old samples therefore age out on read, not on a background thread.
    """

    __slots__ = ("_clock", "window", "_samples")

    def __init__(self, clock: Callable[[], float],
                 window: float = DEFAULT_WINDOW,
                 maxlen: int = DEFAULT_MAXLEN) -> None:
        self._clock = clock
        self.window = window
        self._samples = deque(maxlen=maxlen)

    def observe(self, value: float) -> None:
        self._samples.append((self._clock(), value))

    def _evict(self) -> None:
        cutoff = self._clock() - self.window
        samples = self._samples
        while samples and samples[0][0] < cutoff:
            samples.popleft()

    def values(self) -> list:
        """The samples still inside the window, in arrival order."""
        self._evict()
        return [value for _, value in self._samples]

    def summary(self) -> Dict[str, float]:
        """count / mean / p50 / p90 / p99 / max over the live window."""
        live = sorted(self.values())
        if not live:
            return {"count": 0}
        return {
            "count": len(live),
            "mean": sum(live) / len(live),
            "p50": _nearest_rank(live, 0.50),
            "p90": _nearest_rank(live, 0.90),
            "p99": _nearest_rank(live, 0.99),
            "max": live[-1],
        }


class MetricsRegistry:
    """All of one process's instruments, by dotted name.

    Instruments are created on first use (``registry.counter(name)`` and
    the ``inc``/``set_gauge``/``observe`` conveniences), so instrumentation
    sites never have to pre-declare what they record.  ``snapshot()`` is
    the versioned JSON-safe stanza the STATS verb embeds.

    ``clock`` orders histogram samples inside the sliding window;
    :attr:`clock` (the same callable) is also what instrumentation sites
    use to time durations, so a test can inject one fake clock and control
    both the measured durations and the window eviction.
    """

    enabled = True

    def __init__(self, clock: Callable[[], float] = time.monotonic,
                 window: float = DEFAULT_WINDOW,
                 maxlen: int = DEFAULT_MAXLEN) -> None:
        self.clock = clock
        self._window = window
        self._maxlen = maxlen
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    # -- instrument accessors (get-or-create) ---------------------------

    def counter(self, name: str) -> Counter:
        instrument = self._counters.get(name)
        if instrument is None:
            instrument = self._counters[name] = Counter()
        return instrument

    def gauge(self, name: str) -> Gauge:
        instrument = self._gauges.get(name)
        if instrument is None:
            instrument = self._gauges[name] = Gauge()
        return instrument

    def histogram(self, name: str, window: Optional[float] = None) -> Histogram:
        instrument = self._histograms.get(name)
        if instrument is None:
            instrument = self._histograms[name] = Histogram(
                self.clock, window=window or self._window, maxlen=self._maxlen)
        return instrument

    # -- write conveniences (the hot-path API) --------------------------

    def inc(self, name: str, amount: int = 1) -> None:
        self.counter(name).inc(amount)

    def set_gauge(self, name: str, value: float) -> None:
        self.gauge(name).set(value)

    def observe(self, name: str, value: float) -> None:
        self.histogram(name).observe(value)

    # -- read side -------------------------------------------------------

    def snapshot(self) -> Dict[str, object]:
        """The versioned ``metrics`` STATS stanza (JSON-safe)."""
        return {
            "version": METRICS_VERSION,
            "window_s": self._window,
            "counters": {name: counter.value
                         for name, counter in sorted(self._counters.items())},
            "gauges": {name: gauge.value
                       for name, gauge in sorted(self._gauges.items())},
            "histograms": {name: histogram.summary()
                           for name, histogram in sorted(self._histograms.items())},
        }


class NullMetrics:
    """The disabled registry: identical surface, every write a no-op.

    Keeps instrumentation sites branch-free (``server.metrics.observe(...)``
    works either way) while an obs-off server pays only the method call.
    ``clock`` stays real so sites that pre-compute ``start = clock()``
    need no special-casing.
    """

    enabled = False
    clock = staticmethod(time.monotonic)

    def counter(self, name: str) -> Counter:
        return Counter()

    def gauge(self, name: str) -> Gauge:
        return Gauge()

    def histogram(self, name: str, window: Optional[float] = None) -> Histogram:
        return Histogram(self.clock, window=window or DEFAULT_WINDOW)

    def inc(self, name: str, amount: int = 1) -> None:
        pass

    def set_gauge(self, name: str, value: float) -> None:
        pass

    def observe(self, name: str, value: float) -> None:
        pass

    def snapshot(self) -> None:
        return None


#: The shared disabled registry (stateless, so one instance serves all).
NULL_METRICS = NullMetrics()


def as_registry(metrics) -> "MetricsRegistry":
    """Normalize a ``metrics=`` constructor argument to a registry.

    ``True`` builds a fresh enabled registry, ``False``/``None`` resolves
    to :data:`NULL_METRICS`, and an existing registry (or anything
    registry-shaped, e.g. a test double) passes through unchanged.
    """
    if metrics is True:
        return MetricsRegistry()
    if metrics is False or metrics is None:
        return NULL_METRICS
    return metrics
