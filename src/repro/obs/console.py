"""The ``repro status`` live operator console (and shared stats renderer).

Plain-ANSI, zero-dependency (no curses, no rich): the watch loop repaints
the whole screen with ``ESC[2J ESC[H`` between STATS polls, so it works in
any dumb terminal and degrades to plain sequential output when piped.

Three entry points, all driven by the CLI:

* :func:`render_stats` — the one canonical text rendering of a STATS reply
  (``repro stats`` and ``repro status --once`` share it, and ``--json``
  callers skip it entirely and dump the same dict — one code path, two
  formats).
* :func:`render_status` — the live-console frame: :func:`render_stats`
  plus *rates* (fold + forward throughput over the previous poll) and the
  histogram-percentile table pulled from the embedded ``metrics`` stanza.
* :func:`watch` — the poll/clear/repaint loop (``repro status --watch``).

This module imports :mod:`repro.net` and therefore must **not** be
imported from ``repro.obs.__init__`` (see the package docstring's import
discipline); the CLI imports it lazily as ``repro.obs.console``.
"""

from __future__ import annotations

import time
from typing import Dict, Optional

from ..analysis.reporting import format_table

__all__ = ["render_stats", "render_status", "watch", "poll_stats"]

#: ANSI clear-screen + cursor-home (the whole "TUI framework").
CLEAR = "\x1b[2J\x1b[H"


def poll_stats(address: str, *, token: Optional[str] = None,
               timeout: float = 30.0, retries: int = 5) -> Dict[str, object]:
    """One STATS poll (a thin wrapper so console callers share defaults)."""
    from ..net import fetch_stats

    return fetch_stats(address, auth_token=token, timeout=timeout,
                       connect_retries=retries)


def _privacy_pair(stanza) -> str:
    if not isinstance(stanza, dict):
        return "-"
    eps, delta = stanza.get("epsilon"), stanza.get("delta")
    eps = "inf" if eps is None else f"{eps:.6g}"
    delta = "inf" if delta is None else f"{delta:.6g}"
    return f"({eps}, {delta})"


def _human_bytes(count) -> str:
    if not isinstance(count, (int, float)):
        return "-"
    value = float(count)
    for unit in ("B", "KiB", "MiB", "GiB"):
        if value < 1024 or unit == "GiB":
            return f"{value:.1f} {unit}" if unit != "B" else f"{int(value)} B"
        value /= 1024
    return f"{value:.1f} GiB"


def _age(now: float, stamp) -> str:
    if not isinstance(stamp, (int, float)):
        return "-"
    return f"{max(0.0, now - stamp):.1f}s ago"


def render_stats(stats: Dict[str, object], address: str) -> str:
    """The canonical text rendering of one STATS reply."""
    blocks = []
    uptime = stats.get("uptime_s", stats.get("uptime"))
    frames = stats.get("frames", 0)
    throughput = (f"{frames / uptime:.1f}/s"
                  if isinstance(uptime, (int, float)) and uptime > 0 else "-")
    privacy = stats.get("privacy") or {}
    per_release = privacy.get("per_release") or {}
    overview = [{
        "role": stats.get("role", "aggregator"),
        "k": stats.get("k"),
        "epsilon/release": per_release.get("epsilon"),
        "delta/release": per_release.get("delta"),
        "accept relays": "yes" if stats.get("accept_relays") else "no",
        "auth": "token" if stats.get("auth_required") else "open",
        "uptime (s)": (f"{uptime:.1f}"
                       if isinstance(uptime, (int, float)) else "-"),
        "fold rate": throughput,
    }]
    blocks.append(format_table(overview, title=f"aggregator at {address}"))
    totals = [{
        "sessions active": stats.get("sessions_active", 0),
        "committed": stats.get("sessions_committed", 0),
        "rejected": stats.get("sessions_rejected", 0),
        "frames": frames,
        "stream length": stats.get("stream_length", 0),
        "releases": stats.get("releases", 0),
    }]
    wal = stats.get("wal")
    if isinstance(wal, dict):
        totals[0]["wal spools"] = wal.get("spools", 0)
        totals[0]["wal bytes"] = _human_bytes(wal.get("bytes"))
    blocks.append(format_table(totals, title="totals"))
    if privacy:
        spent = privacy.get("spent") or {}
        budget_row = {
            "composition": privacy.get("composition", "-"),
            "releases charged": privacy.get("releases_charged", 0),
            "spent (eps, delta)": ("vacuous" if spent.get("vacuous")
                                   else _privacy_pair(spent)),
            "budget (eps, delta)": (_privacy_pair(privacy.get("budget"))
                                    if privacy.get("budget") else "none"),
            "remaining": (_privacy_pair(privacy.get("remaining"))
                          if privacy.get("budget") else "-"),
            "exhausted": "yes" if privacy.get("exhausted") else "no",
        }
        blocks.append(format_table([budget_row], title="privacy budget"))
    now = time.time()
    active = stats.get("active") or []
    if active:
        rows = [{
            "ordinal": "-" if row.get("ordinal") is None else row["ordinal"],
            "client": row.get("client") or "-",
            "role": row.get("role", "client"),
            "state": row.get("state", "-"),
            "frames": row.get("frames", 0),
            "bytes": _human_bytes(row.get("bytes")),
            "connected": _age(now, row.get("connected_at")),
            "last frame": _age(now, row.get("last_frame_at")),
        } for row in active]
        blocks.append(format_table(rows, title="live sessions"))
    sessions = stats.get("sessions") or []
    if sessions:
        listed = stats.get("sessions_listed", len(sessions))
        committed = stats.get("sessions_committed", len(sessions))
        title = "committed sessions (release order)"
        if isinstance(committed, int) and committed > len(sessions):
            title += f" — first {listed} of {committed}"
        rows = [{
            "ordinal": "-" if entry.get("ordinal") is None else entry["ordinal"],
            "client": entry.get("client") or "-",
            "frames": entry.get("frames", 0),
            "commit seq": entry.get("seq"),
        } for entry in sessions]
        blocks.append(format_table(rows, title=title))
    forward = stats.get("forward")
    if isinstance(forward, dict):
        backoff = forward.get("last_backoff")
        rows = [{
            "upstream": forward.get("upstream", "-"),
            "policy": forward.get("policy", "-"),
            "leaf ordinal": forward.get("relay_ordinal", "-"),
            "queued": forward.get("queued", 0),
            "acked": forward.get("acked", 0),
            "spool": _human_bytes(forward.get("spool_bytes", 0)),
            "last backoff": (f"{backoff:.2f}s"
                             if isinstance(backoff, (int, float)) else "-"),
            "error": forward.get("error") or "-",
        }]
        blocks.append(format_table(rows, title="upstream forward state"))
    return "\n\n".join(blocks)


def _histogram_rows(stats: Dict[str, object]) -> list:
    metrics = stats.get("metrics")
    if not isinstance(metrics, dict):
        return []
    rows = []
    for name, summary in (metrics.get("histograms") or {}).items():
        if not isinstance(summary, dict) or not summary.get("count"):
            continue
        rows.append({
            "histogram": name,
            "count": summary["count"],
            "mean": f"{summary['mean'] * 1e3:.3f} ms",
            "p50": f"{summary['p50'] * 1e3:.3f} ms",
            "p90": f"{summary['p90'] * 1e3:.3f} ms",
            "p99": f"{summary['p99'] * 1e3:.3f} ms",
            "max": f"{summary['max'] * 1e3:.3f} ms",
        })
    return rows


def _rate(now_stats: Dict[str, object], prev_stats: Dict[str, object],
          elapsed: float, key: str) -> str:
    if elapsed <= 0:
        return "-"
    now_value = now_stats.get(key)
    prev_value = prev_stats.get(key)
    if not (isinstance(now_value, (int, float))
            and isinstance(prev_value, (int, float))):
        return "-"
    return f"{(now_value - prev_value) / elapsed:.1f}/s"


def render_status(stats: Dict[str, object], address: str, *,
                  prev: Optional[Dict[str, object]] = None,
                  elapsed: float = 0.0) -> str:
    """One live-console frame: stats tables + rates + percentiles.

    ``prev``/``elapsed`` are the previous poll and the seconds since it;
    the fold/commit/release rates are deltas over that interval (the
    overview's "fold rate" is the lifetime average, these are *current*).
    """
    blocks = [render_stats(stats, address)]
    if prev is not None and elapsed > 0:
        window = stats.get("metrics") or {}
        prev_window = prev.get("metrics") or {}

        def _counter_rate(name: str) -> str:
            counters = (window.get("counters") or {}
                        if isinstance(window, dict) else {})
            prev_counters = (prev_window.get("counters") or {}
                             if isinstance(prev_window, dict) else {})
            now_value = counters.get(name)
            if not isinstance(now_value, (int, float)):
                return "-"
            # A counter absent from the previous poll was created since:
            # its whole value accrued this interval.
            prev_value = prev_counters.get(name, 0)
            if not isinstance(prev_value, (int, float)):
                return "-"
            return f"{(now_value - prev_value) / elapsed:.1f}/s"

        rates = [{
            "interval": f"{elapsed:.1f}s",
            "folds": _counter_rate("server.frames_total"),
            "bytes": _counter_rate("server.bytes_total"),
            "commits": _counter_rate("server.commits_total"),
            "frames (total ctr)": _rate(stats, prev, elapsed, "frames"),
            "releases": _rate(stats, prev, elapsed, "releases"),
        }]
        blocks.append(format_table(rates, title="throughput (this interval)"))
    histogram_rows = _histogram_rows(stats)
    if histogram_rows:
        blocks.append(format_table(
            histogram_rows, title="latency percentiles (sliding window)"))
    return "\n\n".join(blocks)


def watch(address: str, *, interval: float = 2.0,
          token: Optional[str] = None, timeout: float = 30.0,
          retries: int = 5, iterations: Optional[int] = None,
          stream=None, clock=time.monotonic,
          sleep=time.sleep) -> int:
    """The ``repro status --watch`` loop: poll, clear, repaint, sleep.

    ``iterations`` bounds the loop for tests/examples (``None`` = until
    interrupted); ``stream``/``clock``/``sleep`` are injectable the same
    way the metrics clocks are.  Returns 0 on a clean end (including
    Ctrl-C, which is how operators leave a watch).
    """
    import sys

    out = stream if stream is not None else sys.stdout
    prev: Optional[Dict[str, object]] = None
    prev_at: Optional[float] = None
    count = 0
    try:
        while iterations is None or count < iterations:
            stats = poll_stats(address, token=token, timeout=timeout,
                               retries=retries)
            now = clock()
            elapsed = (now - prev_at) if prev_at is not None else 0.0
            frame = render_status(stats, address, prev=prev, elapsed=elapsed)
            out.write(CLEAR + frame + "\n")
            out.flush()
            prev, prev_at = stats, now
            count += 1
            if iterations is not None and count >= iterations:
                break
            sleep(interval)
    except KeyboardInterrupt:
        out.write("\n")
    return 0
