"""`repro loadgen`: a 10^4–10^6 simulated-client load harness.

Turns "fast in microbenchmarks" into "measured under realistic load": the
harness drives a configurable client population — arrival process, Zipf
stream skew, per-client stream length, churn (mid-push disconnects) — at a
flat :class:`~repro.net.server.AggregatorServer` or a self-hosted relay
tree, and reports sustained frames/s plus client-side latency percentiles
(connect / push / release) from one shared
:class:`~repro.obs.metrics.MetricsRegistry`.

Design notes, in decreasing order of importance:

* **Pre-encoded payload pool.**  Encoding a sketch export dominates a
  naive harness, so the pool builds ``min(clients, payload_pool)``
  distinct Zipf-drawn sketch exports *once*, wire-encodes each to its
  final frame bytes, and the simulated clients share those immutable
  byte strings (:meth:`~repro.net.client.AggregatorClient.push_encoded`).
  Client ``i`` uses pool entry ``i % pool``, so the server still folds a
  heterogeneous population.
* **Bounded live tasks.**  The concurrency semaphore is acquired *before*
  ``create_task``: at most ``concurrency`` client task objects (and
  sockets) exist at any instant, so a million-client run holds a million
  integers of bookkeeping, not a million coroutines.
* **Churn dies mid-burst.**  A clean EOF from READY *commits* a session,
  so a churned client must vanish inside a declared PUSH burst
  (:meth:`~repro.net.client.AggregatorClient.abort_mid_push`) — the
  server discards its partial state, which is exactly what a crashed real
  client looks like.
* **Arrival process.**  ``closed`` (default) keeps ``concurrency``
  clients in flight back-to-back; ``poisson`` spaces task starts by
  exponential gaps at ``rate``/s; ``uniform`` by fixed ``1/rate`` gaps.
"""

from __future__ import annotations

import asyncio
import contextlib
import random
import tempfile
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional

from ..exceptions import NetworkError, ParameterError, RemoteError, ReproError
from .metrics import MetricsRegistry

__all__ = ["LoadgenConfig", "LoadgenReport", "run_loadgen",
           "aggregation_tree", "build_payload_pool", "ARRIVALS"]

ARRIVALS = ("closed", "poisson", "uniform")


@dataclass
class LoadgenConfig:
    """Knobs of one load run (``repro loadgen`` maps flags onto this)."""

    clients: int = 10_000            #: simulated client population
    concurrency: int = 128           #: max clients in flight at once
    arrival: str = "closed"          #: one of :data:`ARRIVALS`
    rate: float = 1000.0             #: arrivals/s (poisson / uniform only)
    exponent: float = 1.2            #: Zipf exponent of each client stream
    stream_length: int = 100         #: items drawn per simulated client
    universe: int = 10_000           #: Zipf universe size
    frames_per_client: int = 1       #: PUSH frames per client session
    churn: float = 0.0               #: fraction dying mid-push (0..1)
    k: int = 64                      #: sketch size
    seed: int = 0                    #: harness RNG seed (pool + churn draw)
    payload_pool: int = 32           #: distinct pre-encoded exports
    releases: int = 3                #: release probes after the wave
    timeout: float = 30.0            #: per-operation client timeout
    epsilon: float = 1.0             #: release privacy (self-hosted server)
    delta: float = 1e-6
    #: Target address (``None`` self-hosts via :func:`aggregation_tree`).
    to: Optional[str] = None
    leaves: int = 0                  #: 0 = flat server; N = relay leaves
    depth: int = 1                   #: relay tiers between leaves and root

    def validate(self) -> None:
        if self.clients <= 0:
            raise ParameterError("loadgen needs clients >= 1")
        if self.concurrency <= 0:
            raise ParameterError("loadgen needs concurrency >= 1")
        if self.arrival not in ARRIVALS:
            raise ParameterError(
                f"arrival must be one of {ARRIVALS}, got {self.arrival!r}")
        if self.arrival != "closed" and self.rate <= 0:
            raise ParameterError(f"{self.arrival} arrivals need rate > 0")
        if not 0.0 <= self.churn <= 1.0:
            raise ParameterError(f"churn must be in [0, 1], got {self.churn}")
        if self.leaves < 0 or self.depth < 1:
            raise ParameterError("need leaves >= 0 and depth >= 1")
        if self.to is not None and self.leaves:
            raise ParameterError(
                "--to targets an external server; tree shape (leaves/depth) "
                "only applies to self-hosted runs")


@dataclass
class LoadgenReport:
    """What one load run measured (JSON-safe via :meth:`as_dict`)."""

    config: LoadgenConfig
    clients_ok: int = 0
    clients_churned: int = 0
    clients_failed: int = 0
    frames_total: int = 0
    bytes_total: int = 0
    elapsed_s: float = 0.0
    sustained_frames_per_sec: float = 0.0
    sustained_clients_per_sec: float = 0.0
    #: client-side latency summaries (connect/push/release), from the
    #: shared registry's histograms.
    latencies: Dict[str, Dict[str, float]] = field(default_factory=dict)
    #: the target's final STATS reply (None when unreachable / skipped).
    server_stats: Optional[Dict[str, object]] = None
    errors: List[str] = field(default_factory=list)

    def as_dict(self) -> Dict[str, object]:
        config = dict(vars(self.config))
        return {
            "config": config,
            "clients_ok": self.clients_ok,
            "clients_churned": self.clients_churned,
            "clients_failed": self.clients_failed,
            "frames_total": self.frames_total,
            "bytes_total": self.bytes_total,
            "elapsed_s": self.elapsed_s,
            "sustained_frames_per_sec": self.sustained_frames_per_sec,
            "sustained_clients_per_sec": self.sustained_clients_per_sec,
            "latencies": self.latencies,
            "server_stats": self.server_stats,
            "errors": self.errors[:20],
        }


def build_payload_pool(config: LoadgenConfig) -> List[bytes]:
    """Pre-encode the distinct client payloads (one wire frame each).

    Each pool entry simulates one client: ``stream_length`` Zipf draws
    (inverse-CDF over ``universe`` ranks, pure python — the pool is small)
    folded through a :class:`~repro.sketches.misra_gries.MisraGriesSketch`
    at ``k``, exported to a wire-v2 envelope and encoded to final frame
    bytes.  The returned ``bytes`` objects are immutable and shared across
    every simulated client that reuses the entry.
    """
    from ..api import wire
    from ..api.framing import encode_payload_frame
    from ..sketches.misra_gries import MisraGriesSketch

    rng = random.Random(config.seed)
    weights = [1.0 / (rank ** config.exponent)
               for rank in range(1, config.universe + 1)]
    cumulative: List[float] = []
    total = 0.0
    for weight in weights:
        total += weight
        cumulative.append(total)

    import bisect

    pool: List[bytes] = []
    for _ in range(max(1, min(config.clients, config.payload_pool))):
        sketch = MisraGriesSketch(config.k)
        for _ in range(config.stream_length):
            point = rng.random() * total
            sketch.update(bisect.bisect_left(cumulative, point) + 1)
        pool.append(encode_payload_frame(wire.encode_sketch(sketch)))
    return pool


class _Target:
    """Where the simulated clients connect (yielded by the context managers)."""

    def __init__(self, client_addrs: List[str], release_addr: str,
                 stats_addr: str, servers: List[object]) -> None:
        self.client_addrs = client_addrs
        self.release_addr = release_addr
        self.stats_addr = stats_addr
        self.servers = servers


@contextlib.asynccontextmanager
async def aggregation_tree(config: LoadgenConfig):
    """Self-host the target: a flat server, or a relay tree over unix sockets.

    ``leaves == 0`` starts one flat :class:`AggregatorServer`.  Otherwise a
    root (``accept_relays``) plus ``depth - 1`` single mid-tier relays plus
    ``leaves`` leaf relays, all in one event loop over unix sockets in a
    tempdir, forwarding eagerly (``forward_on="commit"``) so the load
    reaches the root while the wave is still running.  Clients round-robin
    across the leaves; releases and stats go through leaf 0 (proxied) so
    the measured release latency includes the full tree hop.
    """
    from ..net.relay import RelayAggregatorServer
    from ..net.server import AggregatorServer

    servers: List[object] = []
    with tempfile.TemporaryDirectory(prefix="repro-loadgen-") as tmp:
        base = Path(tmp)
        try:
            if config.leaves == 0:
                flat = AggregatorServer(epsilon=config.epsilon,
                                        delta=config.delta, k=config.k)
                await flat.start(f"unix:{base / 'flat.sock'}")
                servers.append(flat)
                addr = flat.address
                yield _Target([addr], addr, addr, servers)
            else:
                root = AggregatorServer(epsilon=config.epsilon,
                                        delta=config.delta, k=config.k,
                                        accept_relays=True)
                await root.start(f"unix:{base / 'root.sock'}")
                servers.append(root)
                upstream = root.address
                for tier in range(config.depth - 1):
                    mid = RelayAggregatorServer(
                        epsilon=config.epsilon, delta=config.delta,
                        k=config.k, upstream=upstream,
                        relay_ordinal=tier, forward_on="commit",
                        accept_relays=True)
                    await mid.start(f"unix:{base / f'mid-{tier}.sock'}")
                    servers.append(mid)
                    upstream = mid.address
                leaf_addrs: List[str] = []
                for index in range(config.leaves):
                    leaf = RelayAggregatorServer(
                        epsilon=config.epsilon, delta=config.delta,
                        k=config.k, upstream=upstream,
                        relay_ordinal=index, forward_on="commit")
                    await leaf.start(f"unix:{base / f'leaf-{index}.sock'}")
                    servers.append(leaf)
                    leaf_addrs.append(leaf.address)
                yield _Target(leaf_addrs, leaf_addrs[0], leaf_addrs[0],
                              servers)
        finally:
            for server in reversed(servers):
                with contextlib.suppress(Exception):
                    await server.aclose(drain=True)


async def _drive_clients(config: LoadgenConfig, target: _Target,
                         pool: List[bytes], registry: MetricsRegistry,
                         report: LoadgenReport) -> None:
    from ..net.client import AggregatorClient

    churn_rng = random.Random(config.seed ^ 0x5EED)
    semaphore = asyncio.Semaphore(config.concurrency)
    gap_rng = random.Random(config.seed ^ 0xA221)
    leaves = len(target.client_addrs)

    async def _one_client(index: int) -> None:
        address = target.client_addrs[index % leaves]
        # Leaf-local ordinals stay distinct per leaf, so a relay maps them
        # straight into its root-ordinal band.
        ordinal = index // leaves if leaves > 1 else index
        frame = pool[index % len(pool)]
        churned = churn_rng.random() < config.churn
        client = AggregatorClient(address, k=config.k, ordinal=ordinal,
                                  client_name=f"loadgen-{index}",
                                  timeout=config.timeout, connect_retries=3,
                                  metrics=registry)
        try:
            await client.connect()
            if churned:
                await client.abort_mid_push(frame)
                report.clients_churned += 1
                return
            for _ in range(config.frames_per_client):
                await client.push_encoded([frame])
            await client.close(bye=True)
            report.clients_ok += 1
            report.frames_total += config.frames_per_client
            report.bytes_total += len(frame) * config.frames_per_client
        except (ReproError, OSError, asyncio.TimeoutError) as error:
            report.clients_failed += 1
            if len(report.errors) < 100:
                report.errors.append(f"client {index}: {error}")
        finally:
            with contextlib.suppress(Exception):
                await client.close(bye=False)

    async def _bounded(index: int) -> None:
        try:
            await _one_client(index)
        finally:
            semaphore.release()

    tasks: List[asyncio.Task] = []
    for index in range(config.clients):
        if config.arrival == "poisson":
            await asyncio.sleep(gap_rng.expovariate(config.rate))
        elif config.arrival == "uniform":
            await asyncio.sleep(1.0 / config.rate)
        await semaphore.acquire()   # before create_task: bounds live tasks
        task = asyncio.ensure_future(_bounded(index))
        tasks.append(task)
        if len(tasks) >= config.concurrency * 2:
            tasks = [t for t in tasks if not t.done()]
    if tasks:
        await asyncio.gather(*tasks, return_exceptions=True)


async def _release_probes(config: LoadgenConfig, target: _Target,
                          registry: MetricsRegistry,
                          report: LoadgenReport) -> None:
    from ..net.client import AggregatorClient

    for probe in range(config.releases):
        client = AggregatorClient(target.release_addr,
                                  timeout=max(config.timeout, 120.0),
                                  connect_retries=3, metrics=registry)
        try:
            await client.connect()
            await client.request_release_payload(seed=config.seed + probe)
        except (NetworkError, RemoteError) as error:
            report.errors.append(f"release probe {probe}: {error}")
        finally:
            with contextlib.suppress(Exception):
                await client.close(bye=False)


async def _fetch_final_stats(target: _Target, config: LoadgenConfig,
                             report: LoadgenReport) -> None:
    from ..net.client import AggregatorClient

    client = AggregatorClient(target.stats_addr, timeout=config.timeout,
                              connect_retries=3)
    try:
        await client.connect()
        report.server_stats = await client.stats()
    except (ReproError, OSError) as error:
        report.errors.append(f"final stats: {error}")
    finally:
        with contextlib.suppress(Exception):
            await client.close(bye=False)


async def run_loadgen_async(config: LoadgenConfig) -> LoadgenReport:
    """Run one load wave and measure it (the asyncio core)."""
    config.validate()
    pool = build_payload_pool(config)
    # Infinite window + a large ring: report percentiles cover the whole
    # run (bounded at the last 65536 samples per histogram for memory).
    registry = MetricsRegistry(window=float("inf"), maxlen=65536)
    report = LoadgenReport(config=config)

    async def _run_against(target: _Target) -> None:
        start = time.monotonic()
        await _drive_clients(config, target, pool, registry, report)
        report.elapsed_s = time.monotonic() - start
        if config.releases:
            await _release_probes(config, target, registry, report)
        await _fetch_final_stats(target, config, report)

    if config.to is not None:
        target = _Target([config.to], config.to, config.to, [])
        await _run_against(target)
    else:
        async with aggregation_tree(config) as target:
            await _run_against(target)

    if report.elapsed_s > 0:
        report.sustained_frames_per_sec = (report.frames_total
                                           / report.elapsed_s)
        report.sustained_clients_per_sec = (
            (report.clients_ok + report.clients_churned) / report.elapsed_s)
    snapshot = registry.snapshot()
    report.latencies = {
        name.replace("client.", "").replace("_seconds", ""): summary
        for name, summary in snapshot["histograms"].items()
        if name.startswith("client.")}
    return report


def run_loadgen(config: LoadgenConfig) -> LoadgenReport:
    """Synchronous entry point (``repro loadgen`` calls this)."""
    return asyncio.run(run_loadgen_async(config))
