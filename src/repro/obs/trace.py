"""Lightweight trace spans over the accept -> fold -> commit -> release path.

A :class:`Tracer` wraps one :class:`~repro.obs.metrics.MetricsRegistry`:
``tracer.span(name, **fields)`` times the enclosed block on a monotonic
clock, records the duration into the ``span.<name>_seconds`` histogram, and
— when a ``stream`` is attached (``repro serve --log-json``) — emits one
structured JSON line per span::

    {"ts": 1754650000.123, "span": "release", "elapsed_s": 0.0042,
     "parts": 8}

The span body receives the mutable ``fields`` dict, so late-bound context
(the session's final state, the number of combined parts) can be attached
before the line is written.  Spans are *observational only*: they never
swallow or alter exceptions (a span that unwinds with an error is still
recorded, with ``"error"`` naming the exception type), and a tracer built
on :data:`~repro.obs.metrics.NULL_METRICS` with no stream is inert —
:attr:`active` is False and :meth:`span` short-circuits, so obs-off
servers pay one truth test per span site.
"""

from __future__ import annotations

import contextlib
import json
import time
from typing import IO, Optional

from .metrics import NULL_METRICS, MetricsRegistry

__all__ = ["Tracer", "NULL_TRACER"]


class Tracer:
    """Span timing bound to a registry plus an optional JSON log stream."""

    def __init__(self, metrics: MetricsRegistry = NULL_METRICS,
                 stream: Optional[IO] = None,
                 wall_clock=time.time) -> None:
        self.metrics = metrics
        self.stream = stream
        self._wall = wall_clock

    @property
    def active(self) -> bool:
        """False when every span would be a no-op (obs off, no log)."""
        return self.metrics.enabled or self.stream is not None

    @contextlib.contextmanager
    def span(self, name: str, **fields):
        """Time a block; record ``span.<name>_seconds`` and log the span."""
        if not self.active:
            yield fields
            return
        clock = self.metrics.clock
        start = clock()
        try:
            yield fields
        except BaseException as error:
            fields.setdefault("error", type(error).__name__)
            raise
        finally:
            elapsed = clock() - start
            self.metrics.observe(f"span.{name}_seconds", elapsed)
            if self.stream is not None:
                line = {"ts": self._wall(), "span": name,
                        "elapsed_s": elapsed, **fields}
                try:
                    self.stream.write(json.dumps(line, sort_keys=True,
                                                 default=str) + "\n")
                    self.stream.flush()
                except (OSError, ValueError):
                    # A torn log pipe must never take a session down.
                    self.stream = None


#: The inert tracer (disabled registry, no stream): spans cost one branch.
NULL_TRACER = Tracer(NULL_METRICS, None)
