"""Merging of Misra-Gries style sketches (Agarwal et al., "Mergeable summaries").

Given two size-``k`` sketches the merge sums all counters (up to ``2k`` of
them), subtracts the ``(k+1)``-th largest value from every counter and drops
counters that are no longer positive, leaving at most ``k`` counters.  Merged
sketches keep the Misra-Gries guarantee: estimates are within ``N / (k+1)`` of
the truth where ``N`` is the combined stream length (Lemma 29 in the paper).

Section 7 of the paper shows that for neighbouring inputs the merged counters
differ by at most 1 in at most ``k`` positions (Lemma 17 / Corollary 18),
which is what the private merged release relies on.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, Mapping, Sequence, Union

import numpy as np

from .._validation import check_positive_int
from ..exceptions import ParameterError, SketchStateError
from .base import FrequencySketch

CounterMapping = Mapping[Hashable, float]
SketchLike = Union[CounterMapping, FrequencySketch]


def _as_counters(sketch: SketchLike) -> Dict[Hashable, float]:
    """Normalize a sketch object or mapping to a plain counter dict."""
    if isinstance(sketch, FrequencySketch):
        return sketch.counters()
    if isinstance(sketch, Mapping):
        return {key: float(value) for key, value in sketch.items()}
    raise ParameterError(f"expected a FrequencySketch or mapping, got {type(sketch)!r}")


def merge_misra_gries(first: SketchLike, second: SketchLike, k: int) -> Dict[Hashable, float]:
    """Merge two Misra-Gries summaries into one of size at most ``k``.

    Parameters
    ----------
    first, second:
        Counter mappings (or sketches) to merge.  Zero-valued and dummy
        counters should already have been stripped (``counters()`` does this).
    k:
        Target sketch size.  The merge keeps at most ``k`` counters.

    Returns
    -------
    dict
        The merged counters.  Estimates of elements missing from the result
        are implicitly zero.
    """
    size = check_positive_int(k, "k")
    combined: Dict[Hashable, float] = {}
    for counters in (_as_counters(first), _as_counters(second)):
        for key, value in counters.items():
            if value < 0:
                raise SketchStateError(f"negative counter for {key!r} cannot be merged")
            combined[key] = combined.get(key, 0.0) + float(value)
    if len(combined) <= size:
        return {key: value for key, value in combined.items() if value > 0}
    # Subtract the (k+1)-th largest counter from every counter.  np.partition
    # selects it in O(m) instead of the O(m log m) full sort.
    values = np.fromiter(combined.values(), dtype=float, count=len(combined))
    position = len(values) - 1 - size  # ascending index of the (k+1)-th largest
    offset = float(np.partition(values, position)[position])
    merged = {key: value - offset for key, value in combined.items() if value - offset > 0}
    return merged


def merge_many(sketches: Sequence[SketchLike], k: int) -> Dict[Hashable, float]:
    """Left-fold :func:`merge_misra_gries` over a sequence of sketches.

    The error guarantee holds for any merge order; the left fold matches the
    ordering used in the paper's experiments and keeps memory at ``O(k)``.
    """
    size = check_positive_int(k, "k")
    if not sketches:
        return {}
    result = _as_counters(sketches[0])
    if len(result) > size:
        # A single over-sized input is reduced through a merge with nothing.
        result = merge_misra_gries(result, {}, size)
    for sketch in sketches[1:]:
        result = merge_misra_gries(result, sketch, size)
    return result


def sum_counters(sketches: Iterable[SketchLike]) -> Dict[Hashable, float]:
    """Plain counter-wise sum of several summaries (no size reduction).

    Used by the trusted-aggregator merging path of Section 7 where the
    aggregator may keep more than ``k`` counters.
    """
    total: Dict[Hashable, float] = {}
    for sketch in sketches:
        for key, value in _as_counters(sketch).items():
            total[key] = total.get(key, 0.0) + float(value)
    return total
