"""Merging of Misra-Gries style sketches (Agarwal et al., "Mergeable summaries").

Given two size-``k`` sketches the merge sums all counters (up to ``2k`` of
them), subtracts the ``(k+1)``-th largest value from every counter and drops
counters that are no longer positive, leaving at most ``k`` counters.  Merged
sketches keep the Misra-Gries guarantee: estimates are within ``N / (k+1)`` of
the truth where ``N`` is the combined stream length (Lemma 29 in the paper).

Section 7 of the paper shows that for neighbouring inputs the merged counters
differ by at most 1 in at most ``k`` positions (Lemma 17 / Corollary 18),
which is what the private merged release relies on.

Performance
-----------
:func:`merge_many` is the aggregator hot path of the distributed setting
(``m`` users each ship a size-``k`` sketch).  It is implemented as a
*key-interning* fold: all keys across the ``m`` sketches are mapped to integer
ids once (via ``np.unique`` for integer universes, a dict otherwise), the
counters live in one dense float array, and each fold step is a handful of
NumPy bulk operations (fancy-indexed add, ``np.union1d``, ``np.partition`` for
the (k+1)-th largest, one mask).  The result is equal — same key set, exactly
equal float values — to the seed dict-based left fold, which is preserved
verbatim in :mod:`repro.sketches._reference_merge` and property-tested against
this implementation in ``tests/property/test_merge_equivalence.py``.

For very large ``m``, :func:`merge_tree` performs the same reduction as a
balanced pairwise tree (any merge order keeps the Lemma 29 guarantee); tree
rounds are embarrassingly parallel and keep every intermediate at ``<= 2k``
counters.
"""

from __future__ import annotations

import itertools
from collections import Counter
from typing import Dict, Hashable, Iterable, List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from .. import kernels as _kernels
from .._validation import check_positive_int
from ..exceptions import ParameterError, SketchStateError
from .base import FrequencySketch

CounterMapping = Mapping[Hashable, float]
SketchLike = Union[CounterMapping, FrequencySketch]


def _as_counters(sketch: SketchLike) -> Dict[Hashable, float]:
    """Normalize a sketch object or mapping to a plain counter dict."""
    if isinstance(sketch, FrequencySketch):
        return sketch.counters()
    if isinstance(sketch, Mapping):
        return {key: float(value) for key, value in sketch.items()}
    raise ParameterError(f"expected a FrequencySketch or mapping, got {type(sketch)!r}")


def merge_misra_gries(first: SketchLike, second: SketchLike, k: int) -> Dict[Hashable, float]:
    """Merge two Misra-Gries summaries into one of size at most ``k``.

    Parameters
    ----------
    first, second:
        Counter mappings (or sketches) to merge.  Zero-valued and dummy
        counters should already have been stripped (``counters()`` does this).
    k:
        Target sketch size.  The merge keeps at most ``k`` counters.

    Returns
    -------
    dict
        The merged counters.  Estimates of elements missing from the result
        are implicitly zero.
    """
    size = check_positive_int(k, "k")
    combined: Dict[Hashable, float] = {}
    for counters in (_as_counters(first), _as_counters(second)):
        for key, value in counters.items():
            if value < 0:
                raise SketchStateError(f"negative counter for {key!r} cannot be merged")
            combined[key] = combined.get(key, 0.0) + float(value)
    if len(combined) <= size:
        return {key: value for key, value in combined.items() if value > 0}
    # Subtract the (k+1)-th largest counter from every counter.  np.partition
    # selects it in O(m) instead of the O(m log m) full sort.
    values = np.fromiter(combined.values(), dtype=float, count=len(combined))
    position = len(values) - 1 - size  # ascending index of the (k+1)-th largest
    offset = float(np.partition(values, position)[position])
    merged = {key: value - offset for key, value in combined.items() if value - offset > 0}
    return merged


# ---------------------------------------------------------------------------
# Key interning
# ---------------------------------------------------------------------------

def _concat_keys(counters_list: Sequence[Dict[Hashable, float]]) -> List[Hashable]:
    all_keys: List[Hashable] = []
    for counters in counters_list:
        all_keys.extend(counters.keys())
    return all_keys


def _as_int_key_array(all_keys: List[Hashable]) -> Optional[np.ndarray]:
    """``all_keys`` as an integer ndarray, or ``None`` when that is unsafe.

    Only plain-integer universes qualify: for any other inferred dtype NumPy
    would silently coerce (floats truncating, ints stringifying, ...) and
    conflate keys that dict semantics keep distinct.
    """
    if not all_keys:
        return np.empty(0, dtype=np.int64)
    try:
        array = np.asarray(all_keys)
    except (TypeError, ValueError, OverflowError):
        return None
    if array.ndim != 1 or array.dtype.kind not in "iu" or array.size != len(all_keys):
        return None
    return array


def _intern_generic(all_keys: List[Hashable]) -> Tuple[List[Hashable], np.ndarray]:
    """Intern arbitrary hashable keys with a dict (dict hashing semantics)."""
    index: Dict[Hashable, int] = {}
    keys: List[Hashable] = []
    ids = np.empty(len(all_keys), dtype=np.intp)
    for slot, key in enumerate(all_keys):
        key_id = index.setdefault(key, len(keys))
        if key_id == len(keys):
            keys.append(key)
        ids[slot] = key_id
    return keys, ids


def _counter_views(sketches: Sequence[SketchLike]) -> List[Mapping[Hashable, float]]:
    """Per-sketch counter mappings, without copying plain dicts."""
    views: List[Mapping[Hashable, float]] = []
    for sketch in sketches:
        if isinstance(sketch, FrequencySketch):
            views.append(sketch.counters())
        elif isinstance(sketch, Mapping):
            views.append(sketch)
        else:
            raise ParameterError(
                f"expected a FrequencySketch or mapping, got {type(sketch)!r}")
    return views


def _intern_ids(views: Sequence[Mapping[Hashable, float]]) -> Tuple[np.ndarray, int, Tuple]:
    """Map every key across all sketches to an integer id.

    Returns ``(flat_ids, domain, resolver)`` where ``flat_ids`` covers the
    concatenated sketches, ``domain`` is the id-space size and ``resolver``
    describes how to turn ids back into keys:

    * ``("dense", low)`` — integer keys in a bounded range; ``key = low + id``
      (no ``np.unique`` pass at all);
    * ``("unique", uniques)`` — integer keys in a wide range, interned through
      ``np.unique``;
    * ``("generic", keys)`` — arbitrary hashable keys interned with a dict.
    """
    all_keys = _concat_keys(views)
    array = _as_int_key_array(all_keys)
    if array is not None:
        return _intern_int_keys(array)
    keys, ids = _intern_generic(all_keys)
    return ids, len(keys), ("generic", keys)


def _intern_int_keys(flat_keys: np.ndarray) -> Tuple[np.ndarray, int, Tuple]:
    """Intern an integer key array: dense offset when bounded, else unique."""
    if flat_keys.size == 0:
        return np.empty(0, dtype=np.intp), 0, ("dense", 0)
    low = int(flat_keys.min())
    span = int(flat_keys.max()) - low + 1
    if span <= max(4 * flat_keys.size, 1 << 20) and span <= (1 << 23):
        return np.asarray(flat_keys - low, dtype=np.intp), span, ("dense", low)
    uniques, inverse = np.unique(flat_keys, return_inverse=True)
    return inverse.astype(np.intp, copy=False), len(uniques), ("unique", uniques)


def _resolve_keys(active: np.ndarray, resolver: Tuple) -> List[Hashable]:
    """Turn surviving integer ids back into dict keys."""
    kind = resolver[0]
    if kind == "dense":
        low = resolver[1]
        return [low + key_id for key_id in active.tolist()]
    if kind == "unique":
        return resolver[1][active].tolist()
    keys = resolver[1]
    return [keys[key_id] for key_id in active.tolist()]


def _raise_negative(views: Sequence[Mapping[Hashable, float]]) -> None:
    """Locate the first negative counter and raise like the seed fold."""
    for view in views:
        for key, value in view.items():
            if value < 0:
                raise SketchStateError(f"negative counter for {key!r} cannot be merged")
    raise SketchStateError("negative counter cannot be merged")


# ---------------------------------------------------------------------------
# Vectorized many-way merge
# ---------------------------------------------------------------------------

def _fold_interned(flat_ids: np.ndarray, flat_values: np.ndarray,
                   lengths: Sequence[int], domain: int, size: int,
                   backend: Optional[str] = None) -> Tuple[np.ndarray, np.ndarray]:
    """Left fold of the Agarwal merge over interned (id, value) sketches.

    Dispatches to the compiled ``fold_interned`` kernel
    (:mod:`repro.kernels`) when one is available — the kernel is a scalar
    replica of :func:`_fold_interned_python` producing bit-identical output
    — and otherwise (or for NaN-valued counters, where the kernel's
    quickselect would disagree with ``np.partition``'s NaN ordering) runs
    the vectorized python fold.
    """
    if domain and flat_ids.size:
        kernel = _kernels.get_kernel("fold_interned", backend)
        if kernel is not None and not np.isnan(flat_values).any():
            return _fold_interned_kernel(
                kernel, flat_ids, flat_values, lengths, domain, size)
    return _fold_interned_python(flat_ids, flat_values, lengths, domain, size)


def _fold_interned_kernel(kernel, flat_ids: np.ndarray, flat_values: np.ndarray,
                          lengths: Sequence[int], domain: int,
                          size: int) -> Tuple[np.ndarray, np.ndarray]:
    """Run the compiled fold kernel; allocates its fixed-size work buffers."""
    lengths_array = np.ascontiguousarray(np.asarray(lengths, dtype=np.int64))
    ids = np.ascontiguousarray(flat_ids, dtype=np.int64)
    values = np.ascontiguousarray(flat_values, dtype=np.float64)
    acc = np.zeros(domain, dtype=np.float64)
    # The live set never exceeds ``size`` counters; scratch holds one step's
    # combined (live + fresh) ids, bounded by ``size + max(lengths)``.
    active = np.empty(size + 1, dtype=np.int64)
    scratch_cap = size + int(lengths_array.max()) + 1
    scratch_ids = np.empty(scratch_cap, dtype=np.int64)
    scratch_values = np.empty(scratch_cap, dtype=np.float64)
    zero_live = np.empty(size + 1, dtype=np.int64)
    count = kernel(ids, values, lengths_array, size, acc, active,
                   scratch_ids, scratch_values, zero_live)
    return active[:count], acc


def _fold_interned_python(flat_ids: np.ndarray, flat_values: np.ndarray,
                          lengths: Sequence[int], domain: int,
                          size: int) -> Tuple[np.ndarray, np.ndarray]:
    """Vectorized left fold of the Agarwal merge over interned sketches.

    The accumulator is one dense float array over the id space with the
    invariant ``acc[id] > 0 iff id is a live counter``; each fold step is a
    fancy-indexed add, an ``acc == 0`` membership test for the step's new
    keys, and (when more than ``size`` counters are live) one
    ``np.partition`` for the (k+1)-th largest plus one masked write-back.
    Every per-key float operation matches the seed dict fold and ``active``
    preserves the seed dict's key *insertion order* (survivors keep their
    relative position, new keys append in sketch order), so the resulting
    dict is exactly the seed's — same iteration order, same float bits.

    The one wrinkle in the invariant: the seed passes the first sketch
    through verbatim, so its zero-valued counters survive until the second
    fold step (where the merge's ``> 0`` output filter finally drops them)
    and keep their dict position if that step refills them.  Those ids are
    carried in ``zero_live`` and excluded from the second step's freshness
    test, since they sit in ``active`` with ``acc == 0``.

    Returns ``(active_ids, acc)``.
    """
    acc = np.zeros(domain, dtype=np.float64)
    active = np.empty(0, dtype=np.intp)
    zero_live = None
    first_step = True
    start = 0
    for length in lengths:
        end = start + length
        ids = flat_ids[start:end]
        values = flat_values[start:end]
        start = end
        if first_step:
            # The seed takes the first sketch as-is, reducing only when it is
            # over-sized (and only then dropping its zero-valued counters).
            first_step = False
            if length == 0:
                continue
            acc[ids] = values
            if length > size:
                current = values
                scratch = current.copy()
                scratch.partition(length - 1 - size)
                shifted = current - scratch[length - 1 - size]
                keep = shifted > 0.0
                acc[ids] = np.where(keep, shifted, 0.0)
                active = ids[keep]
            else:
                active = ids
                zeros = values == 0.0
                if zeros.any():
                    zero_live = ids[zeros]
            continue
        if length == 0:
            # The seed's merge with an empty summary still drops any
            # zero-valued counters carried over from the first sketch.
            if zero_live is not None:
                active = active[acc[active] > 0.0]
                zero_live = None
            continue
        before = acc[ids]
        if zero_live is not None:
            fresh = ids[(before == 0.0) & ~np.isin(ids, zero_live)]
        else:
            fresh = ids[before == 0.0]
        # Keys are unique within one sketch, so a fancy-indexed add matches
        # the seed's per-key ``combined.get(key, 0.0) + value``.
        acc[ids] = before + values
        combined = np.concatenate((active, fresh)) if fresh.size else active
        count = combined.size
        if count > size:
            # Subtract the (k+1)-th largest combined counter, drop <= 0.
            current = acc[combined]
            scratch = current.copy()
            scratch.partition(count - 1 - size)
            shifted = current - scratch[count - 1 - size]
            keep = shifted > 0.0
            acc[combined] = np.where(keep, shifted, 0.0)
            active = combined[keep]
        elif zero_live is None and bool(values.min() > 0.0):
            # Strictly positive inputs cannot create zero-valued counters, so
            # every combined counter is still live.
            active = combined
        else:
            # Zero-valued (or non-finite) counters are dropped and zeroed so
            # the ``acc == 0`` membership invariant holds.
            current = acc[combined]
            keep = current > 0.0
            acc[combined] = np.where(keep, current, 0.0)
            active = combined[keep]
        zero_live = None
    return active, acc


def merge_many(sketches: Sequence[SketchLike], k: int,
               backend: Optional[str] = None) -> Dict[Hashable, float]:
    """Fold :func:`merge_misra_gries` over a sequence of sketches, vectorized.

    The error guarantee holds for any merge order; the fold matches the
    ordering used in the paper's experiments and keeps memory at ``O(k)``
    live counters (plus the interning table).  The result is equal to the
    seed dict-based left fold preserved in
    :func:`repro.sketches._reference_merge.reference_merge_many` — the per-key
    float operations are performed in the same order, so the values agree
    exactly, not just approximately.

    Sketches that already live in columnar form (key and value arrays, e.g.
    deserialized straight off the aggregator's wire protocol) should go
    through :func:`merge_many_arrays`, which skips the per-object dict
    traversal entirely.

    ``backend`` selects the fold engine (see :mod:`repro.kernels`); the
    default ``None`` means ``auto`` — a compiled kernel when available,
    the vectorized python fold otherwise, with identical results either way.
    """
    size = check_positive_int(k, "k")
    if not sketches:
        return {}
    if len(sketches) == 1:
        result = _as_counters(sketches[0])
        if len(result) > size:
            # A single over-sized input is reduced through a merge with nothing.
            return merge_misra_gries(result, {}, size)
        return result
    views = _counter_views(sketches)
    lengths = [len(view) for view in views]
    total = sum(lengths)
    flat_ids, domain, resolver = _intern_ids(views)
    flat_values = np.fromiter(
        itertools.chain.from_iterable(view.values() for view in views),
        dtype=np.float64, count=total)
    if total and bool(np.min(flat_values) < 0):
        _raise_negative(views)
    active, acc = _fold_interned(flat_ids, flat_values, lengths, domain, size,
                                 backend=backend)
    return dict(zip(_resolve_keys(active, resolver), acc[active].tolist()))


def merge_many_arrays(keys_list: Sequence[np.ndarray],
                      values_list: Sequence[np.ndarray],
                      k: int,
                      backend: Optional[str] = None) -> Dict[int, float]:
    """Columnar :func:`merge_many`: sketches as parallel (keys, values) arrays.

    This is the aggregator's wire path for the distributed setting of
    Section 7: ``m`` users each ship a size-``k`` sketch as an integer key
    array plus a float counter array (the natural serialization of
    ``counters()``), and the merge runs entirely on NumPy arrays — no per-key
    Python object traversal at all, which is where the dict path spends about
    half its time.  The result is exactly the left fold the seed computes on
    the corresponding dicts, i.e. ``merge_many([dict(zip(ks, vs)), ...], k)``,
    and is property-tested against the frozen seed reference.

    Keys must be unique within each sketch (``counters()`` guarantees this).
    Negative values raise :class:`~repro.exceptions.SketchStateError` exactly
    where :func:`merge_many` would: multi-sketch inputs are checked, while a
    single sketch is passed through unvalidated like the seed fold does.
    """
    size = check_positive_int(k, "k")
    if len(keys_list) != len(values_list):
        raise ParameterError(
            f"got {len(keys_list)} key arrays but {len(values_list)} value arrays")
    if not keys_list:
        return {}
    key_arrays: List[np.ndarray] = []
    value_arrays: List[np.ndarray] = []
    for keys, values in zip(keys_list, values_list):
        key_array = np.asarray(keys)
        value_array = np.asarray(values, dtype=np.float64)
        if key_array.ndim != 1 or value_array.ndim != 1:
            raise ParameterError("sketch key/value arrays must be one-dimensional")
        if key_array.size != value_array.size:
            raise ParameterError(
                f"sketch has {key_array.size} keys but {value_array.size} values")
        if key_array.size and key_array.dtype.kind not in "iu":
            raise ParameterError(
                f"sketch keys must be integers, got dtype {key_array.dtype}")
        key_arrays.append(key_array)
        value_arrays.append(value_array)
    if len(key_arrays) == 1:
        result = dict(zip(key_arrays[0].tolist(), value_arrays[0].tolist()))
        if len(result) > size:
            return merge_misra_gries(result, {}, size)
        return result
    lengths = [array.size for array in key_arrays]
    # Empty arrays are excluded from the concatenation: their (arbitrary)
    # dtype must not participate in promotion.  The zero entries stay in
    # ``lengths`` so the fold still sees those sketches as no-op steps.
    non_empty = [array for array in key_arrays if array.size]
    if not non_empty:
        return {}
    flat_keys = np.concatenate(non_empty)
    if flat_keys.dtype.kind not in "iu":
        # Mixed signed/unsigned inputs promote to float64, which would
        # corrupt keys beyond 2**53; take the exact dict route instead.
        return merge_many(
            [dict(zip(keys.tolist(), values.tolist()))
             for keys, values in zip(key_arrays, value_arrays)], size,
            backend=backend)
    flat_values = np.concatenate([array for array in value_arrays if array.size])
    if flat_values.size and bool(np.min(flat_values) < 0):
        offender = flat_keys[np.flatnonzero(flat_values < 0)[0]]
        raise SketchStateError(f"negative counter for {offender!r} cannot be merged")
    flat_ids, domain, resolver = _intern_int_keys(flat_keys)
    active, acc = _fold_interned(flat_ids, flat_values, lengths, domain, size,
                                 backend=backend)
    return dict(zip(_resolve_keys(active, resolver), acc[active].tolist()))


def merge_tree(sketches: Sequence[SketchLike], k: int,
               backend: Optional[str] = None) -> Dict[Hashable, float]:
    """Merge as a balanced pairwise tree instead of a left fold.

    Lemma 29 holds for *any* merge order, so the tree result carries the same
    ``N/(k+1)`` guarantee as :func:`merge_many` (the values themselves differ
    from the left fold in general).  Trees are preferable for very large
    ``m``: every intermediate holds at most ``2k`` counters, rounds are
    embarrassingly parallel, and each element participates in only
    ``O(log m)`` reductions.
    """
    size = check_positive_int(k, "k")
    if not sketches:
        return {}
    level: List[Dict[Hashable, float]] = [_as_counters(sketch) for sketch in sketches]
    while len(level) > 1:
        next_level: List[Dict[Hashable, float]] = []
        for index in range(0, len(level) - 1, 2):
            next_level.append(merge_many([level[index], level[index + 1]], size,
                                         backend=backend))
        if len(level) % 2:
            next_level.append(level[-1])
        level = next_level
    result = level[0]
    if len(result) > size:
        result = merge_misra_gries(result, {}, size)
    return result


def merge_tree_arrays(keys_list: Sequence[np.ndarray],
                      values_list: Sequence[np.ndarray],
                      k: int,
                      backend: Optional[str] = None) -> Dict[int, float]:
    """Columnar :func:`merge_tree`: sketches as parallel (keys, values) arrays.

    The zero-copy sharded fit path hands the parent process one
    ``(keys, values)`` array pair per shard, viewed directly over shared
    memory; this entry point runs the first (widest) tree round on those
    views through :func:`merge_many_arrays` — no per-key dict is ever built
    from the raw shard exports — and finishes the remaining rounds on the
    ``<= k``-counter intermediates.  The result equals
    ``merge_tree([dict(zip(ks, vs)), ...], k)`` exactly, dict order included.
    """
    size = check_positive_int(k, "k")
    if len(keys_list) != len(values_list):
        raise ParameterError(
            f"got {len(keys_list)} key arrays but {len(values_list)} value arrays")
    if not keys_list:
        return {}
    next_level: List[Dict[Hashable, float]] = []
    for index in range(0, len(keys_list) - 1, 2):
        next_level.append(merge_many_arrays(
            [keys_list[index], keys_list[index + 1]],
            [values_list[index], values_list[index + 1]], size,
            backend=backend))
    if len(keys_list) % 2:
        carry = np.asarray(keys_list[-1])
        next_level.append(dict(zip(carry.tolist(),
                                   np.asarray(values_list[-1],
                                              dtype=np.float64).tolist())))
    return merge_tree(next_level, size, backend=backend)


def sum_counters(sketches: Iterable[SketchLike]) -> Dict[Hashable, float]:
    """Plain counter-wise sum of several summaries (no size reduction).

    Used by the trusted-aggregator merging path of Section 7 where the
    aggregator may keep more than ``k`` counters.  Integer key universes are
    aggregated with ``np.unique`` + ``np.bincount`` in one pass; other key
    types fall back to a single C-level :class:`collections.Counter` pass
    (no per-key ``dict.get`` in Python).  Both paths add each key's values in
    first-appearance order and build the result dict in first-appearance key
    order, exactly like the seed loop preserved in
    :func:`repro.sketches._reference_merge.reference_sum_counters` — this
    matters downstream, where the trusted-sum release pairs sequential noise
    draws with the aggregate's iteration order.
    """
    counters_list = [_as_counters(sketch) for sketch in sketches]
    if not counters_list:
        return {}
    all_keys = _concat_keys(counters_list)
    array = _as_int_key_array(all_keys)
    if array is not None:
        if array.size == 0:
            return {}
        uniques, first_seen, inverse = np.unique(
            array, return_index=True, return_inverse=True)
        values = np.concatenate(
            [np.fromiter(counters.values(), dtype=np.float64, count=len(counters))
             for counters in counters_list])
        # np.bincount adds weights in input order, matching the seed's
        # left-to-right accumulation per key.
        sums = np.bincount(inverse, weights=values, minlength=len(uniques))
        order = np.argsort(first_seen, kind="stable")
        return dict(zip(uniques[order].tolist(), sums[order].tolist()))
    total: Counter = Counter()
    for counters in counters_list:
        total.update(counters)
    return dict(total)
