"""The CountSketch of Charikar, Chen and Farach-Colton.

CountSketch is the signed-bucket cousin of CountMin: estimates are unbiased
with two-sided error proportional to the l2 norm of the frequency vector.
Private variants of CountSketch (Pagh & Thorup 2022) are part of the related
work the paper positions itself against; here it backs the frequency-oracle
baseline in :mod:`repro.baselines.oracle_heavy_hitters`.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, Hashable, Iterable, Tuple

import numpy as np

from .._validation import check_positive_int
from ..exceptions import ParameterError
from ._hashing import bucket_hash, sign_hash
from .base import FrequencySketch

#: Cap on cached per-key hash vectors; all-distinct streams would otherwise
#: grow the cache without bound (keys past the cap are hashed per occurrence,
#: exactly like the pre-cache code).
_HASH_CACHE_LIMIT = 1 << 18


class CountSketch(FrequencySketch):
    """CountSketch with ``depth`` rows of ``width`` signed counters.

    ``estimate(x)`` is the median over rows of the signed bucket values; it is
    an unbiased estimator of ``f(x)``.

    Row columns and signs for each distinct element are hashed once and
    cached as ``depth``-vectors, so updates are a single NumPy fancy-indexed
    add instead of a Python loop over ``depth``; :meth:`update_all` groups a
    whole batch by element and applies it with one ``np.add.at`` call.
    """

    def __init__(self, width: int, depth: int, seed: int = 0) -> None:
        self._width = check_positive_int(width, "width")
        self._depth = check_positive_int(depth, "depth")
        if seed < 0:
            raise ParameterError(f"seed must be non-negative, got {seed}")
        self._seed = int(seed)
        self._table = np.zeros((self._depth, self._width), dtype=np.float64)
        self._stream_length = 0
        self._keys_seen: set = set()
        self._rows = np.arange(self._depth)
        self._hash_cache: Dict[Hashable, Tuple[np.ndarray, np.ndarray]] = {}

    @property
    def width(self) -> int:
        """Number of counters per row."""
        return self._width

    @property
    def depth(self) -> int:
        """Number of hash rows."""
        return self._depth

    @property
    def stream_length(self) -> int:
        return self._stream_length

    def _hashes(self, element: Hashable) -> Tuple[np.ndarray, np.ndarray]:
        """``(columns, signs)`` vectors of ``element``, hashed once and cached."""
        hashes = self._hash_cache.get(element)
        if hashes is None:
            hashes = self._compute_hashes(element)
            if len(self._hash_cache) < _HASH_CACHE_LIMIT:
                self._hash_cache[element] = hashes
        return hashes

    def _compute_hashes(self, element: Hashable) -> Tuple[np.ndarray, np.ndarray]:
        columns = np.fromiter(
            (bucket_hash(element, self._seed, row, self._width)
             for row in range(self._depth)),
            dtype=np.intp, count=self._depth)
        signs = np.fromiter(
            (sign_hash(element, self._seed, row) for row in range(self._depth)),
            dtype=np.float64, count=self._depth)
        return columns, signs

    def update(self, element: Hashable, weight: float = 1.0) -> None:
        """Add ``weight`` occurrences of ``element`` to the sketch."""
        self._stream_length += 1
        self._keys_seen.add(element)
        columns, signs = self._hashes(element)
        self._table[self._rows, columns] += signs * weight

    def update_all(self, stream: Iterable[Hashable]) -> "CountSketch":
        """Process a whole batch with one grouped ``np.add.at`` table update.

        The batch is grouped by element, each distinct element's columns and
        signs are hashed once (and cached for later batches), and all signed
        increments land in a single scatter-add — identical counters to
        element-by-element :meth:`update` calls.
        """
        counts = Counter(stream)
        if not counts:
            return self
        unique = list(counts.keys())
        hashes = [self._hashes(element) for element in unique]
        columns = np.vstack([columns for columns, _ in hashes])
        signs = np.vstack([signs for _, signs in hashes])
        weights = np.fromiter(counts.values(), dtype=np.float64, count=len(unique))
        np.add.at(self._table, (self._rows[np.newaxis, :], columns),
                  signs * weights[:, np.newaxis])
        self._stream_length += int(weights.sum())
        self._keys_seen.update(unique)
        return self

    def estimate(self, element: Hashable) -> float:
        """Point query: median of the signed bucket values across rows."""
        hashes = self._hash_cache.get(element)
        if hashes is None:
            # Point queries over a large universe should not grow the cache.
            hashes = self._compute_hashes(element)
        columns, signs = hashes
        return float(np.median(signs * self._table[self._rows, columns]))

    def counters(self) -> Dict[Hashable, float]:
        """Estimates for every element observed during updates (see CountMin note)."""
        return {key: self.estimate(key) for key in self._keys_seen}

    def table(self) -> np.ndarray:
        """A copy of the underlying counter table (depth x width)."""
        return self._table.copy()

    @classmethod
    def from_stream(cls, width: int, depth: int, stream: Iterable[Hashable],
                    seed: int = 0) -> "CountSketch":
        """Build a sketch from an iterable of elements."""
        sketch = cls(width=width, depth=depth, seed=seed)
        sketch.update_all(stream)
        return sketch

    def __repr__(self) -> str:
        return (f"CountSketch(width={self._width}, depth={self._depth}, "
                f"n={self._stream_length})")
