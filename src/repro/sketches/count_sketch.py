"""The CountSketch of Charikar, Chen and Farach-Colton.

CountSketch is the signed-bucket cousin of CountMin: estimates are unbiased
with two-sided error proportional to the l2 norm of the frequency vector.
Private variants of CountSketch (Pagh & Thorup 2022) are part of the related
work the paper positions itself against; here it backs the frequency-oracle
baseline in :mod:`repro.baselines.oracle_heavy_hitters`.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable

import numpy as np

from .._validation import check_positive_int
from ..exceptions import ParameterError
from ._hashing import bucket_hash, sign_hash
from .base import FrequencySketch


class CountSketch(FrequencySketch):
    """CountSketch with ``depth`` rows of ``width`` signed counters.

    ``estimate(x)`` is the median over rows of the signed bucket values; it is
    an unbiased estimator of ``f(x)``.
    """

    def __init__(self, width: int, depth: int, seed: int = 0) -> None:
        self._width = check_positive_int(width, "width")
        self._depth = check_positive_int(depth, "depth")
        if seed < 0:
            raise ParameterError(f"seed must be non-negative, got {seed}")
        self._seed = int(seed)
        self._table = np.zeros((self._depth, self._width), dtype=np.float64)
        self._stream_length = 0
        self._keys_seen: set = set()

    @property
    def width(self) -> int:
        """Number of counters per row."""
        return self._width

    @property
    def depth(self) -> int:
        """Number of hash rows."""
        return self._depth

    @property
    def stream_length(self) -> int:
        return self._stream_length

    def update(self, element: Hashable, weight: float = 1.0) -> None:
        """Add ``weight`` occurrences of ``element`` to the sketch."""
        self._stream_length += 1
        self._keys_seen.add(element)
        for row in range(self._depth):
            column = bucket_hash(element, self._seed, row, self._width)
            sign = sign_hash(element, self._seed, row)
            self._table[row, column] += sign * weight

    def estimate(self, element: Hashable) -> float:
        """Point query: median of the signed bucket values across rows."""
        values = [sign_hash(element, self._seed, row) *
                  self._table[row, bucket_hash(element, self._seed, row, self._width)]
                  for row in range(self._depth)]
        return float(np.median(values))

    def counters(self) -> Dict[Hashable, float]:
        """Estimates for every element observed during updates (see CountMin note)."""
        return {key: self.estimate(key) for key in self._keys_seen}

    def table(self) -> np.ndarray:
        """A copy of the underlying counter table (depth x width)."""
        return self._table.copy()

    @classmethod
    def from_stream(cls, width: int, depth: int, stream: Iterable[Hashable],
                    seed: int = 0) -> "CountSketch":
        """Build a sketch from an iterable of elements."""
        sketch = cls(width=width, depth=depth, seed=seed)
        sketch.update_all(stream)
        return sketch

    def __repr__(self) -> str:
        return (f"CountSketch(width={self._width}, depth={self._depth}, "
                f"n={self._stream_length})")
