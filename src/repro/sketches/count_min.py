"""The CountMin sketch of Cormode and Muthukrishnan.

CountMin is a hash-based frequency oracle: it answers point queries for any
element of the universe (with one-sided overestimation error) but does not by
itself return the set of heavy hitters.  The paper discusses this family of
approaches in Section 4: recovering heavy hitters from a private frequency
oracle either requires iterating over the universe or the more involved
construction of Bassily et al., and both lose against the Misra-Gries route.
It is used here as the substrate for the frequency-oracle baseline.
"""

from __future__ import annotations

import math
from collections import Counter
from typing import Dict, Hashable, Iterable

import numpy as np

from .._validation import check_positive_int
from ..exceptions import ParameterError
from ._hashing import bucket_hash
from .base import FrequencySketch

#: Cap on cached per-key column vectors; all-distinct streams would otherwise
#: grow the cache without bound (keys past the cap are hashed per occurrence,
#: exactly like the pre-cache code).
_HASH_CACHE_LIMIT = 1 << 18


class CountMinSketch(FrequencySketch):
    """CountMin sketch with ``depth`` rows of ``width`` counters.

    ``estimate(x)`` is an overestimate of ``f(x)``: with probability at least
    ``1 - exp(-depth)`` the additive error is at most ``e * n / width``.

    Row columns for each distinct element are hashed once and cached as one
    ``depth``-vector, so updates are a single NumPy fancy-indexed add instead
    of a Python loop over ``depth``; :meth:`update_all` groups a whole batch
    by element and applies it with one ``np.add.at`` call.
    """

    def __init__(self, width: int, depth: int, seed: int = 0) -> None:
        self._width = check_positive_int(width, "width")
        self._depth = check_positive_int(depth, "depth")
        if seed < 0:
            raise ParameterError(f"seed must be non-negative, got {seed}")
        self._seed = int(seed)
        self._table = np.zeros((self._depth, self._width), dtype=np.float64)
        self._stream_length = 0
        self._keys_seen: set = set()
        self._rows = np.arange(self._depth)
        self._column_cache: Dict[Hashable, np.ndarray] = {}

    @classmethod
    def from_error_bounds(cls, epsilon_rel: float, failure_prob: float,
                          seed: int = 0) -> "CountMinSketch":
        """Size the sketch to guarantee error ``epsilon_rel * n`` w.p. ``1 - failure_prob``."""
        if not (0 < epsilon_rel < 1):
            raise ParameterError(f"epsilon_rel must be in (0,1), got {epsilon_rel}")
        if not (0 < failure_prob < 1):
            raise ParameterError(f"failure_prob must be in (0,1), got {failure_prob}")
        width = int(math.ceil(math.e / epsilon_rel))
        depth = int(math.ceil(math.log(1.0 / failure_prob)))
        return cls(width=width, depth=max(depth, 1), seed=seed)

    @property
    def width(self) -> int:
        """Number of counters per row."""
        return self._width

    @property
    def depth(self) -> int:
        """Number of hash rows."""
        return self._depth

    @property
    def stream_length(self) -> int:
        return self._stream_length

    def _columns(self, element: Hashable) -> np.ndarray:
        """All-rows column vector of ``element``, hashed once and cached."""
        columns = self._column_cache.get(element)
        if columns is None:
            columns = np.fromiter(
                (bucket_hash(element, self._seed, row, self._width)
                 for row in range(self._depth)),
                dtype=np.intp, count=self._depth)
            if len(self._column_cache) < _HASH_CACHE_LIMIT:
                self._column_cache[element] = columns
        return columns

    def update(self, element: Hashable, weight: float = 1.0) -> None:
        """Add ``weight`` occurrences of ``element`` to the sketch."""
        self._stream_length += 1
        self._keys_seen.add(element)
        self._table[self._rows, self._columns(element)] += weight

    def update_all(self, stream: Iterable[Hashable]) -> "CountMinSketch":
        """Process a whole batch with one grouped ``np.add.at`` table update.

        The batch is grouped by element, each distinct element's columns are
        hashed once (and cached for later batches), and all increments land
        in a single scatter-add — identical counters to element-by-element
        :meth:`update` calls.
        """
        counts = Counter(stream)
        if not counts:
            return self
        unique = list(counts.keys())
        columns = np.vstack([self._columns(element) for element in unique])
        weights = np.fromiter(counts.values(), dtype=np.float64, count=len(unique))
        np.add.at(self._table, (self._rows[np.newaxis, :], columns),
                  weights[:, np.newaxis])
        self._stream_length += int(weights.sum())
        self._keys_seen.update(unique)
        return self

    def estimate(self, element: Hashable) -> float:
        """Point query: the minimum of the element's row counters."""
        columns = self._column_cache.get(element)
        if columns is None:
            # Point queries over a large universe should not grow the cache.
            columns = np.fromiter(
                (bucket_hash(element, self._seed, row, self._width)
                 for row in range(self._depth)),
                dtype=np.intp, count=self._depth)
        return float(self._table[self._rows, columns].min())

    def counters(self) -> Dict[Hashable, float]:
        """Estimates for every element observed during updates.

        CountMin does not store keys, so this convenience view tracks the set
        of observed elements on the side.  Memory use is therefore *not*
        sublinear when this view is used; the private baselines only use point
        queries over a known universe.
        """
        return {key: self.estimate(key) for key in self._keys_seen}

    def table(self) -> np.ndarray:
        """A copy of the underlying counter table (depth x width)."""
        return self._table.copy()

    @classmethod
    def from_stream(cls, width: int, depth: int, stream: Iterable[Hashable],
                    seed: int = 0) -> "CountMinSketch":
        """Build a sketch from an iterable of elements."""
        sketch = cls(width=width, depth=depth, seed=seed)
        sketch.update_all(stream)
        return sketch

    def __repr__(self) -> str:
        return (f"CountMinSketch(width={self._width}, depth={self._depth}, "
                f"n={self._stream_length})")
