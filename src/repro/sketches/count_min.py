"""The CountMin sketch of Cormode and Muthukrishnan.

CountMin is a hash-based frequency oracle: it answers point queries for any
element of the universe (with one-sided overestimation error) but does not by
itself return the set of heavy hitters.  The paper discusses this family of
approaches in Section 4: recovering heavy hitters from a private frequency
oracle either requires iterating over the universe or the more involved
construction of Bassily et al., and both lose against the Misra-Gries route.
It is used here as the substrate for the frequency-oracle baseline.
"""

from __future__ import annotations

import math
from typing import Dict, Hashable, Iterable, Optional

import numpy as np

from .._validation import check_positive_int
from ..exceptions import ParameterError
from ._hashing import bucket_hash
from .base import FrequencySketch


class CountMinSketch(FrequencySketch):
    """CountMin sketch with ``depth`` rows of ``width`` counters.

    ``estimate(x)`` is an overestimate of ``f(x)``: with probability at least
    ``1 - exp(-depth)`` the additive error is at most ``e * n / width``.
    """

    def __init__(self, width: int, depth: int, seed: int = 0) -> None:
        self._width = check_positive_int(width, "width")
        self._depth = check_positive_int(depth, "depth")
        if seed < 0:
            raise ParameterError(f"seed must be non-negative, got {seed}")
        self._seed = int(seed)
        self._table = np.zeros((self._depth, self._width), dtype=np.float64)
        self._stream_length = 0
        self._keys_seen: set = set()

    @classmethod
    def from_error_bounds(cls, epsilon_rel: float, failure_prob: float,
                          seed: int = 0) -> "CountMinSketch":
        """Size the sketch to guarantee error ``epsilon_rel * n`` w.p. ``1 - failure_prob``."""
        if not (0 < epsilon_rel < 1):
            raise ParameterError(f"epsilon_rel must be in (0,1), got {epsilon_rel}")
        if not (0 < failure_prob < 1):
            raise ParameterError(f"failure_prob must be in (0,1), got {failure_prob}")
        width = int(math.ceil(math.e / epsilon_rel))
        depth = int(math.ceil(math.log(1.0 / failure_prob)))
        return cls(width=width, depth=max(depth, 1), seed=seed)

    @property
    def width(self) -> int:
        """Number of counters per row."""
        return self._width

    @property
    def depth(self) -> int:
        """Number of hash rows."""
        return self._depth

    @property
    def stream_length(self) -> int:
        return self._stream_length

    def update(self, element: Hashable, weight: float = 1.0) -> None:
        """Add ``weight`` occurrences of ``element`` to the sketch."""
        self._stream_length += 1
        self._keys_seen.add(element)
        for row in range(self._depth):
            column = bucket_hash(element, self._seed, row, self._width)
            self._table[row, column] += weight

    def estimate(self, element: Hashable) -> float:
        """Point query: the minimum of the element's row counters."""
        values = [self._table[row, bucket_hash(element, self._seed, row, self._width)]
                  for row in range(self._depth)]
        return float(min(values))

    def counters(self) -> Dict[Hashable, float]:
        """Estimates for every element observed during updates.

        CountMin does not store keys, so this convenience view tracks the set
        of observed elements on the side.  Memory use is therefore *not*
        sublinear when this view is used; the private baselines only use point
        queries over a known universe.
        """
        return {key: self.estimate(key) for key in self._keys_seen}

    def table(self) -> np.ndarray:
        """A copy of the underlying counter table (depth x width)."""
        return self._table.copy()

    @classmethod
    def from_stream(cls, width: int, depth: int, stream: Iterable[Hashable],
                    seed: int = 0) -> "CountMinSketch":
        """Build a sketch from an iterable of elements."""
        sketch = cls(width=width, depth=depth, seed=seed)
        sketch.update_all(stream)
        return sketch

    def __repr__(self) -> str:
        return (f"CountMinSketch(width={self._width}, depth={self._depth}, "
                f"n={self._stream_length})")
