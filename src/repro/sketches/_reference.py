"""Frozen reference implementation of the paper-variant Misra-Gries sketch.

This is the pre-optimization engine (explicit O(k) decrement sweeps and an
O(k) ``min`` scan per eviction) kept verbatim as the *executable
specification* of Algorithm 1.  The production engine in
:mod:`repro.sketches.misra_gries` uses a lazy offset, value buckets and a
zero-key heap instead; the property tests in
``tests/unit/sketches/test_misra_gries_equivalence.py`` assert that both
engines produce byte-identical ``raw_counters()``, ``stream_length`` and
``decrement_rounds`` on randomized and adversarial streams.

The only intentional difference from the historical seed code is the
tie-break: it uses the corrected type-tagged
:func:`~repro.sketches._ordering.eviction_order` (the old fixed-width string
keys inverted the order of negative numbers).

Do not optimize this module; it exists to stay slow and obviously correct.
It also serves as the "seed engine" baseline in ``benchmarks/bench_perf_suite.py``.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, Set

from .._validation import check_positive_int
from ..exceptions import SketchStateError
from ._ordering import DummyKey, eviction_order


class ReferenceMisraGries:
    """Direct transcription of Algorithm 1 with O(k) branches."""

    def __init__(self, k: int) -> None:
        self._k = check_positive_int(k, "k")
        self._counters: Dict[Hashable, float] = {DummyKey(i): 0.0
                                                 for i in range(1, self._k + 1)}
        self._zero_keys: Set[Hashable] = set(self._counters.keys())
        self._stream_length = 0
        self._decrement_rounds = 0

    @property
    def size(self) -> int:
        return self._k

    @property
    def stream_length(self) -> int:
        return self._stream_length

    @property
    def decrement_rounds(self) -> int:
        return self._decrement_rounds

    def update(self, element: Hashable) -> None:
        if isinstance(element, DummyKey):
            raise SketchStateError("dummy keys cannot appear in the input stream")
        self._stream_length += 1
        if element in self._counters:
            # Branch 1: increment the stored counter.
            if self._counters[element] == 0.0:
                self._zero_keys.discard(element)
            self._counters[element] += 1.0
            return
        if not self._zero_keys:
            # Branch 2: all counters are at least 1, decrement everything.
            self._decrement_rounds += 1
            for key in self._counters:
                self._counters[key] -= 1.0
                if self._counters[key] == 0.0:
                    self._zero_keys.add(key)
            return
        # Branch 3: replace the smallest zero-count key with the new element.
        victim = min(self._zero_keys, key=eviction_order)
        self._zero_keys.discard(victim)
        del self._counters[victim]
        self._counters[element] = 1.0

    def update_all(self, stream: Iterable[Hashable]) -> "ReferenceMisraGries":
        for element in stream:
            self.update(element)
        return self

    @classmethod
    def from_stream(cls, k: int, stream: Iterable[Hashable]) -> "ReferenceMisraGries":
        sketch = cls(k)
        sketch.update_all(stream)
        return sketch

    def estimate(self, element: Hashable) -> float:
        if isinstance(element, DummyKey):
            return 0.0
        return float(self._counters.get(element, 0.0))

    def counters(self) -> Dict[Hashable, float]:
        return {key: float(value) for key, value in self._counters.items()
                if not isinstance(key, DummyKey)}

    def raw_counters(self) -> Dict[Hashable, float]:
        return dict(self._counters)

    def stored_keys(self) -> Set[Hashable]:
        return set(self._counters.keys())
