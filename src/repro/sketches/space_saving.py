"""The SpaceSaving sketch of Metwally, Agrawal and El Abbadi.

SpaceSaving is the other classic counter-based heavy-hitter sketch.  It is
included as a non-private point of comparison: it *overestimates* frequencies
by at most ``n / k`` whereas Misra-Gries underestimates by at most
``n / (k + 1)``.  The private mechanisms in this library are specific to
Misra-Gries (their privacy proof uses Lemma 8), so SpaceSaving only appears in
the accuracy experiments.

Mirroring the Misra-Gries engine, the minimum-counter victim is tracked with
a lazy min-heap of ``(count, eviction_order, seq)`` entries instead of an
O(k) ``min`` scan, making each eviction O(log k) amortized.  Ties between
equal counters break on the type-tagged
:func:`~repro.sketches._ordering.eviction_order` ("smallest key first"),
which orders negative numbers correctly where the earlier ``repr``-based key
did not.
"""

from __future__ import annotations

import heapq
from typing import Dict, Hashable, Iterable, List, Tuple

from .._validation import check_positive_int
from .base import FrequencySketch
from ._ordering import eviction_order


class SpaceSavingSketch(FrequencySketch):
    """SpaceSaving sketch with ``k`` counters.

    When a new element arrives and the sketch is full, the element with the
    smallest counter is replaced and its counter incremented, so estimates
    satisfy ``f(x) <= estimate(x) <= f(x) + n/k``.
    """

    def __init__(self, k: int) -> None:
        self._k = check_positive_int(k, "k")
        self._counters: Dict[Hashable, float] = {}
        # Lazy min-heap over (count, eviction_order, seq, key); an entry is
        # valid iff the key's current counter still equals its count.
        self._heap: List[Tuple[float, Tuple, int, Hashable]] = []
        self._heap_seq = 0
        self._stream_length = 0

    @property
    def size(self) -> int:
        """The number of counters ``k``."""
        return self._k

    @property
    def stream_length(self) -> int:
        return self._stream_length

    def update(self, element: Hashable) -> None:
        """Process a single element of the stream."""
        self._stream_length += 1
        counters = self._counters
        count = counters.get(element)
        if count is not None:
            counters[element] = count + 1.0
            self._push(element, count + 1.0)
            return
        if len(counters) < self._k:
            counters[element] = 1.0
            self._push(element, 1.0)
            return
        heap = self._heap
        while True:
            minimum, _, _, victim = heapq.heappop(heap)
            if counters.get(victim) == minimum:
                break
        del counters[victim]
        counters[element] = minimum + 1.0
        self._push(element, minimum + 1.0)

    def _push(self, element: Hashable, count: float) -> None:
        heapq.heappush(self._heap, (count, eviction_order(element),
                                    self._heap_seq, element))
        self._heap_seq += 1
        if len(self._heap) > 4 * self._k + 64:
            self._compact_heap()

    def _compact_heap(self) -> None:
        """Rebuild the heap from live counters; amortized O(1) per update."""
        self._heap = [(count, eviction_order(key), index, key)
                      for index, (key, count) in enumerate(self._counters.items())]
        heapq.heapify(self._heap)
        self._heap_seq = len(self._heap)

    def estimate(self, element: Hashable) -> float:
        """Estimated frequency (an overestimate for stored elements)."""
        return float(self._counters.get(element, 0.0))

    def counters(self) -> Dict[Hashable, float]:
        """Stored key/counter pairs."""
        return dict(self._counters)

    @classmethod
    def from_stream(cls, k: int, stream: Iterable[Hashable]) -> "SpaceSavingSketch":
        """Build a sketch of size ``k`` from an iterable of elements."""
        sketch = cls(k)
        sketch.update_all(stream)
        return sketch

    def error_bound(self) -> float:
        """The worst-case overestimation ``n / k``."""
        return self._stream_length / self._k

    def __repr__(self) -> str:
        return (f"SpaceSavingSketch(k={self._k}, stored={len(self._counters)}, "
                f"n={self._stream_length})")
