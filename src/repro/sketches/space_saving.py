"""The SpaceSaving sketch of Metwally, Agrawal and El Abbadi.

SpaceSaving is the other classic counter-based heavy-hitter sketch.  It is
included as a non-private point of comparison: it *overestimates* frequencies
by at most ``n / k`` whereas Misra-Gries underestimates by at most
``n / (k + 1)``.  The private mechanisms in this library are specific to
Misra-Gries (their privacy proof uses Lemma 8), so SpaceSaving only appears in
the accuracy experiments.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable

from .._validation import check_positive_int
from .base import FrequencySketch


class SpaceSavingSketch(FrequencySketch):
    """SpaceSaving sketch with ``k`` counters.

    When a new element arrives and the sketch is full, the element with the
    smallest counter is replaced and its counter incremented, so estimates
    satisfy ``f(x) <= estimate(x) <= f(x) + n/k``.
    """

    def __init__(self, k: int) -> None:
        self._k = check_positive_int(k, "k")
        self._counters: Dict[Hashable, float] = {}
        self._stream_length = 0

    @property
    def size(self) -> int:
        """The number of counters ``k``."""
        return self._k

    @property
    def stream_length(self) -> int:
        return self._stream_length

    def update(self, element: Hashable) -> None:
        """Process a single element of the stream."""
        self._stream_length += 1
        if element in self._counters:
            self._counters[element] += 1.0
            return
        if len(self._counters) < self._k:
            self._counters[element] = 1.0
            return
        victim = min(self._counters, key=lambda key: (self._counters[key], repr(key)))
        minimum = self._counters.pop(victim)
        self._counters[element] = minimum + 1.0

    def estimate(self, element: Hashable) -> float:
        """Estimated frequency (an overestimate for stored elements)."""
        return float(self._counters.get(element, 0.0))

    def counters(self) -> Dict[Hashable, float]:
        """Stored key/counter pairs."""
        return dict(self._counters)

    @classmethod
    def from_stream(cls, k: int, stream: Iterable[Hashable]) -> "SpaceSavingSketch":
        """Build a sketch of size ``k`` from an iterable of elements."""
        sketch = cls(k)
        sketch.update_all(stream)
        return sketch

    def error_bound(self) -> float:
        """The worst-case overestimation ``n / k``."""
        return self._stream_length / self._k

    def __repr__(self) -> str:
        return (f"SpaceSavingSketch(k={self._k}, stored={len(self._counters)}, "
                f"n={self._stream_length})")
