"""The paper's variant of the Misra-Gries sketch (Algorithm 1).

The variant differs from textbook Misra-Gries in two ways that matter only
for the *privacy* analysis, not for the estimates it produces:

* the sketch always stores exactly ``k`` key/counter pairs, starting from
  ``k`` dummy keys (outside the universe) with counters at zero;
* keys whose counter reaches zero are *not* evicted immediately; a zero-count
  key is only replaced when a new element arrives and the sketch has to make
  room, and then the *smallest* zero-count key is replaced (any stream
  independent tie-breaking rule works; smallest-key matches the paper).

Lemma 8 of the paper shows that with these rules the sketches of neighbouring
streams share at least ``k - 2`` keys and their counters differ either by +1
in one position or by -1 everywhere, which is what Algorithm 2 exploits.
"""

from __future__ import annotations

import functools
from typing import Dict, Hashable, Iterable, List, Optional, Set, Tuple

from .._validation import check_positive_int
from ..exceptions import SketchStateError
from .base import FrequencySketch


@functools.total_ordering
class DummyKey:
    """Placeholder key used to pad the sketch to exactly ``k`` counters.

    Dummy keys play the role of the elements ``d+1, ..., d+k`` in the paper:
    they are outside the universe and compare *greater* than every real
    element, so real zero-count keys are always evicted before dummies and
    dummies are evicted in index order.
    """

    __slots__ = ("index",)

    def __init__(self, index: int) -> None:
        self.index = index

    def __repr__(self) -> str:
        return f"DummyKey({self.index})"

    def __hash__(self) -> int:
        return hash(("__repro_dummy__", self.index))

    def __eq__(self, other) -> bool:
        return isinstance(other, DummyKey) and other.index == self.index

    def __lt__(self, other) -> bool:
        if isinstance(other, DummyKey):
            return self.index < other.index
        # A dummy key is greater than any real element.
        return False

    def __gt__(self, other) -> bool:
        if isinstance(other, DummyKey):
            return self.index > other.index
        return True


def _eviction_order(key: Hashable) -> Tuple[int, str]:
    """Sort key implementing "smallest key first, dummies last".

    Real elements are compared through their ``repr`` so that mixed-type
    universes do not raise; for the homogeneous integer/string universes used
    in the paper and the experiments this coincides with the natural order.
    """
    if isinstance(key, DummyKey):
        return (1, f"{key.index:020d}")
    if isinstance(key, (int, float)) and not isinstance(key, bool):
        return (0, f"{float(key):040.10f}")
    return (0, repr(key))


class MisraGriesSketch(FrequencySketch):
    """Misra-Gries sketch of size ``k`` (paper variant, Algorithm 1).

    Parameters
    ----------
    k:
        Number of counters.  The sketch guarantees
        ``estimate(x) in [f(x) - n/(k+1), f(x)]`` for every element ``x``
        where ``n`` is the stream length (Fact 7).

    Examples
    --------
    >>> sketch = MisraGriesSketch(2)
    >>> sketch.update_all(["a", "b", "a", "c", "a"])  # doctest: +ELLIPSIS
    <repro.sketches.misra_gries.MisraGriesSketch object at ...>
    >>> sketch.estimate("a") >= sketch.stream_length / 3 - 1
    True
    """

    def __init__(self, k: int) -> None:
        self._k = check_positive_int(k, "k")
        self._counters: Dict[Hashable, float] = {DummyKey(i): 0.0 for i in range(1, self._k + 1)}
        self._zero_keys: Set[Hashable] = set(self._counters.keys())
        self._stream_length = 0
        self._decrement_rounds = 0

    # ------------------------------------------------------------------
    # FrequencySketch interface
    # ------------------------------------------------------------------

    @property
    def size(self) -> int:
        """The number of counters ``k``."""
        return self._k

    @property
    def stream_length(self) -> int:
        return self._stream_length

    @property
    def decrement_rounds(self) -> int:
        """Number of times the decrement-all branch (Branch 2) has executed."""
        return self._decrement_rounds

    def update(self, element: Hashable) -> None:
        """Process a single stream element (Branches 1-3 of Algorithm 1)."""
        if isinstance(element, DummyKey):
            raise SketchStateError("dummy keys cannot appear in the input stream")
        self._stream_length += 1
        if element in self._counters:
            # Branch 1: increment the stored counter.
            if self._counters[element] == 0.0:
                self._zero_keys.discard(element)
            self._counters[element] += 1.0
            return
        if not self._zero_keys:
            # Branch 2: all counters are at least 1, decrement everything.
            self._decrement_rounds += 1
            for key in self._counters:
                self._counters[key] -= 1.0
                if self._counters[key] == 0.0:
                    self._zero_keys.add(key)
            return
        # Branch 3: replace the smallest zero-count key with the new element.
        victim = min(self._zero_keys, key=_eviction_order)
        self._zero_keys.discard(victim)
        del self._counters[victim]
        self._counters[element] = 1.0

    def estimate(self, element: Hashable) -> float:
        """Estimated frequency of ``element`` (0 for unstored elements)."""
        if isinstance(element, DummyKey):
            return 0.0
        return float(self._counters.get(element, 0.0))

    def counters(self) -> Dict[Hashable, float]:
        """Stored real keys and their counters (dummy keys removed)."""
        return {key: float(value) for key, value in self._counters.items()
                if not isinstance(key, DummyKey)}

    def raw_counters(self) -> Dict[Hashable, float]:
        """All ``k`` stored key/counter pairs, including dummy keys.

        This is the view Algorithm 2 operates on: noise is added to every
        stored counter and dummy keys are discarded afterwards as
        post-processing.
        """
        return dict(self._counters)

    def stored_keys(self) -> Set[Hashable]:
        """The key set ``T`` of Algorithm 1 (includes dummy keys)."""
        return set(self._counters.keys())

    # ------------------------------------------------------------------
    # Convenience constructors / helpers
    # ------------------------------------------------------------------

    @classmethod
    def from_stream(cls, k: int, stream: Iterable[Hashable]) -> "MisraGriesSketch":
        """Build a sketch of size ``k`` from an iterable of elements."""
        sketch = cls(k)
        sketch.update_all(stream)
        return sketch

    def error_bound(self) -> float:
        """The worst-case underestimation ``n / (k + 1)`` from Fact 7."""
        return self._stream_length / (self._k + 1)

    def memory_words(self) -> int:
        """Memory use measured in words, ``2k`` (one key and one counter each)."""
        return 2 * self._k

    def __repr__(self) -> str:
        stored = len(self.counters())
        return (f"MisraGriesSketch(k={self._k}, stored={stored}, "
                f"n={self._stream_length})")
