"""The paper's variant of the Misra-Gries sketch (Algorithm 1).

The variant differs from textbook Misra-Gries in two ways that matter only
for the *privacy* analysis, not for the estimates it produces:

* the sketch always stores exactly ``k`` key/counter pairs, starting from
  ``k`` dummy keys (outside the universe) with counters at zero;
* keys whose counter reaches zero are *not* evicted immediately; a zero-count
  key is only replaced when a new element arrives and the sketch has to make
  room, and then the *smallest* zero-count key is replaced (any stream
  independent tie-breaking rule works; smallest-key matches the paper).

Lemma 8 of the paper shows that with these rules the sketches of neighbouring
streams share at least ``k - 2`` keys and their counters differ either by +1
in one position or by -1 everywhere, which is what Algorithm 2 exploits.

Complexity
----------
Updates are **O(1) amortized** (matching the paper's cost model) via the
classic lazy-offset representation:

* counters are stored relative to a global ``_base`` offset, so the
  decrement-all branch (Branch 2) is a single ``base += 1`` instead of an
  O(k) sweep;
* keys are bucketed by their *stored* (offset) value, so the keys that reach
  zero after a lazy decrement are found in O(#newly-zero) time;
* zero-count keys live in a min-heap of precomputed
  :func:`~repro.sketches._ordering.eviction_order` keys, making each
  eviction (Branch 3) O(log k) with no repeated ``repr``/format calls.

:meth:`MisraGriesSketch.update_batch` additionally vectorizes integer
streams with NumPy (run-length grouping of stored keys, bulk increments)
while producing *bit-identical* sketch state to the sequential algorithm;
``tests/unit/sketches/test_misra_gries_equivalence.py`` proves the
equivalence against the frozen reference implementation in
:mod:`repro.sketches._reference`.
"""

from __future__ import annotations

import heapq
from typing import Dict, Hashable, Iterable, List, Set, Tuple

import numpy as np

from .. import kernels as _kernels
from .._validation import check_positive_int
from ..exceptions import ParameterError, SketchStateError
from ._ordering import DummyKey, eviction_order
from .base import FrequencySketch

__all__ = ["DummyKey", "MisraGriesSketch"]

# Backwards-compatible alias: earlier revisions defined the sort key here.
_eviction_order = eviction_order

#: Elements per NumPy chunk in :meth:`MisraGriesSketch.update_batch`.
_BATCH_CHUNK = 8192


class MisraGriesSketch(FrequencySketch):
    """Misra-Gries sketch of size ``k`` (paper variant, Algorithm 1).

    Parameters
    ----------
    k:
        Number of counters.  The sketch guarantees
        ``estimate(x) in [f(x) - n/(k+1), f(x)]`` for every element ``x``
        where ``n`` is the stream length (Fact 7).
    backend:
        Kernel backend for :meth:`update_batch`: ``"auto"`` (default) uses a
        compiled kernel when one is available, ``"python"`` forces the pure
        NumPy/python engine, ``"compiled"``/``"numba"``/``"cc"`` require a
        specific provider (raising
        :class:`~repro.exceptions.ParameterError` when absent).  The
        ``REPRO_KERNELS`` environment variable overrides this value.  Every
        backend produces bit-identical sketch state.

    Examples
    --------
    >>> sketch = MisraGriesSketch(2)
    >>> sketch.update_all(["a", "b", "a", "c", "a"])  # doctest: +ELLIPSIS
    <repro.sketches.misra_gries.MisraGriesSketch object at ...>
    >>> sketch.estimate("a") >= sketch.stream_length / 3 - 1
    True
    """

    def __init__(self, k: int, backend: str = "auto") -> None:
        self._k = check_positive_int(k, "k")
        self._backend = _kernels.validate_backend(backend)
        if self._backend not in ("auto", "python"):
            # Fail at construction, not first update, when an explicitly
            # requested provider cannot be honoured (the env override can
            # still redirect the request at update time).
            _kernels.resolve_backend(self._backend)
        # Lazy decrement offset: the counter of a key is `stored - base`.
        self._base = 0
        self._stored: Dict[Hashable, int] = {DummyKey(i): 0 for i in range(1, self._k + 1)}
        # Keys grouped by stored value; the bucket at `_base` is the zero set.
        self._buckets: Dict[int, Set[Hashable]] = {0: set(self._stored)}
        # Min-heap of (eviction_order, seq, key) over zero-count keys; entries
        # go stale when a key leaves the zero set and are discarded lazily.
        self._heap_seq = self._k
        self._zero_heap: List[Tuple[Tuple, int, Hashable]] = [
            (eviction_order(key), index, key) for index, key in enumerate(self._stored)]
        heapq.heapify(self._zero_heap)
        self._stream_length = 0
        self._decrement_rounds = 0

    # ------------------------------------------------------------------
    # FrequencySketch interface
    # ------------------------------------------------------------------

    @property
    def size(self) -> int:
        """The number of counters ``k``."""
        return self._k

    @property
    def stream_length(self) -> int:
        return self._stream_length

    @property
    def decrement_rounds(self) -> int:
        """Number of times the decrement-all branch (Branch 2) has executed."""
        return self._decrement_rounds

    def update(self, element: Hashable) -> None:
        """Process a single stream element (Branches 1-3 of Algorithm 1)."""
        if isinstance(element, DummyKey):
            raise SketchStateError("dummy keys cannot appear in the input stream")
        self._stream_length += 1
        self._apply_one(element)

    def update_batch(self, values) -> "MisraGriesSketch":
        """Vectorized update for a 1-D integer array; returns ``self``.

        Produces exactly the same sketch state (counters, eviction choices,
        ``decrement_rounds``) as calling :meth:`update` on every element in
        order: within any maximal span of elements that are all currently
        stored, every update takes Branch 1 and the increments commute, so
        they can be applied as bulk per-key additions; the remaining elements
        are replayed through the sequential engine.
        """
        array = np.asarray(values)
        if array.ndim != 1:
            raise ParameterError(
                f"update_batch expects a one-dimensional array, got shape {array.shape}")
        if array.size == 0:
            return self
        if array.dtype.kind not in "iu":
            raise ParameterError(
                f"update_batch expects an integer array, got dtype {array.dtype}")
        if self._kernel_batch(array):
            return self
        for start in range(0, len(array), _BATCH_CHUNK):
            self._apply_chunk(array[start:start + _BATCH_CHUNK])
        return self

    @property
    def backend(self) -> str:
        """The requested kernel backend (``REPRO_KERNELS`` may override)."""
        return self._backend

    def resolved_backend(self) -> str:
        """The backend :meth:`update_batch` resolves to right now."""
        return _kernels.backend_name(self._backend)

    def estimate(self, element: Hashable) -> float:
        """Estimated frequency of ``element`` (0 for unstored elements)."""
        if isinstance(element, DummyKey):
            return 0.0
        value = self._stored.get(element)
        if value is None:
            return 0.0
        return float(value - self._base)

    def counters(self) -> Dict[Hashable, float]:
        """Stored real keys and their counters (dummy keys removed)."""
        base = self._base
        return {key: float(value - base) for key, value in self._stored.items()
                if not isinstance(key, DummyKey)}

    def raw_counters(self) -> Dict[Hashable, float]:
        """All ``k`` stored key/counter pairs, including dummy keys.

        This is the view Algorithm 2 operates on: noise is added to every
        stored counter and dummy keys are discarded afterwards as
        post-processing.
        """
        base = self._base
        return {key: float(value - base) for key, value in self._stored.items()}

    def stored_keys(self) -> Set[Hashable]:
        """The key set ``T`` of Algorithm 1 (includes dummy keys)."""
        return set(self._stored.keys())

    # ------------------------------------------------------------------
    # Convenience constructors / helpers
    # ------------------------------------------------------------------

    @classmethod
    def from_stream(cls, k: int, stream: Iterable[Hashable]) -> "MisraGriesSketch":
        """Build a sketch of size ``k`` from an iterable of elements.

        Integer ndarrays (and plain lists of ints) are routed through
        :meth:`update_batch` automatically by ``update_all``.
        """
        sketch = cls(k)
        sketch.update_all(stream)
        return sketch

    def error_bound(self) -> float:
        """The worst-case underestimation ``n / (k + 1)`` from Fact 7."""
        return self._stream_length / (self._k + 1)

    def memory_words(self) -> int:
        """Memory use measured in words, ``2k`` (one key and one counter each)."""
        return 2 * self._k

    def __repr__(self) -> str:
        stored = len(self.counters())
        return (f"MisraGriesSketch(k={self._k}, stored={stored}, "
                f"n={self._stream_length})")

    # ------------------------------------------------------------------
    # Sequential engine
    # ------------------------------------------------------------------

    def _apply_one(self, element: Hashable) -> None:
        """Branches 1-3 for one element; ``_stream_length`` handled by callers."""
        stored = self._stored
        value = stored.get(element)
        if value is not None:
            # Branch 1: increment the stored counter.
            self._move(element, value, value + 1)
            return
        base = self._base
        zeros = self._buckets.get(base)
        if not zeros:
            # Branch 2: all counters >= 1; decrement everything lazily.
            self._decrement_rounds += 1
            base += 1
            self._base = base
            newly_zero = self._buckets.get(base)
            if newly_zero:
                heap, seq = self._zero_heap, self._heap_seq
                for key in newly_zero:
                    heapq.heappush(heap, (eviction_order(key), seq, key))
                    seq += 1
                self._heap_seq = seq
                if len(heap) > 4 * self._k + 64:
                    self._compact_heap()
            return
        # Branch 3: replace the smallest zero-count key with the new element.
        heap = self._zero_heap
        while heap:
            _, _, victim = heapq.heappop(heap)
            if victim in zeros:
                break
        else:
            raise SketchStateError("zero-key heap exhausted; sketch state is corrupt")
        zeros.discard(victim)
        if not zeros:
            del self._buckets[base]
        del stored[victim]
        value = base + 1
        stored[element] = value
        bucket = self._buckets.get(value)
        if bucket is None:
            self._buckets[value] = {element}
        else:
            bucket.add(element)

    def _move(self, element: Hashable, old: int, new: int) -> None:
        """Reassign ``element`` from stored value ``old`` to ``new``."""
        self._stored[element] = new
        bucket = self._buckets[old]
        bucket.discard(element)
        if not bucket:
            del self._buckets[old]
        target = self._buckets.get(new)
        if target is None:
            self._buckets[new] = {element}
        else:
            target.add(element)

    def _compact_heap(self) -> None:
        """Drop stale heap entries; cost O(k), amortized O(1) per update."""
        zeros = self._buckets.get(self._base, ())
        self._zero_heap = [(eviction_order(key), index, key)
                           for index, key in enumerate(zeros)]
        heapq.heapify(self._zero_heap)
        self._heap_seq = len(self._zero_heap)

    # ------------------------------------------------------------------
    # Compiled kernel engine
    # ------------------------------------------------------------------

    def _kernel_batch(self, array: np.ndarray) -> bool:
        """Run one ``update_batch`` call through a compiled kernel.

        Returns ``False`` (leaving the state untouched) whenever the call
        cannot take the native path — no compiled provider, a key universe
        the int64 state cannot represent, or non-integer stored values from
        a deserialized sketch — so the python engine handles it instead.
        The kernel replays Branches 1-3 element by element, which is
        bit-identical to the chunked python path (itself property-tested
        equal to the sequential engine).
        """
        kernel = _kernels.get_kernel("mg_update", self._backend)
        if kernel is None:
            return False
        chunk = self._as_int64_chunk(array)
        if chunk is None:
            return False
        state = self._export_kernel_state()
        if state is None:
            return False
        keys, dummy, stored, ins_seq, io = state
        status = kernel(keys, dummy, stored, ins_seq, io, chunk)
        if status != 0:
            raise SketchStateError("zero-key heap exhausted; sketch state is corrupt")
        self._import_kernel_state(keys, dummy, stored, ins_seq, io, int(array.size))
        return True

    @staticmethod
    def _as_int64_chunk(array: np.ndarray) -> "np.ndarray | None":
        """``array`` as a contiguous int64 view/copy, or ``None`` if lossy."""
        if array.dtype == np.int64:
            return np.ascontiguousarray(array)
        if array.dtype.kind == "i":
            return array.astype(np.int64)
        # Unsigned: uint64 values beyond int64 range must stay in python.
        if array.dtype.itemsize == 8 and array.size and int(array.max()) > 2**63 - 1:
            return None
        return array.astype(np.int64)

    def _export_kernel_state(self):
        """Sketch state as the kernel's parallel int64 arrays, or ``None``.

        Only pure ``int``-keyed, ``int``-valued state qualifies; anything
        else (string keys from sequential updates, float counters from
        ``_restore_state``, numpy scalar keys) falls back to the python
        engine, preserving exact key objects and semantics.
        """
        k = self._k
        keys = np.empty(k, dtype=np.int64)
        dummy = np.zeros(k, dtype=np.int64)
        stored = np.empty(k, dtype=np.int64)
        index = 0
        for key, value in self._stored.items():
            if type(value) is not int:
                return None
            if type(key) is int:
                if not (-(2**63) <= key < 2**63):
                    return None
                keys[index] = key
            elif isinstance(key, DummyKey):
                dummy[index] = 1
                keys[index] = key.index
            else:
                return None
            stored[index] = value
            index += 1
        ins_seq = np.arange(k, dtype=np.int64)
        io = np.array([self._base, self._decrement_rounds, k], dtype=np.int64)
        return keys, dummy, stored, ins_seq, io

    def _import_kernel_state(self, keys, dummy, stored, ins_seq, io, n: int) -> None:
        """Rebuild the dict/bucket/heap state from the kernel arrays.

        ``ins_seq`` reproduces dict insertion order exactly: surviving slots
        keep their original position, evicted slots re-append in eviction
        order — the same order the python engine's ``del``/insert pairs
        produce.
        """
        order = np.argsort(ins_seq).tolist()
        key_list = keys.tolist()
        dummy_list = dummy.tolist()
        value_list = stored.tolist()
        stored_dict = {}
        buckets = {}
        for slot in order:
            key = DummyKey(key_list[slot]) if dummy_list[slot] else key_list[slot]
            value = value_list[slot]
            stored_dict[key] = value
            bucket = buckets.get(value)
            if bucket is None:
                buckets[value] = {key}
            else:
                bucket.add(key)
        self._stored = stored_dict
        self._buckets = buckets
        self._base = int(io[0])
        self._decrement_rounds = int(io[1])
        self._compact_heap()
        self._stream_length += n

    # ------------------------------------------------------------------
    # Vectorized engine
    # ------------------------------------------------------------------

    def _apply_chunk(self, chunk: np.ndarray) -> None:
        stored = self._stored
        unique = np.unique(chunk)
        unique_list = unique.tolist()
        missing = [value for value in unique_list if value not in stored]
        if not missing:
            self._bulk_segment(chunk)
            return
        if 4 * len(missing) >= len(unique_list):
            # Missing-dense chunk (e.g. adversarial all-distinct streams):
            # the sequential engine is already O(1) amortized per element.
            for value in chunk.tolist():
                self._stream_length += 1
                self._apply_one(value)
            return
        # Spans between positions holding a missing value consist purely of
        # Branch-1 increments and are applied in bulk.
        flagged = np.flatnonzero(np.isin(chunk, np.asarray(missing, dtype=chunk.dtype)))
        position = 0
        for index in flagged.tolist():
            if index > position:
                self._bulk_segment(chunk[position:index])
            self._stream_length += 1
            self._apply_one(int(chunk[index]))
            position = index + 1
        if position < len(chunk):
            self._bulk_segment(chunk[position:])

    def _bulk_segment(self, segment: np.ndarray) -> None:
        """Apply a segment expected to contain only stored keys.

        Branch-1 increments of distinct keys commute, so the segment collapses
        to one bulk addition per unique key.  A Branch-3 eviction earlier in
        the chunk can invalidate the expectation for a key that re-appears
        later; such segments are replayed sequentially to stay bit-identical.
        """
        stored = self._stored
        unique, counts = np.unique(segment, return_counts=True)
        pairs = list(zip(unique.tolist(), counts.tolist()))
        if all(value in stored for value, _ in pairs):
            for value, count in pairs:
                self._move(value, stored[value], stored[value] + count)
            self._stream_length += int(len(segment))
            return
        for value in segment.tolist():
            self._stream_length += 1
            self._apply_one(value)

    # ------------------------------------------------------------------
    # State restoration (serialization support)
    # ------------------------------------------------------------------

    def _restore_state(self, counters: Dict[Hashable, float], stream_length: int,
                       decrement_rounds: int) -> None:
        """Rebuild internal structures from a deserialized counter mapping."""
        if len(counters) != self._k:
            raise SketchStateError(
                f"paper-variant sketch must store exactly k={self._k} counters, "
                f"got {len(counters)}")
        self._base = 0
        self._stored = {}
        self._buckets = {}
        for key, value in counters.items():
            if value < 0:
                raise SketchStateError(f"negative counter for {key!r}")
            count = int(value) if float(value).is_integer() else value
            self._stored[key] = count
            bucket = self._buckets.get(count)
            if bucket is None:
                self._buckets[count] = {key}
            else:
                bucket.add(key)
        self._compact_heap()
        self._stream_length = int(stream_length)
        self._decrement_rounds = int(decrement_rounds)
