"""Exact frequency counting (the non-streaming reference point).

The exact counter stores one counter per distinct element.  It is the
substrate for the non-streaming private baselines (exact histogram + Laplace
noise + thresholding) and for ground-truth frequencies in every experiment.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, Hashable, Iterable, List, Tuple

from .base import FrequencySketch


class ExactCounter(FrequencySketch):
    """Exact frequency counter (unbounded memory)."""

    def __init__(self) -> None:
        self._counts: Counter = Counter()
        self._stream_length = 0

    @property
    def stream_length(self) -> int:
        return self._stream_length

    def update(self, element: Hashable) -> None:
        """Count one occurrence of ``element``."""
        self._counts[element] += 1
        self._stream_length += 1

    def update_sets(self, stream_of_sets: Iterable[Iterable[Hashable]]) -> "ExactCounter":
        """Count user-level streams where each item is a set of elements."""
        for user_set in stream_of_sets:
            for element in user_set:
                self.update(element)
        return self

    def estimate(self, element: Hashable) -> float:
        """The exact frequency of ``element``."""
        return float(self._counts.get(element, 0))

    def counters(self) -> Dict[Hashable, float]:
        """All exact counts."""
        return {key: float(value) for key, value in self._counts.items()}

    def top(self, count: int) -> List[Tuple[Hashable, float]]:
        """The ``count`` most frequent elements, sorted descending."""
        return [(key, float(value)) for key, value in self._counts.most_common(count)]

    def distinct(self) -> int:
        """Number of distinct elements observed."""
        return len(self._counts)

    @classmethod
    def from_stream(cls, stream: Iterable[Hashable]) -> "ExactCounter":
        """Count an entire element stream."""
        counter = cls()
        counter.update_all(stream)
        return counter

    def __repr__(self) -> str:
        return f"ExactCounter(distinct={len(self._counts)}, n={self._stream_length})"
