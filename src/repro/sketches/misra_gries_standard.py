"""The standard (textbook) Misra-Gries sketch.

The standard version evicts a key as soon as its counter reaches zero during
the decrement step and only admits a new element when fewer than ``k`` keys
are stored.  Its frequency estimates are *identical* to the paper variant in
:mod:`repro.sketches.misra_gries` (the paper relies on this to inherit Fact 7)
but its stored key set can differ on up to ``k`` keys between neighbouring
streams, which is why Section 5.1 of the paper uses a larger threshold when
privatizing it.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, Set

from .._validation import check_positive_int
from .base import FrequencySketch


class StandardMisraGriesSketch(FrequencySketch):
    """Textbook Misra-Gries sketch of size ``k``.

    Examples
    --------
    >>> sketch = StandardMisraGriesSketch(2)
    >>> sketch.update_all(["a", "b", "a", "c", "a"])  # doctest: +ELLIPSIS
    <repro.sketches.misra_gries_standard.StandardMisraGriesSketch object at ...>
    >>> sorted(sketch.counters())
    ['a']
    """

    def __init__(self, k: int) -> None:
        self._k = check_positive_int(k, "k")
        self._counters: Dict[Hashable, float] = {}
        self._stream_length = 0
        self._decrement_rounds = 0

    @property
    def size(self) -> int:
        """The number of counters ``k``."""
        return self._k

    @property
    def stream_length(self) -> int:
        return self._stream_length

    @property
    def decrement_rounds(self) -> int:
        """Number of times the decrement-all branch has executed."""
        return self._decrement_rounds

    def update(self, element: Hashable) -> None:
        """Process a single element of the stream."""
        self._stream_length += 1
        if element in self._counters:
            self._counters[element] += 1.0
            return
        if len(self._counters) < self._k:
            self._counters[element] = 1.0
            return
        # Decrement every counter and evict the ones that reach zero.
        self._decrement_rounds += 1
        exhausted = []
        for key in self._counters:
            self._counters[key] -= 1.0
            if self._counters[key] <= 0.0:
                exhausted.append(key)
        for key in exhausted:
            del self._counters[key]

    def estimate(self, element: Hashable) -> float:
        """Estimated frequency of ``element`` (0 for unstored elements)."""
        return float(self._counters.get(element, 0.0))

    def counters(self) -> Dict[Hashable, float]:
        """Stored key/counter pairs (all counters are strictly positive)."""
        return dict(self._counters)

    def stored_keys(self) -> Set[Hashable]:
        """The currently stored key set."""
        return set(self._counters.keys())

    @classmethod
    def from_stream(cls, k: int, stream: Iterable[Hashable]) -> "StandardMisraGriesSketch":
        """Build a sketch of size ``k`` from an iterable of elements."""
        sketch = cls(k)
        sketch.update_all(stream)
        return sketch

    def error_bound(self) -> float:
        """The worst-case underestimation ``n / (k + 1)`` from Fact 7."""
        return self._stream_length / (self._k + 1)

    def __repr__(self) -> str:
        return (f"StandardMisraGriesSketch(k={self._k}, stored={len(self._counters)}, "
                f"n={self._stream_length})")
