"""Eviction ordering shared by the counter-based sketches.

The paper's Misra-Gries variant breaks ties between zero-count keys with any
*stream independent* rule; the implementation uses "smallest key first,
dummies last".  This module provides the canonical sort key implementing that
rule plus the :class:`DummyKey` padding keys of Algorithm 1.

The sort key is a type-tagged tuple ``(rank, value)``:

* numbers (ints and floats, but not bools) compare numerically in rank 0;
* every other real key compares by ``repr`` in rank 1;
* dummy keys compare by index in rank 2, after all real keys.

Earlier revisions encoded numbers as fixed-width strings, which inverted the
order of negative numbers (``-3`` formatted as ``"-00…3"`` sorts before
``-5`` formatted as ``"-00…5"``); the tuple form compares ``-5 < -3``
correctly and avoids the per-comparison string formatting cost entirely.
"""

from __future__ import annotations

import functools
import math
from typing import Hashable, Tuple

#: Rank constants of the type-tagged eviction key.
_RANK_NUMBER = 0
_RANK_OTHER = 1
_RANK_DUMMY = 2


@functools.total_ordering
class DummyKey:
    """Placeholder key used to pad the sketch to exactly ``k`` counters.

    Dummy keys play the role of the elements ``d+1, ..., d+k`` in the paper:
    they are outside the universe and compare *greater* than every real
    element, so real zero-count keys are always evicted before dummies and
    dummies are evicted in index order.
    """

    __slots__ = ("index",)

    def __init__(self, index: int) -> None:
        self.index = index

    def __repr__(self) -> str:
        return f"DummyKey({self.index})"

    def __hash__(self) -> int:
        return hash(("__repro_dummy__", self.index))

    def __eq__(self, other) -> bool:
        return isinstance(other, DummyKey) and other.index == self.index

    def __lt__(self, other) -> bool:
        if isinstance(other, DummyKey):
            return self.index < other.index
        # A dummy key is greater than any real element.
        return False

    def __gt__(self, other) -> bool:
        if isinstance(other, DummyKey):
            return self.index > other.index
        return True


def eviction_order(key: Hashable) -> Tuple:
    """Sort key implementing "smallest key first, dummies last".

    Numbers order numerically before all non-numeric keys, non-numeric keys
    order by ``repr`` and dummy keys come last in index order.  Keys with
    different ranks never compare against each other's payload, so mixed-type
    universes cannot raise ``TypeError``.
    """
    if isinstance(key, DummyKey):
        return (_RANK_DUMMY, key.index)
    if isinstance(key, (int, float)) and not isinstance(key, bool):
        if key != key:
            # NaN keys are incomparable as floats, which would make the sort
            # key a partial order; rank them with the non-numeric keys by
            # repr so the order stays total and stream-independent.
            return (_RANK_OTHER, repr(key))
        try:
            # The exact key breaks ties between distinct ints that round to
            # the same float (possible from 2**53 up); hash-equal keys like
            # 5 and 5.0 cannot coexist in one sketch, so the third element
            # only ever compares numerically comparable values.
            return (_RANK_NUMBER, float(key), key)
        except OverflowError:
            # Ints beyond float range: order after/before every float of the
            # same sign, then numerically among themselves (the extra tuple
            # element only ever compares against another oversized int).
            return (_RANK_NUMBER, math.inf if key > 0 else -math.inf, key)
    return (_RANK_OTHER, repr(key))
