"""Deterministic seeded hashing for the hash-based sketches.

Python's builtin ``hash`` is randomized per process for strings, which would
make CountMin / CountSketch results impossible to reproduce across runs.  We
instead derive hashes from blake2b over the ``repr`` of the element, keyed by
the sketch's seed and the row index.  This is not a cryptographic commitment
to independence, but it behaves like a fresh random hash function per row,
which is all the estimators need in simulation.
"""

from __future__ import annotations

import hashlib
from typing import Hashable


def stable_hash(element: Hashable, seed: int, row: int) -> int:
    """A 64-bit hash of ``element`` determined by ``seed`` and ``row``."""
    payload = repr(element).encode("utf-8", errors="backslashreplace")
    key = (seed & 0xFFFFFFFF).to_bytes(4, "little") + (row & 0xFFFFFFFF).to_bytes(4, "little")
    digest = hashlib.blake2b(payload, key=key, digest_size=8).digest()
    return int.from_bytes(digest, "little")


def bucket_hash(element: Hashable, seed: int, row: int, width: int) -> int:
    """Hash ``element`` into ``[0, width)`` for row ``row``."""
    return stable_hash(element, seed, row) % width


def sign_hash(element: Hashable, seed: int, row: int) -> int:
    """A +/-1 hash of ``element`` for row ``row`` (used by CountSketch)."""
    return 1 if stable_hash(element, seed ^ 0x5A5A5A5A, row) & 1 else -1
