"""Common interface for streaming frequency sketches.

Every sketch in :mod:`repro.sketches` processes a stream of hashable elements
one at a time (``update``), can estimate the frequency of any element
(``estimate``) and can report its stored key/counter pairs (``counters``).
The private mechanisms in :mod:`repro.core` consume sketches only through
this interface, which keeps them decoupled from the particular sketch
implementation.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Dict, Hashable, Iterable, Iterator, List, Tuple


@dataclass(frozen=True)
class SketchSummary:
    """Immutable snapshot of a sketch: stored keys with their counters.

    ``counters`` maps stored keys to (non-negative) counts.  Elements absent
    from the mapping implicitly have count 0, mirroring the convention used
    throughout the paper.  ``stream_length`` records how many elements the
    sketch has processed, which the error bounds depend on.
    """

    counters: Dict[Hashable, float]
    stream_length: int = 0
    capacity: int = 0

    def estimate(self, element: Hashable) -> float:
        """Estimated frequency of ``element`` (0 when not stored)."""
        return float(self.counters.get(element, 0.0))

    def keys(self) -> List[Hashable]:
        """Stored keys (order unspecified)."""
        return list(self.counters.keys())

    def items(self) -> List[Tuple[Hashable, float]]:
        """Stored (key, counter) pairs."""
        return list(self.counters.items())

    def top(self, count: int) -> List[Tuple[Hashable, float]]:
        """The ``count`` stored keys with the largest counters, sorted descending."""
        ranked = sorted(self.counters.items(), key=lambda kv: (-kv[1], repr(kv[0])))
        return ranked[:count]

    def total(self) -> float:
        """Sum of all stored counters."""
        return float(sum(self.counters.values()))

    def __len__(self) -> int:
        return len(self.counters)


class FrequencySketch(ABC):
    """Abstract base class for streaming frequency estimators."""

    @abstractmethod
    def update(self, element: Hashable) -> None:
        """Process one element of the stream."""

    def update_all(self, stream: Iterable[Hashable]) -> "FrequencySketch":
        """Process an entire iterable of elements; returns ``self`` for chaining.

        Sketches exposing an ``update_batch`` method (currently
        :class:`~repro.sketches.misra_gries.MisraGriesSketch`) receive integer
        ndarrays — and lists/tuples of ints, coerced via
        :func:`repro._batching.as_int_array` — through the vectorized path,
        which is bit-identical to the element-by-element loop.
        """
        update_batch = getattr(self, "update_batch", None)
        if update_batch is not None:
            from .._batching import as_int_array

            batch = as_int_array(stream)
            if batch is not None:
                update_batch(batch)
                return self
        for element in stream:
            self.update(element)
        return self

    @abstractmethod
    def estimate(self, element: Hashable) -> float:
        """Estimated frequency of ``element``."""

    @abstractmethod
    def counters(self) -> Dict[Hashable, float]:
        """The stored key/counter pairs as a plain dict (copies internal state)."""

    @property
    @abstractmethod
    def stream_length(self) -> int:
        """Number of elements processed so far."""

    def summary(self) -> SketchSummary:
        """A :class:`SketchSummary` snapshot of the sketch."""
        return SketchSummary(counters=self.counters(),
                             stream_length=self.stream_length,
                             capacity=getattr(self, "size", 0))

    def heavy_hitters(self, threshold: float) -> Dict[Hashable, float]:
        """Stored elements whose estimated frequency is at least ``threshold``."""
        return {key: value for key, value in self.counters().items() if value >= threshold}

    def __iter__(self) -> Iterator[Tuple[Hashable, float]]:
        return iter(self.counters().items())
