"""Serialization of sketches and private histograms.

Distributed deployments (Section 7) ship sketches from edge servers to an
aggregator; this module provides a stable JSON representation for the
counter-based sketches and for released histograms so they can cross process
or machine boundaries without pickling arbitrary objects.

Only JSON-representable keys (ints and strings) are supported; integer keys
are round-tripped back to ``int``.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Hashable, Union

from ..exceptions import ParameterError, SketchStateError
from .misra_gries import DummyKey, MisraGriesSketch
from .misra_gries_standard import StandardMisraGriesSketch

PathLike = Union[str, Path]

_FORMAT_VERSION = 1


def _encode_key(key: Hashable) -> str:
    if isinstance(key, DummyKey):
        return f"__dummy__:{key.index}"
    if isinstance(key, bool) or not isinstance(key, (int, str)):
        raise ParameterError(f"only int and str keys can be serialized, got {key!r}")
    if isinstance(key, int):
        return f"i:{key}"
    return f"s:{key}"


def _decode_key(token: str) -> Hashable:
    if token.startswith("__dummy__:"):
        return DummyKey(int(token.split(":", 1)[1]))
    kind, _, payload = token.partition(":")
    if kind == "i":
        return int(payload)
    if kind == "s":
        return payload
    raise SketchStateError(f"unrecognized serialized key {token!r}")


def sketch_to_dict(sketch: Union[MisraGriesSketch, StandardMisraGriesSketch]) -> Dict:
    """A JSON-serializable dict representation of a Misra-Gries sketch."""
    if isinstance(sketch, MisraGriesSketch):
        kind = "misra_gries_paper"
        counters = sketch.raw_counters()
        extra = {"decrement_rounds": sketch.decrement_rounds}
    elif isinstance(sketch, StandardMisraGriesSketch):
        kind = "misra_gries_standard"
        counters = sketch.counters()
        extra = {"decrement_rounds": sketch.decrement_rounds}
    else:
        raise ParameterError(f"unsupported sketch type: {type(sketch)!r}")
    return {
        "format_version": _FORMAT_VERSION,
        "kind": kind,
        "k": sketch.size,
        "stream_length": sketch.stream_length,
        "counters": {_encode_key(key): value for key, value in counters.items()},
        **extra,
    }


def sketch_from_dict(payload: Dict) -> Union[MisraGriesSketch, StandardMisraGriesSketch]:
    """Reconstruct a sketch from :func:`sketch_to_dict` output.

    The reconstructed object reproduces the stored counters, stream length and
    decrement count; it continues to accept updates.
    """
    version = payload.get("format_version")
    if version != _FORMAT_VERSION:
        raise SketchStateError(f"unsupported sketch format version {version!r}")
    kind = payload.get("kind")
    k = int(payload["k"])
    counters = {_decode_key(token): float(value)
                for token, value in payload["counters"].items()}
    if kind == "misra_gries_paper":
        sketch = MisraGriesSketch(k)
        sketch._restore_state(counters,
                              stream_length=int(payload["stream_length"]),
                              decrement_rounds=int(payload.get("decrement_rounds", 0)))
        return sketch
    if kind == "misra_gries_standard":
        sketch = StandardMisraGriesSketch(k)
        if len(counters) > k:
            raise SketchStateError("standard sketch stores at most k counters")
        sketch._counters = dict(counters)
        sketch._stream_length = int(payload["stream_length"])
        sketch._decrement_rounds = int(payload.get("decrement_rounds", 0))
        return sketch
    raise SketchStateError(f"unrecognized sketch kind {kind!r}")


def save_sketch(sketch, path: PathLike) -> None:
    """Write a sketch to ``path`` as JSON."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    with target.open("w", encoding="utf-8") as handle:
        json.dump(sketch_to_dict(sketch), handle, indent=2, sort_keys=True)


def load_sketch(path: PathLike):
    """Read a sketch previously written by :func:`save_sketch`."""
    with Path(path).open("r", encoding="utf-8") as handle:
        return sketch_from_dict(json.load(handle))


def histogram_to_dict(histogram) -> Dict:
    """A JSON-serializable representation of a released PrivateHistogram."""
    return {
        "format_version": _FORMAT_VERSION,
        "kind": "private_histogram",
        "counts": {_encode_key(key): value for key, value in histogram.items()},
        "metadata": histogram.metadata.as_dict(),
    }


def histogram_from_dict(payload: Dict):
    """Reconstruct a :class:`~repro.core.results.PrivateHistogram`."""
    from ..core.results import PrivateHistogram, ReleaseMetadata

    if payload.get("kind") != "private_histogram":
        raise SketchStateError("payload does not describe a private histogram")
    metadata = ReleaseMetadata(**payload["metadata"])
    counts = {_decode_key(token): float(value) for token, value in payload["counts"].items()}
    return PrivateHistogram(counts=counts, metadata=metadata)


def save_histogram(histogram, path: PathLike) -> None:
    """Write a released histogram to ``path`` as JSON."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    with target.open("w", encoding="utf-8") as handle:
        json.dump(histogram_to_dict(histogram), handle, indent=2, sort_keys=True)


def load_histogram(path: PathLike):
    """Read a histogram previously written by :func:`save_histogram`."""
    with Path(path).open("r", encoding="utf-8") as handle:
        return histogram_from_dict(json.load(handle))
