"""Serialization of sketches and private histograms.

Distributed deployments (Section 7) ship sketches from edge servers to an
aggregator; this module provides a stable JSON representation for the
counter-based sketches and for released histograms so they can cross process
or machine boundaries without pickling arbitrary objects.

Two on-disk formats are understood:

* **v1** (this module's original row format): counters as a
  ``{token: value}`` object with per-key type-prefixed tokens.
* **v2** (:mod:`repro.api.wire`): a columnar envelope with parallel ``keys``
  and ``values`` arrays whose integer fast path feeds
  :func:`repro.sketches.merge.merge_many_arrays` with no per-key Python.

``save_sketch``/``save_histogram`` write v2 by default (``format="v1"`` keeps
the old layout); the loaders accept either version transparently.

Keys may be ints, strings or bytes; integer keys round-trip back to ``int``
and bytes keys are carried as base64.
"""

from __future__ import annotations

import base64
import binascii
import json
from pathlib import Path
from typing import Dict, Hashable, Union

from ..exceptions import ParameterError, SketchStateError
from .misra_gries import DummyKey, MisraGriesSketch
from .misra_gries_standard import StandardMisraGriesSketch

PathLike = Union[str, Path]

_FORMAT_VERSION = 1


def _normalize_format(format: Union[str, int, None]) -> int:
    if format in (None, 2, "2", "v2"):
        return 2
    if format in (1, "1", "v1"):
        return 1
    raise ParameterError(f"unknown wire format {format!r}; use 'v1' or 'v2'")


def _encode_key(key: Hashable) -> str:
    if isinstance(key, DummyKey):
        return f"__dummy__:{key.index}"
    if isinstance(key, bytes):
        return "b:" + base64.b64encode(key).decode("ascii")
    if isinstance(key, bool) or not isinstance(key, (int, str)):
        raise ParameterError(f"only int, str and bytes keys can be serialized, got {key!r}")
    if isinstance(key, int):
        return f"i:{key}"
    return f"s:{key}"


def _decode_key(token: str) -> Hashable:
    if token.startswith("__dummy__:"):
        return DummyKey(int(token.split(":", 1)[1]))
    kind, _, payload = token.partition(":")
    if kind == "i":
        return int(payload)
    if kind == "s":
        return payload
    if kind == "b":
        try:
            return base64.b64decode(payload.encode("ascii"), validate=True)
        except (binascii.Error, ValueError) as error:
            raise SketchStateError(f"invalid base64 bytes key {token!r}") from error
    raise SketchStateError(f"unrecognized serialized key {token!r}")


def sketch_to_dict(sketch: Union[MisraGriesSketch, StandardMisraGriesSketch]) -> Dict:
    """A JSON-serializable dict representation of a Misra-Gries sketch."""
    if isinstance(sketch, MisraGriesSketch):
        kind = "misra_gries_paper"
        counters = sketch.raw_counters()
        extra = {"decrement_rounds": sketch.decrement_rounds}
    elif isinstance(sketch, StandardMisraGriesSketch):
        kind = "misra_gries_standard"
        counters = sketch.counters()
        extra = {"decrement_rounds": sketch.decrement_rounds}
    else:
        raise ParameterError(f"unsupported sketch type: {type(sketch)!r}")
    return {
        "format_version": _FORMAT_VERSION,
        "kind": kind,
        "k": sketch.size,
        "stream_length": sketch.stream_length,
        "counters": {_encode_key(key): value for key, value in counters.items()},
        **extra,
    }


def sketch_from_dict(payload: Dict) -> Union[MisraGriesSketch, StandardMisraGriesSketch]:
    """Reconstruct a sketch from :func:`sketch_to_dict` output.

    The reconstructed object reproduces the stored counters, stream length and
    decrement count; it continues to accept updates.
    """
    version = payload.get("format_version")
    if version != _FORMAT_VERSION:
        raise SketchStateError(f"unsupported sketch format version {version!r}")
    kind = payload.get("kind")
    k = int(payload["k"])
    counters = {_decode_key(token): float(value)
                for token, value in payload["counters"].items()}
    if kind == "misra_gries_paper":
        sketch = MisraGriesSketch(k)
        sketch._restore_state(counters,
                              stream_length=int(payload["stream_length"]),
                              decrement_rounds=int(payload.get("decrement_rounds", 0)))
        return sketch
    if kind == "misra_gries_standard":
        sketch = StandardMisraGriesSketch(k)
        if len(counters) > k:
            raise SketchStateError("standard sketch stores at most k counters")
        sketch._counters = dict(counters)
        sketch._stream_length = int(payload["stream_length"])
        sketch._decrement_rounds = int(payload.get("decrement_rounds", 0))
        return sketch
    raise SketchStateError(f"unrecognized sketch kind {kind!r}")


def save_sketch(sketch, path: PathLike, format: Union[str, int, None] = None) -> None:
    """Write a sketch to ``path`` as JSON.

    ``format`` selects the wire version: ``"v2"`` (the default, columnar
    envelope from :mod:`repro.api.wire`) or ``"v1"`` (the original row
    format).  Only the Misra-Gries variants have restorable full state; for
    other sketches ship their counters with
    :func:`repro.api.wire.encode_counters` (readable via ``load_payload``,
    not ``load_sketch``).
    """
    if not isinstance(sketch, (MisraGriesSketch, StandardMisraGriesSketch)):
        raise ParameterError(
            f"only Misra-Gries sketches round-trip through save_sketch/load_sketch, "
            f"got {type(sketch)!r}; use repro.api.wire.encode_counters for a "
            f"counters-only export")
    if _normalize_format(format) == 2:
        from ..api.wire import encode_sketch

        payload = encode_sketch(sketch)
    else:
        payload = sketch_to_dict(sketch)
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    with target.open("w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)


def load_sketch(path: PathLike):
    """Read a sketch previously written by :func:`save_sketch` (v1 or v2)."""
    with Path(path).open("r", encoding="utf-8") as handle:
        payload = json.load(handle)
    if payload.get("format") == 2:
        from ..api.wire import payload_to_sketch

        return payload_to_sketch(payload)
    return sketch_from_dict(payload)


def histogram_to_dict(histogram) -> Dict:
    """A JSON-serializable representation of a released PrivateHistogram."""
    return {
        "format_version": _FORMAT_VERSION,
        "kind": "private_histogram",
        "counts": {_encode_key(key): value for key, value in histogram.items()},
        "metadata": histogram.metadata.as_dict(),
    }


def histogram_from_dict(payload: Dict):
    """Reconstruct a :class:`~repro.core.results.PrivateHistogram`."""
    from ..core.results import PrivateHistogram, ReleaseMetadata

    if payload.get("kind") != "private_histogram":
        raise SketchStateError("payload does not describe a private histogram")
    metadata = ReleaseMetadata(**payload["metadata"])
    counts = {_decode_key(token): float(value) for token, value in payload["counts"].items()}
    return PrivateHistogram(counts=counts, metadata=metadata)


def save_histogram(histogram, path: PathLike, format: Union[str, int, None] = None) -> None:
    """Write a released histogram to ``path`` as JSON (``format``: v1 or v2)."""
    if _normalize_format(format) == 2:
        from ..api.wire import encode_histogram

        payload = encode_histogram(histogram)
    else:
        payload = histogram_to_dict(histogram)
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    with target.open("w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)


def load_histogram(path: PathLike):
    """Read a histogram previously written by :func:`save_histogram` (v1 or v2)."""
    with Path(path).open("r", encoding="utf-8") as handle:
        payload = json.load(handle)
    if payload.get("format") == 2:
        from ..api.wire import payload_to_histogram

        return payload_to_histogram(payload)
    return histogram_from_dict(payload)
