"""Frozen reference implementation of the seed merging/aggregation code.

These are the pre-vectorization dict-based left-fold implementations of
:func:`repro.sketches.merge.merge_many` / :func:`~repro.sketches.merge.
sum_counters`, kept verbatim as the *executable specification* of the
Agarwal et al. merge.  The production code in :mod:`repro.sketches.merge`
replaces the per-key Python loops with a key-interning NumPy fold; the
property tests in ``tests/property/test_merge_equivalence.py`` assert that
both implementations produce equal results (same key sets, exactly equal
float values) on randomized sketch collections.

Do not optimize this module; it exists to stay slow and obviously correct.
It also serves as the "seed aggregation" baseline for the merge workload in
``benchmarks/bench_perf_suite.py``.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, Mapping, Sequence

import numpy as np

from .._validation import check_positive_int
from ..exceptions import ParameterError, SketchStateError
from .base import FrequencySketch


def _as_counters_reference(sketch) -> Dict[Hashable, float]:
    """Normalize a sketch object or mapping to a plain counter dict."""
    if isinstance(sketch, FrequencySketch):
        return sketch.counters()
    if isinstance(sketch, Mapping):
        return {key: float(value) for key, value in sketch.items()}
    raise ParameterError(f"expected a FrequencySketch or mapping, got {type(sketch)!r}")


def reference_merge_misra_gries(first, second, k: int) -> Dict[Hashable, float]:
    """Seed pairwise merge: sum, subtract the (k+1)-th largest, drop <= 0."""
    size = check_positive_int(k, "k")
    combined: Dict[Hashable, float] = {}
    for counters in (_as_counters_reference(first), _as_counters_reference(second)):
        for key, value in counters.items():
            if value < 0:
                raise SketchStateError(f"negative counter for {key!r} cannot be merged")
            combined[key] = combined.get(key, 0.0) + float(value)
    if len(combined) <= size:
        return {key: value for key, value in combined.items() if value > 0}
    values = np.fromiter(combined.values(), dtype=float, count=len(combined))
    position = len(values) - 1 - size  # ascending index of the (k+1)-th largest
    offset = float(np.partition(values, position)[position])
    merged = {key: value - offset for key, value in combined.items() if value - offset > 0}
    return merged


def reference_merge_many(sketches: Sequence, k: int) -> Dict[Hashable, float]:
    """Seed left-fold of :func:`reference_merge_misra_gries` over sketches."""
    size = check_positive_int(k, "k")
    if not sketches:
        return {}
    result = _as_counters_reference(sketches[0])
    if len(result) > size:
        # A single over-sized input is reduced through a merge with nothing.
        result = reference_merge_misra_gries(result, {}, size)
    for sketch in sketches[1:]:
        result = reference_merge_misra_gries(result, sketch, size)
    return result


def reference_sum_counters(sketches: Iterable) -> Dict[Hashable, float]:
    """Seed counter-wise sum with a per-key ``dict.get`` loop."""
    total: Dict[Hashable, float] = {}
    for sketch in sketches:
        for key, value in _as_counters_reference(sketch).items():
            total[key] = total.get(key, 0.0) + float(value)
    return total
