"""Non-private streaming frequency sketches.

This subpackage contains the streaming substrate the paper builds on: the
Misra-Gries sketch in the paper's variant (Algorithm 1) and in its standard
form, plus the related counter- and hash-based sketches used as points of
comparison (SpaceSaving, CountMin, CountSketch) and an exact counter.
"""

from .base import FrequencySketch, SketchSummary
from .count_min import CountMinSketch
from .count_sketch import CountSketch
from .exact import ExactCounter
from .merge import merge_many, merge_many_arrays, merge_misra_gries, merge_tree, sum_counters
from .misra_gries import MisraGriesSketch
from .misra_gries_standard import StandardMisraGriesSketch
from .serialization import (
    load_histogram,
    load_sketch,
    save_histogram,
    save_sketch,
    sketch_from_dict,
    sketch_to_dict,
)
from .space_saving import SpaceSavingSketch

__all__ = [
    "CountMinSketch",
    "CountSketch",
    "ExactCounter",
    "FrequencySketch",
    "MisraGriesSketch",
    "SketchSummary",
    "SpaceSavingSketch",
    "StandardMisraGriesSketch",
    "load_histogram",
    "load_sketch",
    "merge_many",
    "merge_many_arrays",
    "merge_misra_gries",
    "merge_tree",
    "save_histogram",
    "save_sketch",
    "sketch_from_dict",
    "sketch_to_dict",
    "sum_counters",
]
