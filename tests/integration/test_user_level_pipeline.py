"""Integration tests for the user-level pipeline (Section 8 / Theorem 30)."""

import pytest

from repro.analysis import summarize_errors
from repro.analysis.bounds import pamg_release_error_bound
from repro.core import GaussianSparseHistogram, UserLevelRelease
from repro.sketches import ExactCounter
from repro.streams import distinct_user_stream, lemma25_streams
from repro.streams.user_streams import user_stream_total_length


@pytest.fixture(scope="module")
def user_workload():
    stream = distinct_user_stream(8_000, 1_000, max_contribution=8, exponent=1.3, rng=0)
    truth = ExactCounter().update_sets(stream).counters()
    return stream, truth


class TestTheorem30Pipeline:
    def test_error_within_theorem30_bound(self, user_workload):
        stream, truth = user_workload
        k, epsilon, delta, m = 128, 1.0, 1e-6, 8
        config = UserLevelRelease(epsilon=epsilon, delta=delta, k=k, max_contribution=m)
        histogram = config.release_pamg(stream, rng=1)
        sigma, tau = GaussianSparseHistogram(epsilon=epsilon, delta=delta, l=k).parameters()
        total = user_stream_total_length(stream)
        bound = pamg_release_error_bound(total, k, sigma, tau)
        summary = summarize_errors(histogram, truth)
        # The theorem bound holds with probability 1 - 2 delta; allow the
        # upward tau slack on top for the released side.
        assert summary.max_error <= bound + tau

    def test_pamg_beats_flattened_for_large_m(self, user_workload):
        stream, truth = user_workload
        k, epsilon, delta, m = 128, 1.0, 1e-6, 8
        config = UserLevelRelease(epsilon=epsilon, delta=delta, k=k, max_contribution=m)

        def mean_error_on_top(histogram):
            top = sorted(truth, key=truth.get, reverse=True)[:20]
            return sum(abs(histogram.estimate(x) - truth[x]) for x in top) / 20

        pamg_error = sum(mean_error_on_top(config.release_pamg(stream, rng=seed))
                         for seed in range(3)) / 3
        flattened_error = sum(mean_error_on_top(config.release_flattened(stream, rng=seed))
                              for seed in range(3)) / 3
        # With m = 8 distinct elements per user the flattened route pays an
        # 8x larger noise scale and an 8x-ish larger threshold; PAMG's
        # Gaussian noise (sqrt(k) scaled) is smaller for these parameters.
        assert pamg_error < flattened_error

    def test_lemma25_instance_breaks_flattened_but_not_pamg_counters(self):
        # On the Lemma 25 worst case the flattened MG sketches differ by m in
        # one counter while PAMG stays within 1 everywhere — the reason PAMG
        # can use noise independent of m.
        from repro.core import PrivacyAwareMisraGries
        from repro.sketches import MisraGriesSketch
        from repro.streams.user_streams import flatten_user_stream

        k, m = 16, 8
        stream, neighbour = lemma25_streams(k, m, tail_length=20)
        mg_gap = (MisraGriesSketch.from_stream(k, flatten_user_stream(stream)).estimate("x")
                  - MisraGriesSketch.from_stream(k, flatten_user_stream(neighbour)).estimate("x"))
        pamg = PrivacyAwareMisraGries.from_stream(k, stream).counters()
        pamg_neighbour = PrivacyAwareMisraGries.from_stream(k, neighbour).counters()
        pamg_gap = max(abs(pamg.get(key, 0.0) - pamg_neighbour.get(key, 0.0))
                       for key in set(pamg) | set(pamg_neighbour))
        assert mg_gap == pytest.approx(m)
        assert pamg_gap <= 1.0

    def test_released_elements_are_real(self, user_workload):
        stream, truth = user_workload
        config = UserLevelRelease(epsilon=1.0, delta=1e-6, k=64, max_contribution=8)
        histogram = config.release_pamg(stream, rng=3)
        assert all(key in truth for key in histogram.keys())
