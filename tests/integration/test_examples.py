"""The example scripts must run successfully end to end."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parents[2] / "examples"
EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))


@pytest.mark.slow
@pytest.mark.parametrize("script", EXAMPLES, ids=lambda path: path.name)
def test_example_runs(script):
    completed = subprocess.run([sys.executable, str(script), "--quick"],
                               capture_output=True, text=True, timeout=300)
    assert completed.returncode == 0, completed.stderr[-2000:]
    assert completed.stdout.strip(), "examples should print a report"


def test_examples_exist():
    names = {path.name for path in EXAMPLES}
    assert "quickstart.py" in names
    assert len(names) >= 3
