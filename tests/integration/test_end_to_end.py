"""Integration tests: full pipelines from workload generation to heavy hitters."""

import pytest

from repro import (
    MisraGriesSketch,
    PrivateMisraGries,
    PureDPMisraGries,
    private_heavy_hitters,
    true_heavy_hitters,
)
from repro.analysis import heavy_hitter_scores, summarize_errors
from repro.analysis.bounds import pmg_error_bound, pure_dp_error_bound
from repro.baselines import BohlerKerschbaumMG, ChanPrivateMisraGries, StabilityHistogram
from repro.sketches import ExactCounter
from repro.streams import load_dataset, zipf_stream


class TestPmgPipeline:
    def test_error_within_paper_bound_across_parameters(self):
        stream = zipf_stream(30_000, 2_000, exponent=1.2, rng=0)
        truth = ExactCounter.from_stream(stream).counters()
        for k in (32, 128):
            for epsilon in (0.5, 1.0):
                mechanism = PrivateMisraGries(epsilon=epsilon, delta=1e-6)
                histogram = mechanism.run(stream, k=k, rng=k + int(epsilon * 10))
                bound = pmg_error_bound(len(stream), k, epsilon, 1e-6, beta=0.01)
                assert histogram.max_error_against(truth) <= bound

    def test_pmg_beats_chan_and_corrected_bk_on_max_error(self):
        stream = zipf_stream(50_000, 1_000, exponent=1.3, rng=1)
        truth = ExactCounter.from_stream(stream).counters()
        k, epsilon, delta = 128, 1.0, 1e-6

        def average_max_error(run):
            return sum(run(seed).max_error_against(truth) for seed in range(3)) / 3

        pmg_error = average_max_error(
            lambda seed: PrivateMisraGries(epsilon=epsilon, delta=delta).run(stream, k, rng=seed))
        chan_error = average_max_error(
            lambda seed: ChanPrivateMisraGries(epsilon=epsilon, k=k, delta=delta).run(stream, rng=seed))
        bk_error = average_max_error(
            lambda seed: BohlerKerschbaumMG(epsilon=epsilon, delta=delta, k=k).run(stream, rng=seed))
        assert pmg_error < chan_error
        assert pmg_error < bk_error

    def test_pmg_error_close_to_non_streaming_gold_standard(self):
        # Theorem 14's point: the noise error matches the non-streaming
        # stability histogram up to constants; with a large enough sketch the
        # total error is within a small factor.
        stream = zipf_stream(50_000, 500, exponent=1.5, rng=2)
        truth = ExactCounter.from_stream(stream).counters()
        k, epsilon, delta = 256, 1.0, 1e-6
        pmg = PrivateMisraGries(epsilon=epsilon, delta=delta).run(stream, k, rng=3)
        gold = StabilityHistogram(epsilon=epsilon, delta=delta).run(stream, rng=3)
        pmg_summary = summarize_errors(pmg, truth)
        gold_summary = summarize_errors(gold, truth)
        assert pmg_summary.max_error <= gold_summary.max_error + len(stream) / (k + 1) + 60


class TestPureDpPipeline:
    def test_error_within_bound(self):
        universe = 2_000
        stream = zipf_stream(30_000, universe, exponent=1.3, rng=4)
        truth = ExactCounter.from_stream(stream).counters()
        k, epsilon = 64, 1.0
        mechanism = PureDPMisraGries(epsilon=epsilon, universe_size=universe)
        histogram = mechanism.run(stream, k=k, rng=5)
        bound = pure_dp_error_bound(len(stream), k, epsilon, universe, beta=0.01)
        # Restrict to the universe (the release never outputs anything else).
        assert histogram.max_error_against(truth, universe=range(universe)) <= bound


class TestHeavyHitterPipeline:
    def test_scores_on_named_dataset(self):
        dataset = load_dataset("planted_heavy_hitters", n=60_000, rng=0)
        phi = 0.01
        truth = true_heavy_hitters(dataset.stream, phi)
        predicted = private_heavy_hitters(dataset.stream, k=128, epsilon=1.0, delta=1e-6,
                                          phi=phi, rng=1)
        scores = heavy_hitter_scores(predicted, truth)
        assert scores["recall"] >= 0.9
        assert scores["precision"] >= 0.5

    def test_zipf_dataset_f1(self):
        stream = zipf_stream(80_000, 5_000, exponent=1.5, rng=6)
        phi = 0.01
        truth = true_heavy_hitters(stream, phi)
        predicted = private_heavy_hitters(stream, k=512, epsilon=1.0, delta=1e-6, phi=phi, rng=7)
        scores = heavy_hitter_scores(predicted, truth)
        assert scores["recall"] == 1.0
        assert scores["f1"] >= 0.7


class TestMemoryClaim:
    def test_sketch_stores_2k_words(self):
        stream = zipf_stream(100_000, 50_000, exponent=1.1, rng=8)
        k = 64
        sketch = MisraGriesSketch.from_stream(k, stream)
        # 2k words: k keys + k counters, regardless of the stream's 50k
        # distinct elements.
        assert sketch.memory_words() == 2 * k
        assert len(sketch.raw_counters()) == k
