"""End-to-end: `repro serve` + concurrent `repro push` + `repro request-release`.

The acceptance loop of the network subsystem, driven through the real CLI:
a server subprocess on an ephemeral port, N pushing clients running
concurrently, one release request — and the resulting DP histogram must be
bit-identical (keys, values, dict order) to ``repro merge --framed`` over
the same framed files with the same seed.
"""

import json
import pathlib
import subprocess
import sys
import tempfile
import threading
import time

import pytest

from repro.cli import main
from repro.net import fetch_stats

pytestmark = pytest.mark.net(seconds=120)

K = 24


@pytest.fixture
def packed_files(tmp_path):
    """Four framed single-sketch files over distinct Zipf streams."""
    files = []
    for index in range(4):
        stream = tmp_path / f"s{index}.txt"
        sketch = tmp_path / f"s{index}.json"
        frames = tmp_path / f"c{index}.frames"
        assert main(["generate", "--dataset", "zipf", "-n", "6000",
                     "--universe", "400", "--seed", str(10 + index),
                     "--out", str(stream)]) == 0
        assert main(["sketch", "--stream", str(stream), "-k", str(K),
                     "--out", str(sketch)]) == 0
        assert main(["pack", "--out", str(frames), str(sketch)]) == 0
        files.append(frames)
    return files


def _serve_subprocess(tmp_path, extra=()):
    """Start `repro serve` in a subprocess; returns (process, address)."""
    ready = tmp_path / "ready.addr"
    process = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "serve",
         "--listen", "127.0.0.1:0", "--epsilon", "1.0", "--delta", "1e-6",
         "-k", str(K), "--ready-file", str(ready), *extra],
        env={**__import__("os").environ,
             "PYTHONPATH": str(pathlib.Path(__file__).resolve().parents[2] / "src")},
        stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True)
    deadline = time.time() + 30
    while time.time() < deadline:
        if ready.exists() and ready.read_text().strip():
            return process, ready.read_text().strip()
        if process.poll() is not None:
            raise AssertionError(f"serve died early: {process.stderr.read()}")
        time.sleep(0.05)
    process.kill()
    raise AssertionError("serve never wrote its ready file")


def _load(path):
    return json.loads(pathlib.Path(path).read_text())


@pytest.mark.slow
@pytest.mark.parametrize("clients", [1, 2, 4])
def test_cli_network_release_matches_offline_framed_merge(packed_files,
                                                          tmp_path, clients):
    files = packed_files[:clients] if clients < 4 else packed_files
    process, address = _serve_subprocess(tmp_path, extra=["--releases", "1"])
    try:
        results = [None] * len(files)

        def push(ordinal):
            results[ordinal] = main(["push", "--to", address,
                                     "--ordinal", str(ordinal),
                                     str(files[ordinal])])

        threads = [threading.Thread(target=push, args=(ordinal,))
                   for ordinal in range(len(files))]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert results == [0] * len(files)

        net_out = tmp_path / "net.hist.json"
        assert main(["request-release", "--to", address, "--seed", "21",
                     "--out", str(net_out)]) == 0
        assert process.wait(timeout=30) == 0  # --releases 1 drains and exits
    finally:
        if process.poll() is None:
            process.kill()

    offline_out = tmp_path / "offline.hist.json"
    assert main(["merge", "--framed", "--epsilon", "1.0", "--delta", "1e-6",
                 "--seed", "21", "--out", str(offline_out),
                 *[str(path) for path in files]]) == 0

    networked, offline = _load(net_out), _load(offline_out)
    assert networked["keys"] == offline["keys"]          # same keys, same order
    assert networked["values"] == offline["values"]      # bit-equal noisy counts
    assert networked["meta"]["notes"] == offline["meta"]["notes"]


@pytest.mark.slow
def test_cli_push_declares_input_k_and_gets_rejected_on_mismatch(tmp_path):
    """`repro push` without -k declares the inputs' k; a server running at a
    different size rejects the session instead of folding miscalibrated
    sketches (regression: this used to slip through silently)."""
    stream = tmp_path / "s.txt"
    sketch = tmp_path / "s8.json"
    frames = tmp_path / "s8.frames"
    assert main(["generate", "--dataset", "zipf", "-n", "2000",
                 "--universe", "200", "--seed", "1", "--out", str(stream)]) == 0
    assert main(["sketch", "--stream", str(stream), "-k", "8",
                 "--out", str(sketch)]) == 0
    assert main(["pack", "--out", str(frames), str(sketch)]) == 0
    process, address = _serve_subprocess(tmp_path)  # server runs at k=K
    try:
        assert main(["push", "--to", address, str(frames)]) == 1  # k=8 vs K
        stats = fetch_stats(address)
        assert stats["frames"] == 0 and stats["sessions_committed"] == 0
        assert stats["sessions_rejected"] == 1
    finally:
        process.terminate()
        process.wait(timeout=30)


@pytest.mark.slow
def test_cli_push_accepts_sketch_json_and_unix_socket(tmp_path):
    stream = tmp_path / "s.txt"
    sketch = tmp_path / "s.json"
    assert main(["generate", "--dataset", "zipf", "-n", "4000",
                 "--universe", "300", "--seed", "3", "--out", str(stream)]) == 0
    assert main(["sketch", "--stream", str(stream), "-k", str(K),
                 "--out", str(sketch)]) == 0
    # Unix sockets have a ~100-char path limit; use a short mkdtemp path.
    sockdir = tempfile.mkdtemp(prefix="repro-net-")
    socket_path = f"{sockdir}/agg.sock"
    ready = tmp_path / "ready.addr"
    process = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "serve",
         "--listen", f"unix:{socket_path}", "--epsilon", "1.0",
         "--delta", "1e-6", "-k", str(K), "--releases", "1",
         "--ready-file", str(ready)],
        env={**__import__("os").environ,
             "PYTHONPATH": str(pathlib.Path(__file__).resolve().parents[2] / "src")},
        stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True)
    try:
        deadline = time.time() + 30
        while not (ready.exists() and ready.read_text().strip()):
            assert time.time() < deadline, "serve never became ready"
            assert process.poll() is None, process.stderr.read()
            time.sleep(0.05)
        address = ready.read_text().strip()
        assert address == f"unix:{socket_path}"
        # A bare sketch JSON (not packed) pushes too.
        assert main(["push", "--to", address, "--ordinal", "0",
                     str(sketch)]) == 0
        stats = fetch_stats(address)
        assert stats["frames"] == 1 and stats["k"] == K
        out = tmp_path / "h.json"
        assert main(["request-release", "--to", address, "--seed", "2",
                     "--out", str(out)]) == 0
        assert process.wait(timeout=30) == 0
        payload = _load(out)
        assert payload["kind"] == "private_histogram"
    finally:
        if process.poll() is None:
            process.kill()


def test_pipeline_serve_and_connect_conveniences():
    """Pipeline.serve()/.connect() wire the facade into repro.net."""
    import asyncio

    import numpy as np

    from repro.api import Pipeline

    pipe = Pipeline(mechanism="merged", k=K, epsilon=1.0, delta=1e-6)

    async def scenario():
        server = pipe.serve()
        assert server.epsilon == 1.0 and server.k == K
        await server.start("127.0.0.1:0")
        async with server:
            exporter = Pipeline(sketch="misra_gries", mechanism="pmg", k=K,
                                epsilon=1.0, delta=1e-6)
            exporter.fit(np.asarray([1, 1, 2, 3, 1, 2] * 500, dtype=np.int64))
            async with exporter.connect(server.address, ordinal=0) as client:
                assert client._k == K
                await client.push([exporter.to_wire()])
            async with pipe.connect(server.address) as client:
                return await client.request_release(seed=8)

    histogram = asyncio.run(scenario())
    assert histogram.metadata.mechanism == "MergedMG-TrustedMerged"
    assert histogram.metadata.sketch_size == K


def test_pipeline_serve_requires_privacy_parameters():
    from repro.api import Pipeline
    from repro.exceptions import ParameterError

    with pytest.raises(ParameterError, match="delta"):
        Pipeline(mechanism="pure_dp", epsilon=1.0, universe_size=16).serve()
