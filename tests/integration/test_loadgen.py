"""Integration: the loadgen harness and the status/stats CLI surfaces.

The CI smoke lane for the operator tooling: a small flat loadgen run, the
same run through a one-leaf relay tree (the ``repro loadgen --quick``
topology scaled down), and subprocess checks that ``repro stats --json``
and ``repro status --once --json`` expose the observability stanzas a
console needs.  Everything runs under the ``net`` SIGALRM watchdog, so a
wedged event loop fails loudly instead of hanging CI.
"""

import json
import os
import pathlib
import subprocess
import sys
import time

import pytest

from repro.cli import main
from repro.obs.loadgen import (ARRIVALS, LoadgenConfig, build_payload_pool,
                               run_loadgen)

pytestmark = pytest.mark.net(seconds=240)


def _quick_config(**overrides):
    config = LoadgenConfig(clients=120, concurrency=24, stream_length=30,
                           universe=300, k=16, seed=7, releases=2,
                           payload_pool=8, timeout=30.0)
    for key, value in overrides.items():
        setattr(config, key, value)
    config.validate()
    return config


class TestConfig:
    def test_validate_rejects_bad_arrival(self):
        with pytest.raises(ValueError):
            _quick_config(arrival="bursty")

    def test_validate_rejects_bad_churn(self):
        with pytest.raises(ValueError):
            _quick_config(churn=1.5)

    def test_arrivals_cover_cli_choices(self):
        assert set(ARRIVALS) == {"closed", "poisson", "uniform"}


class TestPayloadPool:
    def test_pool_is_deterministic_and_bounded(self):
        config = _quick_config()
        first = build_payload_pool(config)
        second = build_payload_pool(config)
        assert first == second                      # seeded: reproducible
        assert len(first) == config.payload_pool
        assert all(isinstance(frame, bytes) and frame for frame in first)

    def test_pool_never_exceeds_clients(self):
        config = _quick_config(clients=3, payload_pool=64)
        assert len(build_payload_pool(config)) == 3


class TestFlatLoadgen:
    def test_flat_run_commits_every_surviving_client(self):
        report = run_loadgen(_quick_config())
        assert report.clients_failed == 0, report.errors
        assert report.clients_ok == 120
        assert report.clients_churned == 0
        assert report.server_stats["sessions_committed"] == 120
        assert report.frames_total == 120
        assert report.sustained_clients_per_sec > 0
        # Client-side latency histograms made it into the report.
        assert report.latencies["connect"]["count"] > 0
        assert report.latencies["push"]["count"] == 120

    def test_churn_kills_mid_push_and_server_survives(self):
        report = run_loadgen(_quick_config(churn=0.25, seed=3))
        assert report.clients_failed == 0, report.errors
        assert report.clients_churned > 0
        assert report.clients_ok + report.clients_churned == 120
        # Churned clients abort mid-declared-burst; only the survivors commit.
        assert report.server_stats["sessions_committed"] == report.clients_ok
        # The release probes still work against the churned server.
        assert report.server_stats["releases"] >= 2

    def test_poisson_arrivals_complete(self):
        report = run_loadgen(_quick_config(
            clients=60, arrival="poisson", rate=500.0, seed=11))
        assert report.clients_failed == 0, report.errors
        assert report.clients_ok == 60

    def test_report_as_dict_is_json_safe(self):
        report = run_loadgen(_quick_config(clients=30))
        payload = json.loads(json.dumps(report.as_dict(), default=str))
        assert payload["clients_ok"] == 30
        assert "sustained_clients_per_sec" in payload


class TestTreeLoadgen:
    def test_one_leaf_tree_smoke(self):
        """The CI lane topology: clients -> 1 leaf relay -> root."""
        report = run_loadgen(_quick_config(clients=80, leaves=1, depth=1,
                                           churn=0.1, seed=5))
        assert report.clients_failed == 0, report.errors
        assert report.clients_ok + report.clients_churned == 80
        assert report.clients_churned > 0
        # Stats are polled through leaf 0, so the reply is the leaf's view:
        # it committed the surviving client sessions and forwarded them all
        # upstream (queue drained) with no standing error.
        leaf = report.server_stats
        assert leaf["sessions_committed"] == report.clients_ok
        forward = leaf["forward"]
        assert forward["queued"] == 0
        assert forward["acked"] > 0
        assert forward["error"] is None


class TestCliLoadgen:
    def test_cli_quick_json(self, capsys):
        rc = main(["loadgen", "--clients", "60", "--concurrency", "16",
                   "--stream-length", "20", "--universe", "200",
                   "-k", "16", "--seed", "2", "--releases", "1", "--json"])
        out = capsys.readouterr().out
        assert rc == 0
        payload = json.loads(out)
        assert payload["clients_ok"] == 60
        assert payload["clients_failed"] == 0
        assert payload["config"]["arrival"] == "closed"

    def test_cli_table_output(self, capsys):
        rc = main(["loadgen", "--clients", "40", "--concurrency", "16",
                   "--stream-length", "20", "--universe", "200",
                   "-k", "16", "--seed", "2", "--releases", "1"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "load wave" in out
        assert "sustained throughput" in out
        assert "client-side latency" in out


# ---------------------------------------------------------------------------
# stats/status CLI against a live subprocess server
# ---------------------------------------------------------------------------

def _serve_subprocess(tmp_path, extra=()):
    ready = tmp_path / "ready.addr"
    process = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "serve",
         "--listen", "127.0.0.1:0", "--epsilon", "1.0", "--delta", "1e-6",
         "-k", "16", "--ready-file", str(ready), *extra],
        env={**os.environ,
             "PYTHONPATH": str(pathlib.Path(__file__).resolve().parents[2] / "src")},
        stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True)
    deadline = time.time() + 30
    while time.time() < deadline:
        if ready.exists() and ready.read_text().strip():
            return process, ready.read_text().strip()
        if process.poll() is not None:
            raise AssertionError(f"serve died early: {process.stderr.read()}")
        time.sleep(0.05)
    process.kill()
    raise AssertionError("serve never wrote its ready file")


@pytest.mark.slow
def test_stats_and_status_json_share_one_payload(tmp_path, capsys):
    process, address = _serve_subprocess(tmp_path)
    try:
        assert main(["stats", address, "--json"]) == 0
        stats_payload = json.loads(capsys.readouterr().out)
        assert main(["status", address, "--once", "--json"]) == 0
        status_payload = json.loads(capsys.readouterr().out)
        # One code path, two subcommands: same shape, same stanzas.
        for payload in (stats_payload, status_payload):
            assert payload["metrics"]["version"] == 1
            assert "uptime_s" in payload
            assert "active" in payload
            assert "sessions_listed" in payload
        assert sorted(stats_payload) == sorted(status_payload)
    finally:
        process.terminate()
        process.wait(timeout=10)


@pytest.mark.slow
def test_status_once_renders_console_frame(tmp_path, capsys):
    process, address = _serve_subprocess(tmp_path)
    try:
        assert main(["status", address, "--once"]) == 0
        out = capsys.readouterr().out
        assert f"aggregator at {address}" in out
        assert "totals" in out
    finally:
        process.terminate()
        process.wait(timeout=10)
