"""Integration tests: experiment runner + mechanisms + reporting together."""

import pytest

from repro.analysis import ExperimentRunner, SweepSpec, format_table, summarize_errors
from repro.core import PrivateMisraGries
from repro.sketches import ExactCounter
from repro.streams import zipf_stream


class TestExperimentPipeline:
    def test_small_sweep_produces_table(self):
        def trial(rng, k, epsilon):
            stream = zipf_stream(3_000, 300, exponent=1.2, rng=rng)
            truth = ExactCounter.from_stream(stream).counters()
            histogram = PrivateMisraGries(epsilon=epsilon, delta=1e-6).run(stream, k, rng=rng)
            summary = summarize_errors(histogram, truth)
            return {"max_error": summary.max_error, "released": float(summary.released_keys)}

        runner = ExperimentRunner(repetitions=2, rng=0)
        results = runner.run(trial, SweepSpec({"k": [16, 64], "epsilon": [1.0]}))
        assert len(results) == 2
        rows = [result.row() for result in results]
        table = format_table(rows, title="demo sweep")
        assert "max_error" in table
        assert "k" in table
        # Larger k means smaller sketch error on this skewed stream.
        assert results[1].metrics["max_error"] < results[0].metrics["max_error"]

    def test_runner_results_reproducible(self):
        def trial(rng, k):
            stream = zipf_stream(1_000, 100, rng=rng)
            histogram = PrivateMisraGries(epsilon=1.0, delta=1e-6).run(stream, k, rng=rng)
            return {"released": float(len(histogram))}

        first = ExperimentRunner(repetitions=3, rng=5).run_single(trial, {"k": 32})
        second = ExperimentRunner(repetitions=3, rng=5).run_single(trial, {"k": 32})
        assert first.metrics == second.metrics
