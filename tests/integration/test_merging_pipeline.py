"""Integration tests for the distributed / merging pipelines (Section 7)."""

import pytest

from repro.analysis import summarize_errors
from repro.core import MergeStrategy, PrivateMergedRelease
from repro.sketches import ExactCounter, MisraGriesSketch
from repro.streams import split_contiguous, split_round_robin, zipf_stream


@pytest.fixture(scope="module")
def workload():
    stream = zipf_stream(60_000, 1_000, exponent=1.3, rng=0)
    truth = ExactCounter.from_stream(stream).counters()
    return stream, truth


class TestDistributedAggregation:
    @pytest.mark.parametrize("splitter", [split_contiguous, split_round_robin])
    def test_trusted_merge_accuracy_independent_of_split(self, workload, splitter):
        stream, truth = workload
        k = 64
        release = PrivateMergedRelease(epsilon=1.0, delta=1e-6, k=k,
                                       strategy=MergeStrategy.TRUSTED_MERGED)
        errors = []
        for parts_count in (4, 16):
            parts = splitter(stream, parts_count)
            sketches = [MisraGriesSketch.from_stream(k, part) for part in parts]
            histogram = release.release(sketches, rng=parts_count)
            errors.append(summarize_errors(histogram, truth).max_error)
        # Error should stay in the same ballpark when the number of servers
        # quadruples (it is dominated by N/(k+1), not by the merge count).
        assert errors[1] <= 2.0 * errors[0] + 200

    def test_untrusted_vs_trusted_coverage_gap(self, workload):
        # With 32 servers and an untrusted aggregator, each sketch pays its
        # own per-release threshold before merging, so far fewer of the top
        # elements survive than with either trusted regime.
        stream, truth = workload
        k = 64
        parts = split_contiguous(stream, 32)
        sketches = [MisraGriesSketch.from_stream(k, part) for part in parts]
        top = sorted(truth, key=truth.get, reverse=True)[:20]

        def surviving_top_elements(strategy, seed):
            release = PrivateMergedRelease(epsilon=0.5, delta=1e-6, k=k, strategy=strategy)
            histogram = release.release(sketches, rng=seed)
            return sum(1 for element in top if element in histogram)

        untrusted = surviving_top_elements(MergeStrategy.UNTRUSTED, 1)
        trusted_sum = surviving_top_elements(MergeStrategy.TRUSTED_SUM, 1)
        trusted_merged = surviving_top_elements(MergeStrategy.TRUSTED_MERGED, 1)
        assert trusted_sum > untrusted
        assert trusted_merged > untrusted

    def test_total_stream_length_aggregated(self, workload):
        stream, _ = workload
        k = 32
        parts = split_contiguous(stream, 8)
        sketches = [MisraGriesSketch.from_stream(k, part) for part in parts]
        release = PrivateMergedRelease(epsilon=1.0, delta=1e-6, k=k)
        histogram = release.release(sketches, rng=0)
        assert histogram.metadata.stream_length == len(stream)

    def test_single_stream_degenerates_to_plain_release(self, workload):
        stream, truth = workload
        k = 64
        sketch = MisraGriesSketch.from_stream(k, stream)
        release = PrivateMergedRelease(epsilon=1.0, delta=1e-6, k=k,
                                       strategy=MergeStrategy.TRUSTED_MERGED)
        histogram = release.release([sketch], rng=2)
        summary = summarize_errors(histogram, truth)
        assert summary.max_error <= len(stream) / (k + 1) + 3 * histogram.metadata.threshold
