"""End-to-end CLI pipelines: generate -> sketch -> release -> merge -> query.

Parameterized over every registered mechanism name, so the full operational
loop is exercised for the paper's releases and every baseline, plus
v1 <-> v2 wire-format cross-reads.
"""

import json

import pytest

from repro.api import list_mechanisms, mechanism_entry
from repro.cli import main
from repro.sketches import load_histogram, load_sketch
from repro.sketches.merge import merge_many_arrays


@pytest.fixture(scope="module")
def flat_workspace(tmp_path_factory):
    """A generated element stream plus two sketch shards, as the CLI makes them."""
    root = tmp_path_factory.mktemp("cli-flat")
    stream = root / "stream.txt"
    assert main(["generate", "--dataset", "zipf", "-n", "4000", "--universe", "64",
                 "--seed", "1", "--out", str(stream)]) == 0
    first, second = root / "first.sketch.json", root / "second.sketch.json"
    assert main(["sketch", "--stream", str(stream), "-k", "16", "--out", str(first)]) == 0
    assert main(["sketch", "--stream", str(stream), "-k", "16", "--out", str(second)]) == 0
    return root, stream, first, second


@pytest.fixture(scope="module")
def user_workspace(tmp_path_factory):
    """A generated user-level stream (one comma-separated set per line)."""
    root = tmp_path_factory.mktemp("cli-users")
    stream = root / "users.txt"
    assert main(["generate", "--dataset", "user_purchases", "-n", "300",
                 "--seed", "2", "--out", str(stream)]) == 0
    return root, stream


def _release_args(name, flat_workspace, user_workspace, out):
    """CLI arguments that run mechanism ``name`` on the right kind of input."""
    _, stream, sketch, second = flat_workspace
    _, users = user_workspace
    base = ["release", "--mechanism", name, "--epsilon", "1.0", "--seed", "3",
            "--out", str(out)]
    consumes = mechanism_entry(name).consumes
    if consumes == "user_stream":
        return base + ["--stream", str(users), "--user-level", "--delta", "1e-6",
                       "-k", "32", "-m", "8"]
    if consumes == "stream":
        return base + ["--stream", str(stream), "--delta", "1e-6",
                       "--universe", "64", "--phi", "0.02"]
    if consumes == "checkpointed_stream":
        return base + ["--stream", str(stream), "--delta", "1e-6", "-k", "16",
                       "--block-size", "500"]
    if consumes == "sketch_list":
        return base + ["--sketch", str(sketch), "--sketch", str(second),
                       "--delta", "1e-6", "-k", "16"]
    if name == "pure_dp":
        return base + ["--sketch", str(sketch), "--universe", "64"]
    return base + ["--sketch", str(sketch), "--delta", "1e-6", "-k", "16",
                   "--universe", "64"]


@pytest.mark.parametrize("name", sorted(list_mechanisms()))
def test_every_mechanism_runs_end_to_end(name, flat_workspace, user_workspace, tmp_path):
    """generate -> sketch -> release --mechanism <name> -> heavy-hitters."""
    out = tmp_path / f"{name}.hist.json"
    assert main(_release_args(name, flat_workspace, user_workspace, out)) == 0
    histogram = load_histogram(out)
    assert histogram.metadata.epsilon > 0
    assert main(["heavy-hitters", "--histogram", str(out), "--phi", "0.05"]) == 0


def test_merge_v2_routes_through_columnar_path(flat_workspace, tmp_path, monkeypatch):
    """repro merge over v2 files must call merge_many_arrays on the wire arrays."""
    _, _, first, second = flat_workspace
    assert json.loads(first.read_text())["format"] == 2
    calls = []

    def spy(keys_list, values_list, k):
        calls.append((len(keys_list), k))
        return merge_many_arrays(keys_list, values_list, k)

    import repro.core.merging as merging

    monkeypatch.setattr(merging, "merge_many_arrays", spy)
    out = tmp_path / "merged.hist.json"
    assert main(["merge", "--epsilon", "1.0", "--delta", "1e-6", "-k", "16",
                 "--seed", "4", "--out", str(out), str(first), str(second)]) == 0
    assert calls == [(2, 16)]
    merged = load_histogram(out)
    assert "Merged" in merged.metadata.mechanism
    assert merged.metadata.stream_length == 8000


def test_merged_release_infers_k_from_envelopes(flat_workspace, tmp_path):
    """release --mechanism merged without -k must use the payloads' k, not a default."""
    _, _, first, second = flat_workspace
    out = tmp_path / "merged-nok.hist.json"
    assert main(["release", "--mechanism", "merged", "--sketch", str(first),
                 "--sketch", str(second), "--epsilon", "1.0", "--delta", "1e-6",
                 "--seed", "7", "--out", str(out)]) == 0
    histogram = load_histogram(out)
    assert histogram.metadata.sketch_size == 16  # from the envelopes, not k=64
    assert "l=k=16" in histogram.metadata.notes


@pytest.mark.parametrize("name", ["chan", "bohler_kerschbaum"])
def test_k_calibrated_mechanisms_take_k_from_envelope(name, flat_workspace, tmp_path):
    """Without -k, the noise must be calibrated to the sketch's real k, not a default."""
    _, _, sketch, _ = flat_workspace
    out = tmp_path / f"{name}-nok.hist.json"
    assert main(["release", "--mechanism", name, "--sketch", str(sketch),
                 "--epsilon", "1.0", "--delta", "1e-6", "--seed", "9",
                 "--out", str(out)]) == 0
    metadata = load_histogram(out).metadata
    assert metadata.sketch_size == 16
    assert metadata.noise_scale == 16.0  # k/epsilon for the fitted k, not k=64


def test_merged_release_rejects_disagreeing_k(flat_workspace, tmp_path, capsys):
    _, stream, first, _ = flat_workspace
    other = tmp_path / "other-k.sketch.json"
    assert main(["sketch", "--stream", str(stream), "-k", "8", "--out", str(other)]) == 0
    assert main(["release", "--mechanism", "merged", "--sketch", str(first),
                 "--sketch", str(other), "--epsilon", "1.0", "--delta", "1e-6"]) == 2
    assert "-k" in capsys.readouterr().err


def test_non_mg_sketch_type_roundtrips_through_release(flat_workspace, tmp_path, capsys):
    """count_min sketches save as counters envelopes and release via the CLI."""
    _, stream, _, _ = flat_workspace
    path = tmp_path / "cm.sketch.json"
    assert main(["sketch", "--stream", str(stream), "--type", "count_min", "-k", "64",
                 "--out", str(path)]) == 0
    payload = json.loads(path.read_text())
    assert payload["kind"] == "counters"
    assert payload["k"] == 64  # -k survives into the envelope
    out = tmp_path / "cm.hist.json"
    assert main(["release", "--mechanism", "gshm", "--sketch", str(path),
                 "--epsilon", "1.0", "--delta", "1e-6", "-k", "64",
                 "--seed", "8", "--out", str(out)]) == 0
    assert load_histogram(out).metadata.mechanism == "GSHM"
    # v1 cannot store non-MG sketches and must say so up front.
    assert main(["sketch", "--stream", str(stream), "--type", "count_min", "-k", "64",
                 "--format", "v1", "--out", str(tmp_path / "cm.v1.json")]) == 2
    assert "v1" in capsys.readouterr().err


def test_merge_accepts_mixed_v1_v2_files(flat_workspace, tmp_path):
    """A v1 sketch file merges with a v2 sketch file (cross-read)."""
    _, stream, first, _ = flat_workspace
    old = tmp_path / "old.sketch.json"
    assert main(["sketch", "--stream", str(stream), "-k", "16",
                 "--format", "v1", "--out", str(old)]) == 0
    assert json.loads(old.read_text())["format_version"] == 1
    out = tmp_path / "mixed.hist.json"
    assert main(["merge", "--epsilon", "1.0", "--delta", "1e-6", "-k", "16",
                 "--seed", "5", "--out", str(out), str(first), str(old)]) == 0
    assert len(load_histogram(out)) >= 1


def test_v1_and_v2_sketch_files_decode_identically(flat_workspace, tmp_path):
    """Cross-read: the same sketch saved as v1 and v2 restores identical state."""
    _, stream, _, _ = flat_workspace
    v1, v2 = tmp_path / "a.v1.json", tmp_path / "a.v2.json"
    for path, fmt in ((v1, "v1"), (v2, "v2")):
        assert main(["sketch", "--stream", str(stream), "-k", "16",
                     "--format", fmt, "--out", str(path)]) == 0
    one, two = load_sketch(v1), load_sketch(v2)
    assert one.raw_counters() == two.raw_counters()
    assert one.stream_length == two.stream_length


def test_release_output_format_escape_hatch(flat_workspace, tmp_path):
    _, _, sketch, _ = flat_workspace
    v1_out = tmp_path / "hist.v1.json"
    assert main(["release", "--sketch", str(sketch), "--epsilon", "1.0",
                 "--delta", "1e-6", "--seed", "6", "--format", "v1",
                 "--out", str(v1_out)]) == 0
    payload = json.loads(v1_out.read_text())
    assert payload["format_version"] == 1
    assert load_histogram(v1_out).metadata.mechanism == "PMG"


def test_list_command_enumerates_registry(capsys):
    assert main(["list"]) == 0
    output = capsys.readouterr().out
    for name in list_mechanisms():
        assert name in output
    assert "misra_gries" in output


def test_stream_mechanism_requires_stream(flat_workspace, capsys):
    _, _, sketch, _ = flat_workspace
    assert main(["release", "--mechanism", "local_dp", "--sketch", str(sketch),
                 "--epsilon", "1.0", "--universe", "64"]) == 2
    assert "raw stream" in capsys.readouterr().err


def test_sketch_mechanism_requires_sketch(flat_workspace, capsys):
    _, stream, _, _ = flat_workspace
    assert main(["release", "--mechanism", "pmg", "--epsilon", "1.0",
                 "--delta", "1e-6"]) == 2
    assert "--sketch" in capsys.readouterr().err


class TestFramedPipeline:
    """pack -> merge --framed: streaming aggregation through the CLI."""

    def test_pack_then_framed_merge_matches_buffered_merge(self, flat_workspace,
                                                           tmp_path):
        _, _, first, second = flat_workspace
        frames = tmp_path / "exports.frames"
        assert main(["pack", "--out", str(frames), str(first), str(second)]) == 0
        framed_out = tmp_path / "framed.hist.json"
        buffered_out = tmp_path / "buffered.hist.json"
        assert main(["merge", "--framed", "--epsilon", "1.0", "--delta", "1e-6",
                     "--seed", "4", "--out", str(framed_out), str(frames)]) == 0
        assert main(["merge", "--epsilon", "1.0", "--delta", "1e-6", "-k", "16",
                     "--seed", "4", "--out", str(buffered_out),
                     str(first), str(second)]) == 0
        framed = load_histogram(framed_out)
        buffered = load_histogram(buffered_out)
        assert framed.as_dict() == buffered.as_dict()
        assert "streams=2" in framed.metadata.notes

    def test_pack_records_k_from_inputs(self, flat_workspace, tmp_path):
        _, _, first, second = flat_workspace
        frames = tmp_path / "exports.frames"
        assert main(["pack", "--out", str(frames), str(first), str(second)]) == 0
        from repro.api.framing import FrameReader

        with frames.open("rb") as fileobj:
            assert FrameReader(fileobj).header.k == 16

    def test_pack_accepts_v1_inputs(self, flat_workspace, tmp_path):
        _, stream, _, _ = flat_workspace
        old = tmp_path / "old.sketch.json"
        assert main(["sketch", "--stream", str(stream), "-k", "16",
                     "--format", "v1", "--out", str(old)]) == 0
        frames = tmp_path / "exports.frames"
        assert main(["pack", "--out", str(frames), str(old)]) == 0
        assert main(["merge", "--framed", "--epsilon", "1.0", "--delta", "1e-6",
                     "--seed", "1", "--out", str(tmp_path / "h.json"),
                     str(frames)]) == 0

    def test_framed_merge_rejects_non_streamable_strategy(self, flat_workspace,
                                                          tmp_path, capsys):
        _, _, first, _ = flat_workspace
        frames = tmp_path / "exports.frames"
        assert main(["pack", "--out", str(frames), str(first)]) == 0
        assert main(["merge", "--framed", "--strategy", "trusted_sum",
                     "--epsilon", "1.0", "--delta", "1e-6",
                     str(frames)]) == 2
        assert "trusted_merged" in capsys.readouterr().err

    def test_framed_merge_reports_truncation_cleanly(self, flat_workspace,
                                                     tmp_path, capsys):
        _, _, first, second = flat_workspace
        frames = tmp_path / "exports.frames"
        assert main(["pack", "--out", str(frames), str(first), str(second)]) == 0
        truncated = tmp_path / "truncated.frames"
        truncated.write_bytes(frames.read_bytes()[:-10])
        assert main(["merge", "--framed", "--epsilon", "1.0", "--delta", "1e-6",
                     str(truncated)]) == 1
        assert "truncated" in capsys.readouterr().err


def test_continual_release_reports_timeline_metadata(flat_workspace, tmp_path):
    _, stream, _, _ = flat_workspace
    out = tmp_path / "continual.hist.json"
    assert main(["release", "--mechanism", "continual", "--stream", str(stream),
                 "--epsilon", "1.0", "--delta", "1e-6", "-k", "16",
                 "--block-size", "1000", "--seed", "3", "--out", str(out)]) == 0
    histogram = load_histogram(out)
    assert histogram.metadata.mechanism == "ContinualMG"
    assert "blocks=4" in histogram.metadata.notes
    assert histogram.metadata.stream_length == 4000


def test_framed_merge_rejects_disagreeing_header_k(flat_workspace, tmp_path, capsys):
    _, stream, first, _ = flat_workspace
    other = tmp_path / "other-k.sketch.json"
    assert main(["sketch", "--stream", str(stream), "-k", "8", "--out", str(other)]) == 0
    frames_a = tmp_path / "a.frames"
    frames_b = tmp_path / "b.frames"
    assert main(["pack", "--out", str(frames_a), str(first)]) == 0
    assert main(["pack", "--out", str(frames_b), str(other)]) == 0
    assert main(["merge", "--framed", "--epsilon", "1.0", "--delta", "1e-6",
                 str(frames_a), str(frames_b)]) == 2
    assert "pass -k" in capsys.readouterr().err
    # An explicit -k overrides, like the buffered path.
    assert main(["merge", "--framed", "--epsilon", "1.0", "--delta", "1e-6",
                 "-k", "16", "--out", str(tmp_path / "h.json"),
                 str(frames_a), str(frames_b)]) == 0


def test_pack_declares_frame_count_so_truncation_is_detected(flat_workspace,
                                                             tmp_path, capsys):
    """A framed stream cut exactly at a frame boundary must not merge cleanly."""
    import struct

    from repro.api.framing import MAGIC

    _, _, first, second = flat_workspace
    frames = tmp_path / "exports.frames"
    assert main(["pack", "--out", str(frames), str(first), str(second)]) == 0
    data = frames.read_bytes()
    # Walk the frames and drop the last one, ending on a clean boundary.
    offset = len(MAGIC) + 1
    boundaries = []
    while offset < len(data):
        (length,) = struct.unpack_from(">I", data, offset)
        offset += 4 + length
        boundaries.append(offset)
    truncated = tmp_path / "boundary-cut.frames"
    truncated.write_bytes(data[:boundaries[-2]])
    assert main(["merge", "--framed", "--epsilon", "1.0", "--delta", "1e-6",
                 str(truncated)]) == 1
    assert "declared 2" in capsys.readouterr().err


def test_pack_rejects_disagreeing_k(flat_workspace, tmp_path, capsys):
    _, stream, first, _ = flat_workspace
    other = tmp_path / "other-k.sketch.json"
    assert main(["sketch", "--stream", str(stream), "-k", "8", "--out", str(other)]) == 0
    assert main(["pack", "--out", str(tmp_path / "x.frames"),
                 str(first), str(other)]) == 2
    assert "pass -k" in capsys.readouterr().err
