"""Shared fixtures and hypothesis configuration for the test suite."""

from __future__ import annotations

import signal

import numpy as np
import pytest
from hypothesis import HealthCheck, settings

from repro.sketches import ExactCounter, MisraGriesSketch
from repro.streams import zipf_stream

# Derandomize hypothesis so the suite is deterministic run to run; the
# property tests already use generous example counts.
settings.register_profile("repro", derandomize=True,
                          suppress_health_check=[HealthCheck.too_slow])
settings.load_profile("repro")


@pytest.fixture(autouse=True)
def _net_watchdog(request):
    """Hard per-test timeout for socket tests (the ``net`` marker).

    A hung socket must fail the test, not wedge the whole workflow: tests
    marked ``@pytest.mark.net`` get a SIGALRM-based wall-clock limit
    (default 60s, override with ``@pytest.mark.net(seconds=N)``) that raises
    straight through any blocked read.  No third-party timeout plugin needed.
    """
    marker = request.node.get_closest_marker("net")
    if marker is None or not hasattr(signal, "SIGALRM"):
        yield
        return
    seconds = float(marker.kwargs.get("seconds", 60.0))

    def _expired(signum, frame):
        raise TimeoutError(
            f"net test exceeded its hard {seconds:.0f}s wall-clock limit")

    previous = signal.signal(signal.SIGALRM, _expired)
    signal.setitimer(signal.ITIMER_REAL, seconds)
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)


@pytest.fixture
def rng():
    """A reproducible numpy Generator."""
    return np.random.default_rng(12345)


@pytest.fixture
def small_stream():
    """A short deterministic stream with a clear heavy hitter."""
    return [1, 2, 1, 3, 1, 4, 1, 5, 1, 2, 1, 2]


@pytest.fixture
def zipf_20k():
    """A moderately sized Zipf stream shared across tests (seeded)."""
    return zipf_stream(20_000, 2_000, exponent=1.2, rng=7)


@pytest.fixture
def zipf_20k_truth(zipf_20k):
    """Exact frequencies of :func:`zipf_20k`."""
    return ExactCounter.from_stream(zipf_20k).counters()


@pytest.fixture
def mg_sketch_64(zipf_20k):
    """A size-64 paper-variant MG sketch of the shared Zipf stream."""
    return MisraGriesSketch.from_stream(64, zipf_20k)
