"""Crash injection: SIGKILL the aggregation server, restart, release.

The acceptance property of the durability layer, end to end: a `repro serve
--wal-dir` subprocess is killed with SIGKILL at randomized wall-clock points
(which land anywhere in the protocol — between frames, mid-frame, mid-fsync)
while N resilient clients are pushing; it is restarted on the same wal dir;
and after the dust settles the released histogram must be bit-identical —
keys, values, dict order, metadata notes — to the offline ``repro merge
--framed`` release over the same files with the same seed.  The clients use
:func:`repro.net.push_file_resilient`, so every crash also exercises the
idempotent resume path (re-HELLO, committed-count skip, re-push of unACKed
tails).
"""

import json
import os
import pathlib
import random
import signal
import subprocess
import sys
import tempfile
import threading
import time

import pytest

from repro.cli import main
from repro.net import push_file_resilient

pytestmark = [pytest.mark.chaos, pytest.mark.net(seconds=240)]

K = 24
FRAMES_PER_CLIENT = 6
EPSILON, DELTA = "1.0", "1e-6"


@pytest.fixture
def packed_files(tmp_path):
    """Framed multi-frame files, one per client, over distinct Zipf streams."""
    files = []
    for client in range(4):
        sketches = []
        for part in range(FRAMES_PER_CLIENT):
            seed = 100 + client * FRAMES_PER_CLIENT + part
            stream = tmp_path / f"s{client}-{part}.txt"
            sketch = tmp_path / f"s{client}-{part}.json"
            assert main(["generate", "--dataset", "zipf", "-n", "3000",
                         "--universe", "300", "--seed", str(seed),
                         "--out", str(stream)]) == 0
            assert main(["sketch", "--stream", str(stream), "-k", str(K),
                         "--out", str(sketch)]) == 0
            sketches.append(str(sketch))
        frames = tmp_path / f"client{client}.frames"
        assert main(["pack", "--out", str(frames), *sketches]) == 0
        files.append(frames)
    return files


class ServerHarness:
    """Start / SIGKILL / restart one `repro serve --wal-dir` subprocess."""

    def __init__(self, tmp_path, wal_dir):
        # Unix socket: the address survives restarts (no ephemeral port
        # reassignment), and the path stays under the ~100-char limit.
        self._sockdir = tempfile.mkdtemp(prefix="repro-chaos-")
        self._socket = f"{self._sockdir}/agg.sock"
        self.address = f"unix:{self._socket}"
        self._tmp = tmp_path
        self._wal_dir = wal_dir
        self._process = None
        self._generation = 0

    def start(self):
        self._generation += 1
        ready = self._tmp / f"ready-{self._generation}.addr"
        if os.path.exists(self._socket):
            os.unlink(self._socket)  # SIGKILL leaves the bound socket behind
        self._process = subprocess.Popen(
            [sys.executable, "-m", "repro.cli", "serve",
             "--listen", self.address, "--epsilon", EPSILON,
             "--delta", DELTA, "-k", str(K),
             "--wal-dir", str(self._wal_dir),
             "--ready-file", str(ready)],
            env={**os.environ, "PYTHONPATH": str(
                pathlib.Path(__file__).resolve().parents[2] / "src")},
            stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True)
        deadline = time.time() + 30
        while time.time() < deadline:
            if ready.exists() and ready.read_text().strip():
                return self
            if self._process.poll() is not None:
                raise AssertionError(
                    f"serve (gen {self._generation}) died during startup: "
                    f"{self._process.stderr.read()}")
            time.sleep(0.05)
        raise AssertionError("serve never wrote its ready file")

    def kill_9(self):
        os.kill(self._process.pid, signal.SIGKILL)
        self._process.wait(timeout=30)

    def terminate(self):
        if self._process is not None and self._process.poll() is None:
            self._process.terminate()
            try:
                self._process.wait(timeout=30)
            except subprocess.TimeoutExpired:
                self._process.kill()
                self._process.wait(timeout=30)


def _load(path):
    return json.loads(pathlib.Path(path).read_text())


def _offline_release(tmp_path, files, seed):
    out = tmp_path / "offline.hist.json"
    assert main(["merge", "--framed", "--epsilon", EPSILON, "--delta", DELTA,
                 "--seed", str(seed), "--out", str(out),
                 *[str(path) for path in files]]) == 0
    return _load(out)


@pytest.mark.slow
@pytest.mark.parametrize("clients", [1, 2, 4])
def test_sigkill_mid_push_release_is_bit_identical(packed_files, tmp_path,
                                                   clients):
    files = packed_files[:clients]
    rng = random.Random(1000 + clients)  # per-scenario randomized kill points
    harness = ServerHarness(tmp_path, tmp_path / "wal").start()
    errors = []

    def push(ordinal):
        try:
            # burst=1 + throttle widens the crash window: every frame is its
            # own PUSH burst with its own fsync commit.
            push_file_resilient(harness.address, files[ordinal],
                                ordinal=ordinal, k=K, timeout=10.0,
                                connect_retries=20, retry_delay=0.1,
                                retry_jitter=0.5, max_elapsed=120.0,
                                burst=1, throttle=0.03)
        except Exception as error:  # surfaced after the joins
            errors.append((ordinal, error))

    threads = [threading.Thread(target=push, args=(ordinal,))
               for ordinal in range(clients)]
    try:
        for thread in threads:
            thread.start()
        # Two SIGKILLs at randomized points while the pushes are in flight.
        for _ in range(2):
            time.sleep(rng.uniform(0.05, 0.45))
            harness.kill_9()
            harness.start()
        for thread in threads:
            thread.join(timeout=180)
            assert not thread.is_alive(), "a pushing client wedged"
        assert errors == [], f"client pushes failed: {errors}"

        net_out = tmp_path / "net.hist.json"
        seed = 21
        assert main(["request-release", "--to", harness.address,
                     "--seed", str(seed), "--out", str(net_out)]) == 0
    finally:
        harness.terminate()

    networked = _load(net_out)
    offline = _offline_release(tmp_path, files, seed)
    assert networked["keys"] == offline["keys"]
    assert networked["values"] == offline["values"]
    assert networked["meta"] == offline["meta"]

    # The WAL tools agree with the live release: inspect exits cleanly and
    # an offline replay of the wal dir reproduces the histogram bit-exactly.
    assert main(["wal", "inspect", str(tmp_path / "wal")]) == 0
    replay_out = tmp_path / "replay.hist.json"
    assert main(["wal", "replay", str(tmp_path / "wal"),
                 "--epsilon", EPSILON, "--delta", DELTA,
                 "--seed", str(seed), "--out", str(replay_out)]) == 0
    assert _load(replay_out) == networked


@pytest.mark.slow
def test_sigkill_between_all_commits_and_release(packed_files, tmp_path):
    """Kill only after every client committed: recovery must reconstruct the
    full committed set with zero live sessions to lean on."""
    files = packed_files[:2]
    harness = ServerHarness(tmp_path, tmp_path / "wal").start()
    try:
        for ordinal, path in enumerate(files):
            pushed = push_file_resilient(harness.address, path,
                                         ordinal=ordinal, k=K,
                                         max_elapsed=60.0)
            assert pushed == FRAMES_PER_CLIENT
        harness.kill_9()
        harness.start()

        net_out = tmp_path / "net.hist.json"
        assert main(["request-release", "--to", harness.address,
                     "--seed", "5", "--out", str(net_out)]) == 0
    finally:
        harness.terminate()
    networked = _load(net_out)
    offline = _offline_release(tmp_path, files, seed=5)
    assert networked == offline  # the whole JSON document, bit for bit
