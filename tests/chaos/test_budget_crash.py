"""Crash injection for the privacy budget: SIGKILL cannot reset the spend.

A ``repro serve --budget-epsilon --wal-dir`` subprocess is killed with
SIGKILL after serving releases and restarted on the same wal dir.  The
acceptance property: the restarted server resumes from the persisted spend —
never a reset (which would hand out free releases) and never a double-charge
(which would refuse releases the budget still covers).  The charge protocol
persists the new count through the fsync-backed checkpoint store *before*
the histogram is computed, so a kill anywhere between charge and reply costs
at most one unconsumed charge; WAL replay on restart re-folds sessions but
never re-runs releases, so the count can only move when a release is served.
"""

import os
import pathlib
import signal
import subprocess
import sys
import tempfile
import time

import pytest

from repro.cli import main
from repro.exceptions import RemoteError
from repro.net import fetch_stats, push_file_resilient, request_release

pytestmark = [pytest.mark.chaos, pytest.mark.net(seconds=240)]

K = 16
EPSILON, DELTA = "1.0", "1e-6"
BUDGET_EPSILON = "3.0"  # three releases at epsilon 1.0 each


class BudgetServerHarness:
    """Start / SIGKILL / restart one budgeted `repro serve` subprocess."""

    def __init__(self, tmp_path, wal_dir):
        self._sockdir = tempfile.mkdtemp(prefix="repro-budget-chaos-")
        self._socket = f"{self._sockdir}/agg.sock"
        self.address = f"unix:{self._socket}"
        self._tmp = tmp_path
        self._wal_dir = wal_dir
        self._process = None
        self._generation = 0

    def start(self):
        self._generation += 1
        ready = self._tmp / f"ready-{self._generation}.addr"
        if os.path.exists(self._socket):
            os.unlink(self._socket)
        self._process = subprocess.Popen(
            [sys.executable, "-m", "repro.cli", "serve",
             "--listen", self.address, "--epsilon", EPSILON,
             "--delta", DELTA, "-k", str(K),
             "--wal-dir", str(self._wal_dir),
             "--budget-epsilon", BUDGET_EPSILON,
             "--ready-file", str(ready)],
            env={**os.environ, "PYTHONPATH": str(
                pathlib.Path(__file__).resolve().parents[2] / "src")},
            stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True)
        deadline = time.time() + 30
        while time.time() < deadline:
            if ready.exists() and ready.read_text().strip():
                return self
            if self._process.poll() is not None:
                raise AssertionError(
                    f"serve (gen {self._generation}) died during startup: "
                    f"{self._process.stderr.read()}")
            time.sleep(0.05)
        raise AssertionError("serve never wrote its ready file")

    def kill_9(self):
        os.kill(self._process.pid, signal.SIGKILL)
        self._process.wait(timeout=30)

    def terminate(self):
        if self._process is not None and self._process.poll() is None:
            self._process.terminate()
            try:
                self._process.wait(timeout=30)
            except subprocess.TimeoutExpired:
                self._process.kill()
                self._process.wait(timeout=30)


@pytest.fixture
def packed_file(tmp_path):
    stream = tmp_path / "stream.txt"
    sketch = tmp_path / "sketch.json"
    frames = tmp_path / "client.frames"
    assert main(["generate", "--dataset", "zipf", "-n", "3000",
                 "--universe", "300", "--seed", "7",
                 "--out", str(stream)]) == 0
    assert main(["sketch", "--stream", str(stream), "-k", str(K),
                 "--out", str(sketch)]) == 0
    assert main(["pack", "--out", str(frames), str(sketch)]) == 0
    return frames


def _charged(address):
    return fetch_stats(address)["privacy"]["releases_charged"]


@pytest.mark.slow
def test_sigkill_preserves_spend_and_budget_line(packed_file, tmp_path):
    wal_dir = tmp_path / "wal"
    harness = BudgetServerHarness(tmp_path, wal_dir).start()
    try:
        pushed = push_file_resilient(harness.address, packed_file,
                                     ordinal=0, k=K, max_elapsed=60.0)
        assert pushed == 1

        # Release 1 of 3, then SIGKILL + restart on the same wal dir.
        first = request_release(harness.address, seed=11)
        harness.kill_9()
        harness.start()

        # Not reset (would be 0) and not double-charged (would be 2).
        assert _charged(harness.address) == 1

        # The remaining budget still covers exactly two more releases, and
        # the replayed session releases the same bits as before the crash.
        second = request_release(harness.address, seed=11)
        assert list(second.items()) == list(first.items())
        harness.kill_9()
        harness.start()
        assert _charged(harness.address) == 2
        request_release(harness.address, seed=12)

        # Release 4 crosses the epsilon budget: machine-readable refusal,
        # and the refusal itself must not move the persisted count.
        with pytest.raises(RemoteError) as caught:
            request_release(harness.address, seed=13)
        assert caught.value.code == "budget_exhausted"
        stats = fetch_stats(harness.address)
        assert stats["privacy"]["releases_charged"] == 3
        assert stats["privacy"]["exhausted"] is True

        # One more kill cycle: the exhausted state is durable too.
        harness.kill_9()
        harness.start()
        with pytest.raises(RemoteError) as caught:
            request_release(harness.address, seed=14)
        assert caught.value.code == "budget_exhausted"
        assert _charged(harness.address) == 3
    finally:
        harness.terminate()

    # The wal inspect tool renders the budget row without touching spools.
    assert main(["wal", "inspect", str(wal_dir)]) == 0


@pytest.mark.slow
def test_refused_release_leaves_server_and_wal_serviceable(packed_file,
                                                          tmp_path):
    """After exhaustion the server still commits new sessions and serves
    STATS, and `repro stats` renders the budget table."""
    wal_dir = tmp_path / "wal"
    harness = BudgetServerHarness(tmp_path, wal_dir).start()
    try:
        push_file_resilient(harness.address, packed_file, ordinal=0, k=K,
                            max_elapsed=60.0)
        for seed in (1, 2, 3):
            request_release(harness.address, seed=seed)
        with pytest.raises(RemoteError):
            request_release(harness.address, seed=4)
        # New session on the exhausted server: still accepted and durable.
        pushed = push_file_resilient(harness.address, packed_file, ordinal=1,
                                     k=K, max_elapsed=60.0)
        assert pushed == 1
        stats = fetch_stats(harness.address)
        assert stats["sessions_committed"] == 2
        assert stats["privacy"]["releases_charged"] == 3
        assert stats["privacy"]["remaining"] == {"epsilon": 0.0, "delta": 0.0}
        # The `repro stats` table renders the budget stanza without error.
        assert main(["stats", harness.address]) == 0
    finally:
        harness.terminate()
