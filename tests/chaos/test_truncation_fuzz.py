"""Truncation fuzz: a packed framed file cut at EVERY byte offset.

The framed container is the wire format, the pack format *and* the WAL spool
format, so its failure mode under truncation is load-bearing three times
over.  Property: for a packed multi-frame file of ``L`` bytes, reading any
strict prefix must raise :class:`FramingError` — never hang, never return
partial data — and the error must be byte-for-byte identical whether the
binary header scan runs on the pure-python backend or the compiled kernel.
"""

import io

import pytest

from repro import kernels
from repro.api.framing import FrameReader, FrameWriter, FramingError
from repro.api.wire import encode_counters

pytestmark = pytest.mark.chaos

K = 16

BACKENDS = [
    "python",
    pytest.param("compiled", marks=pytest.mark.skipif(
        not kernels.available(),
        reason="no compiled kernel provider in this environment")),
]


def _packed_bytes():
    """A 4-frame file mixing binary columnar and JSON token frames."""
    buffer = io.BytesIO()
    with FrameWriter(buffer, k=K, frames=4) as writer:
        writer.write_payload(encode_counters({1: 10.0, 2: 20.0}, k=K,
                                             stream_length=30))
        writer.write_payload(encode_counters({"a": 5.0, "b": 2.5}, k=K,
                                             stream_length=7))
        writer.write_payload(encode_counters({-(2**62): 1.0, 7: 3.0}, k=K,
                                             stream_length=4))
        writer.write_payload(encode_counters({3: 1.5}, k=K, stream_length=1))
    return buffer.getvalue()


def _read_all(data):
    return list(FrameReader(io.BytesIO(data)))


def _outcome(data, backend, monkeypatch):
    """(error type name, message) for one cut under one kernel backend."""
    monkeypatch.setenv("REPRO_KERNELS", backend)
    try:
        _read_all(data)
    except FramingError as error:
        return type(error).__name__, str(error)
    except Exception as error:  # anything else fails the property
        return "UNEXPECTED:" + type(error).__name__, str(error)
    return None, None


@pytest.mark.parametrize("backend", BACKENDS)
def test_every_strict_prefix_raises_framing_error(backend, monkeypatch):
    monkeypatch.setenv("REPRO_KERNELS", backend)
    data = _packed_bytes()
    survivors = []
    for cut in range(len(data)):
        try:
            frames = _read_all(data[:cut])
        except FramingError:
            continue
        survivors.append((cut, len(frames)))
    assert survivors == [], (
        f"{len(survivors)} cut offset(s) returned partial data instead of "
        f"raising FramingError: {survivors[:10]}")


@pytest.mark.parametrize("backend", BACKENDS)
def test_the_intact_file_still_parses(backend, monkeypatch):
    """The fuzz property must not hold vacuously."""
    monkeypatch.setenv("REPRO_KERNELS", backend)
    frames = _read_all(_packed_bytes())
    assert len(frames) == 4
    assert dict(zip(frames[0].keys, frames[0].values)) == {1: 10.0, 2: 20.0}


@pytest.mark.skipif(not kernels.available(),
                    reason="no compiled kernel provider in this environment")
def test_truncation_errors_identical_across_backends(monkeypatch):
    """Same cut, same error, whichever backend scans the binary headers."""
    data = _packed_bytes()
    mismatches = []
    for cut in range(len(data) + 1):
        python = _outcome(data[:cut], "python", monkeypatch)
        compiled = _outcome(data[:cut], "compiled", monkeypatch)
        if python != compiled:
            mismatches.append((cut, python, compiled))
    assert mismatches == [], (
        f"{len(mismatches)} offset(s) diverge between backends: "
        f"{mismatches[:5]}")


@pytest.mark.parametrize("backend", BACKENDS)
def test_truncated_stream_prefix_and_header_raise_too(backend, monkeypatch):
    """Cuts inside the 5-byte magic and the header frame, explicitly."""
    monkeypatch.setenv("REPRO_KERNELS", backend)
    data = _packed_bytes()
    for cut in range(0, 12):
        with pytest.raises(FramingError):
            _read_all(data[:cut])


@pytest.mark.parametrize("backend", BACKENDS)
def test_trailing_garbage_after_a_complete_file_raises(backend, monkeypatch):
    """The dual property: extra bytes past the declared frames are rejected,
    so a spool tail glued onto a complete file cannot smuggle frames in."""
    monkeypatch.setenv("REPRO_KERNELS", backend)
    data = _packed_bytes()
    for garbage in (b"\x00", b"\x00\x00\x00\x01X", data[5:40]):
        with pytest.raises(FramingError):
            _read_all(data + garbage)
