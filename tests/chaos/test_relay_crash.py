"""Crash injection for the relay tier: SIGKILL a leaf mid-forward.

The acceptance property of the scale-out leg: a ``repro relay --wal-dir``
leaf (eager ``--forward-on commit`` policy, so upstream pushes are in
flight while clients are still pushing) is SIGKILLed at randomized
wall-clock points and restarted on the same wal dir; the resilient clients
resume against the restarted leaf; and the release requested through the
leaf must be bit-identical — keys, values, dict order, metadata — to the
offline ``repro merge --framed`` fold over the same files.

Every kill exercises the full durability chain: the leaf's session WAL
(client resume), the durable forward queue (staged batches re-push after
restart), and the root's WAL (the committed-count skip that makes the
re-push idempotent — crash safety needs a WAL on *both* tiers).
"""

import json
import os
import pathlib
import random
import signal
import subprocess
import sys
import tempfile
import threading
import time

import pytest

from repro.cli import main
from repro.net import push_file_resilient

pytestmark = [pytest.mark.chaos, pytest.mark.net(seconds=240)]

K = 24
CLIENTS = 2
FRAMES_PER_CLIENT = 6
EPSILON, DELTA = "1.0", "1e-6"


@pytest.fixture
def packed_files(tmp_path):
    """Framed multi-frame files, one per client, over distinct Zipf streams."""
    files = []
    for client in range(CLIENTS):
        sketches = []
        for part in range(FRAMES_PER_CLIENT):
            seed = 700 + client * FRAMES_PER_CLIENT + part
            stream = tmp_path / f"s{client}-{part}.txt"
            sketch = tmp_path / f"s{client}-{part}.json"
            assert main(["generate", "--dataset", "zipf", "-n", "3000",
                         "--universe", "300", "--seed", str(seed),
                         "--out", str(stream)]) == 0
            assert main(["sketch", "--stream", str(stream), "-k", str(K),
                         "--out", str(sketch)]) == 0
            sketches.append(str(sketch))
        frames = tmp_path / f"client{client}.frames"
        assert main(["pack", "--out", str(frames), *sketches]) == 0
        files.append(frames)
    return files


class Harness:
    """Start / SIGKILL / restart one repro CLI server subprocess."""

    def __init__(self, tmp_path, name, argv):
        self._sockdir = tempfile.mkdtemp(prefix=f"repro-relay-{name}-")
        self._socket = f"{self._sockdir}/{name}.sock"
        self.address = f"unix:{self._socket}"
        self._tmp = tmp_path
        self._name = name
        self._argv = argv
        self._process = None
        self._generation = 0

    def start(self):
        self._generation += 1
        ready = self._tmp / f"{self._name}-ready-{self._generation}.addr"
        if os.path.exists(self._socket):
            os.unlink(self._socket)  # SIGKILL leaves the bound socket behind
        self._process = subprocess.Popen(
            [sys.executable, "-m", "repro.cli", *self._argv,
             "--listen", self.address, "--ready-file", str(ready)],
            env={**os.environ, "PYTHONPATH": str(
                pathlib.Path(__file__).resolve().parents[2] / "src")},
            stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True)
        deadline = time.time() + 30
        while time.time() < deadline:
            if ready.exists() and ready.read_text().strip():
                return self
            if self._process.poll() is not None:
                raise AssertionError(
                    f"{self._name} (gen {self._generation}) died during "
                    f"startup: {self._process.stderr.read()}")
            time.sleep(0.05)
        raise AssertionError(f"{self._name} never wrote its ready file")

    def kill_9(self):
        os.kill(self._process.pid, signal.SIGKILL)
        self._process.wait(timeout=30)

    def terminate(self):
        if self._process is not None and self._process.poll() is None:
            self._process.terminate()
            try:
                self._process.wait(timeout=30)
            except subprocess.TimeoutExpired:
                self._process.kill()
                self._process.wait(timeout=30)


def _load(path):
    return json.loads(pathlib.Path(path).read_text())


def _offline_release(tmp_path, files, seed):
    out = tmp_path / "offline.hist.json"
    assert main(["merge", "--framed", "--epsilon", EPSILON, "--delta", DELTA,
                 "--seed", str(seed), "--out", str(out),
                 *[str(path) for path in files]]) == 0
    return _load(out)


@pytest.mark.slow
def test_sigkill_leaf_mid_forward_release_is_bit_identical(packed_files,
                                                           tmp_path):
    rng = random.Random(4242)
    root = Harness(tmp_path, "root",
                   ["serve", "--epsilon", EPSILON, "--delta", DELTA,
                    "-k", str(K), "--accept-relays",
                    "--wal-dir", str(tmp_path / "rootwal")])
    leaf = Harness(tmp_path, "leaf",
                   ["relay", "--epsilon", EPSILON, "--delta", DELTA,
                    "-k", str(K), "--upstream", root.address,
                    "--ordinal", "0", "--forward-on", "commit",
                    "--wal-dir", str(tmp_path / "leafwal")])
    root.start()
    leaf.start()
    errors = []

    def push(ordinal):
        try:
            # burst=1 + throttle: every frame is its own fsynced commit, so
            # the kills land between durable points, and the eager forwards
            # interleave with the pushes.
            push_file_resilient(leaf.address, packed_files[ordinal],
                                ordinal=ordinal, k=K, timeout=10.0,
                                connect_retries=20, retry_delay=0.1,
                                retry_jitter=0.5, max_elapsed=120.0,
                                burst=1, throttle=0.03)
        except Exception as error:  # surfaced after the joins
            errors.append((ordinal, error))

    threads = [threading.Thread(target=push, args=(ordinal,))
               for ordinal in range(CLIENTS)]
    try:
        for thread in threads:
            thread.start()
        # Two SIGKILLs of the *leaf* at randomized points while client
        # pushes and eager upstream forwards are both in flight.
        for _ in range(2):
            time.sleep(rng.uniform(0.05, 0.45))
            leaf.kill_9()
            leaf.start()
        for thread in threads:
            thread.join(timeout=180)
            assert not thread.is_alive(), "a pushing client wedged"
        assert errors == [], f"client pushes failed: {errors}"

        # One more kill after all commits: whatever forwards were still
        # unacked must re-push from the durable queue on restart, and the
        # root's WAL must dedupe anything already folded.
        leaf.kill_9()
        leaf.start()

        net_out = tmp_path / "net.hist.json"
        seed = 33
        assert main(["request-release", "--to", leaf.address,
                     "--seed", str(seed), "--out", str(net_out)]) == 0
        assert main(["stats", leaf.address]) == 0
        assert main(["stats", root.address]) == 0
    finally:
        leaf.terminate()
        root.terminate()

    networked = _load(net_out)
    offline = _offline_release(tmp_path, packed_files, seed)
    assert networked["keys"] == offline["keys"]
    assert networked["values"] == offline["values"]
    assert networked["meta"] == offline["meta"]

    # The root's WAL replays the forwarded summary frames offline into the
    # same release (the relay spool role survives on disk).
    replay_out = tmp_path / "replay.hist.json"
    assert main(["wal", "replay", str(tmp_path / "rootwal"),
                 "--epsilon", EPSILON, "--delta", DELTA,
                 "--seed", str(seed), "--out", str(replay_out)]) == 0
    assert _load(replay_out) == networked
