"""Unit tests for the shared validation helpers."""

import math

import pytest

from repro._validation import (
    check_delta,
    check_epsilon,
    check_non_negative_int,
    check_positive_float,
    check_positive_int,
    check_probability,
)
from repro.exceptions import ParameterError, PrivacyParameterError


class TestPositiveInt:
    def test_accepts_positive(self):
        assert check_positive_int(3, "x") == 3

    def test_rejects_zero(self):
        with pytest.raises(ParameterError):
            check_positive_int(0, "x")

    def test_rejects_negative(self):
        with pytest.raises(ParameterError):
            check_positive_int(-1, "x")

    def test_rejects_bool(self):
        with pytest.raises(ParameterError):
            check_positive_int(True, "x")

    def test_rejects_float(self):
        with pytest.raises(ParameterError):
            check_positive_int(2.5, "x")

    def test_error_message_contains_name(self):
        with pytest.raises(ParameterError, match="width"):
            check_positive_int(-3, "width")


class TestNonNegativeInt:
    def test_accepts_zero(self):
        assert check_non_negative_int(0, "x") == 0

    def test_rejects_negative(self):
        with pytest.raises(ParameterError):
            check_non_negative_int(-2, "x")


class TestPositiveFloat:
    def test_accepts_int_and_float(self):
        assert check_positive_float(2, "x") == 2.0
        assert check_positive_float(0.5, "x") == 0.5

    def test_rejects_zero_and_negative(self):
        with pytest.raises(ParameterError):
            check_positive_float(0.0, "x")
        with pytest.raises(ParameterError):
            check_positive_float(-1.0, "x")

    def test_rejects_nan_and_inf(self):
        with pytest.raises(ParameterError):
            check_positive_float(float("nan"), "x")
        with pytest.raises(ParameterError):
            check_positive_float(math.inf, "x")

    def test_rejects_non_numeric(self):
        with pytest.raises(ParameterError):
            check_positive_float("abc", "x")


class TestEpsilonDelta:
    def test_epsilon_valid(self):
        assert check_epsilon(0.1) == 0.1

    def test_epsilon_invalid(self):
        for bad in (0, -1, math.inf, float("nan")):
            with pytest.raises(PrivacyParameterError):
                check_epsilon(bad)

    def test_delta_valid(self):
        assert check_delta(1e-6) == 1e-6

    def test_delta_zero_allowed_only_when_requested(self):
        assert check_delta(0.0, allow_zero=True) == 0.0
        with pytest.raises(PrivacyParameterError):
            check_delta(0.0)

    def test_delta_one_rejected(self):
        with pytest.raises(PrivacyParameterError):
            check_delta(1.0)


class TestProbability:
    def test_valid(self):
        assert check_probability(0.5, "p") == 0.5

    def test_invalid_bounds(self):
        for bad in (0.0, 1.0, -0.1, 1.1):
            with pytest.raises(ParameterError):
                check_probability(bad, "p")
