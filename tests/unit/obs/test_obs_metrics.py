"""Unit tests for the metrics registry: zero real sleeps, injectable clocks.

Window semantics, nearest-rank percentiles, the null registry's no-op
surface, the tracer's span timing + JSON log emission — all driven by a
fake monotonic clock, so the whole suite runs in milliseconds and the
sliding-window behavior is exact, not sleep-flaky.
"""

import io
import json

import pytest

from repro.obs.metrics import (DEFAULT_WINDOW, METRICS_VERSION, Counter,
                               Gauge, Histogram, MetricsRegistry,
                               NULL_METRICS, NullMetrics, as_registry)
from repro.obs.trace import Tracer


class FakeClock:
    """A hand-advanced monotonic clock."""

    def __init__(self, now: float = 0.0) -> None:
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> float:
        self.now += seconds
        return self.now


# ---------------------------------------------------------------------------
# Instruments
# ---------------------------------------------------------------------------

class TestCounter:
    def test_monotonic(self):
        counter = Counter()
        assert counter.value == 0
        counter.inc()
        counter.inc(41)
        assert counter.value == 42


class TestGauge:
    def test_last_value_wins(self):
        gauge = Gauge()
        gauge.set(7.0)
        gauge.set(3.0)
        assert gauge.value == 3.0

    def test_inc_dec(self):
        gauge = Gauge()
        gauge.inc(5.0)
        gauge.dec(2.0)
        assert gauge.value == 3.0


class TestHistogram:
    def test_empty_summary(self):
        histogram = Histogram(FakeClock())
        assert histogram.summary() == {"count": 0}

    def test_summary_fields(self):
        clock = FakeClock()
        histogram = Histogram(clock, window=60.0)
        for value in [1.0, 2.0, 3.0, 4.0]:
            histogram.observe(value)
        summary = histogram.summary()
        assert summary["count"] == 4
        assert summary["mean"] == pytest.approx(2.5)
        assert summary["p50"] == 2.0
        assert summary["max"] == 4.0

    def test_nearest_rank_percentiles_100_samples(self):
        # With 1..100 the nearest-rank percentile IS the rank: p50=50,
        # p90=90, p99=99 — no interpolation.
        histogram = Histogram(FakeClock())
        for value in range(1, 101):
            histogram.observe(float(value))
        summary = histogram.summary()
        assert summary["p50"] == 50.0
        assert summary["p90"] == 90.0
        assert summary["p99"] == 99.0
        assert summary["max"] == 100.0

    def test_single_sample_percentiles(self):
        histogram = Histogram(FakeClock())
        histogram.observe(7.0)
        summary = histogram.summary()
        assert summary["p50"] == summary["p99"] == summary["max"] == 7.0

    def test_window_eviction_on_read(self):
        clock = FakeClock()
        histogram = Histogram(clock, window=10.0)
        histogram.observe(1.0)          # t=0
        clock.advance(5.0)
        histogram.observe(2.0)          # t=5
        clock.advance(6.0)              # t=11: the t=0 sample just expired
        assert histogram.values() == [2.0]
        clock.advance(10.0)             # t=21: everything expired
        assert histogram.summary() == {"count": 0}

    def test_boundary_sample_survives_exactly_window(self):
        clock = FakeClock()
        histogram = Histogram(clock, window=10.0)
        histogram.observe(1.0)
        clock.advance(10.0)             # cutoff == sample timestamp: kept
        assert histogram.values() == [1.0]

    def test_maxlen_bounds_memory(self):
        histogram = Histogram(FakeClock(), maxlen=4)
        for value in range(10):
            histogram.observe(float(value))
        assert histogram.values() == [6.0, 7.0, 8.0, 9.0]

    def test_infinite_window_never_evicts(self):
        clock = FakeClock()
        histogram = Histogram(clock, window=float("inf"))
        histogram.observe(1.0)
        clock.advance(1e9)
        assert histogram.values() == [1.0]


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------

class TestMetricsRegistry:
    def test_get_or_create_is_stable(self):
        registry = MetricsRegistry(clock=FakeClock())
        assert registry.counter("a") is registry.counter("a")
        assert registry.gauge("g") is registry.gauge("g")
        assert registry.histogram("h") is registry.histogram("h")

    def test_conveniences(self):
        registry = MetricsRegistry(clock=FakeClock())
        registry.inc("frames", 3)
        registry.set_gauge("depth", 7.0)
        registry.observe("lat", 0.5)
        assert registry.counter("frames").value == 3
        assert registry.gauge("depth").value == 7.0
        assert registry.histogram("lat").values() == [0.5]

    def test_snapshot_shape_and_order(self):
        registry = MetricsRegistry(clock=FakeClock(), window=30.0)
        registry.inc("z.total")
        registry.inc("a.total", 2)
        registry.set_gauge("depth", 1.0)
        registry.observe("lat_seconds", 0.25)
        snapshot = registry.snapshot()
        assert snapshot["version"] == METRICS_VERSION
        assert snapshot["window_s"] == 30.0
        assert list(snapshot["counters"]) == ["a.total", "z.total"]
        assert snapshot["counters"] == {"a.total": 2, "z.total": 1}
        assert snapshot["gauges"] == {"depth": 1.0}
        assert snapshot["histograms"]["lat_seconds"]["count"] == 1
        json.dumps(snapshot)   # must be JSON-safe as-is

    def test_histograms_share_registry_clock(self):
        clock = FakeClock()
        registry = MetricsRegistry(clock=clock, window=10.0)
        registry.observe("lat", 1.0)
        clock.advance(11.0)
        assert registry.histogram("lat").summary() == {"count": 0}


class TestNullMetrics:
    def test_disabled_surface(self):
        assert NULL_METRICS.enabled is False
        NULL_METRICS.inc("x")
        NULL_METRICS.set_gauge("g", 1.0)
        NULL_METRICS.observe("h", 1.0)
        assert NULL_METRICS.snapshot() is None

    def test_writes_leave_no_state(self):
        NULL_METRICS.inc("x", 100)
        assert NULL_METRICS.counter("x").value == 0
        assert NULL_METRICS.histogram("h").summary() == {"count": 0}

    def test_clock_is_real(self):
        assert isinstance(NULL_METRICS.clock(), float)


class TestAsRegistry:
    def test_true_builds_fresh_registry(self):
        first, second = as_registry(True), as_registry(True)
        assert isinstance(first, MetricsRegistry)
        assert first is not second

    def test_false_and_none_are_null(self):
        assert as_registry(False) is NULL_METRICS
        assert as_registry(None) is NULL_METRICS

    def test_registry_passes_through(self):
        registry = MetricsRegistry(clock=FakeClock())
        assert as_registry(registry) is registry
        null = NullMetrics()
        assert as_registry(null) is null


# ---------------------------------------------------------------------------
# Tracer
# ---------------------------------------------------------------------------

class TestTracer:
    def test_span_records_histogram_duration(self):
        clock = FakeClock()
        registry = MetricsRegistry(clock=clock)
        tracer = Tracer(registry)
        with tracer.span("release"):
            clock.advance(0.25)
        assert registry.histogram("span.release_seconds").values() == [0.25]

    def test_span_writes_json_line(self):
        clock = FakeClock()
        registry = MetricsRegistry(clock=clock)
        stream = io.StringIO()
        tracer = Tracer(registry, stream=stream, wall_clock=lambda: 123.5)
        with tracer.span("push", frames=3) as fields:
            clock.advance(0.5)
            fields["ordinal"] = 7
        line = json.loads(stream.getvalue())
        assert line == {"ts": 123.5, "span": "push", "elapsed_s": 0.5,
                        "frames": 3, "ordinal": 7}

    def test_span_error_is_recorded_and_reraised(self):
        clock = FakeClock()
        registry = MetricsRegistry(clock=clock)
        stream = io.StringIO()
        tracer = Tracer(registry, stream=stream, wall_clock=lambda: 0.0)
        with pytest.raises(ValueError):
            with tracer.span("push"):
                raise ValueError("boom")
        line = json.loads(stream.getvalue())
        assert line["error"] == "ValueError"
        assert registry.histogram("span.push_seconds").summary()["count"] == 1

    def test_inactive_tracer_short_circuits(self):
        tracer = Tracer(NULL_METRICS, stream=None)
        assert tracer.active is False
        with tracer.span("anything") as fields:
            fields["x"] = 1   # the fields dict still works

    def test_torn_stream_disables_logging_not_the_span(self):
        class TornStream:
            def write(self, _):
                raise OSError("broken pipe")

            def flush(self):
                pass

        clock = FakeClock()
        registry = MetricsRegistry(clock=clock)
        tracer = Tracer(registry, stream=TornStream())
        with tracer.span("push"):
            clock.advance(0.1)
        assert tracer.stream is None           # logging dropped...
        with tracer.span("push"):
            clock.advance(0.1)
        summary = registry.histogram("span.push_seconds").summary()
        assert summary["count"] == 2           # ...metrics keep recording
