"""Unit tests for the operator console renderer and watch loop.

Everything runs over canned STATS dicts with injected stream/clock/sleep —
no server, no sockets, no real time.
"""

import io

import pytest

from repro.obs import console
from repro.obs.console import (CLEAR, render_stats, render_status, watch,
                               _human_bytes)


def make_stats(**overrides):
    """A canned STATS reply shaped like AggregatorServer.stats()."""
    stats = {
        "role": "aggregator",
        "k": 64,
        "frames": 120,
        "stream_length": 4800,
        "releases": 2,
        "sessions_active": 1,
        "sessions_committed": 3,
        "sessions_rejected": 1,
        "sessions_listed": 3,
        "uptime": 10.0,
        "uptime_s": 10.0,
        "started_at": 1_000.0,
        "auth_required": False,
        "accept_relays": False,
        "privacy": {
            "per_release": {"epsilon": 1.0, "delta": 1e-6},
            "composition": "basic",
            "releases_charged": 2,
            "spent": {"epsilon": 2.0, "delta": 2e-6},
            "budget": None,
            "remaining": None,
            "exhausted": False,
        },
        "sessions": [
            {"ordinal": 0, "client": "c0", "frames": 40, "seq": 1},
            {"ordinal": 1, "client": "c1", "frames": 40, "seq": 2},
            {"ordinal": 2, "client": "c2", "frames": 40, "seq": 3},
        ],
        "active": [
            {"ordinal": 3, "client": "c3", "role": "client",
             "state": "pushing", "frames": 7, "bytes": 2048,
             "connected_at": 999.0, "last_frame_at": 1_000.0},
        ],
        "wal": {"dir": "/tmp/wal", "spools": 2, "bytes": 4096},
        "metrics": {
            "version": 1,
            "window_s": 60.0,
            "counters": {"server.frames_total": 120,
                         "server.bytes_total": 98304,
                         "server.commits_total": 3},
            "gauges": {"server.sessions_active": 1.0},
            "histograms": {
                "server.fold_seconds": {"count": 120, "mean": 0.001,
                                        "p50": 0.0009, "p90": 0.002,
                                        "p99": 0.004, "max": 0.01},
                "server.frame_seconds": {"count": 0},
            },
        },
    }
    stats.update(overrides)
    return stats


class TestHumanBytes:
    @pytest.mark.parametrize("count,expected", [
        (0, "0 B"),
        (512, "512 B"),
        (2048, "2.0 KiB"),
        (3 * 1024 * 1024, "3.0 MiB"),
        (None, "-"),
        ("nope", "-"),
    ])
    def test_formats(self, count, expected):
        assert _human_bytes(count) == expected


class TestRenderStats:
    def test_contains_every_block(self):
        text = render_stats(make_stats(), "127.0.0.1:7000")
        assert "aggregator at 127.0.0.1:7000" in text
        assert "totals" in text
        assert "privacy budget" in text
        assert "live sessions" in text
        assert "committed sessions (release order)" in text
        assert "wal spools" in text
        assert "4.0 KiB" in text        # wal bytes humanized
        assert "pushing" in text        # live session state

    def test_minimal_stats_render(self):
        # A bare pre-obs server reply (no wal/active/metrics stanzas)
        # must still render — backward compatibility with old servers.
        stats = {"role": "aggregator", "k": 8, "frames": 0,
                 "sessions_committed": 0, "releases": 0, "uptime": 1.0}
        text = render_stats(stats, "unix:/tmp/s.sock")
        assert "aggregator at unix:/tmp/s.sock" in text
        assert "wal" not in text
        assert "live sessions" not in text

    def test_capped_session_list_titled(self):
        stats = make_stats(sessions_committed=500, sessions_listed=3)
        text = render_stats(stats, "a")
        assert "first 3 of 500" in text

    def test_forward_stanza_renders(self):
        stats = make_stats(forward={
            "upstream": "127.0.0.1:9000", "policy": "commit",
            "relay_ordinal": 2, "queued": 5, "acked": 10,
            "spool_bytes": 1024, "last_backoff": 0.5, "error": None,
        })
        text = render_stats(stats, "leaf")
        assert "upstream forward state" in text
        assert "127.0.0.1:9000" in text
        assert "1.0 KiB" in text
        assert "0.50s" in text


class TestRenderStatus:
    def test_first_frame_has_no_rates(self):
        text = render_status(make_stats(), "a")
        assert "throughput (this interval)" not in text
        assert "latency percentiles (sliding window)" in text

    def test_rates_are_counter_deltas(self):
        prev = make_stats()
        stats = make_stats()
        stats["frames"] = 220
        stats["metrics"]["counters"] = dict(
            stats["metrics"]["counters"], **{"server.frames_total": 220})
        text = render_status(stats, "a", prev=prev, elapsed=2.0)
        assert "throughput (this interval)" in text
        # (220 - 120) frames over 2 s = 50.0/s, in both the metrics-counter
        # column and the top-level frames column.
        assert text.count("50.0/s") >= 2

    def test_empty_histograms_skipped(self):
        stats = make_stats()
        stats["metrics"]["histograms"] = {"server.frame_seconds": {"count": 0}}
        text = render_status(stats, "a")
        assert "latency percentiles" not in text

    def test_histogram_values_in_ms(self):
        text = render_status(make_stats(), "a")
        assert "server.fold_seconds" in text
        assert "1.000 ms" in text       # mean 0.001 s
        # the count-0 histogram row is dropped
        assert "server.frame_seconds" not in text


class TestWatch:
    def test_bounded_iterations_paint_and_rate(self, monkeypatch):
        polls = [make_stats(), make_stats(frames=220)]
        monkeypatch.setattr(console, "poll_stats",
                            lambda address, **kwargs: polls.pop(0))
        ticks = iter([0.0, 2.0])
        sleeps = []
        out = io.StringIO()
        rc = watch("127.0.0.1:7000", interval=1.5, iterations=2,
                   stream=out, clock=lambda: next(ticks),
                   sleep=sleeps.append)
        assert rc == 0
        painted = out.getvalue()
        assert painted.count(CLEAR) == 2
        assert sleeps == [1.5]          # no sleep after the final frame
        assert "throughput (this interval)" in painted

    def test_keyboard_interrupt_is_clean_exit(self, monkeypatch):
        def boom(address, **kwargs):
            raise KeyboardInterrupt

        monkeypatch.setattr(console, "poll_stats", boom)
        out = io.StringIO()
        rc = watch("a", iterations=5, stream=out,
                   clock=lambda: 0.0, sleep=lambda _s: None)
        assert rc == 0
