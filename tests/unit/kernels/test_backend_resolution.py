"""Backend selection contract of :mod:`repro.kernels`.

``validate_backend`` normalization, ``resolve_backend`` precedence (the
``REPRO_KERNELS`` environment variable beats every in-code request and is
read at call time), the explicit-request-unavailable → ``ParameterError``
rule, the ``auto`` → python fallback with its warn-once semantics, and the
``kernel_info()`` report shape.
"""

from __future__ import annotations

import warnings

import pytest

from repro import kernels
from repro.exceptions import ParameterError
from repro.kernels import _numba_provider


@pytest.fixture(autouse=True)
def _isolated_tier(monkeypatch):
    """Each test sees a fresh tier: no env override, cold warn-once flag."""
    monkeypatch.delenv(kernels.ENV_VAR, raising=False)
    kernels.reset_for_tests()
    yield
    kernels.reset_for_tests()


# ---------------------------------------------------------------------------
# validate_backend
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("backend", kernels.BACKENDS)
def test_every_documented_backend_validates(backend):
    assert kernels.validate_backend(backend) == backend


def test_off_is_an_alias_of_python():
    assert kernels.validate_backend("off") == "python"


@pytest.mark.parametrize("value", ["AUTO", "  python ", "Compiled"])
def test_validation_normalizes_case_and_whitespace(value):
    assert kernels.validate_backend(value) in kernels.BACKENDS


@pytest.mark.parametrize("value", ["fortran", "", 7, None])
def test_unknown_backends_raise_parameter_error(value):
    with pytest.raises(ParameterError, match="backend must be one of"):
        kernels.validate_backend(value)


# ---------------------------------------------------------------------------
# resolve_backend
# ---------------------------------------------------------------------------

def test_python_request_resolves_to_python():
    assert kernels.resolve_backend("python") == "python"


def test_auto_resolves_to_a_provider_or_python():
    assert kernels.resolve_backend(None) in ("python",) + kernels._PROVIDER_ORDER


def test_explicit_numba_without_numba_raises():
    if _numba_provider.available():  # pragma: no cover - numba-present lane
        pytest.skip("numba is installed in this environment")
    with pytest.raises(ParameterError, match="numba"):
        kernels.resolve_backend("numba")


def test_env_var_overrides_explicit_request(monkeypatch):
    monkeypatch.setenv(kernels.ENV_VAR, "python")
    assert kernels.resolve_backend("compiled") == "python"
    assert kernels.get_kernel("mg_update", "compiled") is None


def test_env_var_is_read_at_call_time(monkeypatch):
    before = kernels.backend_name()
    monkeypatch.setenv(kernels.ENV_VAR, "off")
    assert kernels.resolve_backend(None) == "python"
    monkeypatch.delenv(kernels.ENV_VAR)
    assert kernels.backend_name() == before


def test_invalid_env_value_raises(monkeypatch):
    monkeypatch.setenv(kernels.ENV_VAR, "fortran")
    with pytest.raises(ParameterError, match="backend must be one of"):
        kernels.resolve_backend(None)


def test_compiled_with_no_providers_raises(monkeypatch):
    monkeypatch.setattr(kernels._numba_provider, "available", lambda: False)
    monkeypatch.setattr(kernels._c_provider, "available", lambda: False)
    with pytest.raises(ParameterError, match="no provider is available"):
        kernels.resolve_backend("compiled")


def test_auto_with_no_providers_warns_exactly_once(monkeypatch):
    monkeypatch.setattr(kernels._numba_provider, "available", lambda: False)
    monkeypatch.setattr(kernels._c_provider, "available", lambda: False)
    with pytest.warns(kernels.KernelFallbackWarning):
        assert kernels.resolve_backend(None) == "python"
    # The second resolution is silent: one warning per process.
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        assert kernels.resolve_backend(None) == "python"
        assert kernels.get_kernel("mg_update") is None
    assert not kernels.available()


# ---------------------------------------------------------------------------
# get_kernel / backend_name / kernel_info
# ---------------------------------------------------------------------------

def test_get_kernel_python_is_none_for_every_kernel():
    for name in kernels.KERNEL_NAMES:
        assert kernels.get_kernel(name, "python") is None


def test_get_kernel_returns_callables_when_available():
    if not kernels.available():  # pragma: no cover - toolchain-free lane
        pytest.skip("no compiled provider in this environment")
    for name in kernels.KERNEL_NAMES:
        assert callable(kernels.get_kernel(name, "compiled"))


def test_backend_name_never_raises(monkeypatch):
    monkeypatch.setattr(kernels._numba_provider, "available", lambda: False)
    monkeypatch.setattr(kernels._c_provider, "available", lambda: False)
    assert kernels.backend_name("compiled") == "python"


def test_kernel_info_shape():
    info = kernels.kernel_info()
    assert set(info) == {"backend", "env", "error", "providers", "kernels",
                         "numba_version"}
    assert set(info["providers"]) == set(kernels._PROVIDER_ORDER)
    assert set(info["kernels"]) == set(kernels.KERNEL_NAMES)
    for provider in info["providers"].values():
        assert {"name", "available", "error", "kernels"} <= set(provider)


def test_kernel_info_reports_env_override(monkeypatch):
    monkeypatch.setenv(kernels.ENV_VAR, "python")
    info = kernels.kernel_info()
    assert info["env"] == "python"
    assert info["backend"] == "python"
    assert all(backend == "python" for backend in info["kernels"].values())
