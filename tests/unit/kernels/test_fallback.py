"""The no-numba lane: ``auto`` degrades silently and everything still runs.

The numba import is monkeypatched away (``sys.modules["numba"] = None``
makes ``import numba`` raise), so this lane is deterministic whether or not
the host actually has numba.  With the C provider *also* disabled the tier
must fall back to the pure-python engines with exactly one
:class:`~repro.kernels.KernelFallbackWarning` per process, and the sketch /
merge / pipeline stack must keep producing the same answers.
"""

from __future__ import annotations

import sys
import warnings

import numpy as np
import pytest

from repro import kernels
from repro.api import Pipeline
from repro.exceptions import ParameterError
from repro.kernels import _numba_provider
from repro.sketches import MisraGriesSketch
from repro.sketches.merge import merge_many_arrays


@pytest.fixture
def no_numba(monkeypatch):
    """Force ``import numba`` to fail, regardless of the host environment."""
    monkeypatch.setitem(sys.modules, "numba", None)
    kernels.reset_for_tests()
    yield
    kernels.reset_for_tests()


@pytest.fixture
def no_providers(no_numba, monkeypatch):
    """No numba *and* no C toolchain: the tier must run pure python."""
    monkeypatch.setenv("REPRO_KERNELS_CC", "definitely-not-a-compiler")
    monkeypatch.setenv("REPRO_KERNELS_CACHE", "/nonexistent/repro-kernels")
    kernels.reset_for_tests()
    yield
    kernels.reset_for_tests()


def test_numba_provider_reports_not_installed(no_numba):
    assert not _numba_provider.available()
    assert "numba is not installed" in (_numba_provider.error() or "")
    assert _numba_provider.numba_version() is None
    assert kernels.kernel_info()["numba_version"] is None


def test_explicit_numba_request_raises(no_numba):
    with pytest.raises(ParameterError, match="numba"):
        kernels.resolve_backend("numba")


def test_auto_falls_back_to_python_with_one_warning(no_providers):
    with pytest.warns(kernels.KernelFallbackWarning,
                      match="pure-python engines"):
        assert kernels.resolve_backend(None) == "python"
    with warnings.catch_warnings():
        warnings.simplefilter("error")  # any second warning fails the test
        assert kernels.resolve_backend(None) == "python"
        sketch = MisraGriesSketch(8, backend="auto")
        sketch.update_batch(np.arange(100, dtype=np.int64) % 13)
    assert sketch.resolved_backend() == "python"


def test_sketch_and_merge_answers_survive_the_fallback(no_providers):
    stream = np.concatenate([np.arange(500, dtype=np.int64) % 37,
                             np.zeros(50, dtype=np.int64)])
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", kernels.KernelFallbackWarning)
        fallback = MisraGriesSketch(16, backend="auto").update_batch(stream)
        keys = np.fromiter(fallback.counters().keys(), dtype=np.int64)
        values = np.fromiter(fallback.counters().values(), dtype=np.float64)
        merged = merge_many_arrays([keys, keys], [values, values], 16)
    explicit = MisraGriesSketch(16, backend="python").update_batch(stream)
    assert fallback.counters() == explicit.counters()
    assert list(fallback.counters()) == list(explicit.counters())
    expected_merge = merge_many_arrays([keys, keys], [values, values], 16,
                                       backend="python")
    assert merged == expected_merge and list(merged) == list(expected_merge)


def test_pipeline_release_survives_the_fallback(no_providers):
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", kernels.KernelFallbackWarning)
        pipe = Pipeline(sketch={"name": "misra_gries", "backend": "auto"},
                        mechanism="pmg", k=16, epsilon=2.0, delta=1e-6)
        stream = np.concatenate([np.zeros(500, dtype=np.int64),
                                 np.arange(300, dtype=np.int64) % 21])
        pipe.fit(stream)
        histogram = pipe.release(rng=0)
    # The dominant key survives thresholding: a real release came out of
    # the python engines.
    assert 0 in histogram.counts
