"""The on-demand C build: caching, compiler override, graceful degradation.

These tests only exercise build *plumbing* (the kernels' numerical behavior
is locked down by the parity property suite).  They are skipped wholesale
when the host has no C toolchain — the provider then simply reports
unavailable, which ``test_backend_resolution`` already covers.
"""

from __future__ import annotations

import os

import pytest

from repro import kernels
from repro.kernels import _c_provider

pytestmark = pytest.mark.skipif(
    _c_provider._find_compiler() is None,
    reason="no C compiler on this host")


@pytest.fixture(autouse=True)
def _fresh_provider(monkeypatch):
    monkeypatch.delenv(kernels.ENV_VAR, raising=False)
    kernels.reset_for_tests()
    yield
    kernels.reset_for_tests()


def test_build_and_load_in_a_fresh_cache(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_KERNELS_CACHE", str(tmp_path))
    _c_provider.reset_for_tests()
    table = _c_provider.load()
    assert table is not None and set(table) == set(kernels.KERNEL_NAMES)
    artifact = _c_provider.shared_object_path()
    assert os.path.dirname(artifact) == str(tmp_path)
    assert os.path.exists(artifact)
    # No stray .c / .so temp files survive the build.
    leftovers = [name for name in os.listdir(tmp_path)
                 if name != os.path.basename(artifact)]
    assert leftovers == []


def test_second_load_reuses_the_cached_artifact(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_KERNELS_CACHE", str(tmp_path))
    _c_provider.reset_for_tests()
    assert _c_provider.available()
    artifact = _c_provider.shared_object_path()
    stamp = os.stat(artifact).st_mtime_ns
    _c_provider.reset_for_tests()
    assert _c_provider.available()
    assert os.stat(artifact).st_mtime_ns == stamp  # reused, not rebuilt


def test_artifact_name_is_keyed_on_source_hash():
    name = os.path.basename(_c_provider.shared_object_path())
    assert name == f"repro_kernels_{_c_provider._source_tag()}.so"
    assert len(_c_provider._source_tag()) == 16


def test_bogus_compiler_degrades_to_unavailable(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_KERNELS_CACHE", str(tmp_path))
    monkeypatch.setenv("REPRO_KERNELS_CC", "definitely-not-a-compiler")
    _c_provider.reset_for_tests()
    assert not _c_provider.available()
    assert "no C compiler" in (_c_provider.error() or "")
    info = _c_provider.info()
    assert info["available"] is False and info["kernels"] == []


def test_recovers_after_compiler_env_is_fixed(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_KERNELS_CACHE", str(tmp_path))
    monkeypatch.setenv("REPRO_KERNELS_CC", "definitely-not-a-compiler")
    _c_provider.reset_for_tests()
    assert not _c_provider.available()
    monkeypatch.delenv("REPRO_KERNELS_CC")
    _c_provider.reset_for_tests()
    assert _c_provider.available()
    assert _c_provider.error() is None
