"""Unit tests for the SpaceSaving sketch."""

import pytest

from repro.exceptions import ParameterError
from repro.sketches import ExactCounter, SpaceSavingSketch
from repro.streams import zipf_stream


class TestSpaceSaving:
    def test_requires_positive_k(self):
        with pytest.raises(ParameterError):
            SpaceSavingSketch(0)

    def test_stores_at_most_k_keys(self):
        sketch = SpaceSavingSketch.from_stream(6, zipf_stream(1_000, 100, rng=0))
        assert len(sketch.counters()) <= 6

    def test_overestimates_within_bound(self):
        stream = zipf_stream(3_000, 80, exponent=1.2, rng=1)
        truth = ExactCounter.from_stream(stream)
        k = 10
        sketch = SpaceSavingSketch.from_stream(k, stream)
        bound = len(stream) / k
        for element, estimate in sketch.counters().items():
            exact = truth.estimate(element)
            assert exact <= estimate <= exact + bound

    def test_total_count_preserved(self):
        # SpaceSaving counters sum to exactly the stream length.
        stream = zipf_stream(500, 30, rng=2)
        sketch = SpaceSavingSketch.from_stream(7, stream)
        assert sum(sketch.counters().values()) == pytest.approx(len(stream))

    def test_replacement_takes_min_plus_one(self):
        sketch = SpaceSavingSketch(2)
        sketch.update_all(["a", "a", "b"])
        sketch.update("c")  # replaces "b" (count 1) with count 2
        assert sketch.estimate("c") == 2.0
        assert sketch.estimate("b") == 0.0

    def test_error_bound_helper(self):
        sketch = SpaceSavingSketch.from_stream(10, range(100))
        assert sketch.error_bound() == pytest.approx(10.0)

    def test_majority_element_is_top(self):
        stream = [9] * 80 + list(range(40))
        sketch = SpaceSavingSketch.from_stream(8, stream)
        top_key, _ = max(sketch.counters().items(), key=lambda kv: kv[1])
        assert top_key == 9
