"""Unit tests for sketch and histogram serialization."""

import pytest

from repro.core import PrivateMisraGries
from repro.exceptions import ParameterError, SketchStateError
from repro.sketches import (
    MisraGriesSketch,
    StandardMisraGriesSketch,
    load_histogram,
    load_sketch,
    save_histogram,
    save_sketch,
    sketch_from_dict,
    sketch_to_dict,
)
from repro.sketches.serialization import histogram_from_dict, histogram_to_dict
from repro.streams import zipf_stream


class TestSketchRoundTrip:
    def test_paper_variant_roundtrip(self, tmp_path):
        sketch = MisraGriesSketch.from_stream(16, zipf_stream(2_000, 100, rng=0))
        path = tmp_path / "sketch.json"
        save_sketch(sketch, path)
        restored = load_sketch(path)
        assert isinstance(restored, MisraGriesSketch)
        assert restored.raw_counters() == sketch.raw_counters()
        assert restored.stream_length == sketch.stream_length
        assert restored.decrement_rounds == sketch.decrement_rounds

    def test_standard_variant_roundtrip(self, tmp_path):
        sketch = StandardMisraGriesSketch.from_stream(8, zipf_stream(500, 40, rng=1))
        path = tmp_path / "sketch.json"
        save_sketch(sketch, path)
        restored = load_sketch(path)
        assert isinstance(restored, StandardMisraGriesSketch)
        assert restored.counters() == sketch.counters()

    def test_restored_sketch_accepts_updates(self, tmp_path):
        stream = zipf_stream(1_000, 30, rng=2)
        sketch = MisraGriesSketch.from_stream(8, stream[:500])
        path = tmp_path / "sketch.json"
        save_sketch(sketch, path)
        restored = load_sketch(path)
        restored.update_all(stream[500:])
        direct = MisraGriesSketch.from_stream(8, stream)
        assert restored.counters() == direct.counters()

    def test_string_keys_roundtrip(self, tmp_path):
        sketch = StandardMisraGriesSketch.from_stream(4, ["alpha", "beta", "alpha"])
        path = tmp_path / "sketch.json"
        save_sketch(sketch, path)
        assert load_sketch(path).estimate("alpha") == 2.0

    def test_unsupported_key_type_rejected(self):
        sketch = StandardMisraGriesSketch(4)
        sketch.update((1, 2))
        with pytest.raises(ParameterError):
            sketch_to_dict(sketch)

    def test_bad_format_version_rejected(self):
        payload = sketch_to_dict(MisraGriesSketch(2))
        payload["format_version"] = 99
        with pytest.raises(SketchStateError):
            sketch_from_dict(payload)

    def test_unknown_kind_rejected(self):
        payload = sketch_to_dict(MisraGriesSketch(2))
        payload["kind"] = "bloom_filter"
        with pytest.raises(SketchStateError):
            sketch_from_dict(payload)

    def test_wrong_counter_count_rejected(self):
        payload = sketch_to_dict(MisraGriesSketch(2))
        payload["counters"] = {"i:1": 1.0}
        with pytest.raises(SketchStateError):
            sketch_from_dict(payload)


class TestHistogramRoundTrip:
    def test_roundtrip(self, tmp_path):
        sketch = MisraGriesSketch.from_stream(16, zipf_stream(5_000, 100, exponent=1.4, rng=3))
        histogram = PrivateMisraGries(epsilon=1.0, delta=1e-6).release(sketch, rng=4)
        path = tmp_path / "histogram.json"
        save_histogram(histogram, path)
        restored = load_histogram(path)
        assert restored.as_dict() == histogram.as_dict()
        assert restored.metadata == histogram.metadata

    def test_wrong_kind_rejected(self):
        sketch = MisraGriesSketch.from_stream(4, [1, 1, 2])
        histogram = PrivateMisraGries(epsilon=1.0, delta=1e-6).release(sketch, rng=0)
        payload = histogram_to_dict(histogram)
        payload["kind"] = "something_else"
        with pytest.raises(SketchStateError):
            histogram_from_dict(payload)
